#pragma once

/// \file rng.hpp
/// Deterministic random number generation for reproducible experiments.
///
/// Every figure in Chapter 5 is a Monte-Carlo average over 200 random point
/// sets; to make the reproduction exactly re-runnable we use xoshiro256**
/// (public-domain algorithm by Blackman & Vigna) seeded through splitmix64,
/// with explicit per-trial seed derivation rather than shared global state.
/// This also makes trials independent under parallel execution: trial k of
/// sweep point p always sees the same stream regardless of scheduling.

#include <array>
#include <cstdint>

namespace mldcs::sim {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state and
/// to hash (seed, stream) pairs into independent sub-seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent sub-seed for logical stream `stream` of master
/// seed `seed` (e.g. stream = trial index).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

/// xoshiro256** 1.0 — 256-bit state, period 2^256-1, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator, so it plugs into
/// std::uniform_real_distribution et al.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method would
  /// need 128-bit multiply; a rejection loop is simpler and branch-predictable
  /// for the small n used here).
  constexpr std::uint64_t uniform_int(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mldcs::sim
