#include "sim/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mldcs::sim {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os, const std::string& prefix) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    os << prefix;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mldcs::sim
