#pragma once

/// \file table.hpp
/// Aligned ASCII tables + CSV emission.  Every figure bench prints its
/// reproduced series both as a human-readable table and as `csv:`-prefixed
/// machine-readable lines, so EXPERIMENTS.md numbers can be traced to a
/// single run.

#include <iosfwd>
#include <string>
#include <vector>

namespace mldcs::sim {

/// Simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience for numeric rows; values are formatted with `precision`
  /// fractional digits.
  void add_numeric_row(const std::vector<double>& row, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Emit as CSV lines, each prefixed with `prefix` (default "csv:") so the
  /// data can be grepped out of mixed bench output.
  void print_csv(std::ostream& os, const std::string& prefix = "csv:") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace mldcs::sim
