#pragma once

/// \file chart.hpp
/// ASCII renderings of the paper's figures: multi-series line charts
/// (Figures 5.1, 5.4) and grouped histograms (Figures 5.2, 5.3, 5.5).
/// These exist so a bench binary's stdout *is* the figure — shape, ordering
/// of curves and crossovers are visible without any plotting toolchain.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sim/histogram.hpp"

namespace mldcs::sim {

/// One named series of (x, y) points for a line chart.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Render a multi-series line chart as ASCII art.  Each series is drawn
/// with its own glyph; a legend is printed below.  Width/height are the
/// plot-area dimensions in characters.
void render_line_chart(std::ostream& os, std::span<const Series> series,
                       const std::string& title, const std::string& x_label,
                       const std::string& y_label, std::size_t width = 72,
                       std::size_t height = 24);

/// Render a histogram as a horizontal ASCII bar chart: one row per integer
/// bin in [min_value, max_value], bar length proportional to count.
void render_histogram(std::ostream& os, const IntHistogram& hist,
                      const std::string& title, std::size_t max_bar = 60);

/// Render several histograms side by side as a table: rows = bin values,
/// one column per named histogram (the layout of Figures 5.2/5.3/5.5).
void render_histogram_table(std::ostream& os,
                            std::span<const std::string> names,
                            std::span<const IntHistogram> hists,
                            const std::string& title);

}  // namespace mldcs::sim
