#pragma once

/// \file stats.hpp
/// Streaming summary statistics (Welford) and small-sample helpers used by
/// every experiment harness.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mldcs::sim {

/// Numerically stable streaming mean/variance/min/max accumulator
/// (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
  }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept { return 1.96 * sem(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample by linear interpolation (copies + sorts; fine for
/// the <=1e5-sample uses in this repo).  q in [0,1].
[[nodiscard]] inline double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

[[nodiscard]] inline double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace mldcs::sim
