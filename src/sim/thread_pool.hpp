#pragma once

/// \file thread_pool.hpp
/// A fixed-size persistent worker pool: a task queue with submit/wait_idle
/// plus the static-chunked deterministic parallel_for the sweeps use.
///
/// The Chapter 5 sweeps are embarrassingly parallel across (sweep point,
/// trial) pairs; per the HPC guides we keep parallelism explicit and
/// deterministic: parallel_for deals work out in fixed contiguous chunks
/// (no work stealing, no shared RNG), so results are bitwise identical at
/// any thread count.  The queue side exists for the ROADMAP's async/batched
/// workloads: tasks may submit further tasks from inside a worker, and
/// destruction drains every queued task before joining (verified under
/// ThreadSanitizer by tests/sim/thread_pool_stress_test.cpp).
///
/// Concurrency contract:
///  - submit() is safe from any thread, including from inside a running
///    task.  Submitting after the destructor has begun (from outside a
///    task) is a caller bug.
///  - wait_idle() blocks until the queue is empty and no task is running,
///    then rethrows the first exception any submitted task threw since the
///    last wait_idle().
///  - parallel_for() must be called from outside the pool's own workers
///    (it blocks the caller until its chunks finish).
///  - The destructor finishes every queued task (including tasks those
///    tasks submit) before joining; exceptions from tasks drained during
///    destruction are swallowed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mldcs::sim {

/// Fixed-size persistent thread pool; workers start lazily on first use.
class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_; }

  /// Enqueue one task.  Safe from external threads and from inside tasks.
  void submit(std::function<void()> task);

  /// Block until every submitted task (transitively) has finished, then
  /// rethrow the first task exception recorded since the last wait_idle().
  void wait_idle();

  /// Run `body(i)` for every i in [0, n), partitioned into `size()`
  /// contiguous chunks executed concurrently.  Blocks until all complete.
  /// Exceptions thrown by `body` are rethrown (first one wins).  Runs
  /// inline on the calling thread when size() <= 1 or n <= 1.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void ensure_started();  // spawn workers on first submit; callers hold no lock
  void worker_loop();

  std::size_t workers_;

  std::mutex mutex_;
  std::condition_variable task_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // waiters: queue empty and none active
  std::deque<std::function<void()>> queue_;     // guarded by mutex_
  std::vector<std::thread> threads_;            // guarded by mutex_
  std::size_t active_ = 0;                      // tasks currently executing
  bool stopping_ = false;                       // guarded by mutex_
  std::exception_ptr first_error_;              // guarded by mutex_
};

/// One-shot convenience: parallel_for on a transient pool (or inline when
/// the machine has a single core — the common case for this repo's CI).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace mldcs::sim
