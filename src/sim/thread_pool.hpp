#pragma once

/// \file thread_pool.hpp
/// A fixed-size persistent worker pool: a task queue with submit/wait_idle
/// plus the static-chunked deterministic parallel_for the sweeps use.
///
/// The Chapter 5 sweeps are embarrassingly parallel across (sweep point,
/// trial) pairs; per the HPC guides we keep parallelism explicit and
/// deterministic: parallel_for deals work out in fixed contiguous chunks
/// (no work stealing, no shared RNG), so results are bitwise identical at
/// any thread count.  The queue side exists for the ROADMAP's async/batched
/// workloads: tasks may submit further tasks from inside a worker, and
/// destruction drains every queued task before joining (verified under
/// ThreadSanitizer by tests/sim/thread_pool_stress_test.cpp).
///
/// Concurrency contract:
///  - submit() is safe from any thread, including from inside a running
///    task.  Submitting after the destructor has begun (from outside a
///    task) is a caller bug.
///  - wait_idle() blocks until the queue is empty and no task is running,
///    then rethrows the first exception any submitted task threw since the
///    last wait_idle().
///  - parallel_for() must be called from outside the pool's own workers
///    (it blocks the caller until its chunks finish).
///  - The destructor finishes every queued task (including tasks those
///    tasks submit) before joining; exceptions from tasks drained during
///    destruction are swallowed.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace mldcs::sim {

/// Fixed-size persistent thread pool; workers start lazily on first use.
class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_; }

  /// Enqueue one task.  Safe from external threads and from inside tasks.
  /// Dispatch infrastructure allocates by design (one type-erased task
  /// object per call) — hot paths amortize it per chunk, never per item.
  MLDCS_ALLOC_OK void submit(std::function<void()> task);

  /// Block until every submitted task (transitively) has finished, then
  /// rethrow the first task exception recorded since the last wait_idle().
  void wait_idle();

  /// Tasks currently queued (not yet picked up by a worker).  Takes the
  /// queue mutex — an introspection read for pollers and dashboards, not
  /// for hot-path decisions.
  [[nodiscard]] std::size_t queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Run `body(i)` for every i in [0, n), partitioned into `size()`
  /// contiguous chunks executed concurrently.  Blocks until all complete.
  /// Exceptions thrown by `body` are rethrown (first one wins).  Runs
  /// inline on the calling thread when size() <= 1 or n <= 1.
  ///
  /// Statically dispatched on the callable: the only type erasure is one
  /// task object per *chunk* (= per worker), never per index.
  template <typename F>
  void parallel_for(std::size_t n, F&& body) {
    parallel_chunks(n, [&body](std::size_t /*chunk*/, std::size_t lo,
                               std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }

  /// Type-erased overload, kept for ABI users holding a std::function.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Chunk-level form: run `body(chunk, lo, hi)` for each of the <= size()
  /// contiguous chunks covering [0, n).  `chunk` is a dense index in
  /// [0, min(size(), n)) — the hook for per-thread scratch (workspaces,
  /// RNGs): chunk c runs entirely on one worker.  Same chunk boundaries as
  /// parallel_for (deterministic in (n, size()) only).
  template <typename F>
  MLDCS_ALLOC_OK void parallel_chunks(std::size_t n, F&& body) {
    if (n == 0) return;
    const std::size_t nthreads = std::min(workers_, n);
    if (nthreads <= 1) {
      body(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    // Static contiguous chunking: chunk t covers [t*n/T, (t+1)*n/T).
    // Completion is tracked by a local latch, not wait_idle(), so
    // concurrent submit() traffic from other threads cannot stall us.
    ChunkLatch latch;
    latch.remaining = nthreads;
    for (std::size_t t = 0; t < nthreads; ++t) {
      const std::size_t lo = t * n / nthreads;
      const std::size_t hi = (t + 1) * n / nthreads;
      submit([&latch, &body, t, lo, hi] {
        try {
          body(t, lo, hi);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(latch.m);
          if (!latch.error) latch.error = std::current_exception();
        }
        {
          // Notify under the lock: once `remaining` hits 0 the caller may
          // destroy the latch, so the notify must not happen after release.
          const std::lock_guard<std::mutex> lock(latch.m);
          if (--latch.remaining == 0) latch.cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lock(latch.m);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    if (latch.error) std::rethrow_exception(latch.error);
  }

  /// Weighted chunk-level form: like parallel_chunks over
  /// [0, weights.size()), but chunk boundaries follow the cumulative
  /// `weights` — chunk t ends where the running weight sum first reaches
  /// (t+1)/T of the total — so contiguous ranges carry roughly equal
  /// *work* instead of equal index counts.  With per-node degrees as
  /// weights, a sweep whose per-node cost scales with degree no longer
  /// leaves most workers idle behind one chunk of hubs.  Chunk indices
  /// stay dense in [0, chunks) (empty ranges are never dispatched), and
  /// boundaries are deterministic in (weights, size()) — thread
  /// scheduling cannot move work between chunks.  Zero weights are
  /// allowed; a zero-total input degrades to one chunk of everything.
  template <typename F>
  MLDCS_ALLOC_OK void parallel_weighted_chunks(
      std::span<const std::uint32_t> weights, F&& body) {
    const std::size_t n = weights.size();
    if (n == 0) return;
    const std::size_t nthreads = std::min(workers_, n);
    std::uint64_t total = 0;
    for (const std::uint32_t w : weights) total += w;
    if (nthreads <= 1 || total == 0) {
      body(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    // Boundary sweep: O(n + T), one pass, no per-index dispatch.
    // mldcs-analyze:allow(hot-no-alloc): O(threads) sweep setup
    std::vector<std::size_t> bounds;
    bounds.reserve(nthreads + 1);
    bounds.push_back(0);
    std::uint64_t cum = 0;
    std::size_t i = 0;
    for (std::size_t t = 0; t + 1 < nthreads; ++t) {
      const std::uint64_t target =
          (static_cast<std::uint64_t>(t) + 1) * total / nthreads;
      while (i < n && cum < target) cum += weights[i++];
      if (i > bounds.back()) bounds.push_back(i);
    }
    if (n > bounds.back()) bounds.push_back(n);
    const std::size_t chunks = bounds.size() - 1;
    if (chunks <= 1) {
      body(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    ChunkLatch latch;
    latch.remaining = chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = bounds[c];
      const std::size_t hi = bounds[c + 1];
      submit([&latch, &body, c, lo, hi] {
        try {
          body(c, lo, hi);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(latch.m);
          if (!latch.error) latch.error = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> lock(latch.m);
          if (--latch.remaining == 0) latch.cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lock(latch.m);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    if (latch.error) std::rethrow_exception(latch.error);
  }

 private:
  struct ChunkLatch {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  void ensure_started();  // spawn workers on first submit; callers hold no lock
  void worker_loop();

  std::size_t workers_;

  mutable std::mutex mutex_;
  std::condition_variable task_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // waiters: queue empty and none active
  std::deque<std::function<void()>> queue_;     // guarded by mutex_
  std::vector<std::thread> threads_;            // guarded by mutex_
  std::size_t active_ = 0;                      // tasks currently executing
  bool stopping_ = false;                       // guarded by mutex_
  std::exception_ptr first_error_;              // guarded by mutex_
};

/// One-shot convenience: parallel_for on a transient pool (or inline when
/// the machine has a single core — the common case for this repo's CI).
/// Statically dispatched on the callable, like ThreadPool::parallel_for.
template <typename F>
void parallel_for(std::size_t n, F&& body, std::size_t threads = 0) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

/// Type-erased overload, kept for ABI users holding a std::function.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Process-wide shared pool, created on first use, destroyed at exit.  The
/// hook for steady-state loops — mobility maintenance, repeated sweeps —
/// that should reuse one set of workers across steps instead of paying
/// pool construction per step.  Same concurrency contract as any
/// ThreadPool; callers must not rely on exclusive use.
///
/// Size: hardware_concurrency, unless the `MLDCS_THREADS` environment
/// variable names a positive integer — then that, clamped to
/// hardware_concurrency.  One env var makes CI and bench runs reproducible
/// without plumbing --threads through every binary; unparsable or
/// non-positive values are ignored.
ThreadPool& default_pool();

namespace detail {
/// MLDCS_THREADS parsing, exposed for tests: returns the worker count for
/// the override text `text` (nullptr/empty/invalid/non-positive -> 0, i.e.
/// "no override, use hardware_concurrency"), clamped to `hw`.
[[nodiscard]] std::size_t thread_override(const char* text,
                                          std::size_t hw) noexcept;
}  // namespace detail

}  // namespace mldcs::sim
