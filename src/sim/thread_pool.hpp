#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool plus a static-chunked parallel_for.
///
/// The Chapter 5 sweeps are embarrassingly parallel across (sweep point,
/// trial) pairs; per the HPC guides we keep parallelism explicit and
/// deterministic: work items are dealt out in fixed contiguous chunks
/// (no work stealing, no shared RNG), so results are bitwise identical at
/// any thread count.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace mldcs::sim {

/// Fixed-size thread pool executing closures; joinable on destruction.
class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_; }

  /// Run `body(i)` for every i in [0, n), partitioned into `size()`
  /// contiguous chunks executed concurrently.  Blocks until all complete.
  /// Exceptions thrown by `body` are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  std::size_t workers_;
};

/// One-shot convenience: parallel_for on a transient pool (or inline when
/// the machine has a single core — the common case for this repo's CI).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace mldcs::sim
