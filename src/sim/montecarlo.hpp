#pragma once

/// \file montecarlo.hpp
/// Trial runner for the Chapter 5 experiments: run `trials` independent
/// repetitions of a seeded experiment, in parallel, collecting per-trial
/// values deterministically (trial k always uses derive_seed(seed, k),
/// regardless of the thread schedule).

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::sim {

/// Run `trials` repetitions of `experiment(rng, trial_index)` and return the
/// per-trial results in trial order.  Each trial gets an independent,
/// deterministic RNG stream.  Statically dispatched on the callable; the
/// result type T is deduced from the experiment's return type.
template <typename F,
          typename T = std::remove_cvref_t<
              std::invoke_result_t<F&, Xoshiro256&, std::size_t>>>
[[nodiscard]] std::vector<T> run_trials(std::uint64_t seed, std::size_t trials,
                                        F&& experiment,
                                        std::size_t threads = 0) {
  std::vector<T> results(trials);
  parallel_for(
      trials,
      [&](std::size_t k) {
        Xoshiro256 rng(derive_seed(seed, k));
        results[k] = experiment(rng, k);
      },
      threads);
  return results;
}

/// Type-erased overload, kept for ABI users (and for callers that name T
/// explicitly, e.g. run_trials<double>(...)).
template <typename T>
[[nodiscard]] std::vector<T> run_trials(
    std::uint64_t seed, std::size_t trials,
    const std::function<T(Xoshiro256&, std::size_t)>& experiment,
    std::size_t threads = 0) {
  std::vector<T> results(trials);
  parallel_for(
      trials,
      [&](std::size_t k) {
        Xoshiro256 rng(derive_seed(seed, k));
        results[k] = experiment(rng, k);
      },
      threads);
  return results;
}

/// Aggregate a vector of doubles into RunningStats.
[[nodiscard]] inline RunningStats summarize(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s;
}

}  // namespace mldcs::sim
