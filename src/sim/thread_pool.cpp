#include "sim/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace mldcs::sim {

namespace {

/// Pool telemetry (docs/OBSERVABILITY.md), aggregated across every pool in
/// the process: executed-task count and total busy wall time (the
/// utilization numerator — compare against workers x elapsed), plus the
/// submit-side queue depth and its high-water mark.  Tasks here are
/// chunk-sized (one per worker per parallel_for), so the two clock reads
/// per task are noise.
struct PoolTelemetry {
  obs::Counter& tasks = obs::registry().counter("pool.tasks_executed");
  obs::Counter& busy_ns = obs::registry().counter("pool.busy_ns");
  obs::Gauge& queue_depth = obs::registry().gauge("pool.queue_depth");
  obs::Gauge& queue_depth_hwm =
      obs::registry().gauge("pool.queue_depth_hwm");
};

PoolTelemetry& pool_telemetry() {
  static PoolTelemetry t;
  return t;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(threads != 0 ? threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())) {
  // Register the pool metrics up front so snapshots always carry them —
  // a single-worker pool runs everything inline and would otherwise never
  // touch the registry.
  if constexpr (obs::kTelemetryEnabled) pool_telemetry();
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  // Workers only exit once the queue is empty, so every task submitted
  // before (or during, by other tasks) the drain still runs.
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_started() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!threads_.empty() || stopping_) return;
  threads_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  // Workers run the shard bodies; register them for CPU-time sampling
  // (idempotent, lock paid once per worker lifetime).
  obs::profiler_register_thread();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Parked workers burn no CPU, so the CPU-clock profiler rarely
      // catches this phase; the tag exists for the samples that land in
      // the wake/sleep edges.
      const obs::PhaseScope idle(obs::Phase::kPoolIdle);
      task_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Clock reads sit outside the telemetry stubs, so gate them too: with
    // the kill switch off the worker loop compiles exactly as before.
    std::int64_t t0 = 0;
    if constexpr (obs::kTelemetryEnabled) {
      t0 = std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if constexpr (obs::kTelemetryEnabled) {
      const std::int64_t t1 =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      PoolTelemetry& t = pool_telemetry();
      t.tasks.add();
      t.busy_ns.add(static_cast<std::uint64_t>(t1 - t0));
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  ensure_started();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  task_cv_.notify_one();
  if constexpr (obs::kTelemetryEnabled) {
    PoolTelemetry& t = pool_telemetry();
    t.queue_depth.set(static_cast<std::int64_t>(depth));
    t.queue_depth_hwm.set_max(static_cast<std::int64_t>(depth));
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_chunks(n, [&body](std::size_t /*chunk*/, std::size_t lo,
                             std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

namespace detail {

std::size_t thread_override(const char* text, std::size_t hw) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  // Hand-rolled parse: strtoul would accept "8abc" and negative wraparound.
  std::size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    if (value > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
      return hw;  // absurdly large: clamp rather than overflow
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
  }
  if (value == 0) return 0;
  return std::min(value, std::max<std::size_t>(1, hw));
}

}  // namespace detail

ThreadPool& default_pool() {
  // Meyers singleton: thread-safe construction, drained and joined during
  // static destruction (the pool's destructor finishes queued tasks).
  // MLDCS_THREADS (clamped to hardware_concurrency) pins the size for
  // reproducible CI/bench runs; the variable is read once, at first use.
  static ThreadPool pool(detail::thread_override(
      std::getenv("MLDCS_THREADS"), std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace mldcs::sim
