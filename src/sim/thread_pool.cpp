#include "sim/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

namespace mldcs::sim {

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(threads != 0 ? threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())) {}

ThreadPool::~ThreadPool() = default;

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t nthreads = std::min(workers_, n);
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(nthreads);

  // Static contiguous chunking: chunk t covers [t*n/T, (t+1)*n/T).  Chunk
  // boundaries depend only on (n, T), keeping the schedule deterministic.
  for (std::size_t t = 0; t < nthreads; ++t) {
    const std::size_t lo = t * n / nthreads;
    const std::size_t hi = (t + 1) * n / nthreads;
    threads.emplace_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

}  // namespace mldcs::sim
