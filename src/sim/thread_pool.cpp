#include "sim/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mldcs::sim {

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(threads != 0 ? threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())) {}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  // Workers only exit once the queue is empty, so every task submitted
  // before (or during, by other tasks) the drain still runs.
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_started() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!threads_.empty() || stopping_) return;
  threads_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  ensure_started();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_chunks(n, [&body](std::size_t /*chunk*/, std::size_t lo,
                             std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

ThreadPool& default_pool() {
  // Meyers singleton: thread-safe construction, drained and joined during
  // static destruction (the pool's destructor finishes queued tasks).
  static ThreadPool pool(0);
  return pool;
}

}  // namespace mldcs::sim
