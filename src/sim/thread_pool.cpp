#include "sim/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mldcs::sim {

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(threads != 0 ? threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())) {}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  // Workers only exit once the queue is empty, so every task submitted
  // before (or during, by other tasks) the drain still runs.
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_started() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!threads_.empty() || stopping_) return;
  threads_.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  ensure_started();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t nthreads = std::min(workers_, n);
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Static contiguous chunking: chunk t covers [t*n/T, (t+1)*n/T).  Chunk
  // boundaries depend only on (n, T), keeping the schedule deterministic.
  // Completion is tracked by a local latch, not wait_idle(), so concurrent
  // submit() traffic from other threads cannot stall this call.
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
  } latch;
  latch.remaining = nthreads;

  for (std::size_t t = 0; t < nthreads; ++t) {
    const std::size_t lo = t * n / nthreads;
    const std::size_t hi = (t + 1) * n / nthreads;
    submit([&latch, &body, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(latch.m);
        if (!latch.error) latch.error = std::current_exception();
      }
      {
        // Notify under the lock: once `remaining` hits 0 the caller may
        // destroy the latch, so the notify must not happen after release.
        const std::lock_guard<std::mutex> lock(latch.m);
        if (--latch.remaining == 0) latch.cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(latch.m);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  if (latch.error) std::rethrow_exception(latch.error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

}  // namespace mldcs::sim
