#pragma once

/// \file histogram.hpp
/// Integer-bin histograms for the distribution figures (5.2, 5.3, 5.5):
/// "x-axis = number of forwarding nodes, y-axis = number of random point
/// sets".

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mldcs::sim {

/// Histogram over non-negative integer values (forwarding-set sizes).
class IntHistogram {
 public:
  void add(std::uint64_t value) {
    if (value >= counts_.size()) counts_.resize(value + 1, 0);
    ++counts_[value];
    ++total_;
  }

  void add_all(std::span<const std::uint64_t> values) {
    for (auto v : values) add(v);
  }

  /// Count in bin `value` (0 if past the end).
  [[nodiscard]] std::uint64_t count(std::uint64_t value) const noexcept {
    return value < counts_.size() ? counts_[value] : 0;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Largest value with a nonzero count; 0 when empty.
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] != 0) return i;
    }
    return 0;
  }

  /// Smallest value with a nonzero count; 0 when empty.
  [[nodiscard]] std::uint64_t min_value() const noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] != 0) return i;
    }
    return 0;
  }

  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      s += static_cast<double>(i) * static_cast<double>(counts_[i]);
    }
    return s / static_cast<double>(total_);
  }

  /// Mode (smallest bin among ties).
  [[nodiscard]] std::uint64_t mode() const noexcept {
    std::uint64_t best = 0, best_count = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > best_count) {
        best = i;
        best_count = counts_[i];
      }
    }
    return best;
  }

  /// Number of trials with value strictly greater than `threshold` — used
  /// for the Figure 5.3 note about flooding's tail above the plotted range.
  [[nodiscard]] std::uint64_t count_above(std::uint64_t threshold) const noexcept {
    std::uint64_t s = 0;
    for (std::size_t i = threshold + 1; i < counts_.size(); ++i) s += counts_[i];
    return s;
  }

  [[nodiscard]] std::span<const std::uint64_t> bins() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mldcs::sim
