#include "sim/chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "sim/table.hpp"

namespace mldcs::sim {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

}  // namespace

void render_line_chart(std::ostream& os, std::span<const Series> series,
                       const std::string& title, const std::string& x_label,
                       const std::string& y_label, std::size_t width,
                       std::size_t height) {
  os << title << '\n';
  if (series.empty() || width == 0 || height == 0) {
    os << "(no data)\n";
    return;
  }

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = 0.0;  // the paper's y axes start at 0
  double ymax = -std::numeric_limits<double>::infinity();
  for (const Series& s : series) {
    for (double x : s.xs) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
    }
    for (double y : s.ys) ymax = std::max(ymax, y);
  }
  if (!(xmax > xmin)) xmax = xmin + 1.0;
  if (!(ymax > ymin)) ymax = ymin + 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  const auto to_col = [&](double x) {
    const double t = (x - xmin) / (xmax - xmin);
    return std::min(width - 1,
                    static_cast<std::size_t>(t * static_cast<double>(width - 1) +
                                             0.5));
  };
  const auto to_row = [&](double y) {
    const double t = (y - ymin) / (ymax - ymin);
    const std::size_t r = std::min(
        height - 1,
        static_cast<std::size_t>(t * static_cast<double>(height - 1) + 0.5));
    return height - 1 - r;  // row 0 is the top
  };

  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    const Series& ser = series[s];
    const std::size_t n = std::min(ser.xs.size(), ser.ys.size());
    // Draw connecting line segments by dense parametric sampling, then the
    // data points on top.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (int step = 0; step <= 32; ++step) {
        const double t = static_cast<double>(step) / 32.0;
        const double x = ser.xs[i] + t * (ser.xs[i + 1] - ser.xs[i]);
        const double y = ser.ys[i] + t * (ser.ys[i + 1] - ser.ys[i]);
        char& cell = canvas[to_row(y)][to_col(x)];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      canvas[to_row(ser.ys[i])][to_col(ser.xs[i])] = glyph;
    }
  }

  // y-axis labels on the left.
  const int label_w = 8;
  for (std::size_t r = 0; r < height; ++r) {
    std::ostringstream lbl;
    if (r % 4 == 0 || r + 1 == height) {
      const double y =
          ymax - (ymax - ymin) * static_cast<double>(r) /
                     static_cast<double>(height - 1);
      lbl << std::fixed << std::setprecision(1) << y;
    }
    os << std::setw(label_w) << lbl.str() << " |" << canvas[r] << '\n';
  }
  os << std::string(static_cast<std::size_t>(label_w) + 1, ' ') << '+'
     << std::string(width, '-') << '\n';
  {
    std::ostringstream xl, xr;
    xl << std::fixed << std::setprecision(1) << xmin;
    xr << std::fixed << std::setprecision(1) << xmax;
    const std::string left = xl.str();
    const std::string right = xr.str();
    os << std::string(static_cast<std::size_t>(label_w) + 2, ' ') << left;
    if (width > left.size() + right.size()) {
      os << std::string(width - left.size() - right.size(), ' ');
    }
    os << right << '\n';
  }
  os << "  x: " << x_label << "   y: " << y_label << '\n';
  os << "  legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "  [" << kGlyphs[s % sizeof(kGlyphs)] << "] " << series[s].name;
  }
  os << '\n';
}

void render_histogram(std::ostream& os, const IntHistogram& hist,
                      const std::string& title, std::size_t max_bar) {
  os << title << '\n';
  if (hist.total() == 0) {
    os << "(empty)\n";
    return;
  }
  std::uint64_t peak = 0;
  for (std::uint64_t v = hist.min_value(); v <= hist.max_value(); ++v) {
    peak = std::max(peak, hist.count(v));
  }
  for (std::uint64_t v = hist.min_value(); v <= hist.max_value(); ++v) {
    const std::uint64_t c = hist.count(v);
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(c) / static_cast<double>(peak) *
                        static_cast<double>(max_bar) + 0.5);
    os << std::setw(4) << v << " | " << std::string(bar, '#') << ' ' << c
       << '\n';
  }
}

void render_histogram_table(std::ostream& os,
                            std::span<const std::string> names,
                            std::span<const IntHistogram> hists,
                            const std::string& title) {
  os << title << '\n';
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const auto& h : hists) {
    if (h.total() == 0) continue;
    lo = std::min(lo, h.min_value());
    hi = std::max(hi, h.max_value());
  }
  if (lo > hi) {
    os << "(empty)\n";
    return;
  }

  std::vector<std::string> header{"#fwd"};
  for (const auto& n : names) header.push_back(n);
  Table t(std::move(header));
  for (std::uint64_t v = lo; v <= hi; ++v) {
    std::vector<std::string> row{std::to_string(v)};
    for (const auto& h : hists) row.push_back(std::to_string(h.count(v)));
    t.add_row(std::move(row));
  }
  t.print(os);
}

}  // namespace mldcs::sim
