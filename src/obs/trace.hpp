#pragma once

/// \file trace.hpp
/// Scoped tracing spans emitting chrome://tracing-compatible trace-event
/// JSON (load the file at chrome://tracing or https://ui.perfetto.dev).
///
/// Usage:
///
///   obs::trace_start();                      // arm collection
///   { obs::TraceSpan span("cache.update");   // RAII: one complete event
///     ... }
///   obs::write_trace_json(out);              // flush all thread buffers
///
/// Design:
///  - **Per-thread buffers.**  Each thread appends completed spans to its
///    own buffer (registered once, kept alive past thread exit), so span
///    recording never contends across threads; the per-buffer mutex is
///    only ever contended by an in-flight flush.
///  - **Runtime arming.**  When tracing is stopped (the default), a span
///    costs one relaxed atomic load — cheap enough to leave spans compiled
///    into steady-state paths like SkylineCache::update.  Do not put spans
///    in per-arc/per-disk inner loops; counters (telemetry.hpp) are the
///    tool at that granularity.
///  - **Compile-time kill switch.**  With MLDCS_ENABLE_TELEMETRY=OFF the
///    span is an empty object and the functions are inline no-ops
///    (write_trace_json still emits a valid empty document).
///
/// Span names must be string literals (or otherwise outlive the flush):
/// buffers store the pointer, not a copy.

#include <cstdint>
#include <iosfwd>

#include "obs/telemetry.hpp"  // MLDCS_ENABLE_TELEMETRY / kTelemetryEnabled

namespace mldcs::obs {

#if MLDCS_ENABLE_TELEMETRY

/// Begin collecting spans (clock epoch is set on the first start).
void trace_start();

/// Stop collecting.  Already-recorded events stay buffered until
/// write_trace_json or trace_clear.
void trace_stop();

[[nodiscard]] bool trace_enabled() noexcept;

/// Write every buffered event as one chrome://tracing JSON document and
/// clear the buffers.  Collection state (started/stopped) is unchanged;
/// spans still open on other threads flush with whatever has completed.
void write_trace_json(std::ostream& os);

/// Drop all buffered events.
void trace_clear();

/// RAII span: records one complete ("ph":"X") event on the calling
/// thread's buffer, from construction to destruction, iff tracing was
/// enabled at construction.  `name` must outlive the flush (use literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  ///< nullptr when disarmed
  std::int64_t t0_ns_ = 0;
};

#else  // !MLDCS_ENABLE_TELEMETRY

inline void trace_start() {}
inline void trace_stop() {}
[[nodiscard]] inline bool trace_enabled() noexcept { return false; }
void write_trace_json(std::ostream& os);  // valid empty document
inline void trace_clear() {}

class TraceSpan {
 public:
  explicit TraceSpan(const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace mldcs::obs
