#include "obs/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/profiler.hpp"
#include "obs/shard_stats.hpp"

namespace mldcs::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 4096;
constexpr std::size_t kDefaultEventTail = 256;
constexpr int kPollTickMs = 200;

void send_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing to salvage
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void send_response(int fd, int status, const char* status_text,
                   const char* content_type, const std::string& body) {
  std::ostringstream head;
  head << "HTTP/1.0 " << status << ' ' << status_text << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  const std::string h = head.str();
  send_all(fd, h.data(), h.size());
  send_all(fd, body.data(), body.size());
}

/// `/shards` body, schema `mldcs-shards-v1`: the same per-shard table the
/// blackbox embeds in heartbeat frames, as one standalone document.
std::string shards_body() {
  std::vector<ShardStat> stats;
  const std::uint64_t step = shard_stats(stats);
  std::ostringstream os;
  os << "{\"schema\":\"mldcs-shards-v1\",\"step\":" << step
     << ",\"count\":" << stats.size() << ",\"shards\":[";
  bool first = true;
  for (const ShardStat& s : stats) {
    if (!first) os << ',';
    first = false;
    os << "{\"shard\":" << s.shard << ",\"owned\":" << s.owned
       << ",\"halo\":" << s.halo << ",\"incoming\":" << s.incoming
       << ",\"dirty\":" << s.dirty << ",\"step_ns\":" << s.step_ns
       << ",\"barrier_wait_ns\":" << s.barrier_wait_ns << '}';
  }
  os << "]}\n";
  return os.str();
}

/// Parse `?tail=N` off an `/events` target; clamp to something a curl
/// can digest.  Malformed values fall back to the default.
std::size_t parse_tail(const std::string& target) {
  const std::size_t q = target.find("tail=");
  if (q == std::string::npos) return kDefaultEventTail;
  std::size_t n = 0;
  bool any = false;
  for (std::size_t i = q + 5; i < target.size(); ++i) {
    const char c = target[i];
    if (c < '0' || c > '9') break;
    n = n * 10 + static_cast<std::size_t>(c - '0');
    any = true;
    if (n > 1'000'000) return 1'000'000;
  }
  return any ? n : kDefaultEventTail;
}

/// Parse `?seconds=N` off a `/profile` target; clamp to 1..30 so a typo
/// cannot park the (single-threaded) responder for minutes.
double parse_profile_seconds(const std::string& target) {
  const std::size_t q = target.find("seconds=");
  if (q == std::string::npos) return 1.0;
  std::size_t n = 0;
  bool any = false;
  for (std::size_t i = q + 8; i < target.size(); ++i) {
    const char c = target[i];
    if (c < '0' || c > '9') break;
    n = n * 10 + static_cast<std::size_t>(c - '0');
    any = true;
    if (n > 30) return 30.0;
  }
  if (!any || n == 0) return 1.0;
  return static_cast<double>(n);
}

constexpr const char* kIndexBody =
    "mldcs introspection endpoints:\n"
    "  /metrics                 Prometheus text exposition\n"
    "  /snapshot.json           mldcs-telemetry-v1 registry snapshot\n"
    "  /events?tail=N           mldcs-events-v1 tail (default 256)\n"
    "  /shards                  mldcs-shards-v1 per-shard load table\n"
    "  /profile?seconds=N       mldcs-profile-v1 sampled window\n"
    "      &format=folded|json  (default folded; blocks for the window)\n"
    "  /healthz                 watchdog verdict\n";

}  // namespace

IntrospectServer::~IntrospectServer() { stop(); }

bool IntrospectServer::start(const Options& options, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("introspect server already running");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad host: " + options.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return fail(msg);
  }
  if (::listen(fd, 16) < 0) {
    const std::string msg = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return fail(msg);
  }
  sockaddr_in bound = {};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) < 0) {
    const std::string msg = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return fail(msg);
  }

  listen_fd_ = fd;
  registry_ = options.registry != nullptr ? options.registry : &registry();
  requests_.store(0, std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_release);
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void IntrospectServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void IntrospectServer::set_health(HealthFn fn) {
  const std::scoped_lock lock(health_mu_);
  health_ = std::move(fn);
}

void IntrospectServer::serve() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd p = {};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, kPollTickMs);
    if (r <= 0) continue;  // tick (or EINTR): re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval tv = {};
    tv.tv_sec = 2;  // a stalled client must not wedge the responder
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_connection(client);
    ::close(client);
  }
}

void IntrospectServer::handle_connection(int client_fd) {
  char buf[kMaxRequestBytes];
  std::size_t have = 0;
  // Read until the header terminator; HTTP/1.0 GETs have no body.
  while (have < sizeof(buf) - 1) {
    const ssize_t r = ::recv(client_fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;
    }
    have += static_cast<std::size_t>(r);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  if (have == 0) return;
  buf[have] = '\0';
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string_view req(buf, have);
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : req.find(' ', sp1 + 1);
  const std::size_t eol = req.find_first_of("\r\n");
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      (eol != std::string_view::npos && sp2 > eol)) {
    send_response(client_fd, 400, "Bad Request", "text/plain",
                  "bad request\n");
    return;
  }
  const std::string method(req.substr(0, sp1));
  const std::string target(req.substr(sp1 + 1, sp2 - sp1 - 1));
  if (method != "GET") {
    send_response(client_fd, 405, "Method Not Allowed", "text/plain",
                  "GET only\n");
    return;
  }
  const std::string path = target.substr(0, target.find('?'));

  if (path == "/metrics") {
    std::ostringstream os;
    write_prometheus_text(os, *registry_);
    send_response(client_fd, 200, "OK", "text/plain; version=0.0.4",
                  os.str());
  } else if (path == "/snapshot.json") {
    std::ostringstream os;
    write_snapshot_json(os, *registry_);
    send_response(client_fd, 200, "OK", "application/json", os.str());
  } else if (path == "/events") {
    std::ostringstream os;
    write_events_jsonl_tail(os, parse_tail(target));
    send_response(client_fd, 200, "OK", "application/jsonl", os.str());
  } else if (path == "/shards") {
    send_response(client_fd, 200, "OK", "application/json", shards_body());
  } else if (path == "/profile") {
    // Deliberate exception to "never block": the *server thread* sleeps
    // for the sampled window (1..30 s, bounded); the simulation threads
    // only carry the armed profiler's sampling cost.  Telemetry-off
    // builds return a valid empty document immediately.
    const double seconds = parse_profile_seconds(target);
    const bool json = target.find("format=json") != std::string::npos;
    const ProfileReport report =
        profiler_capture_window(seconds, ProfilerConfig{});
    std::ostringstream os;
    if (json) {
      write_profile_json(os, report);
    } else {
      write_profile_folded(os, report);
    }
    send_response(client_fd, 200, "OK",
                  json ? "application/json" : "text/plain", os.str());
  } else if (path == "/healthz") {
    HealthFn health;
    {
      const std::scoped_lock lock(health_mu_);
      health = health_;
    }
    std::string detail;
    const bool ok = health ? health(detail) : true;
    if (detail.empty()) detail = ok ? "ok" : "unhealthy";
    detail.push_back('\n');
    send_response(client_fd, ok ? 200 : 503,
                  ok ? "OK" : "Service Unavailable", "text/plain", detail);
  } else if (path == "/") {
    send_response(client_fd, 200, "OK", "text/plain", kIndexBody);
  } else {
    send_response(client_fd, 404, "Not Found", "text/plain", "not found\n");
  }
}

}  // namespace mldcs::obs
