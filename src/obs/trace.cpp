#include "obs/trace.hpp"

#include <ostream>

#if MLDCS_ENABLE_TELEMETRY

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace mldcs::obs {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceEvent {
  const char* name;
  std::int64_t t0_ns;   ///< relative to the trace epoch
  std::int64_t dur_ns;
};

/// One buffer per thread.  The mutex serializes the owning thread's
/// appends against a concurrent flush; appends are otherwise uncontended.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_ns{0};
  std::mutex mu;  ///< guards `buffers` (registration and flush iteration)
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

TraceState& state() {
  // Leaked: worker threads may record spans during static teardown.
  static TraceState* s = new TraceState;
  return *s;
}

TraceBuffer& local_buffer() {
  thread_local std::shared_ptr<TraceBuffer> tl = [] {
    auto buf = std::make_shared<TraceBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    buf->tid = s.next_tid++;
    s.buffers.push_back(buf);  // registry keeps events past thread exit
    return buf;
  }();
  return *tl;
}

void write_json_escaped(std::ostream& os, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // control chars never appear in span literals
    } else {
      os << c;
    }
  }
}

}  // namespace

void trace_start() {
  TraceState& s = state();
  std::int64_t expected = 0;
  // First start fixes the epoch; restarts keep it so event timestamps from
  // separate start/stop windows stay on one timeline.
  s.epoch_ns.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(trace_enabled() ? name : nullptr) {
  if (name_ != nullptr) t0_ns_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const std::int64_t t1 = now_ns();
  const std::int64_t epoch = state().epoch_ns.load(std::memory_order_relaxed);
  TraceBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({name_, t0_ns_ - epoch, t1 - t0_ns_});
}

void write_trace_json(std::ostream& os) {
  TraceState& s = state();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (!first) os << ",";
      first = false;
      // chrome://tracing wants microsecond timestamps; fractional values
      // keep the ns resolution.
      os << "{\"name\":\"";
      write_json_escaped(os, e.name);
      os << "\",\"cat\":\"mldcs\",\"ph\":\"X\",\"pid\":0,\"tid\":" << buf->tid
         << ",\"ts\":" << static_cast<double>(e.t0_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3 << "}";
    }
    buf->events.clear();
  }
  os << "]}\n";
}

void trace_clear() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

}  // namespace mldcs::obs

#else  // !MLDCS_ENABLE_TELEMETRY

namespace mldcs::obs {

void write_trace_json(std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
}

}  // namespace mldcs::obs

#endif  // MLDCS_ENABLE_TELEMETRY
