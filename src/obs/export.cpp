#include "obs/export.hpp"

#include <cctype>
#include <ostream>
#include <string>

namespace mldcs::obs {

namespace {

/// Metric names are dotted identifiers ("cache.dirty_relays"); JSON wants
/// them quoted verbatim, Prometheus wants [a-zA-Z0-9_:] only.
void write_quoted(std::ostream& os, const std::string& name) {
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string prometheus_name(const std::string& name) {
  std::string out = "mldcs_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

void write_histogram_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"min\":" << h.min << ",\"max\":" << h.max
     << ",\"mean\":" << h.mean() << ",\"buckets\":[";
  bool first = true;
  for (const HistogramSnapshot::Bucket& b : h.buckets) {
    if (!first) os << ",";
    first = false;
    os << "{\"lo\":" << b.lo << ",\"hi\":" << b.hi << ",\"count\":" << b.count
       << "}";
  }
  os << "]}";
}

}  // namespace

void write_snapshot_json(std::ostream& os, const Registry& r) {
  const RegistrySnapshot s = r.snapshot();
  os << "{\"schema\":\"mldcs-telemetry-v1\",\"enabled\":"
     << (kTelemetryEnabled ? "true" : "false");
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    if (!first) os << ",";
    first = false;
    write_quoted(os, name);
    os << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : s.gauges) {
    if (!first) os << ",";
    first = false;
    write_quoted(os, name);
    os << ":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) os << ",";
    first = false;
    write_quoted(os, name);
    os << ":";
    write_histogram_json(os, h);
  }
  os << "}}\n";
}

void write_prometheus_text(std::ostream& os, const Registry& r) {
  const RegistrySnapshot s = r.snapshot();
  for (const auto& [name, value] : s.counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const HistogramSnapshot::Bucket& b : h.buckets) {
      cumulative += b.count;
      os << p << "_bucket{le=\"" << b.hi << "\"} " << cumulative << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << p << "_sum " << h.sum << "\n"
       << p << "_count " << h.count << "\n";
  }
}

}  // namespace mldcs::obs
