#pragma once

/// \file telemetry.hpp
/// Lock-light runtime telemetry: monotonic counters, gauges, and
/// log-bucketed histograms, collected in a named registry.
///
/// Tuning the incremental machinery (SkylineCache tolerances, compaction
/// thresholds, pool sizing) needs live counters and distributions, not the
/// end-of-run aggregates perf_suite prints.  The design follows the usual
/// simulation-engine instrumentation split (cf. ROSS's st-data-collection):
///
///  - **Updates are wait-free**: every metric is one (or a few) relaxed
///    std::atomic fetch_add/store; no lock is ever taken on the hot path.
///    Each metric sits on its own cache line so unrelated counters do not
///    false-share.
///  - **Registration is locked**: Registry::counter/gauge/histogram take a
///    mutex, but call sites hoist the returned reference into a
///    function-local static, so the lock is paid once per call site per
///    process, not per event.
///  - **Compile-time kill switch**: with the CMake option
///    `MLDCS_ENABLE_TELEMETRY=OFF` every class here becomes an empty inline
///    stub, so instrumented hot paths pay literally zero (no atomic, no
///    branch, no clock read — the calls fold away).  `kTelemetryEnabled`
///    lets call sites `if constexpr` away any side computation (clock
///    reads, divisions) feeding a metric.
///
/// Snapshots (JSON / Prometheus text) live in obs/export.hpp; tracing spans
/// in obs/trace.hpp.

#include <cstdint>

// MLDCS_ENABLE_TELEMETRY is defined (to 0 or 1) on the mldcs_obs CMake
// target PUBLICly, so every TU in the build agrees on which branch below it
// compiled against (an ODR must, like MLDCS_ENABLE_INVARIANT_CHECKS).
// Plain includes outside the build (tooling, editors) default to ON.
#ifndef MLDCS_ENABLE_TELEMETRY
#define MLDCS_ENABLE_TELEMETRY 1
#endif

#if MLDCS_ENABLE_TELEMETRY
#include <atomic>
#endif

#include <bit>  // Histogram::bucket_of, in both telemetry branches

#include <string>
#include <string_view>
#include <vector>

namespace mldcs::obs {

inline constexpr bool kTelemetryEnabled = MLDCS_ENABLE_TELEMETRY != 0;

/// Plain-data snapshot of one histogram (see Histogram::snapshot).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  /// One entry per non-empty log bucket, ascending: values in [lo, hi].
  struct Bucket {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Plain-data snapshot of a whole registry (see Registry::snapshot).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

#if MLDCS_ENABLE_TELEMETRY

/// Monotonic event counter.  Updates are relaxed atomic adds; reads are
/// racy-but-coherent (fine for snapshots: each counter is individually
/// exact, cross-counter consistency is not promised).
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins level gauge with a monotonic-max variant for
/// high-water marks.
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if it is below (relaxed CAS loop); the gauge
  /// becomes a high-water mark.
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over non-negative integer samples: bucket 0 holds
/// the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1], so 65 fixed buckets
/// cover the whole uint64 range with ~2x relative resolution — enough to
/// read dirty-relay counts, queue depths, or span durations at a glance
/// without per-workload bucket tuning.  record() is 3 relaxed adds plus a
/// relaxed min/max CAS; no allocation ever.
class alignas(64) Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    raise(max_, v);
    lower(min_, v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Bucket index of a sample: 0 for 0, else bit_width(v).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive value range of bucket `b` (inverse of bucket_of).
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b <= 1 ? b : std::uint64_t{1} << (b - 1);
  }
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 0
           : b >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << b) - 1;
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    if (s.count != 0) {
      s.min = min_.load(std::memory_order_relaxed);
      s.max = max_.load(std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
      if (c != 0) s.buckets.push_back({bucket_lo(b), bucket_hi(b), c});
    }
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  }

 private:
  static void raise(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void lower(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur > v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
};

/// Named metric registry.  Lookup-or-create is mutex-guarded and returns a
/// reference that stays valid for the registry's lifetime (metrics live in
/// stable-address storage and are never removed), so call sites cache it:
///
///   static obs::Counter& calls = obs::registry().counter("skyline.calls");
///   calls.add();
///
/// Instances are independent (tests use their own); the process-wide one is
/// obs::registry().
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find or create the named metric.  Asking for an existing name returns
  /// the same object every time.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Consistent-per-metric copy of every metric, names sorted ascending.
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zero every registered metric (names stay registered — cached
  /// references remain valid).  For tests and per-section bench resets.
  void reset() noexcept;

 private:
  struct Impl;
  Impl* impl_;  ///< raw pointer: keeps the header <memory>-free
};

#else  // !MLDCS_ENABLE_TELEMETRY

// Stub metrics: identical surface, empty bodies — instrumented call sites
// compile unchanged and the optimizer deletes them.  All metric references
// alias one shared static per class; snapshots are empty.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void set_max(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  // The bucket geometry helpers are pure functions (no metric state), so
  // the stub keeps the real implementations: tools and tests that reason
  // about bucket layout behave identically in both telemetry modes.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b <= 1 ? b : std::uint64_t{1} << (b - 1);
  }
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 0
           : b >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << b) - 1;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const { return {}; }
  void reset() noexcept {}
};

class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view) noexcept { return c_; }
  [[nodiscard]] Gauge& gauge(std::string_view) noexcept { return g_; }
  [[nodiscard]] Histogram& histogram(std::string_view) noexcept { return h_; }
  [[nodiscard]] RegistrySnapshot snapshot() const { return {}; }
  void reset() noexcept {}

 private:
  Counter c_;
  Gauge g_;
  Histogram h_;
};

#endif  // MLDCS_ENABLE_TELEMETRY

/// The process-wide registry every built-in instrumentation point reports
/// to.  Constructed on first use, never destroyed before static teardown.
Registry& registry();

}  // namespace mldcs::obs
