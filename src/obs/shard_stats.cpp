#include "obs/shard_stats.hpp"

#include <mutex>
#include <utility>

namespace mldcs::obs {

namespace {

/// Provider registration is cold-path (engine construction/destruction)
/// and reads come from introspection/blackbox threads, never from the
/// simulation step — a plain mutex is fine here.  The installed callback
/// itself must still be cheap and thread-safe (the engine reads relaxed
/// atomics), because it runs under this mutex on a foreign thread.
struct ProviderState {
  std::mutex mu;
  const void* owner = nullptr;
  ShardStatsFn fn;
};

ProviderState& provider_state() {
  static ProviderState* s = new ProviderState();  // leaked: callable at exit
  return *s;
}

}  // namespace

void set_shard_stats_provider(const void* owner, ShardStatsFn fn) {
  ProviderState& s = provider_state();
  const std::scoped_lock lock(s.mu);
  s.owner = owner;
  s.fn = std::move(fn);
}

void clear_shard_stats_provider(const void* owner) {
  ProviderState& s = provider_state();
  const std::scoped_lock lock(s.mu);
  if (s.owner != owner) return;  // a later engine already took over
  s.owner = nullptr;
  s.fn = nullptr;
}

std::uint64_t shard_stats(std::vector<ShardStat>& out) {
  out.clear();
  ProviderState& s = provider_state();
  const std::scoped_lock lock(s.mu);
  if (!s.fn) return 0;
  return s.fn(out);
}

}  // namespace mldcs::obs
