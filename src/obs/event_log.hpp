#pragma once

/// \file event_log.hpp
/// Broadcast flight recorder: a bounded, per-thread-buffered log of typed
/// protocol events with causal parent links.
///
/// The telemetry registry (telemetry.hpp) answers "how much" — counters and
/// distributions.  The event log answers "why": when a broadcast misses a
/// reachable node or burns redundant airtime, the log records *which*
/// transmission designated whom, who was suppressed, and which reception
/// triggered which transmission, so the delivery tree and every per-node
/// decision can be reconstructed after the fact (obs/event_replay.hpp) or
/// exported for offline forensics (write_events_jsonl, schema
/// `mldcs-events-v1`).
///
/// Design (same discipline as trace.hpp):
///  - **Per-thread buffers.**  Each thread appends to its own buffer; the
///    per-buffer mutex is only ever contended by an in-flight flush.
///  - **Causal ids.**  Every emitted event draws a globally unique id from
///    one relaxed atomic; a later event names its cause by that id (a kRx
///    points at the kTx it heard, a kTx points at the kRx that delivered
///    the message to the transmitter).
///  - **Bounded.**  `events_start(capacity)` fixes a hard cap; once the id
///    counter passes it, further events are dropped (counted in
///    events_dropped) instead of growing memory without bound.
///  - **Disarmed = one relaxed load.**  When collection is stopped (the
///    default), emit_event returns immediately after one relaxed atomic
///    load.  With MLDCS_ENABLE_TELEMETRY=OFF every function here is an
///    inline no-op stub and instrumented call sites compile to nothing
///    (write_events_jsonl still emits a valid empty document).
///
/// Event vocabulary (field meanings per type are part of the
/// `mldcs-events-v1` schema; see docs/OBSERVABILITY.md):
///
/// | type              | a              | b                   | value        | parent            |
/// |-------------------|----------------|---------------------|--------------|-------------------|
/// | kBroadcast        | source node    | (reception<<8)|scheme | reachable  | —                 |
/// | kTx               | transmitter    | —                   | hop          | the Rx that fed it|
/// | kRx               | receiver       | transmitter         | hop          | the Tx heard      |
/// | kDuplicateRx      | receiver       | transmitter         | hop          | the Tx heard      |
/// | kDesignate        | designee       | transmitter         | —            | the Tx naming it  |
/// | kSuppress         | suppressed node| —                   | —            | the node's Rx     |
/// | kStep             | moved count    | link-changed count  | step index   | —                 |
/// | kCacheUpdate      | dirty count    | —                   | update index | the step's kStep  |
/// | kWatchdogCheck    | sampled count  | mismatch count      | step index   | last kCacheUpdate |
/// | kWatchdogMismatch | relay id       | —                   | —            | the kWatchdogCheck|
/// | kShardExchange    | routed halo updates | migrations     | step index   | —                 |
/// | kHeartbeat        | frame sequence | —                   | step index   | —                 |
/// | kCrashDump        | —              | —                   | frames written | —               |
///
/// kShardExchange is the sharded engine's step-level event (one per
/// barrier; shard region graphs emit no per-shard kStep), so a sharded
/// cache update parents to it exactly as a single-engine kCacheUpdate
/// parents to its kStep.  kHeartbeat/kCrashDump are the blackbox flight
/// recorder's own marks (obs/blackbox.hpp): one per recorded heartbeat
/// frame, and one per explicit dump_now() — signal-context dumps cannot
/// emit events and leave only the report file.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/telemetry.hpp"  // MLDCS_ENABLE_TELEMETRY / kTelemetryEnabled

namespace mldcs::obs {

/// "No event" sentinel for ids and parent links.
inline constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
/// "No node" sentinel for the a/b fields.
inline constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

/// Default event capacity: enough for a long mobility run or a handful of
/// dense broadcasts (~32 MiB at 32 B/event) without unbounded growth.
inline constexpr std::size_t kDefaultEventCapacity = std::size_t{1} << 20;

enum class EventType : std::uint8_t {
  kBroadcast,
  kTx,
  kRx,
  kDuplicateRx,
  kDesignate,
  kSuppress,
  kStep,
  kCacheUpdate,
  kWatchdogCheck,
  kWatchdogMismatch,
  kShardExchange,
  kHeartbeat,
  kCrashDump,
};

/// Stable short name used in the JSONL export ("tx", "rx", "dup_rx", ...).
[[nodiscard]] const char* event_type_name(EventType t) noexcept;

/// One recorded event.  Interpretation of a/b/value depends on type (table
/// above); parent is the id of the causal predecessor or kNoEvent.
struct Event {
  std::uint64_t id = kNoEvent;
  std::uint64_t parent = kNoEvent;
  std::uint64_t value = 0;
  std::uint32_t a = kNoNode;
  std::uint32_t b = kNoNode;
  EventType type = EventType::kBroadcast;
};

#if MLDCS_ENABLE_TELEMETRY

/// Arm collection with a hard cap on recorded events (ids past the cap are
/// dropped and counted).  Restarting keeps already-buffered events and the
/// id sequence; pass through events_clear() for a fresh run.
void events_start(std::size_t capacity = kDefaultEventCapacity);

/// Stop collecting.  Buffered events stay until events_clear / a flush.
void events_stop();

[[nodiscard]] bool events_enabled() noexcept;

/// Record one event and return its id — or kNoEvent when collection is
/// stopped (one relaxed load) or the capacity is exhausted.
std::uint64_t emit_event(EventType type, std::uint32_t a, std::uint32_t b,
                         std::uint64_t parent, std::uint64_t value) noexcept;

/// Events dropped since the last clear because the capacity was exhausted.
[[nodiscard]] std::uint64_t events_dropped() noexcept;

/// Drop all buffered events and restart the id sequence from 0.
void events_clear();

/// Copy of every buffered event across all threads, sorted by id (== the
/// emission order).  Does not clear; feed this to obs/event_replay.hpp.
[[nodiscard]] std::vector<Event> events_snapshot();

/// Write the log as JSON Lines, schema `mldcs-events-v1`: a header object
/// {"schema":...,"enabled":...,"count":...,"dropped":...} followed by one
/// event object per line, in id order.  Does not clear the buffers.
void write_events_jsonl(std::ostream& os);

/// Same document restricted to the `tail` highest-id events (the header's
/// count reflects the emitted lines, so the output is a valid standalone
/// `mldcs-events-v1` document).  Serves introspection's `/events?tail=N`.
void write_events_jsonl_tail(std::ostream& os, std::size_t tail);

#else  // !MLDCS_ENABLE_TELEMETRY

inline void events_start(std::size_t = kDefaultEventCapacity) {}
inline void events_stop() {}
[[nodiscard]] inline bool events_enabled() noexcept { return false; }
inline std::uint64_t emit_event(EventType, std::uint32_t, std::uint32_t,
                                std::uint64_t, std::uint64_t) noexcept {
  return kNoEvent;
}
[[nodiscard]] inline std::uint64_t events_dropped() noexcept { return 0; }
inline void events_clear() {}
[[nodiscard]] inline std::vector<Event> events_snapshot() { return {}; }
void write_events_jsonl(std::ostream& os);  // valid header-only document
void write_events_jsonl_tail(std::ostream& os, std::size_t tail);

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace mldcs::obs
