#pragma once

/// \file profiler.hpp
/// In-process sampling profiler with step-phase attribution.
///
/// The rest of the obs stack says *what* happened (metrics, events,
/// blackbox history); this module says *where the time went* — from a
/// live run, without a restart, and without adding anything to the step
/// hot path while disarmed.  Arming installs one POSIX interval timer per
/// registered thread against that thread's CPU-time clock
/// (`pthread_getcpuclockid` + `timer_create` with `SIGEV_THREAD_ID`), so
/// SIGPROF fires in proportion to CPU actually burned: a thread parked in
/// a condition wait accumulates no samples and the profile is
/// load-immune by construction.
///
///  - **Handler discipline.**  The SIGPROF handler follows the blackbox
///    contract exactly: no malloc, no stdio, no locks — it reads the
///    ucontext PC and walks frame pointers (upward-only, stack-bounded)
///    into a preallocated per-thread ring of relaxed-atomic sample
///    slots.  The ring drops-when-full instead of overwriting, so the
///    drain side never reads a torn sample.
///  - **Phase words.**  A thread-local phase tag set by the RAII
///    `PhaseScope` (two relaxed stores; hand-audited hot-path-safe and
///    known to mldcs-analyze by name) is woven through the hot layers —
///    ShardedEngine step phases, halo routing, cache recompute, SIMD
///    kernel dispatch, pool idle — and captured with every sample, so a
///    profile splits by phase even when frame pointers are compiled out.
///  - **Folding.**  A drain thread sweeps the rings every ~50 ms and
///    folds stacks into collapsed-stack form ("phase;outer;...;leaf N",
///    flamegraph.pl / speedscope compatible; schema `mldcs-profile-v1`)
///    with dladdr symbolization and demangling at fold time, never in
///    the handler.  It also pre-serializes a bounded JSON profile line
///    into a double buffer so a blackbox crash dump can append the
///    profile using only async-signal-safe byte copies.
///
/// Surfaces: `/profile?seconds=N&format=folded|json` on the
/// IntrospectServer, `--profile PATH` on perf_suite and
/// mobility_maintenance, `profiler_crash_snapshot()` inside blackbox
/// dumps, and tools/obslib.py `load_profile` (docs/OBSERVABILITY.md,
/// "Sampling profiler").
///
/// With MLDCS_ENABLE_TELEMETRY=OFF every function is an inline no-op
/// stub (arm fails, reports are empty, PhaseScope compiles away); the
/// folded/JSON writers stay real so unconditional callers (the
/// introspection server) still emit valid empty documents.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"  // MLDCS_ENABLE_TELEMETRY / kTelemetryEnabled

#if MLDCS_ENABLE_TELEMETRY
#include <atomic>
#endif

namespace mldcs::obs {

/// Phase vocabulary for sample attribution.  kNone is the untagged
/// default (startup, bench harness code, anything outside the woven
/// scopes); every sample carries exactly one phase, so per-phase counts
/// always sum to the total.
enum class Phase : std::uint32_t {
  kNone = 0,           ///< outside any woven scope
  kStepOwnership = 1,  ///< ShardedEngine step phase 1: ownership commit
  kShardStep = 2,      ///< step phase 2: per-shard graph apply + hook
  kHaloExchange = 3,   ///< phase 2 sub-span: routing movers into halos
  kCacheRecompute = 4, ///< ShardCache / SkylineCache dirty-relay recompute
  kStepCommit = 5,     ///< step phase 3: position commit + telemetry
  kSimdKernel = 6,     ///< compute_skyline_arcs (SIMD kernel dispatch)
  kPoolIdle = 7,       ///< ThreadPool worker parked on the task queue
};

inline constexpr std::size_t kPhaseCount = 8;

/// Stable token for a phase ("shard_step", ...); used as the folded-stack
/// root frame and as the JSON phase key.  Async-signal-safe (returns
/// string literals).
[[nodiscard]] constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kNone:
      return "none";
    case Phase::kStepOwnership:
      return "step_ownership";
    case Phase::kShardStep:
      return "shard_step";
    case Phase::kHaloExchange:
      return "halo_exchange";
    case Phase::kCacheRecompute:
      return "cache_recompute";
    case Phase::kStepCommit:
      return "step_commit";
    case Phase::kSimdKernel:
      return "simd_kernel";
    case Phase::kPoolIdle:
      return "pool_idle";
  }
  return "none";
}

/// Profiler arming parameters.
struct ProfilerConfig {
  std::uint32_t hz = 97;  ///< sampling rate per thread, clamped to 1..1000
};

/// One folded profile, as drained so far.  Plain data, defined for both
/// telemetry branches (the RegistrySnapshot pattern) so tools and tests
/// compile unconditionally.
struct ProfileReport {
  std::uint32_t hz = 0;            ///< armed sampling rate
  std::uint64_t total_samples = 0; ///< samples folded (== sum of phases)
  std::uint64_t dropped = 0;       ///< samples lost to full rings
  double duration_s = 0.0;         ///< armed wall time covered
  /// "phase;outer;...;leaf" -> sample count, descending by count.
  std::vector<std::pair<std::string, std::uint64_t>> folded;
  /// phase_name -> sample count, descending by count; only nonzero rows.
  std::vector<std::pair<std::string, std::uint64_t>> phases;
};

#if MLDCS_ENABLE_TELEMETRY

namespace detail {
/// The per-thread phase word.  Constant-initialized (no TLS init guard),
/// so the SIGPROF handler's read is a plain thread-local atomic load.
extern thread_local std::atomic<std::uint32_t> t_phase;
}  // namespace detail

/// RAII phase tag: two relaxed thread-local stores, nothing else — safe
/// inside MLDCS_HOT_PATH / MLDCS_NO_LOCK code by hand audit (and known to
/// mldcs-analyze's lock-discipline rule by name).  Scopes nest; the
/// destructor restores the enclosing phase.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) noexcept
      : prev_(detail::t_phase.load(std::memory_order_relaxed)) {
    detail::t_phase.store(static_cast<std::uint32_t>(p),
                          std::memory_order_relaxed);
  }
  ~PhaseScope() { detail::t_phase.store(prev_, std::memory_order_relaxed); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  std::uint32_t prev_;
};

/// The calling thread's current phase tag (tests, diagnostics).
[[nodiscard]] inline Phase profiler_current_phase() noexcept {
  return static_cast<Phase>(
      detail::t_phase.load(std::memory_order_relaxed));
}

/// Arm the profiler process-wide: installs the SIGPROF handler, starts
/// one CPU-clock interval timer per registered thread (plus the caller's,
/// which is registered implicitly), and launches the drain thread.
/// Returns false when already armed.  Rearming resets the folded state.
bool profiler_arm(const ProfilerConfig& config);

/// Delete the timers, stop sampling, and join the drain thread (which
/// takes a final sweep, so the report is complete on return).  The
/// SIGPROF handler stays installed — it is a benign no-op while disarmed,
/// and restoring the default disposition would race a late timer signal
/// into process death.
void profiler_disarm();

[[nodiscard]] bool profiler_armed() noexcept;

/// Register the calling thread for sampling.  Idempotent and cheap after
/// the first call; a no-op beyond the fixed thread capacity (64).  Called
/// from ThreadPool workers and ShardedEngine construction; call it from
/// any additional thread that should appear in profiles.  While armed,
/// registration starts the thread's timer immediately.
void profiler_register_thread();

/// The profile folded so far (armed or not).  Thread-safe; between drain
/// sweeps the newest <=50 ms of samples are still in the rings.
[[nodiscard]] ProfileReport profiler_report();

/// Capture one bounded window.  Disarmed: arms with `config`, sleeps
/// `seconds` (clamped to 0.05..30), disarms, returns the full report.
/// Already armed: leaves the run's profiler alone and returns the
/// *difference* over the window, so an on-demand `/profile` probe against
/// a `--profile` run yields a clean windowed view.
[[nodiscard]] ProfileReport profiler_capture_window(
    double seconds, const ProfilerConfig& config);

/// Copy the drain thread's pre-serialized `{"kind":"profile",...}\n` line
/// (one bounded JSON object: hz, totals, phase counts, top stacks) into
/// `dst`.  Async-signal-safe — byte copies and atomic loads only — and
/// torn-flip protected; returns bytes written, 0 when nothing has been
/// serialized yet or `cap` is too small.  The blackbox dumper appends
/// this between the event tail and the end trailer.
std::size_t profiler_crash_snapshot(char* dst, std::size_t cap) noexcept;

#else  // !MLDCS_ENABLE_TELEMETRY

class PhaseScope {
 public:
  explicit PhaseScope(Phase) noexcept {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

[[nodiscard]] inline Phase profiler_current_phase() noexcept {
  return Phase::kNone;
}
inline bool profiler_arm(const ProfilerConfig&) { return false; }
inline void profiler_disarm() {}
[[nodiscard]] inline bool profiler_armed() noexcept { return false; }
inline void profiler_register_thread() {}
[[nodiscard]] inline ProfileReport profiler_report() { return {}; }
[[nodiscard]] inline ProfileReport profiler_capture_window(
    double, const ProfilerConfig&) {
  return {};
}
inline std::size_t profiler_crash_snapshot(char*, std::size_t) noexcept {
  return 0;
}

#endif  // MLDCS_ENABLE_TELEMETRY

/// Write `r` as collapsed-stack text: one "stack count" line per folded
/// stack, flamegraph.pl / speedscope compatible.  Metadata (hz, dropped,
/// phases) is not representable here — use the JSON form for that.
/// Real in both telemetry branches: an OFF build writes an empty (valid)
/// document.
void write_profile_folded(std::ostream& os, const ProfileReport& r);

/// Write `r` as one `mldcs-profile-v1` JSON document:
///   {"schema":"mldcs-profile-v1","hz":..,"total_samples":..,
///    "dropped":..,"duration_s":..,"phases":{..},"folded":{..}}
/// Phase counts sum to total_samples by construction.
void write_profile_json(std::ostream& os, const ProfileReport& r);

}  // namespace mldcs::obs
