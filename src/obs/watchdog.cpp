#include "obs/watchdog.hpp"

#include <algorithm>

#include "obs/blackbox.hpp"
#include "obs/telemetry.hpp"

namespace mldcs::obs {

namespace {

/// Watchdog telemetry (docs/OBSERVABILITY.md): audit volume and verdicts.
/// A nonzero `watchdog.mismatches` in a snapshot is the alarm.
struct WatchdogTelemetry {
  Counter& checks = registry().counter("watchdog.checks");
  Counter& sampled = registry().counter("watchdog.sampled_relays");
  Counter& mismatches = registry().counter("watchdog.mismatches");
  Gauge& last_mismatch_step =
      registry().gauge("watchdog.last_mismatch_step");
};

WatchdogTelemetry& watchdog_telemetry() {
  static WatchdogTelemetry t;
  return t;
}

}  // namespace

ConsistencyWatchdog::ConsistencyWatchdog(std::size_t n_relays,
                                         ReferenceFn reference, CachedFn cached,
                                         Config config)
    : n_relays_(n_relays),
      reference_(std::move(reference)),
      cached_(std::move(cached)),
      config_(config),
      rng_state_(config.seed != 0 ? config.seed : 0x9E3779B97F4A7C15ull) {
  if (config_.period == 0) config_.period = 1;
}

std::uint32_t ConsistencyWatchdog::next_sample() noexcept {
  // xorshift64*: deterministic, seedable, no <random> on the audit path.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  const std::uint64_t x = rng_state_ * 0x2545F4914F6CDD1Dull;
  return static_cast<std::uint32_t>(x % n_relays_);
}

bool ConsistencyWatchdog::on_step(std::uint64_t parent_event) {
  ++steps_;
  if (steps_ % config_.period != 0) return true;
  return check_now(parent_event);
}

bool ConsistencyWatchdog::check_now(std::uint64_t parent_event) {
  if (n_relays_ == 0) return true;
  ++checks_;
  last_mismatched_.clear();

  // Sample up to `samples` *distinct* relays (without replacement, via
  // rejection against this check's scratch; samples is clamped to n).
  const std::size_t want =
      std::min<std::size_t>(config_.samples, n_relays_);
  sample_scratch_.clear();
  while (sample_scratch_.size() < want) {
    const std::uint32_t u = next_sample();
    if (std::find(sample_scratch_.begin(), sample_scratch_.end(), u) !=
        sample_scratch_.end()) {
      continue;
    }
    sample_scratch_.push_back(u);
  }

  for (const std::uint32_t u : sample_scratch_) {
    const std::vector<std::uint32_t> want_set = reference_(u);
    const std::vector<std::uint32_t> got_set = cached_(u);
    if (want_set != got_set) last_mismatched_.push_back(u);
  }
  sampled_ += sample_scratch_.size();
  mismatches_ += last_mismatched_.size();
  if (!last_mismatched_.empty()) last_mismatch_step_ = steps_;

  WatchdogTelemetry& t = watchdog_telemetry();
  t.checks.add();
  t.sampled.add(sample_scratch_.size());
  t.mismatches.add(last_mismatched_.size());
  if (!last_mismatched_.empty()) {
    t.last_mismatch_step.set(static_cast<std::int64_t>(steps_));
  }

  const std::uint64_t check_event = emit_event(
      EventType::kWatchdogCheck, static_cast<std::uint32_t>(want),
      static_cast<std::uint32_t>(last_mismatched_.size()), parent_event,
      steps_);
  for (const std::uint32_t u : last_mismatched_) {
    emit_event(EventType::kWatchdogMismatch, u, kNoNode, check_event, 0);
  }
  // A consistency alarm is exactly what the flight recorder exists for:
  // preserve the heartbeat history leading up to it before anyone reacts.
  if (!last_mismatched_.empty() && blackbox_armed()) {
    blackbox_dump_now("watchdog");
  }
  return last_mismatched_.empty();
}

}  // namespace mldcs::obs
