#pragma once

/// \file export.hpp
/// Telemetry snapshot exporters: JSON (schema `mldcs-telemetry-v1`, the
/// format tools/summarize_trace.py --snapshot validates) and Prometheus
/// text exposition (for scraping a long-running process).
///
/// Both serialize a RegistrySnapshot, so they are consistent per metric
/// and cost nothing on the update path.  With MLDCS_ENABLE_TELEMETRY=OFF
/// they emit valid documents with empty metric sections and
/// `"enabled": false`, so pipelines stay unconditional.

#include <iosfwd>

#include "obs/telemetry.hpp"

namespace mldcs::obs {

/// One JSON object:
///   {"schema":"mldcs-telemetry-v1","enabled":true,
///    "counters":{name:value,...},"gauges":{name:value,...},
///    "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,"mean":..,
///                        "buckets":[{"lo":..,"hi":..,"count":..},...]},..}}
void write_snapshot_json(std::ostream& os, const Registry& r);

/// Prometheus text exposition format, one family per metric, names
/// prefixed `mldcs_` with non-alphanumerics mapped to '_'.  Histograms
/// export cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
void write_prometheus_text(std::ostream& os, const Registry& r);

}  // namespace mldcs::obs
