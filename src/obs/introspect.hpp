#pragma once

/// \file introspect.hpp
/// Live introspection server: a tiny single-threaded HTTP/1.0 responder
/// for polling a running engine — the operational front door the ROADMAP
/// item-4 query daemon will extend.
///
/// | endpoint         | body                                               |
/// |------------------|----------------------------------------------------|
/// | `/metrics`       | Prometheus text exposition (obs/export.hpp)        |
/// | `/snapshot.json` | `mldcs-telemetry-v1` registry snapshot             |
/// | `/events?tail=N` | `mldcs-events-v1` tail (default 256 events)        |
/// | `/shards`        | `mldcs-shards-v1` per-shard load/barrier table     |
/// | `/profile`       | `mldcs-profile-v1` sampled window (`?seconds=N`,   |
/// |                  | 1..30, `&format=folded\|json`; default folded)     |
/// | `/healthz`       | `200 ok` / `503 unhealthy` from the health hook    |
/// | `/`              | plain-text endpoint index                          |
///
/// Design constraints, in order:
///  - **Never block the simulation.**  The server owns one background
///    thread; requests read the same lock-light surfaces as offline
///    exporters (registry snapshot under the registration mutex, relaxed
///    shard-stat atomics, event buffers).  No request path touches engine
///    step state, and the step hot path acquires nothing for the server's
///    benefit — hot_path_guard stays green with a poller attached.  The
///    one deliberate carve-out is `/profile`: the *server thread* sleeps
///    for the sampled window (bounded at 30 s) while the profiler's
///    SIGPROF timers do the collection; concurrent requests queue behind
///    it (single-threaded responder), the simulation does not.
///  - **Boring on the wire.**  HTTP/1.0, `Connection: close`, one request
///    per connection, 200ms poll ticks so stop() returns promptly.  This
///    is an operational loopback port for curl/Prometheus/mldcs_top.py,
///    not a web server; it binds 127.0.0.1 by default.
///  - **Telemetry-off still answers.**  The class has no stub branch:
///    with MLDCS_ENABLE_TELEMETRY=OFF the endpoints serve the exporters'
///    valid empty documents, so probes and dashboards stay unconditional.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/telemetry.hpp"

namespace mldcs::obs {

class IntrospectServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        ///< 0 = ephemeral; read back via port()
    Registry* registry = nullptr;  ///< nullptr = the process-wide registry
  };

  /// Verdict hook behind `/healthz`: return true for healthy; `detail` is
  /// sent as the body ("ok"/"unhealthy" when left empty).  Called on the
  /// server thread — must be thread-safe and non-blocking.
  using HealthFn = std::function<bool(std::string& detail)>;

  IntrospectServer() = default;
  ~IntrospectServer();
  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// Bind, listen, and start the responder thread.  Returns false (with
  /// `*error` set when non-null) on bind/listen failure or double start.
  bool start(const Options& options, std::string* error = nullptr);

  /// Stop the responder thread and close the socket.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (resolves ephemeral binds); 0 when not running.
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }
  /// Requests served since start(); for tests and idle-shutdown logic.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Install/replace the `/healthz` verdict hook (pass nullptr to revert
  /// to always-healthy).  Safe to call while running.
  void set_health(HealthFn fn);

 private:
  void serve();
  void handle_connection(int client_fd);

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  Registry* registry_ = nullptr;

  std::mutex health_mu_;
  HealthFn health_;
};

}  // namespace mldcs::obs
