#include "obs/telemetry.hpp"

#if MLDCS_ENABLE_TELEMETRY

#include <algorithm>
#include <deque>
#include <mutex>

namespace mldcs::obs {

/// Metric storage: deques give stable addresses under growth, the mutex
/// guards only name lookup/insertion (never the metric updates themselves).
struct Registry::Impl {
  mutable std::mutex mu;
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Gauge>> gauges;
  std::deque<std::pair<std::string, Histogram>> histograms;

  template <typename Deque>
  auto& find_or_create(Deque& metrics, std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu);
    for (auto& [n, m] : metrics) {
      if (n == name) return m;
    }
    metrics.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name), std::forward_as_tuple());
    return metrics.back().second;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  return impl_->find_or_create(impl_->counters, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return impl_->find_or_create(impl_->gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return impl_->find_or_create(impl_->histograms, name);
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot s;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    s.counters.reserve(impl_->counters.size());
    for (const auto& [n, m] : impl_->counters) s.counters.emplace_back(n, m.value());
    s.gauges.reserve(impl_->gauges.size());
    for (const auto& [n, m] : impl_->gauges) s.gauges.emplace_back(n, m.value());
    s.histograms.reserve(impl_->histograms.size());
    for (const auto& [n, m] : impl_->histograms) {
      s.histograms.emplace_back(n, m.snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.gauges.begin(), s.gauges.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  return s;
}

void Registry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [n, m] : impl_->counters) m.reset();
  for (auto& [n, m] : impl_->gauges) m.reset();
  for (auto& [n, m] : impl_->histograms) m.reset();
}

Registry& registry() {
  // Leaked on purpose: instrumentation points hold cached references and
  // worker threads may outlive any particular static-destruction order.
  static Registry* global = new Registry;
  return *global;
}

}  // namespace mldcs::obs

#else  // !MLDCS_ENABLE_TELEMETRY

namespace mldcs::obs {

Registry& registry() {
  static Registry stub;
  return stub;
}

}  // namespace mldcs::obs

#endif  // MLDCS_ENABLE_TELEMETRY
