#include "obs/event_log.hpp"

#include <ostream>

#include "core/annotations.hpp"

namespace mldcs::obs {

const char* event_type_name(EventType t) noexcept {
  switch (t) {
    case EventType::kBroadcast:
      return "broadcast";
    case EventType::kTx:
      return "tx";
    case EventType::kRx:
      return "rx";
    case EventType::kDuplicateRx:
      return "dup_rx";
    case EventType::kDesignate:
      return "designate";
    case EventType::kSuppress:
      return "suppress";
    case EventType::kStep:
      return "step";
    case EventType::kCacheUpdate:
      return "cache_update";
    case EventType::kWatchdogCheck:
      return "watchdog_check";
    case EventType::kWatchdogMismatch:
      return "watchdog_mismatch";
    case EventType::kShardExchange:
      return "shard_exchange";
    case EventType::kHeartbeat:
      return "heartbeat";
    case EventType::kCrashDump:
      return "crash_dump";
  }
  return "unknown";
}

}  // namespace mldcs::obs

#if MLDCS_ENABLE_TELEMETRY

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

namespace mldcs::obs {

namespace {

/// One buffer per thread; the mutex serializes the owning thread's appends
/// against a concurrent flush (same shape as the trace buffers).
struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
};

struct EventState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next_id{0};
  std::atomic<std::uint64_t> capacity{kDefaultEventCapacity};
  std::atomic<std::uint64_t> dropped{0};
  std::mutex mu;  ///< guards `buffers` (registration and flush iteration)
  std::vector<std::shared_ptr<EventBuffer>> buffers;
};

EventState& state() {
  // Leaked: worker threads may emit during static teardown.
  static EventState* s = new EventState;
  return *s;
}

EventBuffer& local_buffer() {
  thread_local std::shared_ptr<EventBuffer> tl = [] {
    auto buf = std::make_shared<EventBuffer>();
    EventState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(buf);  // registry keeps events past thread exit
    return buf;
  }();
  return *tl;
}

void write_event_line(std::ostream& os, const Event& e) {
  os << "{\"id\":" << e.id << ",\"t\":\"" << event_type_name(e.type) << '"';
  if (e.a != kNoNode) os << ",\"a\":" << e.a;
  if (e.b != kNoNode) os << ",\"b\":" << e.b;
  if (e.parent != kNoEvent) os << ",\"parent\":" << e.parent;
  os << ",\"v\":" << e.value << "}\n";
}

}  // namespace

void events_start(std::size_t capacity) {
  EventState& s = state();
  s.capacity.store(capacity, std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_relaxed);
}

void events_stop() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool events_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

// Alloc-exempt: the disarmed emit is one relaxed load; the armed path
// buffers into per-thread storage (bounded by events_start's capacity),
// and benches measure the skyline path events-disarmed at 0 allocs/op.
MLDCS_ALLOC_OK std::uint64_t emit_event(EventType type, std::uint32_t a,
                                        std::uint32_t b, std::uint64_t parent,
                                        std::uint64_t value) noexcept {
  EventState& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return kNoEvent;
  const std::uint64_t id = s.next_id.fetch_add(1, std::memory_order_relaxed);
  if (id >= s.capacity.load(std::memory_order_relaxed)) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return kNoEvent;
  }
  EventBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({id, parent, value, a, b, type});
  return id;
}

std::uint64_t events_dropped() noexcept {
  return state().dropped.load(std::memory_order_relaxed);
}

void events_clear() {
  EventState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  s.next_id.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
}

std::vector<Event> events_snapshot() {
  EventState& s = state();
  std::vector<Event> out;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.buffers) {
      const std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.id < y.id; });
  return out;
}

void write_events_jsonl(std::ostream& os) {
  const std::vector<Event> events = events_snapshot();
  os << "{\"schema\":\"mldcs-events-v1\",\"enabled\":true,\"count\":"
     << events.size() << ",\"dropped\":" << events_dropped() << "}\n";
  for (const Event& e : events) write_event_line(os, e);
}

void write_events_jsonl_tail(std::ostream& os, std::size_t tail) {
  const std::vector<Event> events = events_snapshot();
  const std::size_t n = std::min(tail, events.size());
  os << "{\"schema\":\"mldcs-events-v1\",\"enabled\":"
     << (events_enabled() ? "true" : "false") << ",\"count\":" << n
     << ",\"dropped\":" << events_dropped() << "}\n";
  for (std::size_t i = events.size() - n; i < events.size(); ++i) {
    write_event_line(os, events[i]);
  }
}

}  // namespace mldcs::obs

#else  // !MLDCS_ENABLE_TELEMETRY

namespace mldcs::obs {

void write_events_jsonl(std::ostream& os) {
  os << "{\"schema\":\"mldcs-events-v1\",\"enabled\":false,\"count\":0,"
        "\"dropped\":0}\n";
}

void write_events_jsonl_tail(std::ostream& os, std::size_t) {
  write_events_jsonl(os);
}

}  // namespace mldcs::obs

#endif  // MLDCS_ENABLE_TELEMETRY
