#include "obs/event_replay.hpp"

#include <algorithm>
#include <sstream>

namespace mldcs::obs {

namespace {

/// Grow `r.fates` so `node` is addressable.
NodeFate& fate_of(ReplayedBroadcast& r, std::uint32_t node) {
  if (node >= r.fates.size()) r.fates.resize(node + 1);
  return r.fates[node];
}

}  // namespace

std::vector<ReplayedBroadcast> replay_broadcasts(
    std::span<const Event> events) {
  std::vector<ReplayedBroadcast> out;
  ReplayedBroadcast* cur = nullptr;
  for (const Event& e : events) {
    if (e.type == EventType::kBroadcast) {
      cur = &out.emplace_back();
      cur->source = e.a;
      cur->scheme_tag = e.b;
      cur->begin_event = e.id;
      cur->reachable = e.value;
      cur->delivered = 1;  // the source holds the message by definition
      NodeFate& src = fate_of(*cur, e.a);
      src.received = true;
      src.designated = true;  // the source always relays
      continue;
    }
    if (cur == nullptr) continue;  // non-broadcast traffic before any marker
    switch (e.type) {
      case EventType::kTx: {
        ++cur->transmissions;
        fate_of(*cur, e.a).transmitted = true;
        break;
      }
      case EventType::kRx: {
        ++cur->delivered;
        cur->max_hops = std::max(cur->max_hops, e.value);
        NodeFate& f = fate_of(*cur, e.a);
        f.received = true;
        f.delivered_by = e.b;
        f.hop = e.value;
        f.rx_event = e.id;
        break;
      }
      case EventType::kDuplicateRx: {
        ++cur->redundant_receptions;
        ++fate_of(*cur, e.a).duplicates_heard;
        if (e.b != kNoNode) {
          if (e.b >= cur->dup_caused.size()) cur->dup_caused.resize(e.b + 1);
          ++cur->dup_caused[e.b];
        }
        break;
      }
      case EventType::kDesignate: {
        NodeFate& f = fate_of(*cur, e.a);
        f.designated = true;
        f.designated_by = e.b;
        break;
      }
      case EventType::kSuppress: {
        fate_of(*cur, e.a).suppressed = true;
        break;
      }
      default:
        break;  // mobility/watchdog events interleave freely; not ours
    }
  }
  return out;
}

NodeFate node_fate(const ReplayedBroadcast& r, std::uint32_t node) {
  return r.fate(node);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> redundancy_by_transmitter(
    const ReplayedBroadcast& r) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::uint32_t u = 0; u < r.dup_caused.size(); ++u) {
    if (r.dup_caused[u] != 0) out.emplace_back(u, r.dup_caused[u]);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second != y.second ? x.second > y.second : x.first < y.first;
  });
  return out;
}

std::string explain_missed(const ReplayedBroadcast& r, std::uint32_t node,
                           std::span<const std::uint32_t> neighbors) {
  std::ostringstream os;
  const NodeFate f = r.fate(node);
  if (node == r.source) {
    os << "node " << node << " is the source";
    return os.str();
  }
  if (f.received) {
    os << "node " << node << " received at hop " << f.hop << " from node "
       << f.delivered_by;
    if (f.transmitted) {
      os << " and relayed";
      if (f.designated_by != kNoNode) {
        os << " (designated by node " << f.designated_by << ")";
      }
    } else if (f.suppressed) {
      os << " and was suppressed (no transmission ever designated it)";
    }
    if (f.duplicates_heard > 0) {
      os << "; heard " << f.duplicates_heard << " redundant cop"
         << (f.duplicates_heard == 1 ? "y" : "ies");
    }
    return os.str();
  }

  os << "node " << node << " never received the message: ";
  if (neighbors.empty()) {
    os << "it has no neighbors (isolated)";
    return os.str();
  }
  std::size_t n_received = 0;
  std::size_t n_transmitted = 0;
  std::size_t n_suppressed = 0;
  std::vector<std::uint32_t> suppressed_nb;
  std::vector<std::uint32_t> transmitted_nb;
  for (const std::uint32_t v : neighbors) {
    const NodeFate nf = r.fate(v);
    if (nf.received) ++n_received;
    if (nf.transmitted) {
      ++n_transmitted;
      transmitted_nb.push_back(v);
    }
    if (nf.suppressed) {
      ++n_suppressed;
      suppressed_nb.push_back(v);
    }
  }
  if (n_received == 0) {
    os << "none of its " << neighbors.size()
       << " neighbors received it either (the delivery tree stalled "
          "upstream)";
  } else if (n_transmitted > 0) {
    os << n_transmitted << " neighbor(s) transmitted (e.g. node "
       << transmitted_nb.front()
       << ") but their transmissions did not reach it (link/coverage "
          "asymmetry: the bidirectional-link graph and physical coverage "
          "disagree here)";
  } else if (n_suppressed > 0) {
    os << n_received << " neighbor(s) received it, but every one was "
       << "suppressed — none was ever designated (e.g. node "
       << suppressed_nb.front()
       << "); the forwarding sets left this node uncovered";
  } else {
    os << n_received << " neighbor(s) received it but none has transmitted "
       << "or been suppressed (log truncated mid-broadcast?)";
  }
  return os.str();
}

}  // namespace mldcs::obs
