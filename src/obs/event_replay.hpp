#pragma once

/// \file event_replay.hpp
/// Derivation of broadcast outcomes purely from flight-recorder events.
///
/// `replay_broadcasts` folds an event stream (obs/event_log.hpp) back into
/// per-broadcast outcome counters and the full delivery tree — with no
/// access to the graph or the simulator.  The counters are differential-
/// tested byte-equal against `bcast::BroadcastResult` (the simulator's own
/// bookkeeping), which makes the event stream a *sufficient* record: any
/// question the simulator can answer about a run, the log can answer after
/// the fact.
///
/// On top of the replay sit the "why" queries the storm/forensics analyses
/// need:
///  - `node_fate` — everything the log knows about one node (received?
///    via whom, at what hop? designated by whom? suppressed? duplicates
///    heard?),
///  - `explain_missed` — a human-readable account of why a node never got
///    the message, using the caller-supplied neighbor list to distinguish
///    "all neighbors missed too" from "neighbors heard it but every one of
///    them was suppressed",
///  - `redundancy_by_transmitter` — which transmissions burned the
///    redundant-airtime budget (the Ni et al. storm metric), attributed to
///    the transmitter that caused each duplicate reception.
///
/// This module is pure data processing: it compiles identically with
/// telemetry on or off (with telemetry off the snapshot it would consume is
/// simply empty).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/event_log.hpp"

namespace mldcs::obs {

/// What the log records about one node within one broadcast.
struct NodeFate {
  bool received = false;
  bool transmitted = false;
  bool designated = false;
  bool suppressed = false;  ///< received but never designated by anyone
  std::uint32_t delivered_by = kNoNode;  ///< transmitter of the first copy
  std::uint32_t designated_by = kNoNode; ///< transmitter that designated it
  std::uint64_t hop = 0;                 ///< hop of the first reception
  std::uint64_t duplicates_heard = 0;    ///< already-held copies received
  std::uint64_t rx_event = kNoEvent;     ///< id of the first-reception event
};

/// One broadcast reconstructed from its event segment.
struct ReplayedBroadcast {
  std::uint32_t source = kNoNode;
  /// Raw tag from the kBroadcast event: (reception_model << 8) | scheme.
  std::uint32_t scheme_tag = 0;
  std::uint64_t begin_event = kNoEvent;  ///< id of the kBroadcast event

  // Outcome counters, field-for-field the simulator's BroadcastResult
  // (reachable comes from the kBroadcast event; the rest are folds over
  // the segment's events).
  std::uint64_t transmissions = 0;
  std::uint64_t delivered = 0;
  std::uint64_t max_hops = 0;
  std::uint64_t reachable = 0;
  std::uint64_t redundant_receptions = 0;

  /// Per-node fates, indexed by node id (sized to the largest id seen; a
  /// node the log never mentions reads as "not received").
  std::vector<NodeFate> fates;

  /// Duplicate receptions caused per *transmitter*, indexed by node id
  /// (the redundancy attribution; see redundancy_by_transmitter).
  std::vector<std::uint64_t> dup_caused;

  [[nodiscard]] NodeFate fate(std::uint32_t node) const {
    return node < fates.size() ? fates[node] : NodeFate{};
  }
};

/// Reconstruct every broadcast in the stream (events between consecutive
/// kBroadcast markers form one segment; non-broadcast event types are
/// ignored).  `events` must be in id order, as events_snapshot returns.
[[nodiscard]] std::vector<ReplayedBroadcast> replay_broadcasts(
    std::span<const Event> events);

/// Fate of `node` in `r` (bounds-safe convenience wrapper).
[[nodiscard]] NodeFate node_fate(const ReplayedBroadcast& r,
                                 std::uint32_t node);

/// Per-transmitter count of duplicate receptions it caused, descending by
/// count (ties by node id).  The counts sum to r.redundant_receptions.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
redundancy_by_transmitter(const ReplayedBroadcast& r);

/// Human-readable account of why `node` did not receive the message in
/// `r`, examining the fates of its `neighbors` (pass the node's 1-hop
/// neighbor ids from the graph).  Also meaningful for delivered nodes
/// (reports who delivered/designated them).
[[nodiscard]] std::string explain_missed(
    const ReplayedBroadcast& r, std::uint32_t node,
    std::span<const std::uint32_t> neighbors);

}  // namespace mldcs::obs
