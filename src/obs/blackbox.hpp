#pragma once

/// \file blackbox.hpp
/// BlackBox flight recorder: always-on in-memory heartbeat ring with an
/// async-signal-safe post-mortem dumper.
///
/// The rest of the obs stack is opt-in and post-hoc — traces, events, and
/// snapshots only surface if the process exits cleanly and the run passed
/// the right flags.  A long-running broadcast service needs the opposite
/// guarantee: when the process dies (SIGSEGV mid-step, a watchdog
/// mismatch, an operator's SIGABRT), the last few seconds of telemetry
/// must already be on disk-writable form.  The blackbox provides that:
///
///  - **Heartbeat ring.**  `blackbox_heartbeat(step)` serializes one
///    frame — registry counter values *and deltas since the previous
///    frame*, gauge levels, histogram count/sum pairs, the per-shard
///    load/barrier-wait table (obs/shard_stats.hpp), and the event-log
///    tail cursor — into a fixed-size slot of a preallocated ring.  Each
///    slot carries a seqlock-style sequence word (odd while being
///    written, `2*ticket+2` when published), so a dump taken at any
///    instant can detect and skip torn frames without ever locking.
///    Heartbeats are driven from the caller's cadence (one per mobility
///    period, one per bench section); they allocate (registry snapshot)
///    and are explicitly NOT part of the step hot path.
///  - **Crash dumper.**  Arming installs SIGSEGV/SIGABRT/SIGBUS handlers
///    (saving and re-raising into the previous disposition) that write a
///    `mldcs-blackbox-v1` report using only async-signal-safe calls:
///    open(2)/write(2) of pre-serialized bytes, integer formatting into
///    stack buffers, atomic loads.  No malloc, no stdio, no locks.
///    `blackbox_dump_now(reason)` writes the same report from normal
///    context — the cache watchdog calls it on a consistency mismatch,
///    so the telemetry history *leading up to* the inconsistency is
///    preserved, not just the verdict.
///
/// Report format (`mldcs-blackbox-v1`, JSON Lines):
///
///   {"kind":"header","schema":"mldcs-blackbox-v1",...,"reason":"SIGABRT"}
///   {"kind":"heartbeat","seq":..,"step":..,"counters":{..},...}   (oldest)
///   ...                                                           (newest)
///   {"kind":"event","id":..,"t":"..",...}                    (last-N tail)
///   ...
///   {"kind":"profile","schema":"mldcs-profile-v1",...}       (if armed)
///   {"kind":"end","frames":H,"events":E}
///
/// The event tail is captured at heartbeat time into a double buffer (the
/// Event record carries no thread id, so the tail is the global last-N by
/// id); the end line's counts let tools/obslib.py detect truncated dumps.
/// The profile line appears when the sampling profiler (obs/profiler.hpp)
/// is or was armed: its drain thread pre-serializes phase counts and top
/// stacks into a double buffer the dumper copies byte-for-byte.
///
/// With MLDCS_ENABLE_TELEMETRY=OFF every function is an inline no-op stub
/// (arm fails, dumps refuse) and call sites compile away.

#include <cstddef>
#include <cstdint>

#include "obs/telemetry.hpp"  // MLDCS_ENABLE_TELEMETRY / kTelemetryEnabled

namespace mldcs::obs {

/// Blackbox arming parameters.  `path` is copied at arm time and must be
/// plain ASCII (it is embedded verbatim in pre-serialized JSON).
struct BlackBoxConfig {
  const char* path = "blackbox.jsonl";  ///< report destination
  std::size_t frames = 64;              ///< heartbeat ring slots (1..256)
  std::size_t event_tail = 64;          ///< events kept per frame (1..256)
  bool install_signal_handlers = true;  ///< arm SIGSEGV/SIGABRT/SIGBUS
};

#if MLDCS_ENABLE_TELEMETRY

/// Arm the recorder process-wide.  Returns false (and stays disarmed) if
/// already armed, the path is unusable (a touch-open fails), or the path
/// does not fit the fixed internal buffer.  Rearming after
/// blackbox_disarm() resets the ring and the delta baseline.
bool blackbox_arm(const BlackBoxConfig& config);

/// Restore the saved signal dispositions and stop accepting heartbeats
/// and dumps.  The ring stays allocated for a later rearm.
void blackbox_disarm();

[[nodiscard]] bool blackbox_armed() noexcept;

/// Record one heartbeat frame tagged with the caller's `step` counter.
/// Serializes a registry snapshot + shard stats + event tail; safe from
/// any thread (frames are serialized under an internal mutex), a no-op
/// when disarmed.  Not async-signal-safe and not for the step hot path.
void blackbox_heartbeat(std::uint64_t step);

/// Write the report to the armed path from normal context (watchdog
/// alarms, operator hooks).  Returns false when disarmed or the file
/// cannot be opened; concurrent dumps are collapsed to one.
bool blackbox_dump_now(const char* reason) noexcept;

/// Heartbeats recorded since the last arm (frames overwritten in the
/// ring still count).  For tests and progress reporting.
[[nodiscard]] std::uint64_t blackbox_heartbeat_count() noexcept;

#else  // !MLDCS_ENABLE_TELEMETRY

inline bool blackbox_arm(const BlackBoxConfig&) { return false; }
inline void blackbox_disarm() {}
[[nodiscard]] inline bool blackbox_armed() noexcept { return false; }
inline void blackbox_heartbeat(std::uint64_t) {}
inline bool blackbox_dump_now(const char*) noexcept { return false; }
[[nodiscard]] inline std::uint64_t blackbox_heartbeat_count() noexcept {
  return 0;
}

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace mldcs::obs
