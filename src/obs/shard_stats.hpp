#pragma once

/// \file shard_stats.hpp
/// Process-wide per-shard load snapshot hook: the bridge between the
/// sharded engine (net/broadcast, which owns the numbers) and the
/// operational surfaces in this library (obs/introspect.hpp `/shards`,
/// obs/blackbox.hpp heartbeat frames) that want to read them without
/// knowing the engine's types.
///
/// obs sits below net/broadcast in the layering, so the dependency is
/// inverted callback-style (the same shape as obs/watchdog.hpp):
/// `net::ShardedEngine` installs a provider in its constructor and clears
/// it in its destructor; readers call `shard_stats()` and get whatever the
/// current provider publishes — an empty table when no sharded engine is
/// live.  The provider must be safe to call from a foreign thread at any
/// time: the engine satisfies this by publishing into per-shard relaxed
/// atomics at the end of each step (never by touching step-mutable state),
/// so a read costs a handful of relaxed loads and zero locks on the
/// engine's side.
///
/// Ownership is token-based (`owner`): tests and benches build many
/// engines, and a destructor must only deregister the provider it itself
/// installed, never a successor's.
///
/// This header is deliberately independent of MLDCS_ENABLE_TELEMETRY: the
/// numbers come from the engine, not the metric registry, so `/shards`
/// stays live even in a telemetry-off build.

#include <cstdint>
#include <functional>
#include <vector>

namespace mldcs::obs {

/// One shard's load summary, as of the engine's most recent step.
struct ShardStat {
  std::uint32_t shard = 0;
  std::uint64_t owned = 0;            ///< nodes owned (positioned in tile)
  std::uint64_t halo = 0;             ///< resident but owned elsewhere
  std::uint64_t incoming = 0;         ///< movers routed to it last step
  std::uint64_t dirty = 0;            ///< relays recomputed last step
  std::uint64_t step_ns = 0;          ///< parallel-phase duration last step
  std::uint64_t barrier_wait_ns = 0;  ///< idle time behind the slowest shard
};

/// Fills `out` (cleared first) with one entry per shard and returns the
/// engine's step count at publish time.
using ShardStatsFn = std::function<std::uint64_t(std::vector<ShardStat>&)>;

/// Install `fn` as the process-wide provider on behalf of `owner` (any
/// stable pointer identifying the installer; the engine passes `this`).
/// A later install overwrites an earlier one — last engine wins.
void set_shard_stats_provider(const void* owner, ShardStatsFn fn);

/// Remove the provider, but only if `owner` still owns it (a no-op when a
/// later engine has already replaced it).
void clear_shard_stats_provider(const void* owner);

/// Read the current provider into `out`; returns the provider's step
/// count, or 0 with `out` empty when no provider is installed.
std::uint64_t shard_stats(std::vector<ShardStat>& out);

}  // namespace mldcs::obs
