// Sampling profiler engine (see profiler.hpp for the design contract).
//
// Split in two: the unconditional report writers at the bottom compile in
// both telemetry branches (the introspection server calls them with stub
// reports in OFF builds); everything else — rings, timers, the SIGPROF
// handler, the drain thread — sits behind MLDCS_ENABLE_TELEMETRY.

#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1  // pthread_getattr_np, SIGEV_THREAD_ID
#endif

#include "obs/profiler.hpp"

#include <ostream>

#if MLDCS_ENABLE_TELEMETRY

#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/annotations.hpp"

// Linux guards SIGEV_THREAD_ID behind __USE_GNU; provide the stable ABI
// values when the headers hide them (the kernel interface is fixed).
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

// The frame-pointer walk reads raw stack words.  Under ASan/MSan the
// shadow + fake-stack machinery makes those reads both meaningless and
// diagnosable, so sanitized builds keep the leaf PC only — phase
// attribution (the acceptance metric) never depends on walk depth.
#if defined(__x86_64__) || defined(__aarch64__)
#define MLDCS_PROFILER_WALK 1
#else
#define MLDCS_PROFILER_WALK 0
#endif
#if defined(__SANITIZE_ADDRESS__)
#undef MLDCS_PROFILER_WALK
#define MLDCS_PROFILER_WALK 0
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#undef MLDCS_PROFILER_WALK
#define MLDCS_PROFILER_WALK 0
#endif
#endif

namespace mldcs::obs {

namespace detail {
thread_local constinit std::atomic<std::uint32_t> t_phase{0};
}  // namespace detail

namespace {

constexpr std::size_t kMaxDepth = 32;
constexpr std::size_t kRingSlots = 256;  // power of two; ~66 KB per thread
constexpr std::size_t kMaxThreads = 64;
constexpr std::uint32_t kMinHz = 1;
constexpr std::uint32_t kMaxHz = 1000;
constexpr std::size_t kCrashBytes = 16384;
constexpr auto kDrainPeriod = std::chrono::milliseconds(50);

/// One ring slot.  Every word is a relaxed atomic: the handler publishes
/// the slot by advancing `head` with release order, and because the ring
/// drops-when-full the drain thread never reads a slot the handler could
/// still be writing — no seqlock needed.
struct Sample {
  std::atomic<std::uint32_t> phase{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uintptr_t> pc[kMaxDepth] = {};
};

/// Per-thread sampling state.  Leaked on thread exit (alive flips false,
/// the slot stays) so a late SIGPROF can never touch freed memory — the
/// same reasoning as the blackbox's leaked State.  Bounded by
/// kMaxThreads * sizeof(ThreadRec) ~ 4 MB worst case.
struct ThreadRec {
  pthread_t pth{};
  pid_t tid = 0;
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  timer_t timer{};
  bool timer_active = false;          // under State::mu
  std::atomic<bool> alive{true};
  std::atomic<std::uint64_t> head{0}; // handler-advanced, release
  std::atomic<std::uint64_t> tail{0}; // drain-advanced, release
  std::atomic<std::uint64_t> dropped{0};
  Sample ring[kRingSlots];
};

struct State {
  // Control side (normal context, under mu).
  std::mutex mu;  ///< arm/disarm/register/timer lifecycle
  ThreadRec* recs[kMaxThreads] = {};
  std::atomic<std::size_t> nrecs{0};  ///< published count; entries precede
  bool armed = false;
  bool handler_installed = false;
  std::uint32_t hz = 0;
  std::chrono::steady_clock::time_point arm_time{};
  double sampled_s = 0.0;  ///< accumulated armed wall time (past windows)
  std::thread drain;

  // Fold side (drain thread writes, report() reads; under fold_mu).
  std::mutex fold_mu;
  std::unordered_map<std::string, std::uint64_t> folded;
  std::uint64_t phase_counts[kPhaseCount] = {};
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
  std::unordered_map<std::uintptr_t, std::string> symcache;  // drain only
  std::atomic<std::uint64_t> sweep_gen{0};  ///< completed drain sweeps

  // Crash-snapshot double buffer: the drain serializes into the
  // non-current half then publishes the index; profiler_crash_snapshot
  // copies the current half and re-checks (the blackbox tail pattern).
  char crash_buf[2][kCrashBytes] = {};
  std::uint32_t crash_len[2] = {0, 0};
  std::atomic<unsigned> crash_cur{0};
};

/// Raw pointer mirror of the leaked singleton for the async-signal-safe
/// paths: state() itself has a function-local static guard (and an
/// allocation on first call), neither of which may run in a handler.
std::atomic<State*> g_state{nullptr};

/// Sampling gate the handler reads; true strictly while timers may fire.
std::atomic<bool> g_sampling{false};

State& state() {
  // Leaked: timers and the crash path may outlive static teardown.
  static State* s = [] {
    State* p = new State;
    g_state.store(p, std::memory_order_release);
    return p;
  }();
  return *s;
}

/// The calling thread's record; constant-initialized TLS so the handler
/// read is one register-relative load, no init guard.
thread_local constinit ThreadRec* t_rec = nullptr;

// ---------------------------------------------------------------------------
// SIGPROF handler: the async-signal-safe half.  No calls except atomic
// loads/stores on preallocated storage; annotated so mldcs-analyze audits
// it under the same rules as the step hot path.

MLDCS_HOT_PATH MLDCS_NO_LOCK void sigprof_handler(int /*sig*/,
                                                  siginfo_t* /*info*/,
                                                  void* uctx) {
  ThreadRec* rec = t_rec;
  if (rec == nullptr || !g_sampling.load(std::memory_order_relaxed)) return;
  const std::uint64_t head = rec->head.load(std::memory_order_relaxed);
  if (head - rec->tail.load(std::memory_order_relaxed) >= kRingSlots) {
    rec->dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // full: drop the sample, never overwrite an undrained slot
  }
  Sample& slot = rec->ring[head & (kRingSlots - 1)];

  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
  std::uintptr_t sp = 0;
  const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
#endif

  std::uint32_t depth = 0;
  if (pc != 0) {
    slot.pc[depth].store(pc, std::memory_order_relaxed);
    ++depth;
  }
#if MLDCS_PROFILER_WALK
  // Upward-only frame-pointer walk, every step checked: the frame must
  // lie within [sp, stack_hi), be pointer-aligned, and strictly ascend —
  // a clobbered or omitted frame pointer terminates the walk instead of
  // faulting.  Shallow stacks under -fomit-frame-pointer are expected
  // and fine; the phase word carries the attribution either way.
  // Overflow-free bound: `fp + 16 <= hi` would wrap for a garbage frame
  // pointer near ~0 and let the read through — compare by subtraction.
  const std::uintptr_t hi = rec->stack_hi;
  (void)sp;
  while (depth < kMaxDepth && fp != 0 && fp >= sp && fp < hi &&
         hi - fp >= 2 * sizeof(std::uintptr_t) &&
         (fp & (sizeof(std::uintptr_t) - 1)) == 0) {
    const std::uintptr_t* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret == 0) break;
    slot.pc[depth].store(ret, std::memory_order_relaxed);
    ++depth;
    if (next <= fp) break;
    fp = next;
  }
#else
  (void)fp;
  (void)sp;
#endif

  slot.depth.store(depth, std::memory_order_relaxed);
  slot.phase.store(detail::t_phase.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  rec->head.store(head + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Timer lifecycle (normal context, under State::mu).

void start_timer_for(State& s, ThreadRec* rec) {
  if (rec->timer_active || !rec->alive.load(std::memory_order_relaxed)) {
    return;
  }
  clockid_t clock;
  if (pthread_getcpuclockid(rec->pth, &clock) != 0) return;
  sigevent sev = {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = rec->tid;
  if (timer_create(clock, &sev, &rec->timer) != 0) return;
  const long period_ns = 1000000000L / static_cast<long>(s.hz);
  itimerspec its = {};
  its.it_interval.tv_sec = 0;
  its.it_interval.tv_nsec = period_ns;
  its.it_value = its.it_interval;
  if (timer_settime(rec->timer, 0, &its, nullptr) != 0) {
    timer_delete(rec->timer);
    return;
  }
  rec->timer_active = true;
}

void stop_timer_for(ThreadRec* rec) {
  if (!rec->timer_active) return;
  timer_delete(rec->timer);
  rec->timer_active = false;
}

/// Thread-exit hook: a function-local thread_local whose destructor tears
/// the timer down and retires the record before the thread's CPU clock
/// dies with it.  The record itself is leaked by design.
struct ThreadExitGuard {
  ThreadRec* rec;
  ~ThreadExitGuard() {
    State& s = state();
    const std::scoped_lock lock(s.mu);
    stop_timer_for(rec);
    rec->alive.store(false, std::memory_order_release);
    t_rec = nullptr;
  }
};

void register_thread_locked(State& s) {
  if (t_rec != nullptr) return;
  const std::size_t n = s.nrecs.load(std::memory_order_relaxed);
  if (n >= kMaxThreads) return;  // over capacity: thread goes unsampled
  auto* rec = new ThreadRec;     // leaked (see ThreadRec)
  rec->pth = pthread_self();
  rec->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* lo = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &lo, &size) == 0) {
      rec->stack_lo = reinterpret_cast<std::uintptr_t>(lo);
      rec->stack_hi = rec->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  s.recs[n] = rec;
  s.nrecs.store(n + 1, std::memory_order_release);
  t_rec = rec;
  static thread_local ThreadExitGuard guard{rec};
  (void)guard;
  if (s.armed) start_timer_for(s, rec);  // late thread joins the window
}

// ---------------------------------------------------------------------------
// Drain thread: folds ring samples into collapsed stacks (dladdr +
// demangle at fold time, with a pc -> name cache) and refreshes the
// pre-serialized crash snapshot.

/// JSON-escape `in` into `out` (append).
void escape_json(const std::string& in, std::string& out) {
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

/// Best-effort symbol for `pc`: demangled function name with the argument
/// list stripped and spaces flattened (folded frames are ';'- and
/// space-delimited), else "0x<hex>".  Drain-thread only.
const std::string& symbolize(State& s, std::uintptr_t pc) {
  const auto it = s.symcache.find(pc);
  if (it != s.symcache.end()) return it->second;
  std::string name;
  Dl_info info = {};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
      const std::size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
      // Template instantiations demangle with a leading return type
      // ("unsigned int foo<T>"); drop it — but only scan for the
      // separating space before the first '<', where spaces still mean
      // "return type", not "template argument".
      const std::size_t lt = name.find('<');
      const std::size_t scan_end = lt == std::string::npos ? name.size() : lt;
      if (scan_end > 0) {
        const std::size_t sp = name.rfind(' ', scan_end - 1);
        if (sp != std::string::npos) name.erase(0, sp + 1);
      }
      std::replace(name.begin(), name.end(), ' ', '_');
      std::replace(name.begin(), name.end(), ';', ',');
    } else {
      name = info.dli_sname;
    }
    if (demangled != nullptr) std::free(demangled);
  }
  if (name.empty()) {
    char hex[2 + 2 * sizeof(std::uintptr_t) + 1];
    std::snprintf(hex, sizeof(hex), "0x%zx", static_cast<std::size_t>(pc));
    name = hex;
  }
  return s.symcache.emplace(pc, std::move(name)).first->second;
}

/// One sweep over every ring: fold [tail, head) of each, then advance
/// tail.  Returns samples folded this sweep.
std::uint64_t drain_once(State& s) {
  std::uint64_t folded_now = 0;
  std::string key;
  const std::size_t n = s.nrecs.load(std::memory_order_acquire);
  const std::scoped_lock fold_lock(s.fold_mu);
  for (std::size_t i = 0; i < n; ++i) {
    ThreadRec* rec = s.recs[i];
    const std::uint64_t head = rec->head.load(std::memory_order_acquire);
    const std::uint64_t tail = rec->tail.load(std::memory_order_relaxed);
    for (std::uint64_t t = tail; t < head; ++t) {
      const Sample& slot = rec->ring[t & (kRingSlots - 1)];
      const std::uint32_t phase = slot.phase.load(std::memory_order_relaxed);
      const std::uint32_t depth =
          std::min<std::uint32_t>(slot.depth.load(std::memory_order_relaxed),
                                  kMaxDepth);
      key.assign(phase_name(static_cast<Phase>(
          phase < kPhaseCount ? phase : 0)));
      // Root-first: the outermost captured frame right after the phase,
      // the interrupted PC last — flamegraph semantics.
      for (std::uint32_t d = depth; d > 0; --d) {
        const std::uintptr_t pc =
            slot.pc[d - 1].load(std::memory_order_relaxed);
        key.push_back(';');
        // Return addresses point after the call; step back one byte so
        // the symbol lookup lands inside the calling function.
        key += symbolize(s, d > 1 ? pc - 1 : pc);
      }
      ++s.folded[key];
      ++s.phase_counts[phase < kPhaseCount ? phase : 0];
      ++s.total;
      ++folded_now;
    }
    rec->tail.store(head, std::memory_order_release);
    s.dropped += rec->dropped.exchange(0, std::memory_order_relaxed);
  }
  return folded_now;
}

/// Refresh the crash-snapshot double buffer from the folded state.
/// Normal context (allocates freely); the reader side is byte copies.
void refresh_crash_snapshot(State& s) {
  std::string doc;
  doc.reserve(2048);
  {
    const std::scoped_lock fold_lock(s.fold_mu);
    doc += "{\"kind\":\"profile\",\"schema\":\"mldcs-profile-v1\",\"hz\":";
    doc += std::to_string(s.hz);
    doc += ",\"total_samples\":";
    doc += std::to_string(s.total);
    doc += ",\"dropped\":";
    doc += std::to_string(s.dropped);
    doc += ",\"phases\":{";
    bool first = true;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (s.phase_counts[p] == 0) continue;
      if (!first) doc += ',';
      first = false;
      doc += '"';
      doc += phase_name(static_cast<Phase>(p));
      doc += "\":";
      doc += std::to_string(s.phase_counts[p]);
    }
    doc += "},\"top\":[";
    // Highest-count stacks while they fit; the buffer stays balanced
    // JSON because each entry is appended whole or not at all.
    std::vector<std::pair<std::uint64_t, const std::string*>> order;
    order.reserve(s.folded.size());
    for (const auto& [stack, count] : s.folded) {
      order.emplace_back(count, &stack);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : *a.second < *b.second;
              });
    first = true;
    for (const auto& [count, stack] : order) {
      std::string entry;
      if (!first) entry += ',';
      entry += "[\"";
      escape_json(*stack, entry);
      entry += "\",";
      entry += std::to_string(count);
      entry += ']';
      if (doc.size() + entry.size() + 4 > kCrashBytes) break;
      doc += entry;
      first = false;
    }
    doc += "]}\n";
  }
  if (doc.size() > kCrashBytes) return;  // cannot happen; belt-and-braces
  const unsigned cur = s.crash_cur.load(std::memory_order_relaxed);
  const unsigned nxt = 1 - cur;
  std::memcpy(s.crash_buf[nxt], doc.data(), doc.size());
  s.crash_len[nxt] = static_cast<std::uint32_t>(doc.size());
  s.crash_cur.store(nxt, std::memory_order_release);
}

void drain_loop(State& s) {
  while (g_sampling.load(std::memory_order_acquire)) {
    drain_once(s);
    refresh_crash_snapshot(s);
    s.sweep_gen.fetch_add(1, std::memory_order_release);
    std::this_thread::sleep_for(kDrainPeriod);
  }
  // Final sweep: everything sampled before the timers died is folded.
  drain_once(s);
  refresh_crash_snapshot(s);
  s.sweep_gen.fetch_add(1, std::memory_order_release);
}

double armed_seconds(const State& s) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       s.arm_time)
      .count();
}

}  // namespace

bool profiler_arm(const ProfilerConfig& config) {
  State& s = state();
  const std::scoped_lock lock(s.mu);
  if (s.armed) return false;
  s.hz = std::clamp(config.hz, kMinHz, kMaxHz);
  register_thread_locked(s);

  {
    const std::scoped_lock fold_lock(s.fold_mu);
    s.folded.clear();
    std::fill(std::begin(s.phase_counts), std::end(s.phase_counts), 0);
    s.total = 0;
    s.dropped = 0;
  }
  s.sampled_s = 0.0;
  const std::size_t n = s.nrecs.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    ThreadRec* rec = s.recs[i];
    rec->head.store(0, std::memory_order_relaxed);
    rec->tail.store(0, std::memory_order_relaxed);
    rec->dropped.store(0, std::memory_order_relaxed);
  }

  if (!s.handler_installed) {
    // Installed once, never restored: the handler is a no-op while
    // disarmed, whereas restoring SIG_DFL would race a late timer signal
    // into process termination (SIGPROF's default action).
    struct sigaction sa = {};
    sa.sa_sigaction = sigprof_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) return false;
    s.handler_installed = true;
  }

  g_sampling.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) start_timer_for(s, s.recs[i]);
  s.arm_time = std::chrono::steady_clock::now();
  s.drain = std::thread([&s] { drain_loop(s); });
  s.armed = true;
  return true;
}

void profiler_disarm() {
  State& s = state();
  std::thread drain;
  {
    const std::scoped_lock lock(s.mu);
    if (!s.armed) return;
    const std::size_t n = s.nrecs.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) stop_timer_for(s.recs[i]);
    s.sampled_s += armed_seconds(s);
    g_sampling.store(false, std::memory_order_release);
    s.armed = false;
    drain = std::move(s.drain);
  }
  // Join outside the lock: the drain's final sweep must not deadlock
  // against a concurrent register/report taking mu or fold_mu.
  if (drain.joinable()) drain.join();
}

bool profiler_armed() noexcept {
  return g_sampling.load(std::memory_order_acquire);
}

void profiler_register_thread() {
  if (t_rec != nullptr) return;
  State& s = state();
  const std::scoped_lock lock(s.mu);
  register_thread_locked(s);
}

ProfileReport profiler_report() {
  State& s = state();
  ProfileReport r;
  {
    const std::scoped_lock lock(s.mu);
    r.hz = s.hz;
    r.duration_s = s.sampled_s + (s.armed ? armed_seconds(s) : 0.0);
  }
  {
    const std::scoped_lock fold_lock(s.fold_mu);
    r.total_samples = s.total;
    r.dropped = s.dropped;
    r.folded.assign(s.folded.begin(), s.folded.end());
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (s.phase_counts[p] != 0) {
        r.phases.emplace_back(phase_name(static_cast<Phase>(p)),
                              s.phase_counts[p]);
      }
    }
  }
  const auto by_count_desc = [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  };
  std::sort(r.folded.begin(), r.folded.end(), by_count_desc);
  std::sort(r.phases.begin(), r.phases.end(), by_count_desc);
  return r;
}

namespace {

/// Block until the drain thread has completed two more sweeps (or
/// sampling stopped), so a window's tail samples are folded before the
/// report is cut.
void wait_for_sweeps(State& s, std::uint64_t baseline_gen) {
  for (int spin = 0; spin < 200; ++spin) {  // <= ~2 s safety cap
    if (!g_sampling.load(std::memory_order_acquire)) return;
    if (s.sweep_gen.load(std::memory_order_acquire) >= baseline_gen + 2) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

ProfileReport diff_reports(const ProfileReport& base, ProfileReport end) {
  std::unordered_map<std::string, std::uint64_t> base_folded(
      base.folded.begin(), base.folded.end());
  std::unordered_map<std::string, std::uint64_t> base_phases(
      base.phases.begin(), base.phases.end());
  const auto subtract = [](auto& rows, const auto& baseline) {
    auto out = rows.begin();
    for (auto& [key, count] : rows) {
      const auto it = baseline.find(key);
      const std::uint64_t before = it == baseline.end() ? 0 : it->second;
      if (count > before) *out++ = {key, count - before};
    }
    rows.erase(out, rows.end());
  };
  subtract(end.folded, base_folded);
  subtract(end.phases, base_phases);
  end.total_samples -= std::min(end.total_samples, base.total_samples);
  end.dropped -= std::min(end.dropped, base.dropped);
  end.duration_s = std::max(0.0, end.duration_s - base.duration_s);
  return end;
}

}  // namespace

ProfileReport profiler_capture_window(double seconds,
                                      const ProfilerConfig& config) {
  State& s = state();
  const double secs = std::clamp(seconds, 0.05, 30.0);
  if (!profiler_armed()) {
    if (!profiler_arm(config)) return {};  // lost an arm race: stay out
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    profiler_disarm();
    return profiler_report();
  }
  // Already armed (a --profile run being probed live): report the
  // window as a difference, leaving the long-running profile intact.
  const ProfileReport base = profiler_report();
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  wait_for_sweeps(s, s.sweep_gen.load(std::memory_order_acquire));
  return diff_reports(base, profiler_report());
}

std::size_t profiler_crash_snapshot(char* dst, std::size_t cap) noexcept {
  State* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr || dst == nullptr) return 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const unsigned cur = s->crash_cur.load(std::memory_order_acquire);
    const std::uint32_t len = s->crash_len[cur];
    // Whole line or nothing: a truncated JSON object would corrupt the
    // blackbox report it gets appended to.
    if (len == 0 || len > cap || len > kCrashBytes) return 0;
    for (std::uint32_t i = 0; i < len; ++i) dst[i] = s->crash_buf[cur][i];
    if (s->crash_cur.load(std::memory_order_acquire) == cur) return len;
  }
  return 0;  // buffer kept flipping underneath us: give up cleanly
}

}  // namespace mldcs::obs

#endif  // MLDCS_ENABLE_TELEMETRY

// ---------------------------------------------------------------------------
// Unconditional writers: real in both telemetry branches so the
// introspection server (which has no stub branch) always emits valid
// documents.

namespace mldcs::obs {

namespace {

void json_escaped(std::ostream& os, const std::string& in) {
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void write_profile_folded(std::ostream& os, const ProfileReport& r) {
  for (const auto& [stack, count] : r.folded) {
    os << stack << ' ' << count << '\n';
  }
}

void write_profile_json(std::ostream& os, const ProfileReport& r) {
  os << "{\"schema\":\"mldcs-profile-v1\",\"hz\":" << r.hz
     << ",\"total_samples\":" << r.total_samples
     << ",\"dropped\":" << r.dropped << ",\"duration_s\":" << r.duration_s
     << ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, count] : r.phases) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escaped(os, phase);
    os << "\":" << count;
  }
  os << "},\"folded\":{";
  first = true;
  for (const auto& [stack, count] : r.folded) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escaped(os, stack);
    os << "\":" << count;
  }
  os << "}}\n";
}

}  // namespace mldcs::obs
