#pragma once

/// \file watchdog.hpp
/// Online consistency watchdog: prove an incrementally maintained result
/// stays equal to its from-scratch recomputation *during* a long run, not
/// only in tests.
///
/// The incremental machinery (bcast::SkylineCache) is differential-tested
/// against from-scratch sweeps, but a production mobility run gets no such
/// check: a latent dirty-rule bug or a corrupted slot would silently serve
/// wrong forwarding sets for hours.  `ConsistencyWatchdog` closes that gap
/// at bounded cost: every `period` steps it samples `samples` distinct
/// relays (deterministic xorshift sequence), recomputes each from scratch
/// through the caller-supplied reference function, and compares against the
/// cached answer.  Cost per check is `samples` single-relay recomputations
/// — independent of network size — so the sampling budget is a dial
/// between detection latency and overhead.
///
/// Mismatches are reported three ways: `watchdog.*` metrics (counters for
/// checks/sampled/mismatches, a last-mismatch-step gauge), flight-recorder
/// events (kWatchdogCheck per check, kWatchdogMismatch per bad relay,
/// causally linked to the cache update they indict), and the object's own
/// plain counters — which stay functional with telemetry compiled out, so
/// the verdict API works in every build.
///
/// The class is callback-generic (it lives below net/broadcast in the
/// layering); `bcast::make_cache_watchdog` binds it to a SkylineCache.

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/event_log.hpp"

namespace mldcs::obs {

class ConsistencyWatchdog {
 public:
  struct Config {
    std::uint32_t period = 16;  ///< check every K steps (0 treated as 1)
    std::uint32_t samples = 8;  ///< M relays compared per check
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;  ///< sampling sequence seed
  };

  /// Computes the ground-truth value for one relay (from scratch).
  using ReferenceFn = std::function<std::vector<std::uint32_t>(std::uint32_t)>;
  /// Reads the cached value for one relay.
  using CachedFn = std::function<std::vector<std::uint32_t>(std::uint32_t)>;

  ConsistencyWatchdog(std::size_t n_relays, ReferenceFn reference,
                      CachedFn cached, Config config);

  /// Call once per maintenance step.  Every `period`-th call runs a check;
  /// `parent_event` (e.g. the step's kCacheUpdate event id) causally links
  /// the check's events to the update being audited.  Returns false iff
  /// this call ran a check that found at least one mismatch.
  bool on_step(std::uint64_t parent_event = kNoEvent);

  /// Run a check immediately, regardless of the period phase.
  bool check_now(std::uint64_t parent_event = kNoEvent);

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }
  [[nodiscard]] std::uint64_t mismatches() const noexcept {
    return mismatches_;
  }
  /// True while no check has ever found a mismatch.
  [[nodiscard]] bool clean() const noexcept { return mismatches_ == 0; }
  /// Relays found inconsistent by the most recent check (empty when the
  /// last check passed).
  [[nodiscard]] const std::vector<std::uint32_t>& last_mismatched_relays()
      const noexcept {
    return last_mismatched_;
  }
  /// Step index (1-based on_step count) of the most recent mismatch, or 0.
  [[nodiscard]] std::uint64_t last_mismatch_step() const noexcept {
    return last_mismatch_step_;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  std::uint32_t next_sample() noexcept;

  std::size_t n_relays_;
  ReferenceFn reference_;
  CachedFn cached_;
  Config config_;

  std::uint64_t rng_state_;
  std::uint64_t steps_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t mismatches_ = 0;
  std::uint64_t last_mismatch_step_ = 0;
  std::vector<std::uint32_t> last_mismatched_;
  std::vector<std::uint32_t> sample_scratch_;
};

}  // namespace mldcs::obs
