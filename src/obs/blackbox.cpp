#include "obs/blackbox.hpp"

#if MLDCS_ENABLE_TELEMETRY

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "obs/event_log.hpp"
#include "obs/profiler.hpp"
#include "obs/shard_stats.hpp"

namespace mldcs::obs {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe primitives.  Everything the dump path touches is below
// this line or an atomic load: no malloc, no stdio, no locks.

/// write(2) the whole buffer, retrying EINTR; short writes keep going.
void safe_write(int fd, const char* p, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // nothing useful to do with a failing fd in a crash path
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Decimal-format v into buf (no terminator); returns the length.
std::size_t fmt_u64(char* buf, std::uint64_t v) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void write_u64(int fd, std::uint64_t v) noexcept {
  char buf[20];
  safe_write(fd, buf, fmt_u64(buf, v));
}

/// strlen/memcpy stand-ins: byte loops, so the dump path provably calls
/// nothing outside the async-signal-safe set.
std::size_t safe_len(const char* s) noexcept {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  return n;
}

void copy_bytes(char* dst, const char* src, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    default:
      return "signal";
  }
}

// ---------------------------------------------------------------------------
// Frame ring + recorder state.

/// Bounded in-place JSON builder for heartbeat frames and event tails.
/// Entries are written between mark()/rewind() pairs: an entry that would
/// overflow is rolled back whole, the writer is marked truncated, and the
/// caller stops that section — the buffer always holds balanced JSON.
class BoundedWriter {
 public:
  BoundedWriter(char* buf, std::size_t cap) noexcept : buf_(buf), cap_(cap) {}

  void str(const char* s) noexcept {
    const std::size_t n = safe_len(s);
    if (pos_ + n > cap_) {
      overflow_ = true;
      return;
    }
    copy_bytes(buf_ + pos_, s, n);
    pos_ += n;
  }
  void u64(std::uint64_t v) noexcept {
    char tmp[20];
    const std::size_t n = fmt_u64(tmp, v);
    if (pos_ + n > cap_) {
      overflow_ = true;
      return;
    }
    copy_bytes(buf_ + pos_, tmp, n);
    pos_ += n;
  }
  void i64(std::int64_t v) noexcept {
    if (v < 0) {
      str("-");
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }

  [[nodiscard]] std::size_t mark() const noexcept { return pos_; }
  void rewind(std::size_t m) noexcept {
    pos_ = m;
    overflow_ = false;
  }
  [[nodiscard]] bool overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t size() const noexcept { return pos_; }
  void raise_cap(std::size_t cap) noexcept { cap_ = cap; }

 private:
  char* buf_;
  std::size_t cap_;
  std::size_t pos_ = 0;
  bool overflow_ = false;
};

constexpr std::size_t kFrameBytes = 4096;
constexpr std::size_t kFrameSuffixReserve = 32;  // ,"truncated":true}\n
constexpr std::size_t kTailBytes = 16384;
constexpr std::size_t kMaxFrames = 256;
constexpr std::size_t kMaxTail = 256;

/// One ring slot.  seq: 0 = never written, odd (2t+1) = ticket t being
/// written, even (2t+2) = ticket t published.  A reader copies the bytes
/// out and re-reads seq; any change means the copy is torn — skip it.
struct Frame {
  std::atomic<std::uint64_t> seq{0};
  std::uint32_t len = 0;
  char json[kFrameBytes] = {};
};

struct State {
  // Arm/heartbeat side (normal context only).
  std::mutex hb_mu;  ///< serializes arm/disarm/heartbeat; never on dump path
  std::vector<std::pair<std::string, std::uint64_t>> prev_counters;
  std::vector<ShardStat> shard_scratch;
  std::size_t event_tail_cap = 64;

  // Shared with the dump path (atomics + bytes published before them).
  std::atomic<bool> armed{false};
  std::atomic<int> dumping{0};  ///< collapses concurrent/reentrant dumps
  std::atomic<std::uint64_t> heartbeats{0};
  char path[512] = {};
  char header[768] = {};  ///< pre-serialized up to ...,"reason":"
  std::uint32_t header_len = 0;
  Frame* frames = nullptr;  ///< leaked ring; reused across rearms
  std::size_t nframes = 0;
  std::uint64_t ticket = 0;  ///< next heartbeat ticket, under hb_mu
  bool handlers_installed = false;
  struct sigaction prev_sa[3] = {};  ///< SIGSEGV, SIGABRT, SIGBUS

  // Event tail double buffer: heartbeat writes the non-current half then
  // publishes its index; the dump copies the current half and re-checks.
  char tail_buf[2][kTailBytes] = {};
  std::uint32_t tail_len[2] = {0, 0};
  std::uint32_t tail_count[2] = {0, 0};
  std::atomic<unsigned> tail_cur{0};
};

State& state() {
  // Leaked: the crash handler may fire during static teardown.
  static State* s = new State;
  return *s;
}

int sig_index(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return 0;
    case SIGABRT:
      return 1;
    case SIGBUS:
      return 2;
    default:
      return -1;
  }
}

/// The report writer.  Callable from signal context: only atomics,
/// open/write, and stack buffers.  Returns heartbeat frames written, or
/// -1 when disarmed / already dumping / the file cannot be opened.
long dump_impl(State& s, const char* reason) noexcept {
  if (!s.armed.load(std::memory_order_acquire)) return -1;
  int expected = 0;
  if (!s.dumping.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel)) {
    return -1;  // another dump in flight; it owns the file
  }
  const int fd = ::open(s.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    s.dumping.store(0, std::memory_order_release);
    return -1;
  }

  // Header: pre-serialized prefix + reason + close.
  safe_write(fd, s.header, s.header_len);
  safe_write(fd, reason, safe_len(reason));
  safe_write(fd, "\"}\n", 3);

  // Heartbeat frames, oldest surviving ticket first.  The newest ticket is
  // recovered from the max published seq; the ring holds at most nframes
  // consecutive tickets ending there.
  std::uint64_t max_seq = 0;
  for (std::size_t i = 0; i < s.nframes; ++i) {
    const std::uint64_t q = s.frames[i].seq.load(std::memory_order_acquire);
    if (q != 0 && q % 2 == 0 && q > max_seq) max_seq = q;
  }
  long written = 0;
  if (max_seq != 0) {
    const std::uint64_t tmax = (max_seq - 2) / 2;
    const std::uint64_t t0 =
        tmax + 1 >= s.nframes ? tmax + 1 - s.nframes : 0;
    char buf[kFrameBytes];
    for (std::uint64_t t = t0; t <= tmax; ++t) {
      Frame& f = s.frames[t % s.nframes];
      const std::uint64_t want = 2 * t + 2;
      if (f.seq.load(std::memory_order_acquire) != want) continue;
      const std::uint32_t len = std::min<std::uint32_t>(f.len, kFrameBytes);
      copy_bytes(buf, f.json, len);
      if (f.seq.load(std::memory_order_acquire) != want) continue;  // torn
      safe_write(fd, buf, len);
      ++written;
    }
  }

  // Event tail: copy the published half, re-check it was not flipped
  // underneath the copy; one retry, then give up on the tail.
  std::uint32_t tail_events = 0;
  {
    char tbuf[kTailBytes];
    for (int attempt = 0; attempt < 2; ++attempt) {
      const unsigned cur = s.tail_cur.load(std::memory_order_acquire);
      const std::uint32_t len = std::min<std::uint32_t>(
          s.tail_len[cur], kTailBytes);
      const std::uint32_t count = s.tail_count[cur];
      copy_bytes(tbuf, s.tail_buf[cur], len);
      if (s.tail_cur.load(std::memory_order_acquire) != cur) continue;
      safe_write(fd, tbuf, len);
      tail_events = count;
      break;
    }
  }

  // Profile appendix: when the sampling profiler is (or was) armed, its
  // drain thread keeps a pre-serialized {"kind":"profile",...} line in a
  // double buffer; copying it here is byte moves + atomic loads only.
  {
    char pbuf[16384];
    const std::size_t plen = profiler_crash_snapshot(pbuf, sizeof(pbuf));
    if (plen > 0) safe_write(fd, pbuf, plen);
  }

  safe_write(fd, "{\"kind\":\"end\",\"frames\":", 23);
  write_u64(fd, static_cast<std::uint64_t>(written));
  safe_write(fd, ",\"events\":", 10);
  write_u64(fd, tail_events);
  safe_write(fd, "}\n", 2);
  ::close(fd);
  s.dumping.store(0, std::memory_order_release);
  return written;
}

void crash_handler(int sig) {
  State& s = state();
  dump_impl(s, signal_name(sig));
  const int idx = sig_index(sig);
  if (idx >= 0) ::sigaction(sig, &s.prev_sa[idx], nullptr);
  ::raise(sig);  // re-deliver to the restored (usually default) disposition
}

// ---------------------------------------------------------------------------
// Heartbeat serialization (normal context; allocation fine).

/// Append `"name":<payload>` entries with whole-entry rollback on
/// overflow; returns false (and marks w truncated upstream) when the
/// section was cut short.
template <typename Payload>
bool write_map_section(BoundedWriter& w, const char* key,
                       std::size_t n, Payload&& payload) {
  const std::size_t section_mark = w.mark();
  w.str(",\"");
  w.str(key);
  w.str("\":{");
  if (w.overflow()) {
    w.rewind(section_mark);
    return false;
  }
  bool first = true;
  bool complete = true;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t m = w.mark();
    if (!first) w.str(",");
    payload(i);
    if (w.overflow()) {
      w.rewind(m);
      complete = false;
      break;
    }
    first = false;
  }
  w.str("}");
  if (w.overflow()) {
    w.rewind(section_mark);
    return false;
  }
  return complete;
}

}  // namespace

bool blackbox_arm(const BlackBoxConfig& config) {
  State& s = state();
  const std::scoped_lock lock(s.hb_mu);
  if (s.armed.load(std::memory_order_relaxed)) return false;
  if (config.path == nullptr) return false;
  const std::size_t path_len = std::strlen(config.path);
  if (path_len == 0 || path_len >= sizeof(s.path)) return false;
  std::memcpy(s.path, config.path, path_len + 1);

  // Fail fast on an unwritable destination — a crash is the wrong moment
  // to discover a bad path.
  const int fd = ::open(s.path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  ::close(fd);

  const std::size_t n =
      std::clamp<std::size_t>(config.frames, 1, kMaxFrames);
  if (s.frames != nullptr && s.nframes != n) {
    delete[] s.frames;
    s.frames = nullptr;
  }
  if (s.frames == nullptr) s.frames = new Frame[n];
  s.nframes = n;
  for (std::size_t i = 0; i < n; ++i) {
    s.frames[i].seq.store(0, std::memory_order_relaxed);
    s.frames[i].len = 0;
  }
  s.ticket = 0;
  s.heartbeats.store(0, std::memory_order_relaxed);
  s.event_tail_cap = std::clamp<std::size_t>(config.event_tail, 1, kMaxTail);
  s.prev_counters.clear();
  s.tail_len[0] = s.tail_len[1] = 0;
  s.tail_count[0] = s.tail_count[1] = 0;
  s.tail_cur.store(0, std::memory_order_relaxed);

  BoundedWriter h(s.header, sizeof(s.header));
  h.str("{\"kind\":\"header\",\"schema\":\"mldcs-blackbox-v1\",\"pid\":");
  h.u64(static_cast<std::uint64_t>(::getpid()));
  h.str(",\"frames\":");
  h.u64(n);
  h.str(",\"event_tail\":");
  h.u64(s.event_tail_cap);
  h.str(",\"path\":\"");
  h.str(s.path);
  h.str("\",\"reason\":\"");
  if (h.overflow()) return false;  // path fits, so this cannot trip in practice
  s.header_len = static_cast<std::uint32_t>(h.size());

  if (config.install_signal_handlers) {
    struct sigaction sa = {};
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    const int sigs[3] = {SIGSEGV, SIGABRT, SIGBUS};
    for (int i = 0; i < 3; ++i) ::sigaction(sigs[i], &sa, &s.prev_sa[i]);
    s.handlers_installed = true;
  }

  s.armed.store(true, std::memory_order_release);
  return true;
}

void blackbox_disarm() {
  State& s = state();
  const std::scoped_lock lock(s.hb_mu);
  if (!s.armed.load(std::memory_order_relaxed)) return;
  if (s.handlers_installed) {
    const int sigs[3] = {SIGSEGV, SIGABRT, SIGBUS};
    for (int i = 0; i < 3; ++i) ::sigaction(sigs[i], &s.prev_sa[i], nullptr);
    s.handlers_installed = false;
  }
  s.armed.store(false, std::memory_order_release);
}

bool blackbox_armed() noexcept {
  return state().armed.load(std::memory_order_acquire);
}

std::uint64_t blackbox_heartbeat_count() noexcept {
  return state().heartbeats.load(std::memory_order_relaxed);
}

// Alloc-exempt: heartbeats snapshot the registry and event log (both
// allocate) — they run at the caller's reporting cadence, never inside
// the step hot path (see header).
MLDCS_ALLOC_OK void blackbox_heartbeat(std::uint64_t step) {
  State& s = state();
  if (!s.armed.load(std::memory_order_relaxed)) return;
  const std::scoped_lock lock(s.hb_mu);
  if (!s.armed.load(std::memory_order_relaxed)) return;

  const RegistrySnapshot snap = registry().snapshot();
  const std::uint64_t shard_step = shard_stats(s.shard_scratch);
  const std::vector<Event> events = events_snapshot();

  const std::uint64_t t = s.ticket++;
  Frame& f = s.frames[t % s.nframes];
  f.seq.store(2 * t + 1, std::memory_order_release);  // odd: writing

  BoundedWriter w(f.json, kFrameBytes - kFrameSuffixReserve);
  bool truncated = false;
  w.str("{\"kind\":\"heartbeat\",\"seq\":");
  w.u64(t);
  w.str(",\"step\":");
  w.u64(step);

  // Counters as [absolute, delta-since-previous-frame]; the baseline walk
  // is a two-pointer merge (both sides sorted by name).
  {
    std::size_t p = 0;
    const auto& prev = s.prev_counters;
    truncated |= !write_map_section(
        w, "counters", snap.counters.size(), [&](std::size_t i) {
          const auto& [name, abs] = snap.counters[i];
          while (p < prev.size() && prev[p].first < name) ++p;
          const std::uint64_t base =
              p < prev.size() && prev[p].first == name ? prev[p].second : 0;
          w.str("\"");
          w.str(name.c_str());
          w.str("\":[");
          w.u64(abs);
          w.str(",");
          w.u64(abs >= base ? abs - base : abs);
          w.str("]");
        });
  }
  truncated |= !write_map_section(
      w, "gauges", snap.gauges.size(), [&](std::size_t i) {
        w.str("\"");
        w.str(snap.gauges[i].first.c_str());
        w.str("\":");
        w.i64(snap.gauges[i].second);
      });
  truncated |= !write_map_section(
      w, "hists", snap.histograms.size(), [&](std::size_t i) {
        w.str("\"");
        w.str(snap.histograms[i].first.c_str());
        w.str("\":[");
        w.u64(snap.histograms[i].second.count);
        w.str(",");
        w.u64(snap.histograms[i].second.sum);
        w.str("]");
      });

  // Per-shard load table (empty array when no sharded engine is live).
  {
    const std::size_t section_mark = w.mark();
    w.str(",\"shard_step\":");
    w.u64(shard_step);
    w.str(",\"shards\":[");
    bool first = true;
    for (const ShardStat& sh : s.shard_scratch) {
      const std::size_t m = w.mark();
      if (!first) w.str(",");
      w.str("{\"shard\":");
      w.u64(sh.shard);
      w.str(",\"owned\":");
      w.u64(sh.owned);
      w.str(",\"halo\":");
      w.u64(sh.halo);
      w.str(",\"incoming\":");
      w.u64(sh.incoming);
      w.str(",\"dirty\":");
      w.u64(sh.dirty);
      w.str(",\"step_ns\":");
      w.u64(sh.step_ns);
      w.str(",\"barrier_wait_ns\":");
      w.u64(sh.barrier_wait_ns);
      w.str("}");
      if (w.overflow()) {
        w.rewind(m);
        truncated = true;
        break;
      }
      first = false;
    }
    w.str("]");
    if (w.overflow()) {
      w.rewind(section_mark);
      truncated = true;
    }
  }

  // Event-log cursor: where the log stood when this frame was cut.
  w.str(",\"events\":{\"next\":");
  w.u64(events.empty() ? 0 : events.back().id + 1);
  w.str(",\"dropped\":");
  w.u64(events_dropped());
  w.str("}");
  if (w.overflow()) truncated = true;

  w.raise_cap(kFrameBytes);  // reserved suffix room
  if (truncated) w.str(",\"truncated\":true");
  w.str("}\n");
  f.len = static_cast<std::uint32_t>(w.size());
  f.seq.store(2 * t + 2, std::memory_order_release);  // even: published

  // Refresh the event tail double buffer (newest-last, global order).
  {
    const unsigned cur = s.tail_cur.load(std::memory_order_relaxed);
    const unsigned nxt = 1 - cur;
    BoundedWriter tw(s.tail_buf[nxt], kTailBytes);
    const std::size_t keep = std::min(s.event_tail_cap, events.size());
    std::uint32_t count = 0;
    for (std::size_t i = events.size() - keep; i < events.size(); ++i) {
      const Event& e = events[i];
      const std::size_t m = tw.mark();
      tw.str("{\"kind\":\"event\",\"id\":");
      tw.u64(e.id);
      tw.str(",\"t\":\"");
      tw.str(event_type_name(e.type));
      tw.str("\"");
      if (e.a != kNoNode) {
        tw.str(",\"a\":");
        tw.u64(e.a);
      }
      if (e.b != kNoNode) {
        tw.str(",\"b\":");
        tw.u64(e.b);
      }
      if (e.parent != kNoEvent) {
        tw.str(",\"parent\":");
        tw.u64(e.parent);
      }
      tw.str(",\"v\":");
      tw.u64(e.value);
      tw.str("}\n");
      if (tw.overflow()) {
        tw.rewind(m);
        break;
      }
      ++count;
    }
    s.tail_len[nxt] = static_cast<std::uint32_t>(tw.size());
    s.tail_count[nxt] = count;
    s.tail_cur.store(nxt, std::memory_order_release);
  }

  s.heartbeats.fetch_add(1, std::memory_order_relaxed);
  emit_event(EventType::kHeartbeat, static_cast<std::uint32_t>(t), kNoNode,
             kNoEvent, step);
  s.prev_counters.assign(snap.counters.begin(), snap.counters.end());
}

bool blackbox_dump_now(const char* reason) noexcept {
  State& s = state();
  const long written =
      dump_impl(s, reason != nullptr && *reason != '\0' ? reason : "manual");
  if (written < 0) return false;
  emit_event(EventType::kCrashDump, kNoNode, kNoNode, kNoEvent,
             static_cast<std::uint64_t>(written));
  return true;
}

}  // namespace mldcs::obs

#endif  // MLDCS_ENABLE_TELEMETRY
