#pragma once

/// \file skyline_dc.hpp
/// The paper's divide-and-conquer `Skyline` procedure (Section 3.4):
/// split the local disk set in half, recurse, and `Merge` the two partial
/// skylines.  With Lemma 8 bounding every skyline of n disks to at most 2n
/// arcs, Merge is O(n) and the whole algorithm is O(n log n) (Theorem 9) —
/// optimal, since sorting reduces to local-disk-cover computation.
///
/// The engine here runs the recursion *iteratively, bottom-up*: level 0
/// holds n single-disk skylines concatenated in one buffer; each pass
/// merges adjacent pairs into a second buffer and swaps.  All scratch
/// lives in a reusable `SkylineWorkspace`, so a relay sweep that computes
/// thousands of skylines performs no heap allocation after the first call
/// (the recursive formulation allocated four vectors per Merge — see
/// `compute_skyline_recursive` in skyline_reference.hpp, kept as the
/// differential baseline).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/merge.hpp"
#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/disk_soa.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Reusable scratch for the iterative skyline engine: two ping-pong
/// starts-only level buffers (each holding a whole level of partial
/// skylines, delimited by a bounds array), the structure-of-arrays disk
/// storage feeding the geom::simd batch kernels, and the level-wide Merge
/// task arrays.  One workspace serves any number of sequential
/// compute_skyline calls of any size; it is not thread-safe — use one per
/// thread (see bcast::compute_all_skylines).
class SkylineWorkspace {
 public:
  SkylineWorkspace() = default;

  SkylineWorkspace(const SkylineWorkspace&) = delete;
  SkylineWorkspace& operator=(const SkylineWorkspace&) = delete;
  SkylineWorkspace(SkylineWorkspace&&) = default;
  SkylineWorkspace& operator=(SkylineWorkspace&&) = default;

  /// Grow the buffers for local disk sets of up to `n_disks` disks, so the
  /// next compute_skyline call of that size allocates nothing.
  MLDCS_ALLOC_OK void reserve(std::size_t n_disks);

  /// Release all scratch memory (buffers regrow on next use).
  void clear() noexcept;

 private:
  friend Skyline compute_skyline(std::span<const geom::Disk>, geom::Vec2,
                                 SkylineWorkspace&, MergeStats*);
  friend void compute_skyline_arcs(std::span<const geom::Disk>, geom::Vec2,
                                   SkylineWorkspace&, std::vector<Arc>&,
                                   MergeStats*);

  detail::LevelSoA lev_cur_;          ///< level k partial skylines
  detail::LevelSoA lev_next_;         ///< level k+1 under construction
  detail::MergeLevelScratch scratch_; ///< batched Merge task arrays
  geom::DiskSoA soa_;                 ///< live disks, live-local order
  geom::DiskSoA filt_;                ///< prefilter containers, radius-desc
  detail::ZeroCutTable zeros_;        ///< per-live-disk boundary-relay cuts
  /// Prefilter scan order: (~radius-bits, index) keys whose ascending sort
  /// is exactly radius-descending then index-ascending.  `order_alt_` is
  /// the ping-pong buffer of the byte-wise radix sort (skyline_dc.cpp).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order_alt_;
  std::vector<std::uint32_t> live_;   ///< prefilter: surviving indices
  std::vector<std::uint8_t> dom_;     ///< prefilter: dominated verdicts
};

/// Compute the skyline of a local disk set around relay `o` with the
/// divide-and-conquer algorithm.
///
/// Preconditions: every disk contains `o` (a *local* disk set; validated by
/// the `mldcs()` entry point, assumed here).  Arc disk-indices in the result
/// refer to positions in `disks`.
///
/// `stats`, when non-null, accumulates Merge instrumentation across all
/// recursion levels.
///
/// Delegates to the workspace engine through a thread-local workspace, so
/// repeated calls on one thread reuse scratch automatically.
[[nodiscard]] MLDCS_ALLOC_OK Skyline compute_skyline(
    std::span<const geom::Disk> disks, geom::Vec2 o,
    MergeStats* stats = nullptr);

/// Workspace overload: same algorithm and result, with all intermediate
/// buffers taken from `ws`.  The only allocation is the returned Skyline's
/// own arc vector; use compute_skyline_arcs to avoid even that.
[[nodiscard]] MLDCS_ALLOC_OK Skyline compute_skyline(
    std::span<const geom::Disk> disks, geom::Vec2 o, SkylineWorkspace& ws,
    MergeStats* stats = nullptr);

/// Fully allocation-free form: writes the final arc list into `out`
/// (cleared first, capacity reused).  The hot path of the batch all-relay
/// API.
MLDCS_HOT_PATH MLDCS_NO_LOCK void compute_skyline_arcs(
    std::span<const geom::Disk> disks, geom::Vec2 o, SkylineWorkspace& ws,
    std::vector<Arc>& out, MergeStats* stats = nullptr);

}  // namespace mldcs::core
