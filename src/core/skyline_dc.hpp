#pragma once

/// \file skyline_dc.hpp
/// The paper's divide-and-conquer `Skyline` procedure (Section 3.4):
/// split the local disk set in half, recurse, and `Merge` the two partial
/// skylines.  With Lemma 8 bounding every skyline of n disks to at most 2n
/// arcs, Merge is O(n) and the whole algorithm is O(n log n) (Theorem 9) —
/// optimal, since sorting reduces to local-disk-cover computation.

#include <span>

#include "core/merge.hpp"
#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Compute the skyline of a local disk set around relay `o` with the
/// divide-and-conquer algorithm.
///
/// Preconditions: every disk contains `o` (a *local* disk set; validated by
/// the `mldcs()` entry point, assumed here).  Arc disk-indices in the result
/// refer to positions in `disks`.
///
/// `stats`, when non-null, accumulates Merge instrumentation across all
/// recursion levels.
[[nodiscard]] Skyline compute_skyline(std::span<const geom::Disk> disks,
                                      geom::Vec2 o,
                                      MergeStats* stats = nullptr);

}  // namespace mldcs::core
