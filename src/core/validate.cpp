#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

using geom::kTwoPi;

double max_radial_error(const Skyline& sky, std::span<const geom::Disk> disks,
                        std::size_t samples) {
  double worst = 0.0;
  for (std::size_t k = 0; k < samples; ++k) {
    const double theta =
        kTwoPi * static_cast<double>(k) / static_cast<double>(samples);
    const double truth = geom::radial_envelope(disks, sky.origin(), theta);
    const double got = sky.radius_at(disks, theta);
    worst = std::max(worst, std::fabs(truth - got));
  }
  return worst;
}

bool is_disk_cover_set(std::span<const std::size_t> subset,
                       std::span<const geom::Disk> disks, geom::Vec2 o,
                       std::size_t samples, double tol) {
  std::vector<geom::Disk> chosen;
  chosen.reserve(subset.size());
  for (std::size_t i : subset) {
    if (i >= disks.size()) return false;
    chosen.push_back(disks[i]);
  }
  for (std::size_t k = 0; k < samples; ++k) {
    const double theta =
        kTwoPi * static_cast<double>(k) / static_cast<double>(samples);
    const double full = geom::radial_envelope(disks, o, theta);
    const double sub = geom::radial_envelope(chosen, o, theta);
    if (sub < full - tol) return false;
  }
  return true;
}

std::optional<geom::Vec2> exclusive_coverage_witness(
    const Skyline& sky, std::span<const geom::Disk> disks, std::size_t i) {
  for (const Arc& a : sky.arcs()) {
    if (a.disk != i) continue;
    // Interior point of the arc, pulled slightly toward the relay so it is
    // strictly inside disk i.  By the Theorem 3 argument, a small enough
    // nudge escapes every other disk; we search a few shrinking nudges and
    // verify explicitly.
    const double theta = a.mid();
    const double rho = geom::radial_distance(disks[i], sky.origin(), theta);
    for (double nudge : {1e-7, 1e-9, 1e-11}) {
      const geom::Vec2 p =
          sky.origin() + (rho * (1.0 - nudge)) * geom::unit_at(theta);
      bool exclusive = disks[i].contains(p, 0.0);
      for (std::size_t j = 0; exclusive && j < disks.size(); ++j) {
        if (j != i && disks[j].contains(p, 0.0)) exclusive = false;
      }
      if (exclusive) return p;
    }
  }
  return std::nullopt;
}

std::string verify_skyline(const Skyline& sky,
                           std::span<const geom::Disk> disks) {
  std::ostringstream msg;
  if (!Skyline::well_formed(sky.arcs(), disks.size())) {
    return "arc list is not well-formed";
  }
  if (sky.empty()) {
    return disks.empty() ? std::string{}
                         : "skyline empty but disk set is not";
  }
  const auto arcs = sky.arcs();
  for (std::size_t k = 0; k < arcs.size(); ++k) {
    const Arc& a = arcs[k];
    // The arc's disk must be (one of) the outermost at the midpoint.
    const double mid = a.mid();
    const double mine = geom::radial_distance(disks[a.disk], sky.origin(), mid);
    const double best = geom::radial_envelope(disks, sky.origin(), mid);
    if (mine < best - 1e-7) {
      msg << "arc " << k << " (" << a << ") is not on the envelope at its"
          << " midpoint: rho=" << mine << " < envelope=" << best;
      return msg.str();
    }
    // Radial continuity across the shared endpoint with the next arc.
    if (k + 1 < arcs.size()) {
      const Arc& b = arcs[k + 1];
      const double ra = geom::radial_distance(disks[a.disk], sky.origin(), a.end);
      const double rb =
          geom::radial_distance(disks[b.disk], sky.origin(), b.start);
      if (std::fabs(ra - rb) > 1e-6) {
        msg << "radial discontinuity " << std::fabs(ra - rb) << " between arc "
            << k << " and arc " << k + 1 << " at angle " << a.end;
        return msg.str();
      }
    }
  }
  // Closure across the 0 / 2*pi seam.
  const double r0 =
      geom::radial_distance(disks[arcs.front().disk], sky.origin(), 0.0);
  const double r1 =
      geom::radial_distance(disks[arcs.back().disk], sky.origin(), kTwoPi);
  if (std::fabs(r0 - r1) > 1e-6) {
    msg << "radial discontinuity " << std::fabs(r0 - r1)
        << " across the 0/2*pi seam";
    return msg.str();
  }
  return {};
}

}  // namespace mldcs::core
