#pragma once

/// \file skyline.hpp
/// The skyline of a local disk set: the boundary of the union of disks,
/// represented as the paper's angle-sorted arc list
/// (alpha_0, u_{s_0}, r_{s_0}, alpha_1, ..., alpha_n) with alpha_0 = 0 and
/// alpha_n = 2*pi (Section 3.3).

#include <cstddef>
#include <span>
#include <vector>

#include "core/arc.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// An immutable, validated skyline: a contiguous sequence of arcs covering
/// [0, 2*pi] exactly once around the relay `origin`.
///
/// Invariants (checked by `well_formed`, enforced by the factory functions):
///  - arcs are non-empty (unless the skyline is of an empty disk set),
///  - arcs[0].start == 0 and arcs.back().end == 2*pi,
///  - arcs[i].end == arcs[i+1].start exactly (shared doubles, no drift),
///  - every arc has strictly positive span,
///  - adjacent arcs come from different disks (Step 3 of Merge coalesces).
class Skyline {
 public:
  Skyline() = default;

  /// Wrap an arc list that already satisfies the invariants.
  /// Precondition: `well_formed(arcs)`; checked in debug builds.
  Skyline(geom::Vec2 origin, std::vector<Arc> arcs);

  [[nodiscard]] geom::Vec2 origin() const noexcept { return origin_; }
  [[nodiscard]] std::span<const Arc> arcs() const noexcept { return arcs_; }
  [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return arcs_.empty(); }

  /// The skyline set (Section 3.2): sorted, de-duplicated indices of the
  /// disks contributing at least one arc.  By Theorem 3 this is the MLDCS.
  [[nodiscard]] std::vector<std::size_t> skyline_set() const;

  /// The index of the arc covering ray angle `theta` (normalized
  /// internally).  Returns SIZE_MAX on an empty skyline.
  [[nodiscard]] std::size_t arc_at(double theta) const noexcept;

  /// The disk index of the arc covering ray angle `theta`.
  [[nodiscard]] std::size_t disk_at(double theta) const noexcept;

  /// Number of arcs contributed by each disk index present in the skyline;
  /// the Lemma 8 instrumentation (returns pairs (disk, arc_count) sorted by
  /// disk).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  arcs_per_disk() const;

  /// The radial-envelope value rho(theta) implied by this skyline, looking
  /// the covering arc's disk up in `disks` (the same local disk set the
  /// skyline was computed from).
  [[nodiscard]] double radius_at(std::span<const geom::Disk> disks,
                                 double theta) const noexcept;

  /// Exact area enclosed by the skyline (= area of the union of disks),
  /// via the closed-form sector integral of each arc.
  [[nodiscard]] double enclosed_area(std::span<const geom::Disk> disks) const;

  /// Exact length of the skyline (= perimeter of the union of disks): each
  /// arc contributes r * (ccw sweep of its endpoints measured at the disk
  /// center).  Traversing the skyline CCW around the relay also traverses
  /// each contributing circle CCW, so the center-angle sweep is well
  /// defined.
  [[nodiscard]] double perimeter(std::span<const geom::Disk> disks) const;

  /// Structural-invariant check (see class comment).  `n_disks` bounds the
  /// stored disk indices; pass SIZE_MAX to skip the index bound.
  [[nodiscard]] static bool well_formed(std::span<const Arc> arcs,
                                        std::size_t n_disks) noexcept;

 private:
  geom::Vec2 origin_;
  std::vector<Arc> arcs_;
};

/// Build a well-formed arc list from a possibly fragmented one: sorts by
/// start angle, snaps adjacent endpoints together, drops empty arcs, and
/// coalesces neighboring arcs from the same disk (including across the
/// 0/2*pi seam conceptually — the first and last arcs may share a disk;
/// they are kept split per the paper's +x-axis convention).
[[nodiscard]] std::vector<Arc> normalize_arcs(std::vector<Arc> arcs);

/// In-place variant: normalize the tail `arcs[from..]` (a fragmented arc
/// list covering [0, 2*pi]) without touching `arcs[0..from)`, compacting
/// the vector so the normalized arcs end at the (possibly smaller) new
/// size.  Allocation-free; the workspace skyline engine appends a raw
/// Merge output and normalizes it in place with this.
void normalize_arcs_in_place(std::vector<Arc>& arcs, std::size_t from = 0);

}  // namespace mldcs::core
