#include "core/skyline.hpp"

#include <algorithm>
#include <limits>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"
#include "geometry/area.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

using geom::kAngleTol;
using geom::kTwoPi;

Skyline::Skyline(geom::Vec2 origin, std::vector<Arc> arcs)
    : origin_(origin), arcs_(std::move(arcs)) {
  MLDCS_DCHECK_OK(check_arc_list(arcs_));
}

std::vector<std::size_t> Skyline::skyline_set() const {
  std::vector<std::size_t> out;
  out.reserve(arcs_.size());
  for (const Arc& a : arcs_) out.push_back(a.disk);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Skyline::arc_at(double theta) const noexcept {
  if (arcs_.empty()) return std::numeric_limits<std::size_t>::max();
  const double t = geom::normalize_angle(theta);
  // Binary search on start angles: last arc with start <= t.
  auto it = std::upper_bound(
      arcs_.begin(), arcs_.end(), t,
      [](double v, const Arc& a) { return v < a.start; });
  if (it == arcs_.begin()) return 0;
  return static_cast<std::size_t>(std::distance(arcs_.begin(), it) - 1);
}

std::size_t Skyline::disk_at(double theta) const noexcept {
  const std::size_t i = arc_at(theta);
  return i == std::numeric_limits<std::size_t>::max() ? i : arcs_[i].disk;
}

std::vector<std::pair<std::size_t, std::size_t>> Skyline::arcs_per_disk() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::vector<std::size_t> disks;
  disks.reserve(arcs_.size());
  for (const Arc& a : arcs_) disks.push_back(a.disk);
  std::sort(disks.begin(), disks.end());
  for (std::size_t i = 0; i < disks.size();) {
    std::size_t j = i;
    while (j < disks.size() && disks[j] == disks[i]) ++j;
    out.emplace_back(disks[i], j - i);
    i = j;
  }
  return out;
}

double Skyline::radius_at(std::span<const geom::Disk> disks,
                          double theta) const noexcept {
  const std::size_t i = disk_at(theta);
  if (i == std::numeric_limits<std::size_t>::max() || i >= disks.size())
    return 0.0;
  return geom::radial_distance(disks[i], origin_, theta);
}

double Skyline::perimeter(std::span<const geom::Disk> disks) const {
  double length = 0.0;
  for (const Arc& a : arcs_) {
    const geom::Disk& d = disks[a.disk];
    if (a.span() >= kTwoPi - kAngleTol) {
      length += kTwoPi * d.radius;
      continue;
    }
    const geom::RadialDisk rd(d, origin_);
    const geom::Vec2 p0 = rd.boundary_point_at(a.start);
    const geom::Vec2 p1 = rd.boundary_point_at(a.end);
    const double psi0 = (p0 - d.center).angle();
    const double psi1 = (p1 - d.center).angle();
    length += d.radius * geom::ccw_span(psi0, psi1);
  }
  return length;
}

double Skyline::enclosed_area(std::span<const geom::Disk> disks) const {
  double area = 0.0;
  for (const Arc& a : arcs_) {
    area += geom::sector_area_under_disk(disks[a.disk], origin_, a.start, a.end);
  }
  return area;
}

bool Skyline::well_formed(std::span<const Arc> arcs,
                          std::size_t n_disks) noexcept {
  if (arcs.empty()) return true;
  // mldcs-analyze:allow(tolerance-audit): exact +x-axis split convention
  if (arcs.front().start != 0.0) return false;
  if (!geom::approx_equal(arcs.back().end, kTwoPi, kAngleTol)) return false;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (!(a.start < a.end)) return false;
    if (n_disks != std::numeric_limits<std::size_t>::max() && a.disk >= n_disks)
      return false;
    if (i + 1 < arcs.size()) {
      // mldcs-analyze:allow(tolerance-audit): exact contiguity by design
      if (arcs[i + 1].start != a.end) return false;
      if (arcs[i + 1].disk == a.disk) return false;     // coalesced
    }
  }
  return true;
}

std::vector<Arc> normalize_arcs(std::vector<Arc> arcs) {
  normalize_arcs_in_place(arcs);
  return arcs;
}

void normalize_arcs_in_place(std::vector<Arc>& arcs, std::size_t from) {
  if (arcs.size() <= from) return;
  std::sort(arcs.begin() + static_cast<std::ptrdiff_t>(from), arcs.end(),
            [](const Arc& a, const Arc& b) { return a.start < b.start; });

  // Compact in place: `w` is one past the last kept arc.  The read cursor
  // is always >= w, so reads never see overwritten slots.
  std::size_t w = from;
  for (std::size_t r = from; r < arcs.size(); ++r) {
    Arc a = arcs[r];
    if (w > from) a.start = arcs[w - 1].end;  // snap, kill drift
    if (a.end - a.start <= kAngleTol) {
      // Empty sliver: extend the previous arc over it instead.
      if (w > from && a.end > arcs[w - 1].end) arcs[w - 1].end = a.end;
      continue;
    }
    if (w > from && arcs[w - 1].disk == a.disk) {
      arcs[w - 1].end = a.end;  // coalesce same-disk neighbors (Merge Step 3)
    } else {
      arcs[w++] = a;
    }
  }
  if (w > from) {
    arcs[from].start = 0.0;
    arcs[w - 1].end = kTwoPi;
    // Snapping the last endpoint may create a sliver-free list already; the
    // front/back adjustments preserve contiguity by construction.
  }
  arcs.resize(w);
  MLDCS_DCHECK_OK(check_arc_list(
      std::span<const Arc>(arcs.data() + from, arcs.size() - from)));
}

}  // namespace mldcs::core
