#pragma once

/// \file validate.hpp
/// Independent checks of skyline and cover-set correctness, used by the
/// test suites and by the figure benches as online sanity checks.
///
/// These validators deliberately avoid the Merge machinery: they compare
/// radial envelopes point-wise and construct the Theorem 3 exclusive-
/// coverage witnesses directly, so a bug in Merge cannot hide from them.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Maximum absolute difference between the skyline's implied radial function
/// and the true upper envelope max_i rho_i, over `samples` equally spaced
/// angles.  A correct skyline yields ~0 (within tolerance).
[[nodiscard]] double max_radial_error(const Skyline& sky,
                                      std::span<const geom::Disk> disks,
                                      std::size_t samples = 4096);

/// True if the subset of disks indexed by `subset` covers the same area as
/// all of `disks`: the subset's radial envelope equals the full envelope at
/// `samples` angles (sufficient for local disk sets by Corollary 2 star-
/// shapedness, up to sampling resolution).
[[nodiscard]] bool is_disk_cover_set(std::span<const std::size_t> subset,
                                     std::span<const geom::Disk> disks,
                                     geom::Vec2 o, std::size_t samples = 4096,
                                     double tol = 1e-7);

/// Theorem 3 witness: a point exclusively covered by `disks[i]` (inside it,
/// outside every other disk), or nullopt if disk i contributes no skyline
/// arc.  Constructed as the paper does: take an interior point of one of
/// disk i's skyline arcs, nudged just inside the boundary.
[[nodiscard]] std::optional<geom::Vec2> exclusive_coverage_witness(
    const Skyline& sky, std::span<const geom::Disk> disks, std::size_t i);

/// Structural + geometric verification of a computed skyline:
/// well-formedness, every arc's disk is the radial argmax at the arc
/// midpoint, and endpoints of adjacent arcs agree radially (continuity).
/// Returns a description of the first failure, empty string if valid.
[[nodiscard]] std::string verify_skyline(const Skyline& sky,
                                         std::span<const geom::Disk> disks);

}  // namespace mldcs::core
