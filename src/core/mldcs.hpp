#pragma once

/// \file mldcs.hpp
/// Public entry points for the Minimum Local Disk Cover Set problem
/// (paper Section 3.2).
///
/// Input: a local disk set {B(u_0,r_0), ..., B(u_n,r_n)} such that every
/// u_i is a bidirectional neighbor of the relay u_0 — equivalently, the
/// relay position `o` = u_0 lies in every disk.  Output: a minimum-
/// cardinality subset of disks whose union equals the union of all disks.
/// By Theorem 3 this subset is exactly the skyline set, computed here in
/// O(n log n) by the divide-and-conquer algorithm.

#include <span>
#include <stdexcept>
#include <vector>

#include "core/annotations.hpp"
#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Error thrown when an input violates the local-disk-set precondition
/// (some disk does not contain the relay, a radius is negative/non-finite,
/// or a coordinate is non-finite).
class InvalidLocalDiskSet : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A validated local disk set: the relay position `o` plus the coverage
/// disks of the relay and its 1-hop neighbors.
class LocalDiskSet {
 public:
  /// Validates the precondition ||o - u_i|| <= r_i for every disk and that
  /// all values are finite; throws InvalidLocalDiskSet otherwise.
  LocalDiskSet(geom::Vec2 origin, std::vector<geom::Disk> disks);

  [[nodiscard]] geom::Vec2 origin() const noexcept { return origin_; }
  [[nodiscard]] std::span<const geom::Disk> disks() const noexcept {
    return disks_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return disks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return disks_.empty(); }

 private:
  geom::Vec2 origin_;
  std::vector<geom::Disk> disks_;
};

/// Compute the minimum local disk cover set of a validated local disk set:
/// sorted indices (into `set.disks()`) of a minimum subset whose disk union
/// equals the union of all disks.  O(n log n).
[[nodiscard]] std::vector<std::size_t> mldcs(const LocalDiskSet& set);

/// Unvalidated fast path for callers that construct local disk sets by
/// construction (e.g. the broadcast layer, which derives them from a disk
/// graph where the precondition holds by the bidirectional-link rule).
[[nodiscard]] std::vector<std::size_t> mldcs_unchecked(
    std::span<const geom::Disk> disks, geom::Vec2 o);

/// The full skyline of a validated local disk set (arcs, not just the set);
/// useful for rendering, area computation, and the Lemma 8 instrumentation.
[[nodiscard]] Skyline skyline_of(const LocalDiskSet& set);

/// Validate the local-disk-set precondition without constructing; returns a
/// human-readable description of the first violation, or an empty string if
/// valid.
[[nodiscard]] MLDCS_ALLOC_OK std::string describe_local_set_violation(
    std::span<const geom::Disk> disks, geom::Vec2 o);

}  // namespace mldcs::core
