#pragma once

/// \file scenarios.hpp
/// Local-disk-set generators shared by the property-test suites and the
/// figure benches: random heterogeneous/homogeneous neighborhoods,
/// degenerate configurations (the edge cases Merge must survive), and the
/// paper's named constructions (Figure 4.1).

#include <cstddef>
#include <vector>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {

/// A generated local disk set: `disks[0]` is the relay's own disk centered
/// at `origin`; all disks contain `origin` (and, for the random generators,
/// satisfy the full bidirectional-neighbor rule ||u_i - o|| <= min(r_0, r_i)).
struct Scenario {
  geom::Vec2 origin;
  std::vector<geom::Disk> disks;
};

/// Random neighborhood of n disks (relay + n-1 neighbors).  Radii are
/// U[r_min, r_max] when `heterogeneous`, else all r_max; neighbor positions
/// are uniform over the disk of radius min(r_0, r_i) around the origin, so
/// the bidirectional rule holds by construction.
[[nodiscard]] Scenario random_local_set(sim::Xoshiro256& rng, std::size_t n,
                                        bool heterogeneous,
                                        double r_min = 1.0, double r_max = 2.0);

/// n concentric disks at the origin with radii 1, 2, ..., n — the skyline
/// is the single largest disk.
[[nodiscard]] Scenario concentric_set(std::size_t n);

/// `copies` identical unit disks around the origin — exercises coincident-
/// circle tie-breaking; MLDCS cardinality must be 1.
[[nodiscard]] Scenario duplicate_set(std::size_t copies);

/// One huge disk at the origin dominating n - 1 random unit disks — MLDCS
/// cardinality must be 1 (the huge disk).
[[nodiscard]] Scenario dominated_set(sim::Xoshiro256& rng, std::size_t n);

/// Two internally tangent disks (small disk touching the big one from
/// inside at angle 0) plus the relay's own disk.
[[nodiscard]] Scenario tangent_pair();

/// Disk centers evenly spaced on a diameter segment through the origin,
/// identical radii — produces long chains of pairwise-crossing circles.
[[nodiscard]] Scenario collinear_set(std::size_t n);

/// The Figure 4.1 construction: k unit disks centered evenly on the circle
/// of radius 1/2 around the origin, plus (added conceptually *last*) the
/// disk B(o, r) with r = ||o - p|| + r_frac * (3/2 - ||o - p||), where p is
/// the outer intersection point of two adjacent unit circles.  For
/// r_frac in (0, 1) the central disk contributes exactly k skyline arcs —
/// the example showing Lemma 8's insertion bound needs decreasing-radius
/// order.  disks[k] is the central disk.
[[nodiscard]] Scenario figure41_configuration(std::size_t k,
                                              double r_frac = 0.5);

/// The paper's running example of Figure 3.2-flavored neighborhoods: a
/// relay with one dominated neighbor.  disks = {relay, 4 skyline disks,
/// 1 dominated disk (index 3)}; MLDCS excludes index 3.
[[nodiscard]] Scenario figure32_like_configuration();

}  // namespace mldcs::core
