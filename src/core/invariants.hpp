#pragma once

/// \file invariants.hpp
/// The correctness-tooling layer for the core algorithms: the
/// MLDCS_CHECK / MLDCS_DCHECK macro family plus structured validators for
/// the geometric invariants that the skyline machinery depends on.
///
/// Every degeneracy in this library — tangent disks, coincident centers,
/// arcs collapsing below kAngleTol — must be resolved on the *same side* by
/// `compute_skyline` (D&C), `compute_skyline_incremental`, and
/// `compute_skyline_bruteforce`, or the three stop cross-validating and the
/// Theorem 3 minimality argument silently breaks.  These validators state
/// those conventions as checkable predicates and the macros make violations
/// loud instead of letting them surface later as a wrong cover set.
///
/// Failure policy: a failing check prints the expression, location, and a
/// caller-supplied detail dump, then aborts — unless the process opted into
/// soft-fail counting (`set_invariant_action(InvariantAction::kCount)`),
/// in which case failures increment an atomic counter and record the first
/// message for later inspection (useful in release monitoring and in tests
/// of the checking machinery itself).
///
/// Enablement: MLDCS_CHECK is always compiled in (use it only for O(1)
/// checks on hot paths).  MLDCS_DCHECK / MLDCS_DCHECK_OK compile to no-ops
/// unless the build defines MLDCS_ENABLE_INVARIANT_CHECKS (CMake option of
/// the same name) or NDEBUG is absent — mirroring assert(), which these
/// macros replace.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <sstream>
#include <string>

#include "core/annotations.hpp"
#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

#if defined(MLDCS_ENABLE_INVARIANT_CHECKS) || !defined(NDEBUG)
#define MLDCS_INVARIANT_CHECKS_ENABLED 1
#else
#define MLDCS_INVARIANT_CHECKS_ENABLED 0
#endif

namespace mldcs::core {

/// Compile-time mirror of the macro gate, for `if constexpr` wiring.
inline constexpr bool kInvariantChecksEnabled =
    MLDCS_INVARIANT_CHECKS_ENABLED != 0;

/// Deep (superlinear) checks such as check_skyline_minimality are skipped
/// above this input size so debug/sanitizer test runs stay fast.
inline constexpr std::size_t kDeepCheckMaxDisks = 96;

/// What a failing MLDCS_CHECK / MLDCS_DCHECK does.
enum class InvariantAction {
  kAbort,  ///< print to stderr and std::abort() (default)
  kCount,  ///< increment invariant_failure_count(), record first message
};

/// Set the process-wide failure action.  Thread-safe.
void set_invariant_action(InvariantAction action) noexcept;
[[nodiscard]] InvariantAction invariant_action() noexcept;

/// Number of soft-failed checks since the last reset (kCount mode only).
[[nodiscard]] std::uint64_t invariant_failure_count() noexcept;

/// The message of the first soft-failed check since the last reset, or an
/// empty string.
[[nodiscard]] std::string first_invariant_failure();

/// Reset the soft-fail counter and recorded message.
void reset_invariant_failures() noexcept;

/// Report a failed check.  Called by the macros; aborts or counts per
/// invariant_action().
void report_invariant_violation(const char* expr, const char* file, int line,
                                const std::string& detail);

// --- Structured validators -------------------------------------------------
// Each returns an empty string when the invariant holds and a human-readable
// description of the first violation otherwise, so they can be used both via
// MLDCS_DCHECK_OK and directly from tests.

/// Structural invariants of a skyline arc list (the class comment on
/// `Skyline`): angles sorted and exactly contiguous, cyclic closure
/// arcs.front().start == 0 and arcs.back().end == 2*pi at the relay seam,
/// no arc narrower than kAngleTol (sub-tolerance slivers must have been
/// coalesced), adjacent arcs from different disks, and all disk indices
/// below `n_disks` (pass SIZE_MAX to skip the bound).
[[nodiscard]] MLDCS_ALLOC_OK std::string check_arc_list(
    std::span<const Arc> arcs,
    std::size_t n_disks = std::numeric_limits<std::size_t>::max());

/// The local-disk-set premise (paper Section 3.2): every disk is finite,
/// non-negative, and contains the relay `o` — the geometric form of the
/// bidirectional-link rule (||o - u_i|| <= r_i means u_i hears o and o
/// hears u_i at radius r_i).
[[nodiscard]] MLDCS_ALLOC_OK std::string check_local_disk_premise(
    std::span<const geom::Disk> disks, geom::Vec2 o);

/// Theorem 3 contract of a computed skyline: every kept disk contributes a
/// genuine boundary arc (its radial distance attains the envelope at the
/// arc midpoint, and the arc is wider than kAngleTol), the skyline set
/// equals the O(n^2) brute-force reference's set, and the enclosed union
/// area matches the reference within `area_tol` (absolute, on the paper's
/// O(10)-sized deployments).  Cost: O(n^2) — gate with kDeepCheckMaxDisks.
[[nodiscard]] MLDCS_ALLOC_OK std::string check_skyline_minimality(
    std::span<const geom::Disk> disks, const Skyline& sky,
    double area_tol = 1e-7);

}  // namespace mldcs::core

// --- Macro family ----------------------------------------------------------

/// Always-compiled check; keep the condition O(1) on hot paths.  `msg` is a
/// stream expression evaluated only on failure:
///   MLDCS_CHECK(a.start < a.end, "inverted arc " << a);
#define MLDCS_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      std::ostringstream mldcs_check_os_;                                   \
      mldcs_check_os_ << msg; /* NOLINT(bugprone-macro-parentheses): */     \
      /* msg is a << chain by contract, parenthesizing would break it */    \
      ::mldcs::core::report_invariant_violation(#cond, __FILE__, __LINE__,  \
                                                mldcs_check_os_.str());     \
    }                                                                       \
  } while (false)

/// Always-compiled form for validators returning an error string; fails
/// when the string is non-empty and uses it as the detail dump.
#define MLDCS_CHECK_OK(expr)                                                \
  do {                                                                      \
    const std::string mldcs_check_err_ = (expr);                            \
    if (!mldcs_check_err_.empty()) [[unlikely]] {                           \
      ::mldcs::core::report_invariant_violation(#expr, __FILE__, __LINE__,  \
                                                mldcs_check_err_);          \
    }                                                                       \
  } while (false)

#if MLDCS_INVARIANT_CHECKS_ENABLED
#define MLDCS_DCHECK(cond, msg) MLDCS_CHECK(cond, msg)
#define MLDCS_DCHECK_OK(expr) MLDCS_CHECK_OK(expr)
#else
// Disabled: the arguments are not evaluated (like assert under NDEBUG).
#define MLDCS_DCHECK(cond, msg) static_cast<void>(0)
#define MLDCS_DCHECK_OK(expr) static_cast<void>(0)
#endif
