#include "core/skyline_reference.hpp"

#include <algorithm>
#include <vector>

#include "geometry/angle.hpp"
#include "geometry/circle_intersect.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

using geom::kAngleTol;
using geom::kTwoPi;

Skyline compute_skyline_bruteforce(std::span<const geom::Disk> disks,
                                   geom::Vec2 o) {
  if (disks.empty()) return Skyline{o, {}};

  // Candidate breakpoints: every circle-pair intersection angle at o, the
  // zero-transition angles of boundary-touching disks (see
  // radial_zero_transitions), plus the 0/2*pi seam.  The true skyline's
  // breakpoints are a subset.
  std::vector<double> breaks{0.0, kTwoPi};
  for (std::size_t i = 0; i < disks.size(); ++i) {
    for (std::size_t j = i + 1; j < disks.size(); ++j) {
      const auto isect = geom::intersect_circles(disks[i], disks[j]);
      for (int k = 0; k < isect.count; ++k) {
        const geom::Vec2 p = isect.points[static_cast<std::size_t>(k)];
        if (geom::distance2(p, o) <= geom::kTol * geom::kTol) continue;
        breaks.push_back(geom::normalize_angle((p - o).angle()));
      }
    }
    double zeros[2];
    const int nz = geom::radial_zero_transitions(disks[i], o, zeros);
    for (int k = 0; k < nz; ++k) breaks.push_back(zeros[k]);
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return b - a <= kAngleTol; }),
               breaks.end());
  breaks.front() = 0.0;
  breaks.back() = kTwoPi;

  // Between consecutive candidate breakpoints no two radial functions can
  // cross, so a single midpoint argmax identifies the whole span's arc.
  std::vector<Arc> arcs;
  arcs.reserve(breaks.size());
  for (std::size_t k = 0; k + 1 < breaks.size(); ++k) {
    if (breaks[k + 1] - breaks[k] <= kAngleTol) continue;
    const double mid = 0.5 * (breaks[k] + breaks[k + 1]);
    const std::size_t winner = geom::radial_argmax(disks, o, mid);
    arcs.push_back({breaks[k], breaks[k + 1], winner});
  }
  return Skyline{o, normalize_arcs(std::move(arcs))};
}

Skyline compute_skyline_incremental(std::span<const geom::Disk> disks,
                                    geom::Vec2 o, MergeStats* stats) {
  if (disks.empty()) return Skyline{o, {}};
  std::vector<Arc> acc{Arc{0.0, kTwoPi, 0}};
  for (std::size_t i = 1; i < disks.size(); ++i) {
    const std::vector<Arc> single{Arc{0.0, kTwoPi, i}};
    acc = merge_skylines(acc, single, disks, o, stats);
  }
  return Skyline{o, std::move(acc)};
}

namespace {

/// Skyline of the index range [lo, hi) of `disks`, top-down.
std::vector<Arc> skyline_range(std::span<const geom::Disk> disks,
                               geom::Vec2 o, std::size_t lo, std::size_t hi,
                               MergeStats* stats) {
  if (hi - lo == 1) return {Arc{0.0, kTwoPi, lo}};
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::vector<Arc> left = skyline_range(disks, o, lo, mid, stats);
  const std::vector<Arc> right = skyline_range(disks, o, mid, hi, stats);
  return merge_skylines(left, right, disks, o, stats);
}

}  // namespace

Skyline compute_skyline_recursive(std::span<const geom::Disk> disks,
                                  geom::Vec2 o, MergeStats* stats) {
  if (disks.empty()) return Skyline{o, {}};
  return Skyline{o, skyline_range(disks, o, 0, disks.size(), stats)};
}

}  // namespace mldcs::core
