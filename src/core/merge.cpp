#include "core/merge.hpp"

#include "core/skyline.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"
#include "geometry/circle_intersect.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

using geom::kAngleTol;
using geom::kTwoPi;

namespace {

/// Radial distance rho(theta) with the ray direction passed as a unit
/// vector: rho = dot(rel, u) + sqrt(r^2 - cross(rel, u)^2), where
/// rel = center - o.  Since dot(rel, u) = d cos(theta - phi) and
/// cross(rel, u) = d sin(theta - phi), this is RadialDisk::radius_at
/// term for term — but one sincos shared by both disks replaces a
/// norm/atan2/sin/cos chain per disk, and this comparison is the hot
/// operation of Merge (once per emitted sub-span).
double radial_distance_along(const geom::Disk& d, geom::Vec2 o,
                             geom::Vec2 u) noexcept {
  const geom::Vec2 rel = d.center - o;
  const double across = rel.cross(u);
  const double radicand = d.radius * d.radius - across * across;
  return rel.dot(u) + std::sqrt(geom::clamp(radicand, 0.0, radicand));
}

}  // namespace

std::size_t outer_disk_at(std::span<const geom::Disk> disks, geom::Vec2 o,
                          double theta, std::size_t i, std::size_t j) noexcept {
  const geom::Vec2 u = geom::unit_at(theta);
  const double ri = radial_distance_along(disks[i], o, u);
  const double rj = radial_distance_along(disks[j], o, u);
  if (ri > rj + geom::kTol) return i;
  if (rj > ri + geom::kTol) return j;
  // Radial tie: prefer the larger disk radius, then the smaller index, so
  // every algorithm in the library resolves degeneracies identically.
  if (disks[i].radius > disks[j].radius + geom::kTol) return i;
  if (disks[j].radius > disks[i].radius + geom::kTol) return j;
  return std::min(i, j);
}

namespace {

/// Resolve one aligned span [alpha, beta] on which skyline 1 shows disk `i`
/// and skyline 2 shows disk `j` (paper Merge Step 2, Cases 1-3).  Appends
/// the winning arcs to `out`.
void resolve_span(double alpha, double beta, std::size_t i, std::size_t j,
                  std::span<const geom::Disk> disks, geom::Vec2 o,
                  std::vector<Arc>& out, MergeStats* stats) {
  if (i == j) {
    out.push_back({alpha, beta, i});
    return;
  }

  // Sub-breakpoints: angles (at o) of the circle-circle intersection points
  // that fall strictly inside (alpha, beta).  Because o is inside both
  // disks, a point p lies on both boundaries iff the two radial functions
  // agree at theta = angle(p - o) — so these are exactly the transversal
  // crossings of the two arcs.  Degenerate extra: when o sits exactly ON a
  // disk boundary, that disk's rho is 0 on a half circle and the winner can
  // also flip at its zero-transition angles (which are not intersection
  // points); those are added as cut candidates too.
  std::array<double, 6> cuts{};
  std::size_t n_cuts = 0;
  const auto add_cut = [&](geom::Vec2 p) {
    if (geom::distance2(p, o) <= geom::kTol * geom::kTol) return;  // p == o
    const double ang = geom::normalize_angle((p - o).angle());
    if (ang > alpha + kAngleTol && ang < beta - kAngleTol) {
      MLDCS_CHECK(n_cuts < cuts.size(),
                  "cut buffer overflow at angle " << ang << " on span ["
                                                  << alpha << ", " << beta
                                                  << "] for disks " << i
                                                  << "/" << j);
      cuts[n_cuts++] = ang;
    }
  };
  const auto isect =
      geom::intersect_circles(disks[i], disks[j], geom::kTol);
  if (stats != nullptr) ++stats->circle_intersections;
  if (isect.relation != geom::CircleRelation::kCoincident) {
    for (int k = 0; k < isect.count; ++k) {
      add_cut(isect.points[static_cast<std::size_t>(k)]);
    }
  }
  // (Coincident circles never cross transversally; the tie-break inside
  // outer_disk_at picks one of them for the whole span.)
  for (const std::size_t disk : {i, j}) {
    // Zero transitions exist only when o sits ON the disk's boundary
    // (|d - r| <= kTol).  Rule the common strictly-interior case out
    // without a sqrt: |d - r| <= kTol implies
    // |d^2 - r^2| = |d - r| (d + r) <= kTol (2r + kTol).
    const double r = disks[disk].radius;
    const double d2 = geom::distance2(disks[disk].center, o);
    if (std::fabs(d2 - r * r) > geom::kTol * (2.0 * r + 1.0)) continue;
    double zeros[2];
    const int nz = geom::radial_zero_transitions(disks[disk], o, zeros);
    for (int k = 0; k < nz; ++k) {
      if (zeros[k] > alpha + kAngleTol && zeros[k] < beta - kAngleTol) {
        MLDCS_CHECK(n_cuts < cuts.size(),
                    "cut buffer overflow at zero-transition "
                        << zeros[k] << " of disk " << disk);
        cuts[n_cuts++] = zeros[k];
      }
    }
  }
  // Tiny insertion sort: n_cuts <= 6, and GCC 12's -Warray-bounds trips on
  // std::sort's insertion threshold for small fixed arrays.
  for (std::size_t a = 1; a < n_cuts; ++a) {
    const double v = cuts[a];
    std::size_t b = a;
    while (b > 0 && cuts[b - 1] > v) {
      cuts[b] = cuts[b - 1];
      --b;
    }
    cuts[b] = v;
  }

  double lo = alpha;
  for (std::size_t k = 0; k <= n_cuts; ++k) {
    const double hi = (k == n_cuts) ? beta : cuts[k];
    if (hi - lo > kAngleTol) {
      const std::size_t winner =
          outer_disk_at(disks, o, 0.5 * (lo + hi), i, j);
      out.push_back({lo, hi, winner});
      if (stats != nullptr) ++stats->arcs_emitted;
    }
    lo = hi;
  }
}

}  // namespace

MLDCS_ALLOC_OK std::vector<Arc> merge_skylines(std::span<const Arc> sl1,
                                               std::span<const Arc> sl2,
                                               std::span<const geom::Disk> disks,
                                               geom::Vec2 o, MergeStats* stats) {
  std::vector<double> breaks;
  std::vector<Arc> out;
  merge_skylines(sl1, sl2, disks, o, breaks, out, stats);
  return out;
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    std::vector<double>& breaks, std::vector<Arc>& out, MergeStats* stats) {
  if (sl1.empty()) {
    out.insert(out.end(), sl2.begin(), sl2.end());
    return;
  }
  if (sl2.empty()) {
    out.insert(out.end(), sl1.begin(), sl1.end());
    return;
  }
  // Both inputs must already be full well-formed skylines over [0, 2*pi];
  // Merge's lockstep walk silently derails on anything less.
  MLDCS_DCHECK_OK(check_arc_list(sl1, disks.size()));
  MLDCS_DCHECK_OK(check_arc_list(sl2, disks.size()));

  // Step 1 (refinement): the union of both breakpoint sequences, deduped.
  breaks.clear();
  breaks.reserve(sl1.size() + sl2.size() + 1);
  for (const Arc& a : sl1) breaks.push_back(a.start);
  for (const Arc& a : sl2) breaks.push_back(a.start);
  breaks.push_back(kTwoPi);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) {
                             return b - a <= kAngleTol;
                           }),
               breaks.end());
  if (breaks.front() > kAngleTol) breaks.insert(breaks.begin(), 0.0);
  else breaks.front() = 0.0;
  breaks.back() = kTwoPi;

  // Step 2: walk both arc lists in lockstep over the refined spans,
  // appending raw (possibly fragmented) arcs after the caller's prefix.
  const std::size_t base = out.size();
  std::size_t p1 = 0;
  std::size_t p2 = 0;
  for (std::size_t k = 0; k + 1 < breaks.size(); ++k) {
    const double alpha = breaks[k];
    const double beta = breaks[k + 1];
    const double mid = 0.5 * (alpha + beta);
    while (p1 + 1 < sl1.size() && sl1[p1].end <= mid) ++p1;
    while (p2 + 1 < sl2.size() && sl2[p2].end <= mid) ++p2;
    if (stats != nullptr) ++stats->spans;
    resolve_span(alpha, beta, sl1[p1].disk, sl2[p2].disk, disks, o, out,
                 stats);
  }

  // Step 3: coalesce neighboring same-disk arcs and restore the invariants,
  // in place on the appended tail.
  normalize_arcs_in_place(out, base);
}

}  // namespace mldcs::core
