#include "core/merge.hpp"

#include "core/skyline.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"
#include "geometry/circle_intersect.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

using geom::kAngleTol;
using geom::kTwoPi;

namespace {

/// Radial distance rho(theta) with the ray direction passed as a unit
/// vector: rho = dot(rel, u) + sqrt(r^2 - cross(rel, u)^2), where
/// rel = center - o.  Since dot(rel, u) = d cos(theta - phi) and
/// cross(rel, u) = d sin(theta - phi), this is RadialDisk::radius_at
/// term for term — but one sincos shared by both disks replaces a
/// norm/atan2/sin/cos chain per disk, and this comparison is the hot
/// operation of Merge (once per emitted sub-span).
double radial_distance_along(const geom::Disk& d, geom::Vec2 o,
                             geom::Vec2 u) noexcept {
  const geom::Vec2 rel = d.center - o;
  const double across = rel.cross(u);
  const double radicand = d.radius * d.radius - across * across;
  return rel.dot(u) + std::sqrt(geom::clamp(radicand, 0.0, radicand));
}

}  // namespace

std::size_t outer_disk_at(std::span<const geom::Disk> disks, geom::Vec2 o,
                          double theta, std::size_t i, std::size_t j) noexcept {
  const geom::Vec2 u = geom::unit_at(theta);
  const double ri = radial_distance_along(disks[i], o, u);
  const double rj = radial_distance_along(disks[j], o, u);
  if (ri > rj + geom::kTol) return i;
  if (rj > ri + geom::kTol) return j;
  // Radial tie: prefer the larger disk radius, then the smaller index, so
  // every algorithm in the library resolves degeneracies identically.
  if (disks[i].radius > disks[j].radius + geom::kTol) return i;
  if (disks[j].radius > disks[i].radius + geom::kTol) return j;
  return std::min(i, j);
}

namespace {

/// Resolve one aligned span [alpha, beta] on which skyline 1 shows disk `i`
/// and skyline 2 shows disk `j` (paper Merge Step 2, Cases 1-3).  Appends
/// the winning arcs to `out`.
void resolve_span(double alpha, double beta, std::size_t i, std::size_t j,
                  std::span<const geom::Disk> disks, geom::Vec2 o,
                  std::vector<Arc>& out, MergeStats* stats) {
  if (i == j) {
    out.push_back({alpha, beta, i});
    return;
  }

  // Sub-breakpoints: angles (at o) of the circle-circle intersection points
  // that fall strictly inside (alpha, beta).  Because o is inside both
  // disks, a point p lies on both boundaries iff the two radial functions
  // agree at theta = angle(p - o) — so these are exactly the transversal
  // crossings of the two arcs.  Degenerate extra: when o sits exactly ON a
  // disk boundary, that disk's rho is 0 on a half circle and the winner can
  // also flip at its zero-transition angles (which are not intersection
  // points); those are added as cut candidates too.
  std::array<double, 6> cuts{};
  std::size_t n_cuts = 0;
  const auto add_cut = [&](geom::Vec2 p) {
    if (geom::distance2(p, o) <= geom::kTol * geom::kTol) return;  // p == o
    const double ang = geom::normalize_angle((p - o).angle());
    if (ang > alpha + kAngleTol && ang < beta - kAngleTol) {
      MLDCS_CHECK(n_cuts < cuts.size(),
                  "cut buffer overflow at angle " << ang << " on span ["
                                                  << alpha << ", " << beta
                                                  << "] for disks " << i
                                                  << "/" << j);
      cuts[n_cuts++] = ang;
    }
  };
  const auto isect =
      geom::intersect_circles(disks[i], disks[j], geom::kTol);
  if (stats != nullptr) ++stats->circle_intersections;
  if (isect.relation != geom::CircleRelation::kCoincident) {
    for (int k = 0; k < isect.count; ++k) {
      add_cut(isect.points[static_cast<std::size_t>(k)]);
    }
  }
  // (Coincident circles never cross transversally; the tie-break inside
  // outer_disk_at picks one of them for the whole span.)
  for (const std::size_t disk : {i, j}) {
    // Zero transitions exist only when o sits ON the disk's boundary
    // (|d - r| <= kTol).  Rule the common strictly-interior case out
    // without a sqrt: |d - r| <= kTol implies
    // |d^2 - r^2| = |d - r| (d + r) <= kTol (2r + kTol).
    const double r = disks[disk].radius;
    const double d2 = geom::distance2(disks[disk].center, o);
    if (std::fabs(d2 - r * r) > geom::kTol * (2.0 * r + 1.0)) continue;
    double zeros[2];
    const int nz = geom::radial_zero_transitions(disks[disk], o, zeros);
    for (int k = 0; k < nz; ++k) {
      if (zeros[k] > alpha + kAngleTol && zeros[k] < beta - kAngleTol) {
        MLDCS_CHECK(n_cuts < cuts.size(),
                    "cut buffer overflow at zero-transition "
                        << zeros[k] << " of disk " << disk);
        cuts[n_cuts++] = zeros[k];
      }
    }
  }
  // Tiny insertion sort: n_cuts <= 6, and GCC 12's -Warray-bounds trips on
  // std::sort's insertion threshold for small fixed arrays.
  for (std::size_t a = 1; a < n_cuts; ++a) {
    const double v = cuts[a];
    std::size_t b = a;
    while (b > 0 && cuts[b - 1] > v) {
      cuts[b] = cuts[b - 1];
      --b;
    }
    cuts[b] = v;
  }

  double lo = alpha;
  for (std::size_t k = 0; k <= n_cuts; ++k) {
    const double hi = (k == n_cuts) ? beta : cuts[k];
    if (hi - lo > kAngleTol) {
      const std::size_t winner =
          outer_disk_at(disks, o, 0.5 * (lo + hi), i, j);
      out.push_back({lo, hi, winner});
      if (stats != nullptr) ++stats->arcs_emitted;
    }
    lo = hi;
  }
}

}  // namespace

MLDCS_ALLOC_OK std::vector<Arc> merge_skylines(std::span<const Arc> sl1,
                                               std::span<const Arc> sl2,
                                               std::span<const geom::Disk> disks,
                                               geom::Vec2 o, MergeStats* stats) {
  std::vector<double> breaks;
  std::vector<Arc> out;
  merge_skylines(sl1, sl2, disks, o, breaks, out, stats);
  return out;
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    std::vector<double>& breaks, std::vector<Arc>& out, MergeStats* stats) {
  if (sl1.empty()) {
    out.insert(out.end(), sl2.begin(), sl2.end());
    return;
  }
  if (sl2.empty()) {
    out.insert(out.end(), sl1.begin(), sl1.end());
    return;
  }
  // Both inputs must already be full well-formed skylines over [0, 2*pi];
  // Merge's lockstep walk silently derails on anything less.
  MLDCS_DCHECK_OK(check_arc_list(sl1, disks.size()));
  MLDCS_DCHECK_OK(check_arc_list(sl2, disks.size()));

  // Step 1 (refinement): the union of both breakpoint sequences, deduped.
  breaks.clear();
  breaks.reserve(sl1.size() + sl2.size() + 1);
  for (const Arc& a : sl1) breaks.push_back(a.start);
  for (const Arc& a : sl2) breaks.push_back(a.start);
  breaks.push_back(kTwoPi);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) {
                             return b - a <= kAngleTol;
                           }),
               breaks.end());
  if (breaks.front() > kAngleTol) breaks.insert(breaks.begin(), 0.0);
  else breaks.front() = 0.0;
  breaks.back() = kTwoPi;

  // Step 2: walk both arc lists in lockstep over the refined spans,
  // appending raw (possibly fragmented) arcs after the caller's prefix.
  const std::size_t base = out.size();
  std::size_t p1 = 0;
  std::size_t p2 = 0;
  for (std::size_t k = 0; k + 1 < breaks.size(); ++k) {
    const double alpha = breaks[k];
    const double beta = breaks[k + 1];
    const double mid = 0.5 * (alpha + beta);
    while (p1 + 1 < sl1.size() && sl1[p1].end <= mid) ++p1;
    while (p2 + 1 < sl2.size() && sl2[p2].end <= mid) ++p2;
    if (stats != nullptr) ++stats->spans;
    resolve_span(alpha, beta, sl1[p1].disk, sl2[p2].disk, disks, o, out,
                 stats);
  }

  // Step 3: coalesce neighboring same-disk arcs and restore the invariants,
  // in place on the appended tail.
  normalize_arcs_in_place(out, base);
}

namespace detail {

MLDCS_ALLOC_OK void LevelSoA::reserve(std::size_t n_disks) {
  // Lemma 8: a level's concatenated partial skylines hold <= 2n arcs.
  const std::size_t cap = 2 * n_disks + 8;
  start.reserve(cap);
  ux.reserve(cap);
  uy.reserve(cap);
  disk.reserve(cap);
  bounds.reserve(n_disks + 1);
}

MLDCS_ALLOC_OK void ZeroCutTable::reserve(std::size_t n_disks) {
  count.reserve(n_disks);
  ang0.reserve(n_disks);
  ang1.reserve(n_disks);
  ux0.reserve(n_disks);
  uy0.reserve(n_disks);
  ux1.reserve(n_disks);
  uy1.reserve(n_disks);
}

MLDCS_ALLOC_OK void MergeLevelScratch::reserve(std::size_t n_disks) {
  // A level has <= 2n arcs (Lemma 8), so <= 2n + n/2 refined spans (one
  // extra closing span per pair), each spawning <= 7 sub-span evaluations
  // in the worst degenerate case but ~1.5 in practice.  These are warm-up
  // reservations, not bounds: the vectors may still grow on extreme inputs
  // (caller-owned scratch, steady state after one call of a given size).
  const std::size_t spans = 3 * n_disks + geom::simd::kBatchPad;
  const std::size_t evals = 4 * n_disks + geom::simd::kBatchPad;
  for (auto* v : {&sp_alpha, &sp_beta, &sp_uax, &sp_uay, &sp_ubx, &sp_uby}) {
    v->reserve(spans);
  }
  for (auto* v : {&sp_ia, &sp_ib, &sp_pair}) v->reserve(spans);
  for (auto* v : {&g_ax, &g_ay, &g_ar, &g_bx, &g_by, &g_br}) {
    v->reserve(evals);
  }
  for (auto* v : {&iv0x, &iv0y, &iv1x, &iv1y, &s_da, &s_db, &s_ss}) {
    v->reserve(spans);
  }
  iacc.reserve(spans);
  for (auto* v : {&cvx, &cvy, &cang, &cux, &cuy}) v->reserve(spans);
  cspan.reserve(spans);
  for (auto* v : {&zang, &zux, &zuy}) v->reserve(n_disks);
  zspan.reserve(n_disks);
  for (auto* v :
       {&e_sx, &e_sy, &e_lo, &e_loux, &e_louy, &e_da, &e_db, &e_ss}) {
    v->reserve(evals);
  }
  e_span.reserve(evals);
}

namespace {

/// Grow-only resize for kernel scratch: arrays keep their high-water size
/// across levels, so kernel *output* buffers are never redundantly
/// value-initialized (a plain resize-from-cleared zero-fills every lane).
template <typename T>
inline void ensure_size(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

}  // namespace

MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_level_batched(
    const LevelSoA& cur, LevelSoA& next, const geom::DiskSoA& soa,
    geom::Vec2 o, const ZeroCutTable& zeros,
    const geom::simd::SkylineKernels& kernels, MergeLevelScratch& ms,
    MergeStats* stats) {
  const std::size_t n_pairs = cur.skylines() / 2;
  const double tol2 = geom::kTol * geom::kTol;
  const double* const soa_cx = soa.cx.data();
  const double* const soa_cy = soa.cy.data();
  const double* const soa_r = soa.r.data();

  // ---- Pass A (scalar): refine each pair's breakpoints into aligned
  // spans (Merge Step 1) and gather the circle-intersection batch.  All
  // scratch writes go through raw cursors into grow-only arrays — the
  // span count is bounded by the level's arc count (every span starts at
  // a kept breakpoint; a pair keeps at most arcs_a + arcs_b - 1 of them
  // since 0.0 is shared) plus one closing span per pair. ----
  const std::size_t spans_cap =
      geom::DiskSoA::padded(cur.start.size() + n_pairs + 1);
  for (auto* v : {&ms.sp_alpha, &ms.sp_beta, &ms.sp_uax, &ms.sp_uay,
                  &ms.sp_ubx, &ms.sp_uby, &ms.g_ax, &ms.g_ay, &ms.g_ar,
                  &ms.g_bx, &ms.g_by, &ms.g_br, &ms.iv0x, &ms.iv0y,
                  &ms.iv1x, &ms.iv1y, &ms.s_da, &ms.s_db, &ms.s_ss}) {
    ensure_size(*v, spans_cap);
  }
  for (auto* v : {&ms.sp_ia, &ms.sp_ib, &ms.sp_pair}) {
    ensure_size(*v, spans_cap);
  }
  ensure_size(ms.iacc, spans_cap);
  double* const sp_alpha = ms.sp_alpha.data();
  double* const sp_beta = ms.sp_beta.data();
  double* const sp_uax = ms.sp_uax.data();
  double* const sp_uay = ms.sp_uay.data();
  double* const sp_ubx = ms.sp_ubx.data();
  double* const sp_uby = ms.sp_uby.data();
  std::uint32_t* const sp_ia = ms.sp_ia.data();
  std::uint32_t* const sp_ib = ms.sp_ib.data();
  std::uint32_t* const sp_pair = ms.sp_pair.data();
  const double* const cs = cur.start.data();
  const double* const cux = cur.ux.data();
  const double* const cuy = cur.uy.data();
  const std::uint32_t* const cdisk = cur.disk.data();
  std::size_t ns = 0;
  {
    double* const g_ax = ms.g_ax.data();
    double* const g_ay = ms.g_ay.data();
    double* const g_ar = ms.g_ar.data();
    double* const g_bx = ms.g_bx.data();
    double* const g_by = ms.g_by.data();
    double* const g_br = ms.g_br.data();
    for (std::size_t pr = 0; pr < n_pairs; ++pr) {
      const std::size_t a1 = cur.bounds[2 * pr + 1];
      const std::size_t b1 = cur.bounds[2 * pr + 2];
      // Arc cursors (legacy lockstep: advance while the arc ends at or
      // before the span midpoint) and breakpoint cursors.  Both skylines
      // start at exactly 0.0; that shared break seeds the walk.
      std::size_t pa = cur.bounds[2 * pr];
      std::size_t pb = a1;
      std::size_t qa = pa + 1;
      std::size_t qb = pb + 1;
      double last = 0.0;
      double last_ux = 1.0;
      double last_uy = 0.0;

      const auto emit_span = [&](double alpha, double aux, double auy,
                                 double beta, double bux, double buy) {
        const double mid = 0.5 * (alpha + beta);
        while (pa + 1 < a1 && cs[pa + 1] <= mid) ++pa;
        while (pb + 1 < b1 && cs[pb + 1] <= mid) ++pb;
        const std::uint32_t ia = cdisk[pa];
        const std::uint32_t ib = cdisk[pb];
        sp_alpha[ns] = alpha;
        sp_beta[ns] = beta;
        sp_uax[ns] = aux;
        sp_uay[ns] = auy;
        sp_ubx[ns] = bux;
        sp_uby[ns] = buy;
        sp_ia[ns] = ia;
        sp_ib[ns] = ib;
        sp_pair[ns] = static_cast<std::uint32_t>(pr);
        g_ax[ns] = soa_cx[ia];
        g_ay[ns] = soa_cy[ia];
        g_ar[ns] = soa_r[ia];
        g_bx[ns] = soa_cx[ib];
        g_by[ns] = soa_cy[ib];
        g_br[ns] = soa_r[ib];
        ++ns;
        if (stats != nullptr) {
          ++stats->spans;
          ++stats->circle_intersections;
        }
      };

      for (;;) {
        double cand;
        double cand_ux;
        double cand_uy;
        if (qa < a1 && (qb >= b1 || cs[qa] <= cs[qb])) {
          cand = cs[qa];
          cand_ux = cux[qa];
          cand_uy = cuy[qa];
          ++qa;
        } else if (qb < b1) {
          cand = cs[qb];
          cand_ux = cux[qb];
          cand_uy = cuy[qb];
          ++qb;
        } else {
          break;
        }
        if (cand - last <= kAngleTol) continue;  // dedup (Step 1's unique)
        emit_span(last, last_ux, last_uy, cand, cand_ux, cand_uy);
        last = cand;
        last_ux = cand_ux;
        last_uy = cand_uy;
      }
      // Closing span up to 2*pi.  When the final kept break sits within
      // kAngleTol of 2*pi the closing sliver is skipped entirely: the
      // starts-only output extends the pair's last arc to 2*pi anyway.
      if (kTwoPi - last > kAngleTol) {
        emit_span(last, last_ux, last_uy, kTwoPi, 1.0, 0.0);
      }
    }

    // ---- Kernel 1: circle-circle intersections fused with the span
    // acceptance test, one task per span.  Padding lanes are coincident
    // unit circles (degenerate => acc 0), so their span fields — 0.0 from
    // the grow-only scratch — are never interpreted. ----
    const std::size_t spans_pad = geom::DiskSoA::padded(ns);
    for (std::size_t i = ns; i < spans_pad; ++i) {
      g_ax[i] = o.x;  // padding: coincident unit circles at o
      g_ay[i] = o.y;
      g_ar[i] = 1.0;
      g_bx[i] = o.x;
      g_by[i] = o.y;
      g_br[i] = 1.0;
    }
    kernels.circle_isect(spans_pad, g_ax, g_ay, g_ar, g_bx, g_by, g_br,
                         sp_uax, sp_uay, sp_ubx, sp_uby, sp_alpha, sp_beta,
                         o.x, o.y, ms.iv0x.data(), ms.iv0y.data(),
                         ms.iv1x.data(), ms.iv1y.data(), ms.iacc.data(),
                         ms.s_da.data(), ms.s_db.data(), ms.s_ss.data());
  }
  const std::size_t n_spans = ns;

  // ---- Pass B (scalar): compact the kernel-accepted cuts, in point
  // order, into the finalization batch (Merge Step 2's candidate filter).
  // Narrow spans (< 3.0 rad) and exact full-circle spans were decided
  // in-kernel; the rare in-between widths (bit 2) take one libm atan2
  // per candidate point here.  Spans that keep at least one cut get bit 3
  // ORed into their acceptance code so Passes C/D can tell cut spans
  // (sub-span evaluation batch) from cut-free ones (Kernel 1's
  // speculative whole-span evaluation). ----
  ensure_size(ms.cvx, geom::DiskSoA::padded(2 * n_spans));
  ensure_size(ms.cvy, geom::DiskSoA::padded(2 * n_spans));
  ensure_size(ms.cspan, 2 * n_spans);
  ensure_size(ms.cang, geom::DiskSoA::padded(2 * n_spans));
  ensure_size(ms.cux, geom::DiskSoA::padded(2 * n_spans));
  ensure_size(ms.cuy, geom::DiskSoA::padded(2 * n_spans));
  double* const cvx = ms.cvx.data();
  double* const cvy = ms.cvy.data();
  std::uint32_t* const cspan = ms.cspan.data();
  const double* const iv0x = ms.iv0x.data();
  const double* const iv0y = ms.iv0y.data();
  const double* const iv1x = ms.iv1x.data();
  const double* const iv1y = ms.iv1y.data();
  int* const iacc = ms.iacc.data();
  std::size_t n_cuts = 0;
  for (std::size_t s = 0; s < n_spans; ++s) {
    const int a = iacc[s];
    if ((a & 4) == 0) {
      // a in {0..3}: the kernel decided.  Unconditional stores with a
      // masked cursor advance keep this free of data-dependent branches
      // (rejected lanes write one-past-the-end garbage that the next
      // accepted lane overwrites; the buffers are sized 2 * n_spans).
      const std::size_t before = n_cuts;
      cvx[n_cuts] = iv0x[s];
      cvy[n_cuts] = iv0y[s];
      cspan[n_cuts] = static_cast<std::uint32_t>(s);
      n_cuts += static_cast<std::size_t>(a & 1);
      cvx[n_cuts] = iv1x[s];
      cvy[n_cuts] = iv1y[s];
      cspan[n_cuts] = static_cast<std::uint32_t>(s);
      n_cuts += static_cast<std::size_t>((a >> 1) & 1);
      iacc[s] = a | (static_cast<int>(n_cuts != before) << 3);
      continue;
    }
    // Deferred: mid-width span, (a & 3) candidate points.
    const double alpha = sp_alpha[s];
    const double beta = sp_beta[s];
    const int cnt = a & 3;
    bool kept = false;
    for (int k = 0; k < cnt; ++k) {
      const double vx = (k == 0) ? iv0x[s] : iv1x[s];
      const double vy = (k == 0) ? iv0y[s] : iv1y[s];
      const double vv = vx * vx + vy * vy;
      if (vv <= tol2) continue;  // intersection at the relay itself
      const double ang = geom::normalize_angle(std::atan2(vy, vx));
      if (ang > alpha + kAngleTol && ang < beta - kAngleTol) {
        cvx[n_cuts] = vx;
        cvy[n_cuts] = vy;
        cspan[n_cuts] = static_cast<std::uint32_t>(s);
        ++n_cuts;
        kept = true;
      }
    }
    if (kept) iacc[s] = a | 8;
  }
  // Zero-transition cuts (angle and unit precomputed) — only when some
  // live disk actually has them, i.e. the relay sits on its boundary.
  std::size_t n_zero_cuts = 0;
  if (zeros.any) {
    ensure_size(ms.zang, 4 * n_spans);
    ensure_size(ms.zux, 4 * n_spans);
    ensure_size(ms.zuy, 4 * n_spans);
    ensure_size(ms.zspan, 4 * n_spans);
    for (std::size_t s = 0; s < n_spans; ++s) {
      const double alpha = sp_alpha[s];
      const double beta = sp_beta[s];
      const std::uint32_t span_disks[2] = {sp_ia[s], sp_ib[s]};
      for (const std::uint32_t d : span_disks) {
        const std::size_t nz = zeros.count[d];
        for (std::size_t k = 0; k < nz; ++k) {
          const double z = (k == 0) ? zeros.ang0[d] : zeros.ang1[d];
          if (z > alpha + kAngleTol && z < beta - kAngleTol) {
            ms.zang[n_zero_cuts] = z;
            ms.zux[n_zero_cuts] = (k == 0) ? zeros.ux0[d] : zeros.ux1[d];
            ms.zuy[n_zero_cuts] = (k == 0) ? zeros.uy0[d] : zeros.uy1[d];
            ms.zspan[n_zero_cuts] = static_cast<std::uint32_t>(s);
            ++n_zero_cuts;
            iacc[s] |= 8;
          }
        }
      }
    }
  }

  // ---- Kernel 2: finalize accepted intersection cuts (angle + unit). ----
  const std::size_t cuts_pad = geom::DiskSoA::padded(n_cuts);
  for (std::size_t i = n_cuts; i < cuts_pad; ++i) {
    cvx[i] = 1.0;  // padding: the unit +x vector
    cvy[i] = 0.0;
  }
  kernels.cut_finalize(cuts_pad, cvx, cvy, ms.cang.data(), ms.cux.data(),
                       ms.cuy.data());

  // ---- Pass C (scalar): split each *cut* span at its cuts and gather one
  // winner evaluation per non-sliver sub-span (Merge Step 2, Cases 2-3).
  // Cut-free spans (Case 1, the common case) are skipped entirely — their
  // whole-span evaluation was already speculated by Kernel 1.  The ray
  // never needs trigonometry: the bisector u_lo + u_hi points at the
  // sub-span midpoint for widths < pi, and wider sub-spans (cut-free by
  // construction, so any interior ray sees the same winner) use the
  // perpendicular of the start unit. ----
  const std::size_t evals_cap =
      geom::DiskSoA::padded(n_spans + n_cuts + n_zero_cuts);
  for (auto* v : {&ms.e_sx, &ms.e_sy, &ms.e_lo, &ms.e_loux, &ms.e_louy,
                  &ms.e_da, &ms.e_db, &ms.e_ss, &ms.g_ax, &ms.g_ay, &ms.g_ar,
                  &ms.g_bx, &ms.g_by, &ms.g_br}) {
    ensure_size(*v, evals_cap);
  }
  ensure_size(ms.e_span, evals_cap);
  double* const e_sx = ms.e_sx.data();
  double* const e_sy = ms.e_sy.data();
  double* const e_lo = ms.e_lo.data();
  double* const e_loux = ms.e_loux.data();
  double* const e_louy = ms.e_louy.data();
  std::uint32_t* const e_span = ms.e_span.data();
  double* const g_ax = ms.g_ax.data();
  double* const g_ay = ms.g_ay.data();
  double* const g_ar = ms.g_ar.data();
  double* const g_bx = ms.g_bx.data();
  double* const g_by = ms.g_by.data();
  double* const g_br = ms.g_br.data();
  const double* const cang = ms.cang.data();
  const double* const cux2 = ms.cux.data();
  const double* const cuy2 = ms.cuy.data();
  std::size_t ne = 0;
  std::size_t ci = 0;
  std::size_t zi = 0;
  // Walk the two sorted cut lists directly — cost scales with the number
  // of cut spans, and no per-span skip branch is ever mispredicted.
  while (ci < n_cuts || zi < n_zero_cuts) {
    const std::uint32_t s =
        ci < n_cuts ? (zi < n_zero_cuts && ms.zspan[zi] < cspan[ci]
                           ? ms.zspan[zi]
                           : cspan[ci])
                    : ms.zspan[zi];
    const std::uint32_t ia = sp_ia[s];
    const std::uint32_t ib = sp_ib[s];
    double cut_ang[6];
    double cut_ux[6];
    double cut_uy[6];
    std::size_t nc = 0;
    for (; ci < n_cuts && cspan[ci] == s; ++ci) {
      cut_ang[nc] = cang[ci];
      cut_ux[nc] = cux2[ci];
      cut_uy[nc] = cuy2[ci];
      ++nc;
    }
    for (; zi < n_zero_cuts && ms.zspan[zi] == s; ++zi) {
      MLDCS_CHECK(nc < 6, "cut buffer overflow on span ["
                              << sp_alpha[s] << ", " << sp_beta[s]
                              << "] for live disks " << sp_ia[s] << "/"
                              << sp_ib[s]);
      cut_ang[nc] = ms.zang[zi];
      cut_ux[nc] = ms.zux[zi];
      cut_uy[nc] = ms.zuy[zi];
      ++nc;
    }
    // Tiny stable insertion sort (<= 6 cuts; see resolve_span).
    for (std::size_t a = 1; a < nc; ++a) {
      const double va = cut_ang[a];
      const double vx = cut_ux[a];
      const double vy = cut_uy[a];
      std::size_t b = a;
      while (b > 0 && cut_ang[b - 1] > va) {
        cut_ang[b] = cut_ang[b - 1];
        cut_ux[b] = cut_ux[b - 1];
        cut_uy[b] = cut_uy[b - 1];
        --b;
      }
      cut_ang[b] = va;
      cut_ux[b] = vx;
      cut_uy[b] = vy;
    }
    double lo = sp_alpha[s];
    double loux = sp_uax[s];
    double louy = sp_uay[s];
    for (std::size_t k = 0; k <= nc; ++k) {
      const double hi = (k == nc) ? sp_beta[s] : cut_ang[k];
      const double hux = (k == nc) ? sp_ubx[s] : cut_ux[k];
      const double huy = (k == nc) ? sp_uby[s] : cut_uy[k];
      if (hi - lo > kAngleTol) {
        if (hi - lo < 3.0) {
          e_sx[ne] = loux + hux;  // midpoint bisector (width < pi)
          e_sy[ne] = louy + huy;
        } else {
          e_sx[ne] = -louy;  // interior perpendicular ray (see fast path)
          e_sy[ne] = loux;
        }
        e_lo[ne] = lo;
        e_loux[ne] = loux;
        e_louy[ne] = louy;
        e_span[ne] = static_cast<std::uint32_t>(s);
        g_ax[ne] = soa_cx[ia];
        g_ay[ne] = soa_cy[ia];
        g_ar[ne] = soa_r[ia];
        g_bx[ne] = soa_cx[ib];
        g_by[ne] = soa_cy[ib];
        g_br[ne] = soa_r[ib];
        ++ne;
      }
      lo = hi;
      loux = hux;
      louy = huy;
    }
  }

  // ---- Kernel 3: paired radial distances along every bisector. ----
  const std::size_t n_evals = ne;
  const std::size_t evals_pad = geom::DiskSoA::padded(n_evals);
  for (std::size_t i = n_evals; i < evals_pad; ++i) {
    e_sx[i] = 1.0;  // padding: the unit +x vector against dummy circles
    e_sy[i] = 0.0;
    g_ax[i] = o.x;
    g_ay[i] = o.y;
    g_ar[i] = 1.0;
    g_bx[i] = o.x;
    g_by[i] = o.y;
    g_br[i] = 1.0;
  }
  kernels.rho_pairs(evals_pad, e_sx, e_sy, g_ax, g_ay, g_ar, g_bx, g_by,
                    g_br, o.x, o.y, ms.e_da.data(), ms.e_db.data(),
                    ms.e_ss.data());

  // ---- Pass D (scalar): pick each evaluated (sub-)span's winner with
  // the library tie-break (outer_disk_at, scaled by |s| so no
  // normalization is needed) and emit starts, coalescing same-disk
  // neighbors (Step 3).  Cut-free spans consume Kernel 1's speculative
  // whole-span evaluation — pure stream reads, no gather; cut spans
  // consume their sub-span group from Kernel 3.  `next` is written
  // through cursors into arrays sized at the combined upper bound, then
  // shrunk to the emitted arc count. ----
  const std::size_t arcs_cap = n_spans + n_evals;
  next.start.resize(arcs_cap);
  next.ux.resize(arcs_cap);
  next.uy.resize(arcs_cap);
  next.disk.resize(arcs_cap);
  next.bounds.resize(n_pairs + 1);
  double* const nx_start = next.start.data();
  double* const nx_ux = next.ux.data();
  double* const nx_uy = next.uy.data();
  std::uint32_t* const nx_disk = next.disk.data();
  std::uint32_t* const nx_bounds = next.bounds.data();
  nx_bounds[0] = 0;
  const double* const e_da = ms.e_da.data();
  const double* const e_db = ms.e_db.data();
  const double* const e_ss = ms.e_ss.data();
  const double* const s_da = ms.s_da.data();
  const double* const s_db = ms.s_db.data();
  const double* const s_ss = ms.s_ss.data();
  constexpr std::uint32_t kNoDisk = 0xffffffffu;
  // da - db > kTol * |s| <=> rho_a - rho_b > kTol at the ray angle;
  // radial tie: larger disk radius first, then smaller id.
  const auto pick_winner = [soa_r, tol2](double da, double db, double ss2,
                                         std::uint32_t ia,
                                         std::uint32_t ib) noexcept {
    const double diff = da - db;
    if (diff * diff > tol2 * ss2) return diff > 0.0 ? ia : ib;
    if (soa_r[ia] > soa_r[ib] + geom::kTol) return ia;
    if (soa_r[ib] > soa_r[ia] + geom::kTol) return ib;
    return ia < ib ? ia : ib;
  };
  std::size_t na = 0;
  std::size_t open_pair = 0;
  std::uint32_t last_disk = kNoDisk;
  std::size_t t = 0;  // Kernel-3 evaluation cursor
  for (std::size_t s = 0; s < n_spans; ++s) {
    const std::uint32_t pr = sp_pair[s];
    while (open_pair < pr) {
      nx_bounds[++open_pair] = static_cast<std::uint32_t>(na);
      last_disk = kNoDisk;
    }
    const std::uint32_t ia = sp_ia[s];
    const std::uint32_t ib = sp_ib[s];
    if ((iacc[s] & 8) == 0) {
      // Cut-free span (Case 1): one whole-span winner, speculated by
      // Kernel 1.  Pass A guarantees the span is not a sliver.
      const std::uint32_t win = pick_winner(s_da[s], s_db[s], s_ss[s], ia, ib);
      if (stats != nullptr) ++stats->arcs_emitted;
      if (win != last_disk) {
        nx_start[na] = sp_alpha[s];
        nx_ux[na] = sp_uax[s];
        nx_uy[na] = sp_uay[s];
        nx_disk[na] = win;
        ++na;
        last_disk = win;
      }
      continue;
    }
    for (; t < n_evals && e_span[t] == static_cast<std::uint32_t>(s); ++t) {
      const std::uint32_t win = pick_winner(e_da[t], e_db[t], e_ss[t], ia, ib);
      if (stats != nullptr) ++stats->arcs_emitted;
      if (win != last_disk) {
        nx_start[na] = e_lo[t];
        nx_ux[na] = e_loux[t];
        nx_uy[na] = e_louy[t];
        nx_disk[na] = win;
        ++na;
        last_disk = win;
      }
    }
  }
  while (open_pair < n_pairs) {
    nx_bounds[++open_pair] = static_cast<std::uint32_t>(na);
  }
  next.start.resize(na);
  next.ux.resize(na);
  next.uy.resize(na);
  next.disk.resize(na);
}

}  // namespace detail

}  // namespace mldcs::core
