#include "core/mldcs.hpp"

#include <cmath>
#include <sstream>

#include "core/invariants.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

std::string describe_local_set_violation(std::span<const geom::Disk> disks,
                                         geom::Vec2 o) {
  if (!std::isfinite(o.x) || !std::isfinite(o.y)) {
    return "relay position is not finite";
  }
  for (std::size_t i = 0; i < disks.size(); ++i) {
    const geom::Disk& d = disks[i];
    std::ostringstream msg;
    if (!std::isfinite(d.center.x) || !std::isfinite(d.center.y) ||
        !std::isfinite(d.radius)) {
      msg << "disk " << i << " has non-finite center or radius";
      return msg.str();
    }
    if (d.radius < 0.0) {
      msg << "disk " << i << " has negative radius " << d.radius;
      return msg.str();
    }
    if (!d.contains(o)) {
      msg << "disk " << i << " = " << d
          << " does not contain the relay position " << o
          << " (distance " << geom::distance(d.center, o)
          << " > radius " << d.radius
          << "): not a local disk set";
      return msg.str();
    }
  }
  return {};
}

LocalDiskSet::LocalDiskSet(geom::Vec2 origin, std::vector<geom::Disk> disks)
    : origin_(origin), disks_(std::move(disks)) {
  const std::string err = describe_local_set_violation(disks_, origin_);
  if (!err.empty()) throw InvalidLocalDiskSet(err);
}

std::vector<std::size_t> mldcs(const LocalDiskSet& set) {
  return compute_skyline(set.disks(), set.origin()).skyline_set();
}

std::vector<std::size_t> mldcs_unchecked(std::span<const geom::Disk> disks,
                                         geom::Vec2 o) {
  // "Unchecked" means no throwing validation on the release fast path; in
  // checked builds the premise is still enforced, because a violation here
  // (a broadcast-layer disk graph with a one-directional link) corrupts the
  // cover silently instead of failing loudly.
  MLDCS_DCHECK_OK(check_local_disk_premise(disks, o));
  return compute_skyline(disks, o).skyline_set();
}

Skyline skyline_of(const LocalDiskSet& set) {
  return compute_skyline(set.disks(), set.origin());
}

}  // namespace mldcs::core
