#pragma once

/// \file annotations.hpp
/// Function attributes that declare hot-path and concurrency discipline,
/// checked by the project static analyzer (`tools/analyze/mldcs_analyze.py`,
/// docs/CORRECTNESS.md "Static analysis").
///
/// The engine's performance contract is behavioral, not structural: the
/// skyline workspace path must stay 0 allocs/op, the per-relay inner loop
/// must never take a lock, and nothing in the compiler enforces either.
/// These macros make the contract part of the *source*: a function marked
/// `MLDCS_HOT_PATH` roots an allocation-discipline scan of everything it
/// can reach, `MLDCS_NO_LOCK` roots a blocking-call scan, and
/// `MLDCS_ALLOC_OK` exempts a deliberately-allocating subtree (convenience
/// overloads, rare-by-design maintenance like store compaction).
///
/// Under clang the macros expand to `[[clang::annotate]]`, so the markers
/// also survive into the AST for libclang-based tooling; under every other
/// compiler they expand to nothing.  Either way they cost nothing at
/// runtime — the analyzer reads the markers from the source text, so the
/// discipline is enforced regardless of which compiler built the tree.
///
/// Placement: before the return type, on both declaration and definition
/// (the analyzer accepts either, but keeping them paired is what makes the
/// contract visible at the call site *and* the implementation):
///
///   MLDCS_HOT_PATH MLDCS_NO_LOCK
///   void compute_skyline_arcs(...);
///
/// Suppression of individual findings uses an inline marker, not the
/// macros: `// mldcs-analyze:allow(<rule>): <reason>` on (or on the line
/// before) the offending line.  See docs/CORRECTNESS.md for the rule
/// vocabulary and the baseline workflow.

#if defined(__clang__)
#define MLDCS_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define MLDCS_ANNOTATE(tag)
#endif

/// Roots the `hot-no-alloc` rule: this function and everything reachable
/// from it must not allocate (no new/malloc, no fresh owning containers);
/// growth of caller-owned scratch (reference parameters, members) is
/// permitted — that is the amortized-zero steady-state pattern.
#define MLDCS_HOT_PATH MLDCS_ANNOTATE("mldcs::hot_path")

/// Roots the `lock-discipline` rule: this function and everything
/// reachable from it must not take a std::mutex (or friends), wait on a
/// condition variable, sleep, or join a thread.
#define MLDCS_NO_LOCK MLDCS_ANNOTATE("mldcs::no_lock")

/// Exempts a function from `hot-no-alloc` scans that reach it: it may
/// allocate, and the scan does not descend into it.  For allocating
/// convenience overloads and rare-by-design maintenance paths.
#define MLDCS_ALLOC_OK MLDCS_ANNOTATE("mldcs::alloc_ok")
