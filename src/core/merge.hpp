#pragma once

/// \file merge.hpp
/// The `Merge` procedure of the paper's divide-and-conquer algorithm
/// (Section 3.4): combine two skylines of disjoint sub-sets of the local
/// disk set into the skyline of their union.
///
/// Step 1 refines both arc lists onto the union of their breakpoint angles;
/// Step 2 resolves each aligned span by the three cases (no crossing, one
/// crossing, two crossings — crossings are circle-circle intersection points
/// whose angle at `o` falls inside the span); Step 3 coalesces neighboring
/// arcs contributed by the same disk.

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/arc.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Instrumentation for complexity experiments (Theorem 9 / Lemma 8 benches).
struct MergeStats {
  std::uint64_t spans = 0;                 ///< aligned spans processed
  std::uint64_t circle_intersections = 0;  ///< circle-pair intersections computed
  std::uint64_t arcs_emitted = 0;          ///< arcs before Step-3 coalescing
};

/// Merge two well-formed arc lists over the same local disk set `disks`
/// around relay `o`.  Either input may be empty (the other is returned).
/// The result is well-formed (normalized).  `stats`, when non-null, is
/// accumulated into.
[[nodiscard]] MLDCS_ALLOC_OK std::vector<Arc> merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    MergeStats* stats = nullptr);

/// Workspace overload: append the merged, normalized skyline to `out`
/// (slots before the call's `out.size()` are left untouched), reusing
/// `breaks` as breakpoint scratch.  Allocation-free once both buffers have
/// grown to steady-state capacity — this is the hot path of the iterative
/// skyline engine.  Neither `sl1` nor `sl2` may alias `out`.
MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    std::vector<double>& breaks, std::vector<Arc>& out,
    MergeStats* stats = nullptr);

/// Decide which of two disks is the outer one at ray angle `theta`, with the
/// library tie-break (larger radial distance; ties -> larger disk radius,
/// then smaller index).  Exposed for tests.
[[nodiscard]] std::size_t outer_disk_at(std::span<const geom::Disk> disks,
                                        geom::Vec2 o, double theta,
                                        std::size_t i, std::size_t j) noexcept;

}  // namespace mldcs::core
