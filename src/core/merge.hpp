#pragma once

/// \file merge.hpp
/// The `Merge` procedure of the paper's divide-and-conquer algorithm
/// (Section 3.4): combine two skylines of disjoint sub-sets of the local
/// disk set into the skyline of their union.
///
/// Step 1 refines both arc lists onto the union of their breakpoint angles;
/// Step 2 resolves each aligned span by the three cases (no crossing, one
/// crossing, two crossings — crossings are circle-circle intersection points
/// whose angle at `o` falls inside the span); Step 3 coalesces neighboring
/// arcs contributed by the same disk.

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/arc.hpp"
#include "geometry/disk.hpp"
#include "geometry/disk_soa.hpp"
#include "geometry/simd.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// Instrumentation for complexity experiments (Theorem 9 / Lemma 8 benches).
struct MergeStats {
  std::uint64_t spans = 0;                 ///< aligned spans processed
  std::uint64_t circle_intersections = 0;  ///< circle-pair intersections computed
  std::uint64_t arcs_emitted = 0;          ///< arcs before Step-3 coalescing
};

/// Merge two well-formed arc lists over the same local disk set `disks`
/// around relay `o`.  Either input may be empty (the other is returned).
/// The result is well-formed (normalized).  `stats`, when non-null, is
/// accumulated into.
[[nodiscard]] MLDCS_ALLOC_OK std::vector<Arc> merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    MergeStats* stats = nullptr);

/// Workspace overload: append the merged, normalized skyline to `out`
/// (slots before the call's `out.size()` are left untouched), reusing
/// `breaks` as breakpoint scratch.  Allocation-free once both buffers have
/// grown to steady-state capacity — this is the hot path of the iterative
/// skyline engine.  Neither `sl1` nor `sl2` may alias `out`.
MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_skylines(
    std::span<const Arc> sl1, std::span<const Arc> sl2,
    std::span<const geom::Disk> disks, geom::Vec2 o,
    std::vector<double>& breaks, std::vector<Arc>& out,
    MergeStats* stats = nullptr);

/// Decide which of two disks is the outer one at ray angle `theta`, with the
/// library tie-break (larger radial distance; ties -> larger disk radius,
/// then smaller index).  Exposed for tests.
[[nodiscard]] std::size_t outer_disk_at(std::span<const geom::Disk> disks,
                                        geom::Vec2 o, double theta,
                                        std::size_t i, std::size_t j) noexcept;

namespace detail {

/// One level of partial skylines in starts-only structure-of-arrays form.
/// Arc k of a skyline runs from start[k] to the next entry's start (2*pi
/// for the skyline's last arc), so span endpoints are shared by
/// construction and Merge Step 3's post-hoc normalization disappears.
/// (ux, uy)[k] caches the unit vector of start[k] — either the exact
/// constant (1, 0) for the 0.0 split or the normalized cut vector computed
/// when the breakpoint was born — letting Merge test span membership with
/// two cross products instead of an atan2 per candidate.  `disk` holds
/// live-local ids (positions in the prefiltered SkylineWorkspace set).
struct LevelSoA {
  std::vector<double> start;
  std::vector<double> ux;
  std::vector<double> uy;
  std::vector<std::uint32_t> disk;
  std::vector<std::uint32_t> bounds;  ///< skyline i = [bounds[i], bounds[i+1])

  [[nodiscard]] std::size_t skylines() const noexcept {
    return bounds.empty() ? 0 : bounds.size() - 1;
  }

  /// Empty the level and open its first skyline.
  void begin_level() {
    start.clear();
    ux.clear();
    uy.clear();
    disk.clear();
    bounds.clear();
    bounds.push_back(0);
  }

  void push(double s, double x, double y, std::uint32_t d) {
    start.push_back(s);
    ux.push_back(x);
    uy.push_back(y);
    disk.push_back(d);
  }

  /// Seal the open skyline at the current arc count.
  void close_skyline() {
    bounds.push_back(static_cast<std::uint32_t>(start.size()));
  }

  MLDCS_ALLOC_OK void reserve(std::size_t n_disks);
};

/// Per-live-disk zero-transition cuts, computed once per skyline call.
/// Nonempty (count > 0) only for disks whose boundary passes through the
/// relay (|dist - r| <= kTol) — merge.cpp's resolve_span recomputed this
/// per span encounter; the batched engine hoists it out of the level loop.
struct ZeroCutTable {
  std::vector<std::uint8_t> count;  ///< 0..2 transitions per live disk
  std::vector<double> ang0, ang1;   ///< transition angles in [0, 2*pi)
  std::vector<double> ux0, uy0;     ///< unit vectors of ang0 / ang1
  std::vector<double> ux1, uy1;
  /// True iff any live disk has count > 0.  Almost always false (the relay
  /// must sit exactly on a disk boundary), letting Merge skip the
  /// per-span zero-cut scan wholesale.
  bool any = false;

  void assign(std::size_t n) {
    any = false;
    count.assign(n, 0);
    ang0.resize(n);
    ang1.resize(n);
    ux0.resize(n);
    uy0.resize(n);
    ux1.resize(n);
    uy1.resize(n);
  }

  MLDCS_ALLOC_OK void reserve(std::size_t n_disks);
};

/// Flat task arrays for one level-wide batched merge.  Pass A fills the
/// span records and the gathered disk parameters; the geom::simd kernels
/// consume/produce the padded arrays; Passes B-D walk them scalar-wise.
/// All vectors reach steady-state capacity after the first call of a given
/// size, so repeated skylines allocate nothing.
struct MergeLevelScratch {
  // Refined spans (Pass A): angle range, endpoint units, contributing
  // live-local disks, owning merge pair.
  std::vector<double> sp_alpha, sp_beta;
  std::vector<double> sp_uax, sp_uay, sp_ubx, sp_uby;
  std::vector<std::uint32_t> sp_ia, sp_ib, sp_pair;
  // Gathered disk parameters — inputs of the circle-intersection batch
  // (one task per span), later refilled for the rho batch (one per
  // sub-span).
  std::vector<double> g_ax, g_ay, g_ar, g_bx, g_by, g_br;
  // Circle-intersection outputs: candidate cut vectors relative to o and
  // the fused acceptance code (simd.hpp CircleIsectFn: bit 0/1 = point
  // accepted, bit 2 = deferred to the scalar atan2 path; Pass B then ORs
  // in bit 3 = span has at least one accepted cut), plus the kernel's
  // speculative whole-span rho evaluation (consumed by Pass D for spans
  // that stay cut-free, which skips the sub-span batch for them).
  std::vector<double> iv0x, iv0y, iv1x, iv1y;
  std::vector<int> iacc;
  std::vector<double> s_da, s_db, s_ss;
  // Accepted intersection cuts awaiting angle/unit finalization.
  std::vector<double> cvx, cvy;
  std::vector<std::uint32_t> cspan;
  std::vector<double> cang, cux, cuy;
  // Zero-transition cuts (angle and unit known since precompute).
  std::vector<double> zang, zux, zuy;
  std::vector<std::uint32_t> zspan;
  // Sub-span winner evaluations: bisector direction (unnormalized), sub-
  // span start angle + unit, owning span; da/db/ss from the rho kernel
  // (ss = |s|^2, saving Pass D a reload of the direction streams).
  std::vector<double> e_sx, e_sy, e_lo, e_loux, e_louy;
  std::vector<std::uint32_t> e_span;
  std::vector<double> e_da, e_db, e_ss;

  MLDCS_ALLOC_OK void reserve(std::size_t n_disks);
};

/// Merge adjacent pairs of `cur`'s partial skylines into `next` (paper
/// Merge, Steps 1-3, across the whole level at once).  Geometry is batched
/// through `kernels` (see geometry/simd.hpp): one circle-intersection task
/// per refined span, one cut finalization per accepted crossing, one
/// paired-rho evaluation per emitted sub-span — so SIMD lanes stay full
/// even when individual skylines are short.  An odd trailing skyline is
/// NOT copied; the caller carries it.  `next` is fully overwritten (its
/// previous contents, including sizes, are ignored).  `soa` holds the
/// live disks (live-local ids), `zeros` their zero-transition cuts.
/// `stats` is accumulated when non-null.
MLDCS_HOT_PATH MLDCS_NO_LOCK void merge_level_batched(
    const LevelSoA& cur, LevelSoA& next, const geom::DiskSoA& soa,
    geom::Vec2 o, const ZeroCutTable& zeros,
    const geom::simd::SkylineKernels& kernels, MergeLevelScratch& ms,
    MergeStats* stats);

}  // namespace detail

}  // namespace mldcs::core
