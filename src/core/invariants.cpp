#include "core/invariants.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "core/mldcs.hpp"
#include "core/skyline_reference.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::core {

namespace {

std::atomic<InvariantAction> g_action{InvariantAction::kAbort};
std::atomic<std::uint64_t> g_failures{0};
std::mutex g_first_failure_mutex;
std::string g_first_failure;  // guarded by g_first_failure_mutex

}  // namespace

void set_invariant_action(InvariantAction action) noexcept {
  g_action.store(action, std::memory_order_relaxed);
}

InvariantAction invariant_action() noexcept {
  return g_action.load(std::memory_order_relaxed);
}

std::uint64_t invariant_failure_count() noexcept {
  return g_failures.load(std::memory_order_relaxed);
}

std::string first_invariant_failure() {
  const std::lock_guard<std::mutex> lock(g_first_failure_mutex);
  return g_first_failure;
}

void reset_invariant_failures() noexcept {
  g_failures.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(g_first_failure_mutex);
  g_first_failure.clear();
}

void report_invariant_violation(const char* expr, const char* file, int line,
                                const std::string& detail) {
  std::ostringstream os;
  os << "MLDCS invariant violation: " << expr << "\n  at " << file << ':'
     << line;
  if (!detail.empty()) os << "\n  " << detail;
  const std::string msg = os.str();
  if (invariant_action() == InvariantAction::kCount) {
    if (g_failures.fetch_add(1, std::memory_order_relaxed) == 0) {
      const std::lock_guard<std::mutex> lock(g_first_failure_mutex);
      if (g_first_failure.empty()) g_first_failure = msg;
    }
    return;
  }
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

std::string check_arc_list(std::span<const Arc> arcs, std::size_t n_disks) {
  if (arcs.empty()) return {};
  std::ostringstream msg;
  // mldcs-analyze:allow(tolerance-audit): exact +x-axis split convention
  if (arcs.front().start != 0.0) {
    msg << "first arc starts at " << arcs.front().start
        << " instead of 0 (the +x-axis split convention)";
    return msg.str();
  }
  if (!geom::approx_equal(arcs.back().end, geom::kTwoPi, geom::kAngleTol)) {
    msg << "last arc ends at " << arcs.back().end
        << " instead of 2*pi: no cyclic closure at the relay seam";
    return msg.str();
  }
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (!(a.start < a.end)) {
      msg << "arc " << i << " (" << a << ") is inverted or empty";
      return msg.str();
    }
    if (a.span() <= geom::kAngleTol) {
      msg << "arc " << i << " (" << a << ") has sub-tolerance span "
          << a.span() << " <= kAngleTol = " << geom::kAngleTol
          << ": slivers must be coalesced by normalize_arcs";
      return msg.str();
    }
    if (a.disk >= n_disks) {
      msg << "arc " << i << " (" << a << ") references disk " << a.disk
          << " outside the local set of " << n_disks << " disks";
      return msg.str();
    }
    if (i + 1 < arcs.size()) {
      // Endpoints must be shared doubles bit-for-bit; approximate
      // contiguity here would mask drift.
      // mldcs-analyze:allow(tolerance-audit): exact contiguity by design
      if (arcs[i + 1].start != a.end) {
        msg << "arcs " << i << " and " << i + 1 << " are not exactly "
            << "contiguous: " << a.end << " vs " << arcs[i + 1].start
            << " (endpoints must be shared doubles, no drift)";
        return msg.str();
      }
      if (arcs[i + 1].disk == a.disk) {
        msg << "arcs " << i << " and " << i + 1 << " both come from disk "
            << a.disk << ": Merge Step 3 must coalesce same-disk neighbors";
        return msg.str();
      }
    }
  }
  return {};
}

std::string check_local_disk_premise(std::span<const geom::Disk> disks,
                                     geom::Vec2 o) {
  // describe_local_set_violation is the library's single statement of the
  // Section 3.2 premise; reuse it so the invariant layer and the public
  // LocalDiskSet validation can never drift apart.
  return describe_local_set_violation(disks, o);
}

std::string check_skyline_minimality(std::span<const geom::Disk> disks,
                                     const Skyline& sky, double area_tol) {
  std::ostringstream msg;
  if (sky.empty()) {
    if (disks.empty()) return {};
    msg << "skyline is empty for a non-empty local set of " << disks.size()
        << " disks";
    return msg.str();
  }
  const geom::Vec2 o = sky.origin();
  // Every arc must lie on the upper envelope at its midpoint: a kept disk
  // whose arc is strictly below the envelope is not a boundary contributor
  // and Theorem 3 no longer certifies it as necessary.
  const auto arcs = sky.arcs();
  for (std::size_t k = 0; k < arcs.size(); ++k) {
    const Arc& a = arcs[k];
    if (a.disk >= disks.size()) {
      msg << "arc " << k << " (" << a << ") references disk " << a.disk
          << " outside the local set of " << disks.size() << " disks";
      return msg.str();
    }
    const double mine = geom::radial_distance(disks[a.disk], o, a.mid());
    const double best = geom::radial_envelope(disks, o, a.mid());
    if (mine < best - area_tol) {
      msg << "arc " << k << " (" << a << ") is not on the envelope at its "
          << "midpoint: rho = " << mine << " < envelope = " << best
          << " — disk " << a.disk << " contributes no boundary there";
      return msg.str();
    }
  }
  // Cross-validate against the O(n^2) brute-force envelope: same skyline
  // set (minimal cardinality + identical degeneracy resolution) and same
  // enclosed union area.
  const Skyline reference = compute_skyline_bruteforce(disks, o);
  const std::vector<std::size_t> got = sky.skyline_set();
  const std::vector<std::size_t> want = reference.skyline_set();
  if (got != want) {
    msg << "skyline set diverges from the brute-force reference: got {";
    for (std::size_t i : got) msg << ' ' << i;
    msg << " } want {";
    for (std::size_t i : want) msg << ' ' << i;
    msg << " } — a degeneracy was resolved on different sides";
    return msg.str();
  }
  const double got_area = sky.enclosed_area(disks);
  const double want_area = reference.enclosed_area(disks);
  if (std::abs(got_area - want_area) > area_tol) {
    msg << "enclosed union area " << got_area
        << " differs from the brute-force reference " << want_area << " by "
        << std::abs(got_area - want_area) << " > " << area_tol
        << ": coverage was lost or gained";
    return msg.str();
  }
  return {};
}

}  // namespace mldcs::core
