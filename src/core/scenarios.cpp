#include "core/scenarios.hpp"

#include <cmath>

#include "geometry/angle.hpp"

namespace mldcs::core {

using geom::Disk;
using geom::Vec2;

Scenario random_local_set(sim::Xoshiro256& rng, std::size_t n,
                          bool heterogeneous, double r_min, double r_max) {
  Scenario s;
  s.origin = {0.0, 0.0};
  if (n == 0) return s;
  const double r0 = heterogeneous ? rng.uniform(r_min, r_max) : r_max;
  s.disks.push_back(Disk{s.origin, r0});
  for (std::size_t i = 1; i < n; ++i) {
    const double ri = heterogeneous ? rng.uniform(r_min, r_max) : r_max;
    const double reach = std::min(r0, ri);
    // Uniform over the disk of radius `reach`: r = reach * sqrt(U).
    const double rho = reach * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    s.disks.push_back(Disk{rho * geom::unit_at(theta), ri});
  }
  return s;
}

Scenario concentric_set(std::size_t n) {
  Scenario s;
  s.origin = {0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    s.disks.push_back(Disk{s.origin, static_cast<double>(i + 1)});
  }
  return s;
}

Scenario duplicate_set(std::size_t copies) {
  Scenario s;
  s.origin = {0.25, -0.125};
  for (std::size_t i = 0; i < copies; ++i) {
    s.disks.push_back(Disk{{0.0, 0.0}, 1.0});
  }
  return s;
}

Scenario dominated_set(sim::Xoshiro256& rng, std::size_t n) {
  Scenario s;
  s.origin = {0.0, 0.0};
  s.disks.push_back(Disk{s.origin, 10.0});
  for (std::size_t i = 1; i < n; ++i) {
    const double rho = std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    s.disks.push_back(Disk{rho * geom::unit_at(theta), 1.0});
  }
  return s;
}

Scenario tangent_pair() {
  Scenario s;
  s.origin = {0.0, 0.0};
  s.disks.push_back(Disk{s.origin, 2.0});
  // Internally tangent at (2, 0): center (1.5, 0), radius 0.5... must also
  // contain the origin, so use center (1,0) radius 1, tangent at (2,0).
  s.disks.push_back(Disk{{1.0, 0.0}, 1.0});
  return s;
}

Scenario collinear_set(std::size_t n) {
  Scenario s;
  s.origin = {0.0, 0.0};
  const double r = 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Centers from -1 to +1 along the x axis (all within distance 1 <= r).
    const double x =
        n == 1 ? 0.0
               : -1.0 + 2.0 * static_cast<double>(i) /
                            static_cast<double>(n - 1);
    s.disks.push_back(Disk{{x, 0.0}, r});
  }
  return s;
}

Scenario figure41_configuration(std::size_t k, double r_frac) {
  Scenario s;
  s.origin = {0.0, 0.0};
  for (std::size_t i = 0; i < k; ++i) {
    const double a = geom::kTwoPi * static_cast<double>(i) /
                     static_cast<double>(k);
    s.disks.push_back(Disk{0.5 * geom::unit_at(a), 1.0});
  }
  // ||o - p||: outer intersection of two adjacent unit circles whose
  // centers are 1/2 from o with angular gap 2*pi/k (paper Section 4.1).
  const double half_gap = geom::kPi / static_cast<double>(k);
  const double sin_part = 0.5 * std::sin(half_gap);
  const double op = 0.5 * std::cos(half_gap) +
                    std::sqrt(1.0 - sin_part * sin_part);
  const double r = op + r_frac * (1.5 - op);
  s.disks.push_back(Disk{s.origin, r});
  return s;
}

Scenario figure32_like_configuration() {
  Scenario s;
  s.origin = {0.0, 0.0};
  s.disks.push_back(Disk{s.origin, 1.0});                 // relay
  s.disks.push_back(Disk{{0.9, 0.0}, 1.2});               // east
  s.disks.push_back(Disk{{0.0, 0.8}, 1.1});               // north
  s.disks.push_back(Disk{{0.2, 0.1}, 0.4});               // dominated
  s.disks.push_back(Disk{{-0.85, 0.1}, 1.3});             // west
  s.disks.push_back(Disk{{0.05, -0.9}, 1.25});            // south
  return s;
}

}  // namespace mldcs::core
