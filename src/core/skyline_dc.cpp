#include "core/skyline_dc.hpp"

#include <vector>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"

namespace mldcs::core {

namespace {

/// Skyline of the index range [lo, hi) of `disks`.
std::vector<Arc> skyline_range(std::span<const geom::Disk> disks,
                               geom::Vec2 o, std::size_t lo, std::size_t hi,
                               MergeStats* stats) {
  if (hi - lo == 1) {
    // Base case: a single disk's boundary is one full-circle arc, split at
    // the +x axis by convention (here: one arc [0, 2*pi]).
    return {Arc{0.0, geom::kTwoPi, lo}};
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::vector<Arc> left = skyline_range(disks, o, lo, mid, stats);
  const std::vector<Arc> right = skyline_range(disks, o, mid, hi, stats);
  return merge_skylines(left, right, disks, o, stats);
}

}  // namespace

Skyline compute_skyline(std::span<const geom::Disk> disks, geom::Vec2 o,
                        MergeStats* stats) {
  if (disks.empty()) return Skyline{o, {}};
  MLDCS_DCHECK_OK(check_local_disk_premise(disks, o));
  Skyline sky{o, skyline_range(disks, o, 0, disks.size(), stats)};
  if constexpr (kInvariantChecksEnabled) {
    // The full Theorem 3 cross-check is O(n^2); keep it to inputs where the
    // brute-force reference is cheap so checked test runs stay fast.
    if (disks.size() <= kDeepCheckMaxDisks) {
      MLDCS_CHECK_OK(check_skyline_minimality(disks, sky));
    }
  }
  return sky;
}

}  // namespace mldcs::core
