#include "core/skyline_dc.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"
#include "geometry/tolerance.hpp"
#include "obs/telemetry.hpp"

namespace mldcs::core {

namespace {

/// Engine telemetry (docs/OBSERVABILITY.md).  References are hoisted once;
/// each compute_skyline_arcs call then costs a handful of relaxed atomic
/// adds — per *call*, never per arc, so the hard-regime single-relay
/// overhead stays within the perf suite's noise.
struct SkylineTelemetry {
  obs::Counter& calls = obs::registry().counter("skyline.calls");
  obs::Counter& disks_in = obs::registry().counter("skyline.disks_in");
  obs::Counter& prefilter_rejects =
      obs::registry().counter("skyline.prefilter_rejects");
  obs::Counter& merge_levels = obs::registry().counter("skyline.merge_levels");
  obs::Gauge& level_arcs_hwm =
      obs::registry().gauge("skyline.workspace_level_arcs_hwm");
};

SkylineTelemetry& skyline_telemetry() {
  static SkylineTelemetry t;
  return t;
}

/// Partial skyline `i` of the current level.
std::span<const Arc> level_skyline(const std::vector<Arc>& arcs,
                                   const std::vector<std::uint32_t>& bounds,
                                   std::size_t i) {
  return {arcs.data() + bounds[i],
          static_cast<std::size_t>(bounds[i + 1] - bounds[i])};
}

/// Margin for the dominated-disk prefilter.  If dist(u_i, u_j) + r_i <=
/// r_j - margin, every point of disk i's boundary lies >= margin inside
/// disk j, so disk i trails disk j's radial envelope by >= margin at every
/// angle.  With margin >> geom::kTol the dominated disk can never win a
/// Merge span even under tolerant comparisons, so dropping it leaves the
/// output bit-identical.  Disks closer than the margin to coincident or
/// internally tangent (duplicate_set, tangent_pair) are deliberately kept,
/// preserving the engine's tie-break behavior on degenerate inputs.
constexpr double kDominanceMargin = 1e-6;

/// Cap on containment tests per disk.  The prefilter scans potential
/// containers in radius-descending order; adversarial inputs (thousands of
/// disks in a narrow radius band, nothing dominated) would otherwise turn
/// it quadratic.  The cap only reduces pruning, never correctness.
constexpr std::size_t kMaxDominanceChecks = 64;

}  // namespace

MLDCS_ALLOC_OK void SkylineWorkspace::reserve(std::size_t n_disks) {
  // Lemma 8: any level's concatenated partial skylines total <= 2n arcs
  // (each partial skyline of k disks has <= 2k arcs); Merge's raw Step-2
  // output before coalescing stays within the same constant factor.
  cur_.reserve(2 * n_disks + 8);
  next_.reserve(2 * n_disks + 8);
  bounds_cur_.reserve(n_disks + 1);
  bounds_next_.reserve(n_disks + 1);
  breaks_.reserve(2 * n_disks + 8);
  order_.reserve(n_disks);
  live_.reserve(n_disks);
}

void SkylineWorkspace::clear() noexcept {
  cur_ = {};
  next_ = {};
  bounds_cur_ = {};
  bounds_next_ = {};
  breaks_ = {};
  order_ = {};
  live_ = {};
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void compute_skyline_arcs(
    std::span<const geom::Disk> disks, geom::Vec2 o, SkylineWorkspace& ws,
    std::vector<Arc>& out, MergeStats* stats) {
  out.clear();
  const std::size_t n = disks.size();
  if (n == 0) return;
  MLDCS_DCHECK_OK(check_local_disk_premise(disks, o));

  // Dominated-disk prefilter: a disk strictly inside another (by more than
  // kDominanceMargin) contributes no skyline arc, so it can skip the merge
  // levels entirely.  In the paper's heterogeneous deployments (radii
  // U[1,2], neighbors within min(r_u, r_v)) a large share of small disks
  // are swallowed by bigger neighbors, and each dropped disk saves O(log n)
  // Merge passes over its arcs.  Scanning containers largest-radius-first
  // lets each disk stop at the first disk too small to contain it.
  ws.order_.resize(n);
  std::iota(ws.order_.begin(), ws.order_.end(), 0u);
  std::sort(ws.order_.begin(), ws.order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              // Exact comparison on purpose: the sort is a deterministic
              // tie-break, not a geometric predicate — a tolerance here
              // would make the prefilter order (and thus the merge tree)
              // input-noise dependent.
              // mldcs-analyze:allow(tolerance-audit): deterministic sort key
              if (disks[a].radius != disks[b].radius) {
                return disks[a].radius > disks[b].radius;
              }
              return a < b;
            });
  ws.live_.clear();
  for (const std::uint32_t idx : ws.order_) {
    const geom::Disk& di = disks[idx];
    bool dominated = false;
    std::size_t checks = 0;
    for (const std::uint32_t j : ws.live_) {  // radius-descending
      const double gap = disks[j].radius - di.radius - kDominanceMargin;
      if (gap <= 0.0) break;  // no remaining disk is big enough
      if (geom::distance2(di.center, disks[j].center) <= gap * gap) {
        dominated = true;
        break;
      }
      if (++checks >= kMaxDominanceChecks) break;
    }
    if (!dominated) ws.live_.push_back(idx);
  }
  // Restore original disk order so the merge tree (and thus the exact arc
  // output) depends only on the input, not on the radius sort.
  std::sort(ws.live_.begin(), ws.live_.end());

  // Level 0: every surviving disk's boundary is one full-circle arc, split
  // at the +x axis by convention (here: one arc [0, 2*pi]).
  ws.cur_.clear();
  ws.bounds_cur_.clear();
  ws.bounds_cur_.push_back(0);
  for (std::size_t i = 0; i < ws.live_.size(); ++i) {
    ws.cur_.push_back(Arc{0.0, geom::kTwoPi, ws.live_[i]});
    ws.bounds_cur_.push_back(static_cast<std::uint32_t>(i + 1));
  }

  // Bottom-up passes: merge adjacent pairs until one skyline remains.  An
  // odd tail skyline is carried to the next level verbatim, so the merge
  // tree has the same O(log n) depth as the recursive halving and every
  // disk goes through O(log n) Merges (Theorem 9's bound).
  std::uint64_t levels = 0;
  std::size_t level_arcs_max = ws.cur_.size();
  std::size_t count = ws.live_.size();
  while (count > 1) {
    ws.next_.clear();
    ws.bounds_next_.clear();
    ws.bounds_next_.push_back(0);
    for (std::size_t i = 0; i + 1 < count; i += 2) {
      merge_skylines(level_skyline(ws.cur_, ws.bounds_cur_, i),
                     level_skyline(ws.cur_, ws.bounds_cur_, i + 1), disks, o,
                     ws.breaks_, ws.next_, stats);
      ws.bounds_next_.push_back(static_cast<std::uint32_t>(ws.next_.size()));
    }
    if (count % 2 == 1) {
      const auto tail = level_skyline(ws.cur_, ws.bounds_cur_, count - 1);
      ws.next_.insert(ws.next_.end(), tail.begin(), tail.end());
      ws.bounds_next_.push_back(static_cast<std::uint32_t>(ws.next_.size()));
    }
    std::swap(ws.cur_, ws.next_);
    std::swap(ws.bounds_cur_, ws.bounds_next_);
    count = ws.bounds_cur_.size() - 1;
    ++levels;
    level_arcs_max = std::max(level_arcs_max, ws.cur_.size());
  }

  out.insert(out.end(), ws.cur_.begin(), ws.cur_.end());

  SkylineTelemetry& t = skyline_telemetry();
  t.calls.add();
  t.disks_in.add(n);
  t.prefilter_rejects.add(n - ws.live_.size());
  t.merge_levels.add(levels);
  t.level_arcs_hwm.set_max(static_cast<std::int64_t>(level_arcs_max));

  if constexpr (kInvariantChecksEnabled) {
    // The full Theorem 3 cross-check is O(n^2); keep it to inputs where the
    // brute-force reference is cheap so checked test runs stay fast.
    if (n <= kDeepCheckMaxDisks) {
      // mldcs-analyze:allow(hot-no-alloc): debug-only invariant cross-check
      const Skyline sky{o, std::vector<Arc>(out.begin(), out.end())};
      MLDCS_CHECK_OK(check_skyline_minimality(disks, sky));
    }
  }
}

MLDCS_ALLOC_OK Skyline compute_skyline(std::span<const geom::Disk> disks,
                                       geom::Vec2 o, SkylineWorkspace& ws,
                                       MergeStats* stats) {
  std::vector<Arc> arcs;
  compute_skyline_arcs(disks, o, ws, arcs, stats);
  return Skyline{o, std::move(arcs)};
}

MLDCS_ALLOC_OK Skyline compute_skyline(std::span<const geom::Disk> disks,
                                       geom::Vec2 o, MergeStats* stats) {
  // One workspace per thread: every legacy call site becomes allocation-
  // free in steady state without signature changes.
  thread_local SkylineWorkspace tl_workspace;
  return compute_skyline(disks, o, tl_workspace, stats);
}

}  // namespace mldcs::core
