#include "core/skyline_dc.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>
#include <vector>

#include <cmath>

#include "core/invariants.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "geometry/simd.hpp"
#include "geometry/tolerance.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace mldcs::core {

namespace {

/// Engine telemetry (docs/OBSERVABILITY.md).  References are hoisted once;
/// each compute_skyline_arcs call then costs a handful of relaxed atomic
/// adds — per *call*, never per arc, so the hard-regime single-relay
/// overhead stays within the perf suite's noise.
struct SkylineTelemetry {
  obs::Counter& calls = obs::registry().counter("skyline.calls");
  obs::Counter& disks_in = obs::registry().counter("skyline.disks_in");
  obs::Counter& prefilter_rejects =
      obs::registry().counter("skyline.prefilter_rejects");
  obs::Counter& merge_levels = obs::registry().counter("skyline.merge_levels");
  obs::Gauge& level_arcs_hwm =
      obs::registry().gauge("skyline.workspace_level_arcs_hwm");
};

SkylineTelemetry& skyline_telemetry() {
  static SkylineTelemetry t;
  return t;
}

/// Margin for the dominated-disk prefilter.  If dist(u_i, u_j) + r_i <=
/// r_j - margin, every point of disk i's boundary lies >= margin inside
/// disk j, so disk i trails disk j's radial envelope by >= margin at every
/// angle.  With margin >> geom::kTol the dominated disk can never win a
/// Merge span even under tolerant comparisons, so dropping it leaves the
/// output bit-identical.  Disks closer than the margin to coincident or
/// internally tangent (duplicate_set, tangent_pair) are deliberately kept,
/// preserving the engine's tie-break behavior on degenerate inputs.
constexpr double kDominanceMargin = 1e-6;

/// Cap on containment tests per disk.  The prefilter scans potential
/// containers in radius-descending order; adversarial inputs (thousands of
/// disks in a narrow radius band, nothing dominated) would otherwise turn
/// it quadratic.  The cap only reduces pruning, never correctness.  16 is
/// enough to catch essentially all dominations in the paper's U[1,2]
/// deployments (containers much larger than the candidate sort first)
/// while keeping the worst-case scan on undominatable narrow-band inputs
/// to two lane blocks.
constexpr std::size_t kMaxDominanceChecks = 16;

/// Stable LSD byte-radix over the u64 keys of (key, index) pairs, skipping
/// bytes on which every key agrees — disks drawn from a narrow radius band
/// differ only in low mantissa bytes, so typically half the passes
/// survive.  Stability plus the index-ascending seed order makes
/// equal-radius ties resolve index-ascending without widening the sort
/// key.  Small inputs keep std::sort: the histograms only pay in bulk.
void sort_order_keys(
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& v,
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& alt) {
  const std::size_t n = v.size();
  if (n < 128) {
    std::sort(v.begin(), v.end());
    return;
  }
  std::uint64_t all_or = 0;
  std::uint64_t all_and = ~std::uint64_t{0};
  for (const auto& [key, idx] : v) {
    all_or |= key;
    all_and &= key;
  }
  const std::uint64_t differ = all_or & ~all_and;
  alt.resize(n);
  auto* src = &v;
  auto* dst = &alt;
  for (int b = 0; b < 64; b += 8) {
    if (((differ >> b) & 0xffu) == 0) continue;
    std::uint32_t hist[257] = {};
    for (const auto& [key, idx] : *src) ++hist[((key >> b) & 0xffu) + 1];
    for (int d = 0; d < 256; ++d) hist[d + 1] += hist[d];
    for (const auto& p : *src) (*dst)[hist[(p.first >> b) & 0xffu]++] = p;
    std::swap(src, dst);
  }
  if (src != &v) v.swap(alt);
}

}  // namespace

MLDCS_ALLOC_OK void SkylineWorkspace::reserve(std::size_t n_disks) {
  // Lemma 8: any level's concatenated partial skylines total <= 2n arcs
  // (each partial skyline of k disks has <= 2k arcs); Merge's raw Step-2
  // output before coalescing stays within the same constant factor.
  lev_cur_.reserve(n_disks);
  lev_next_.reserve(n_disks);
  scratch_.reserve(n_disks);
  soa_.reserve(n_disks);
  filt_.reserve(n_disks);
  zeros_.reserve(n_disks);
  order_.reserve(n_disks);
  order_alt_.reserve(n_disks);
  live_.reserve(n_disks);
  dom_.reserve(n_disks);
}

void SkylineWorkspace::clear() noexcept {
  lev_cur_ = {};
  lev_next_ = {};
  scratch_ = {};
  soa_ = {};
  filt_ = {};
  zeros_ = {};
  order_ = {};
  order_alt_ = {};
  live_ = {};
  dom_ = {};
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void compute_skyline_arcs(
    std::span<const geom::Disk> disks, geom::Vec2 o, SkylineWorkspace& ws,
    std::vector<Arc>& out, MergeStats* stats) {
  // Innermost tag wins: samples landing here attribute to the kernel even
  // when reached through cache_recompute (the enclosing scope restores).
  const obs::PhaseScope phase(obs::Phase::kSimdKernel);
  out.clear();
  const std::size_t n = disks.size();
  if (n == 0) return;
  MLDCS_DCHECK_OK(check_local_disk_premise(disks, o));

  const geom::simd::SkylineKernels& kernels = geom::simd::active_kernels();

  // Dominated-disk prefilter: a disk strictly inside another (by more than
  // kDominanceMargin) contributes no skyline arc, so it can skip the merge
  // levels entirely.  In the paper's heterogeneous deployments (radii
  // U[1,2], neighbors within min(r_u, r_v)) a large share of small disks
  // are swallowed by bigger neighbors, and each dropped disk saves O(log n)
  // Merge passes over its arcs.  Scanning containers largest-radius-first
  // lets each disk stop at the first disk too small to contain it; the
  // accepted containers live in a sentinel-padded DiskSoA so the batch
  // kernel tests a whole lane block per step with the verdict taken at the
  // lowest-index lane — identical to the sequential scan, cap included.
  // The scan order is an exact deterministic tie-break (radius descending,
  // then index ascending), not a geometric predicate — a tolerance here
  // would make the prefilter order (and thus the merge tree) input-noise
  // dependent.  Packed as one lexicographic (u64, u32) key: positive
  // finite doubles order by their bit patterns, so ~bits(radius) sorts
  // radius-descending exactly, and the sort never touches the disk array.
  ws.order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.order_[i] = {~std::bit_cast<std::uint64_t>(disks[i].radius),
                    static_cast<std::uint32_t>(i)};
  }
  sort_order_keys(ws.order_, ws.order_alt_);
  ws.filt_.assign_sentinels(n);
  ws.dom_.assign(n, 0);
  for (const auto& [key, idx] : ws.order_) {
    const geom::Disk& di = disks[idx];
    if (!kernels.prefilter_dominated(
            di.center.x, di.center.y, di.radius, ws.filt_.cx.data(),
            ws.filt_.cy.data(), ws.filt_.r.data(), ws.filt_.cx.size(),
            kDominanceMargin, static_cast<int>(kMaxDominanceChecks))) {
      ws.filt_.push(di.center.x, di.center.y, di.radius);
    } else {
      ws.dom_[idx] = 1;
    }
  }
  // Collect survivors in original disk order so the merge tree (and thus
  // the exact arc output) depends only on the input, not on the radius
  // sort — a linear verdict scan, where re-sorting the survivor list
  // would cost another n log n.
  ws.live_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.dom_[i] == 0) ws.live_.push_back(static_cast<std::uint32_t>(i));
  }
  const std::size_t n_live = ws.live_.size();

  // Live disks in structure-of-arrays form (live-local ids from here on),
  // plus each disk's zero-transition cuts — nonempty only when the relay
  // sits exactly on the disk's boundary, hoisted out of the merge levels
  // so resolve-time span work never calls libm for them.
  ws.soa_.assign_subset(disks, ws.live_);
  ws.zeros_.assign(n_live);
  for (std::size_t i = 0; i < n_live; ++i) {
    const geom::Disk& d = disks[ws.live_[i]];
    const double r = d.radius;
    const double d2 = geom::distance2(d.center, o);
    // |d - r| <= kTol implies |d^2 - r^2| <= kTol (2r + kTol); rule the
    // common strictly-interior case out without a sqrt.
    if (std::fabs(d2 - r * r) > geom::kTol * (2.0 * r + 1.0)) continue;
    double zs[2];
    const int nz = geom::radial_zero_transitions(d, o, zs);
    ws.zeros_.count[i] = static_cast<std::uint8_t>(nz);
    if (nz > 0) {
      ws.zeros_.any = true;
      const geom::Vec2 u0 = geom::unit_at(zs[0]);
      ws.zeros_.ang0[i] = zs[0];
      ws.zeros_.ux0[i] = u0.x;
      ws.zeros_.uy0[i] = u0.y;
    }
    if (nz > 1) {
      const geom::Vec2 u1 = geom::unit_at(zs[1]);
      ws.zeros_.ang1[i] = zs[1];
      ws.zeros_.ux1[i] = u1.x;
      ws.zeros_.uy1[i] = u1.y;
    }
  }

  // Level 0: every surviving disk's boundary is one full-circle arc, split
  // at the +x axis by convention (starts-only: start 0.0, unit (1, 0)),
  // written as flat fills — skyline i is exactly arc i.
  ws.lev_cur_.start.assign(n_live, 0.0);
  ws.lev_cur_.ux.assign(n_live, 1.0);
  ws.lev_cur_.uy.assign(n_live, 0.0);
  ws.lev_cur_.disk.resize(n_live);
  std::iota(ws.lev_cur_.disk.begin(), ws.lev_cur_.disk.end(), 0u);
  ws.lev_cur_.bounds.resize(n_live + 1);
  std::iota(ws.lev_cur_.bounds.begin(), ws.lev_cur_.bounds.end(), 0u);

  // Bottom-up passes: merge adjacent pairs until one skyline remains.  An
  // odd tail skyline is carried to the next level verbatim, so the merge
  // tree has the same O(log n) depth as the recursive halving and every
  // disk goes through O(log n) Merges (Theorem 9's bound).  Each level is
  // one call: the batched Merge accumulates geometry tasks across every
  // pair of the level before handing them to the SIMD kernels, keeping
  // lanes full even when individual partial skylines are short.
  std::uint64_t levels = 0;
  std::size_t level_arcs_max = ws.lev_cur_.start.size();
  std::size_t count = n_live;
  while (count > 1) {
    detail::merge_level_batched(ws.lev_cur_, ws.lev_next_, ws.soa_, o,
                                ws.zeros_, kernels, ws.scratch_, stats);
    if (count % 2 == 1) {
      const std::uint32_t t0 = ws.lev_cur_.bounds[count - 1];
      const std::uint32_t t1 = ws.lev_cur_.bounds[count];
      for (std::uint32_t k = t0; k < t1; ++k) {
        ws.lev_next_.push(ws.lev_cur_.start[k], ws.lev_cur_.ux[k],
                          ws.lev_cur_.uy[k], ws.lev_cur_.disk[k]);
      }
      ws.lev_next_.close_skyline();
    }
    std::swap(ws.lev_cur_, ws.lev_next_);
    count = ws.lev_cur_.skylines();
    ++levels;
    level_arcs_max = std::max(level_arcs_max, ws.lev_cur_.start.size());
  }

  // Starts-only to Arc conversion: endpoints are shared doubles by
  // construction, and live-local disk ids map back to input positions.
  const std::size_t n_arcs = ws.lev_cur_.start.size();
  for (std::size_t k = 0; k < n_arcs; ++k) {
    const double end =
        (k + 1 < n_arcs) ? ws.lev_cur_.start[k + 1] : geom::kTwoPi;
    out.push_back(Arc{ws.lev_cur_.start[k], end,
                      static_cast<std::size_t>(
                          ws.live_[ws.lev_cur_.disk[k]])});
  }

  SkylineTelemetry& t = skyline_telemetry();
  t.calls.add();
  t.disks_in.add(n);
  t.prefilter_rejects.add(n - ws.live_.size());
  t.merge_levels.add(levels);
  t.level_arcs_hwm.set_max(static_cast<std::int64_t>(level_arcs_max));

  if constexpr (kInvariantChecksEnabled) {
    // The full Theorem 3 cross-check is O(n^2); keep it to inputs where the
    // brute-force reference is cheap so checked test runs stay fast.
    if (n <= kDeepCheckMaxDisks) {
      // mldcs-analyze:allow(hot-no-alloc): debug-only invariant cross-check
      const Skyline sky{o, std::vector<Arc>(out.begin(), out.end())};
      MLDCS_CHECK_OK(check_skyline_minimality(disks, sky));
    }
  }
}

MLDCS_ALLOC_OK Skyline compute_skyline(std::span<const geom::Disk> disks,
                                       geom::Vec2 o, SkylineWorkspace& ws,
                                       MergeStats* stats) {
  std::vector<Arc> arcs;
  compute_skyline_arcs(disks, o, ws, arcs, stats);
  return Skyline{o, std::move(arcs)};
}

MLDCS_ALLOC_OK Skyline compute_skyline(std::span<const geom::Disk> disks,
                                       geom::Vec2 o, MergeStats* stats) {
  // One workspace per thread: every legacy call site becomes allocation-
  // free in steady state without signature changes.
  thread_local SkylineWorkspace tl_workspace;
  return compute_skyline(disks, o, tl_workspace, stats);
}

}  // namespace mldcs::core
