#pragma once

/// \file skyline_reference.hpp
/// Reference skyline computations used to cross-validate the O(n log n)
/// divide-and-conquer algorithm.
///
/// 1. `compute_skyline_bruteforce` shares *no* code with Merge: it collects
///    every circle-pair intersection angle as a candidate breakpoint and
///    evaluates the radial argmax at each span midpoint — O(n^2 log n + n^3)
///    but unimpeachably simple.
/// 2. `compute_skyline_incremental` inserts disks one at a time by merging
///    each disk's full-circle arc into the running skyline — O(n^2); it
///    exercises Merge on maximally unbalanced inputs and is also the
///    baseline for the Theorem 9 scaling benchmark.
/// 3. `compute_skyline_recursive` is the original top-down recursive
///    divide-and-conquer: same O(n log n) span complexity as the iterative
///    workspace engine in skyline_dc.cpp, but it materializes fresh
///    left/right/merge vectors at every recursion node — O(n log n) heap
///    allocations.  Kept as the allocation-count baseline for the perf
///    suite and as a merge-tree-independent cross-check.

#include <span>

#include "core/merge.hpp"
#include "core/skyline.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::core {

/// O(n^2 log n)-breakpoint, O(n)-per-span brute-force upper envelope.
/// Same preconditions and output conventions as compute_skyline().
[[nodiscard]] Skyline compute_skyline_bruteforce(
    std::span<const geom::Disk> disks, geom::Vec2 o);

/// Incremental insertion skyline (merge one disk at a time).
[[nodiscard]] Skyline compute_skyline_incremental(
    std::span<const geom::Disk> disks, geom::Vec2 o,
    MergeStats* stats = nullptr);

/// Top-down recursive divide-and-conquer skyline (the pre-workspace
/// implementation): allocates at every recursion node.
[[nodiscard]] Skyline compute_skyline_recursive(
    std::span<const geom::Disk> disks, geom::Vec2 o,
    MergeStats* stats = nullptr);

}  // namespace mldcs::core
