#pragma once

/// \file arc.hpp
/// The 4-parameter arc representation of the paper (Figure 3.4).
///
/// A skyline arc is written (alpha_i, u_j, r_j, alpha_{i+1}): the disk
/// contributing the arc plus the two endpoint angles *measured at the relay
/// `o`* (not at the disk center).  We store the disk by index into the local
/// disk set, which both avoids duplicating geometry and lets the skyline set
/// be read off as the set of indices appearing in the arc list.  Arcs never
/// cross the +x axis: following the paper's convention, an arc spanning
/// 2*pi is split so that every arc satisfies 0 <= start < end <= 2*pi.

#include <cstddef>
#include <ostream>

#include "geometry/angle.hpp"

namespace mldcs::core {

/// One skyline arc: the piece of disk `disk`'s boundary visible from the
/// relay between ray angles [start, end].
struct Arc {
  double start = 0.0;      ///< start angle at `o`, in [0, 2*pi)
  double end = 0.0;        ///< end angle at `o`, in (0, 2*pi]; start < end
  std::size_t disk = 0;    ///< index of the contributing disk in the local set

  /// Angular width of the arc.
  [[nodiscard]] constexpr double span() const noexcept { return end - start; }

  /// Midpoint angle; used by Merge to evaluate which of two aligned arcs is
  /// outermost on a span.
  [[nodiscard]] constexpr double mid() const noexcept {
    return 0.5 * (start + end);
  }

  /// True if ray angle `theta` (already normalized to [0, 2*pi)) falls in
  /// the closed arc span.
  [[nodiscard]] constexpr bool covers(double theta,
                                      double tol = geom::kAngleTol) const noexcept {
    return theta >= start - tol && theta <= end + tol;
  }

  friend constexpr bool operator==(const Arc&, const Arc&) noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, const Arc& a) {
  return os << "arc[" << a.start << ", d" << a.disk << ", " << a.end << ']';
}

}  // namespace mldcs::core
