#include "geometry/circle_intersect.hpp"

#include <cmath>

#include "geometry/tolerance.hpp"

namespace mldcs::geom {

CircleIntersection intersect_circles(const Disk& a, const Disk& b,
                                     double tol) noexcept {
  CircleIntersection out;

  const Vec2 delta = b.center - a.center;
  const double d2 = delta.norm2();
  const double d = std::sqrt(d2);
  const double rsum = a.radius + b.radius;
  const double rdiff = std::fabs(a.radius - b.radius);

  if (d <= tol && rdiff <= tol) {
    out.relation = CircleRelation::kCoincident;
    return out;
  }
  if (d > rsum + tol) {
    out.relation = CircleRelation::kDisjoint;
    return out;
  }
  if (d < rdiff - tol) {
    out.relation = CircleRelation::kContained;
    return out;
  }

  // Foot of the radical axis on the center line:
  //   t = (d^2 + ra^2 - rb^2) / (2 d)   measured from a.center along delta.
  // Height h above the center line: h^2 = ra^2 - t^2.
  const double t = (d2 + a.radius * a.radius - b.radius * b.radius) / (2.0 * d);
  const double h2 = a.radius * a.radius - t * t;

  const Vec2 axis = delta / d;
  const Vec2 foot = a.center + t * axis;

  const bool external_touch = approx_equal(d, rsum, tol);
  const bool internal_touch = approx_equal(d, rdiff, tol);

  if (h2 <= tol * tol || external_touch || internal_touch) {
    out.relation = external_touch ? CircleRelation::kExternallyTangent
                                  : CircleRelation::kInternallyTangent;
    out.count = 1;
    out.points[0] = foot;
    return out;
  }

  const double h = std::sqrt(clamp(h2, 0.0, a.radius * a.radius));
  const Vec2 up = axis.perp();
  out.relation = CircleRelation::kCrossing;
  out.count = 2;
  // +h is counter-clockwise from the a->b axis as seen from a.center.
  out.points[0] = foot + h * up;
  out.points[1] = foot - h * up;
  return out;
}

CircleIntersection intersect_circle_boundaries(const Disk& a, const Disk& b,
                                               double tol) noexcept {
  return intersect_circles(a, b, tol);
}

}  // namespace mldcs::geom
