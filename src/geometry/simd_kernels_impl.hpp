#pragma once

/// \file simd_kernels_impl.hpp
/// Policy-templated bodies of the skyline batch kernels (simd.hpp).
///
/// Included only by the per-ISA translation units (simd_scalar.cpp,
/// simd_avx2.cpp, simd_neon.cpp), each of which supplies a lane policy:
///
///   struct Policy {
///     static constexpr std::size_t kWidth;   // 1, 2, or 4 (divides 8)
///     using V;                               // kWidth doubles
///     using M;                               // per-lane boolean mask
///     load/store/broadcast, add/sub/mul/div/sqrt/abs/neg,
///     le/lt -> M, m_and/m_or/m_andnot, select(M, a, b) = m ? a : b,
///     to_bits(M) -> unsigned (bit k = lane k)
///   };
///
/// Every operation used here is an elementwise correctly-rounded IEEE-754
/// double op, applied in the same order by every policy, with no cross-lane
/// arithmetic — so two policies produce byte-identical outputs lane for
/// lane.  The TUs are compiled with -ffp-contract=off, which keeps the
/// compiler from fusing mul+add chains into FMAs on one policy but not
/// another (GCC contracts by default); see docs/PERFORMANCE.md.

#include <bit>
#include <cstddef>

#include "geometry/angle.hpp"
#include "geometry/simd.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::geom::simd::detail {

/// atan(u) = u + u*(z*P(z)) with z = u^2, valid on |u| <= tan(pi/8).
/// Degree-8 Chebyshev least-squares fit of (atan(u)/u - 1)/z; max error of
/// the assembled atan over the domain is 1.5e-14 rad against libm
/// (measured on a 700k-point sweep), five orders inside kAngleTol.  The
/// odd symmetry makes the same coefficients exact for negative u after the
/// second octant reduction.
inline constexpr double kAtanPoly[9] = {
    -3.33333333329442039e-01, 1.99999998895778408e-01,
    -1.42857051087723369e-01, 1.11107665476095921e-01,
    -9.08398003178051971e-02, 7.61189004812931197e-02,
    -6.11689860741807603e-02, 3.72353025050359970e-02,
    -7.41409091522919183e-03,
};

inline constexpr double kTanPi8 = 4.14213562373095034e-01;  // tan(pi/8)
inline constexpr double kHalfPi = geom::kPi / 2.0;
inline constexpr double kQuarterPi = geom::kPi / 4.0;

template <class P>
struct BatchKernels {
  using V = typename P::V;
  using M = typename P::M;
  static constexpr std::size_t W = P::kWidth;
  static_assert(kBatchPad % W == 0,
                "lane width must divide the batch padding");

  // -- circle_isect -------------------------------------------------------
  // Replicates geom::intersect_circles (circle_intersect.cpp) with
  // tol = kTol, emitting points relative to the origin o.  Lanes whose
  // relation is coincident/disjoint/contained get acc 0 and a divisor of
  // 1.0 blended in so no lane ever divides by zero (d == 0 implies one of
  // those relations, as in the scalar early returns).  The fused span
  // acceptance mirrors Merge Pass B: a point v is inside (alpha + tol,
  // beta - tol) iff both endpoint cross products clear the tolerance sine
  // (narrow spans), or iff it avoids the +x axis (exact full-circle
  // spans); other widths defer to the caller via bit 2.
  static void circle_isect(std::size_t n, const double* ax, const double* ay,
                           const double* ar, const double* bx,
                           const double* by, const double* br,
                           const double* uax, const double* uay,
                           const double* ubx, const double* uby,
                           const double* alpha, const double* beta, double ox,
                           double oy, double* v0x, double* v0y, double* v1x,
                           double* v1y, int* acc, double* sda, double* sdb,
                           double* sss) noexcept {
    const V tol = P::broadcast(kTol);
    const V tol2 = P::broadcast(kTol * kTol);
    const V atol2 = P::broadcast(kAngleTol * kAngleTol);
    const V zero = P::broadcast(0.0);
    const V one = P::broadcast(1.0);
    const V half = P::broadcast(0.5);
    const V three = P::broadcast(3.0);
    const V twopi = P::broadcast(geom::kTwoPi);
    const V vox = P::broadcast(ox);
    const V voy = P::broadcast(oy);
    for (std::size_t i = 0; i < n; i += W) {
      const V av_x = P::load(ax + i);
      const V av_y = P::load(ay + i);
      const V av_r = P::load(ar + i);
      const V bv_x = P::load(bx + i);
      const V bv_y = P::load(by + i);
      const V bv_r = P::load(br + i);

      const V dx = P::sub(bv_x, av_x);
      const V dy = P::sub(bv_y, av_y);
      const V d2 = P::add(P::mul(dx, dx), P::mul(dy, dy));
      const V d = P::sqrt(d2);
      const V rsum = P::add(av_r, bv_r);
      const V rdiff = P::abs(P::sub(av_r, bv_r));

      const M coincident = P::m_and(P::le(d, tol), P::le(rdiff, tol));
      const M disjoint = P::lt(P::add(rsum, tol), d);   // d > rsum + tol
      const M contained = P::lt(d, P::sub(rdiff, tol));  // d < rdiff - tol
      const M degenerate = P::m_or(coincident, P::m_or(disjoint, contained));

      // One reciprocal replaces the three divisions of the scalar routine
      // (t's 1/(2d), axis_x, axis_y) — a multiply-by-reciprocal rewrite
      // that perturbs each quotient by <= 1 ulp, orders of magnitude
      // inside every tolerance downstream, while removing two of the
      // three long-latency operations per lane.
      const V ra2 = P::mul(av_r, av_r);
      const V dsafe = P::select(degenerate, one, d);
      const V inv_d = P::div(one, dsafe);
      const V inv_den = P::select(degenerate, one, P::mul(inv_d, half));
      const V t =
          P::mul(P::sub(P::add(d2, ra2), P::mul(bv_r, bv_r)), inv_den);
      const V h2 = P::sub(ra2, P::mul(t, t));

      const V axis_x = P::mul(dx, inv_d);
      const V axis_y = P::mul(dy, inv_d);
      const V foot_x = P::add(av_x, P::mul(t, axis_x));
      const V foot_y = P::add(av_y, P::mul(t, axis_y));

      // approx_equal(a, b, tol) == |a - b| <= tol for finite inputs.
      const M ext_touch = P::le(P::abs(P::sub(d, rsum)), tol);
      const M int_touch = P::le(P::abs(P::sub(d, rdiff)), tol);
      const M tangent =
          P::m_or(P::le(h2, tol2), P::m_or(ext_touch, int_touch));

      // clamp(h2, 0, ra2): x < lo ? lo : (x > hi ? hi : x).
      const V hcl = P::select(P::lt(h2, zero), zero,
                              P::select(P::lt(ra2, h2), ra2, h2));
      const V h = P::sqrt(hcl);
      const V hup_x = P::mul(h, P::neg(axis_y));  // h * perp(axis)
      const V hup_y = P::mul(h, axis_x);

      P::store(v0x + i,
               P::sub(P::select(tangent, foot_x, P::add(foot_x, hup_x)), vox));
      P::store(v0y + i,
               P::sub(P::select(tangent, foot_y, P::add(foot_y, hup_y)), voy));
      P::store(v1x + i, P::sub(P::sub(foot_x, hup_x), vox));
      P::store(v1y + i, P::sub(P::sub(foot_y, hup_y), voy));

      // Stash the relation as the raw candidate count; the acceptance loop
      // below rewrites it into the documented code.
      const unsigned degb = P::to_bits(degenerate);
      const unsigned tanb = P::to_bits(tangent);
      for (std::size_t k = 0; k < W; ++k) {
        const unsigned bit = 1u << k;
        acc[i + k] = (degb & bit) != 0u ? 0 : ((tanb & bit) != 0u ? 1 : 2);
      }
    }

    // Acceptance loop, deliberately separate from the intersection loop:
    // one fused loop keeps ~25 vector temporaries live and spills hard on
    // 16-register ISAs, while two tight loops round-trip v0/v1 through L1
    // once and keep every register allocation local.
    for (std::size_t i = 0; i < n; i += W) {
      const V w0x = P::load(v0x + i);
      const V w0y = P::load(v0y + i);
      const V w1x = P::load(v1x + i);
      const V w1y = P::load(v1y + i);

      // Span classification.
      const V va = P::load(alpha + i);
      const V vb = P::load(beta + i);
      const M narrow = P::lt(P::sub(vb, va), three);
      const M full = P::m_and(P::m_and(P::le(va, zero), P::le(zero, va)),
                              P::m_and(P::le(vb, twopi), P::le(twopi, vb)));
      const V ux_a = P::load(uax + i);
      const V uy_a = P::load(uay + i);
      const V ux_b = P::load(ubx + i);
      const V uy_b = P::load(uby + i);

      // Acceptance of point 0 and point 1 under both decidable cases.
      const V vv0 = P::add(P::mul(w0x, w0x), P::mul(w0y, w0y));
      const V vv1 = P::add(P::mul(w1x, w1x), P::mul(w1y, w1y));
      const V m20 = P::mul(atol2, vv0);
      const V m21 = P::mul(atol2, vv1);
      const V ca0 = P::sub(P::mul(ux_a, w0y), P::mul(uy_a, w0x));
      const V cb0 = P::sub(P::mul(w0x, uy_b), P::mul(w0y, ux_b));
      const V ca1 = P::sub(P::mul(ux_a, w1y), P::mul(uy_a, w1x));
      const V cb1 = P::sub(P::mul(w1x, uy_b), P::mul(w1y, ux_b));
      const M nar0 =
          P::m_and(P::m_and(P::lt(zero, ca0), P::lt(m20, P::mul(ca0, ca0))),
                   P::m_and(P::lt(zero, cb0), P::lt(m20, P::mul(cb0, cb0))));
      const M nar1 =
          P::m_and(P::m_and(P::lt(zero, ca1), P::lt(m21, P::mul(ca1, ca1))),
                   P::m_and(P::lt(zero, cb1), P::lt(m21, P::mul(cb1, cb1))));
      // Full circle: reject only within kAngleTol of the +x axis
      // (sin(kAngleTol) == kAngleTol in double); acceptance is the
      // complement, taken via m_andnot(hit, all_true) = !hit.
      const M all_true = P::le(zero, zero);
      const M ful0 = P::m_andnot(
          P::m_and(P::lt(zero, w0x), P::le(P::mul(w0y, w0y), m20)), all_true);
      const M ful1 = P::m_andnot(
          P::m_and(P::lt(zero, w1x), P::le(P::mul(w1y, w1y), m21)), all_true);

      // Blend by span class: narrow lanes take the cross test, the rest the
      // axis test (don't-care on deferred lanes, masked out below).
      const M sel0 = P::m_or(P::m_and(narrow, nar0), P::m_andnot(narrow, ful0));
      const M sel1 = P::m_or(P::m_and(narrow, nar1), P::m_andnot(narrow, ful1));
      const M acc0 = P::m_and(P::lt(tol2, vv0), sel0);
      const M acc1 = P::m_and(P::lt(tol2, vv1), sel1);

      const unsigned decb = P::to_bits(P::m_or(narrow, full));
      const unsigned a0b = P::to_bits(acc0);
      const unsigned a1b = P::to_bits(acc1);
      for (std::size_t k = 0; k < W; ++k) {
        const unsigned bit = 1u << k;
        const int cnt = acc[i + k];
        if (cnt == 0) continue;
        if ((decb & bit) == 0u) {
          acc[i + k] = 4 | cnt;  // deferred: caller runs the atan2 test
        } else {
          acc[i + k] = ((a0b & bit) != 0u ? 1 : 0) |
                       (cnt == 2 && (a1b & bit) != 0u ? 2 : 0);
        }
      }
    }

    // Speculative whole-span evaluation: both disks' scaled radial
    // distance along the span's representative ray (bisector ua + ub for
    // widths < 3.0, else perp(ua)), in rho_pairs' exact operation order.
    // Spans that turn out cut-free — the common case — then skip the
    // sub-span evaluation batch entirely; spans with cuts ignore these
    // three streams.  Padding lanes write garbage nobody reads.
    for (std::size_t i = 0; i < n; i += W) {
      const V ux_a = P::load(uax + i);
      const V uy_a = P::load(uay + i);
      const M narrow =
          P::lt(P::sub(P::load(beta + i), P::load(alpha + i)), three);
      const V sxv =
          P::select(narrow, P::add(ux_a, P::load(ubx + i)), P::neg(uy_a));
      const V syv = P::select(narrow, P::add(uy_a, P::load(uby + i)), ux_a);
      const V s2 = P::add(P::mul(sxv, sxv), P::mul(syv, syv));
      P::store(sss + i, s2);

      const V arelx = P::sub(P::load(ax + i), vox);
      const V arely = P::sub(P::load(ay + i), voy);
      const V av_r = P::load(ar + i);
      const V adot = P::add(P::mul(arelx, sxv), P::mul(arely, syv));
      const V across = P::sub(P::mul(arelx, syv), P::mul(arely, sxv));
      const V arad =
          P::sub(P::mul(P::mul(av_r, av_r), s2), P::mul(across, across));
      P::store(sda + i, P::add(adot, P::sqrt(P::select(P::lt(arad, zero),
                                                       zero, arad))));

      const V brelx = P::sub(P::load(bx + i), vox);
      const V brely = P::sub(P::load(by + i), voy);
      const V bv_r = P::load(br + i);
      const V bdot = P::add(P::mul(brelx, sxv), P::mul(brely, syv));
      const V bcross = P::sub(P::mul(brelx, syv), P::mul(brely, sxv));
      const V brad =
          P::sub(P::mul(P::mul(bv_r, bv_r), s2), P::mul(bcross, bcross));
      P::store(sdb + i, P::add(bdot, P::sqrt(P::select(P::lt(brad, zero),
                                                       zero, brad))));
    }
  }

  // -- cut_finalize -------------------------------------------------------
  // ang = angle of v in [0, 2*pi), (ux, uy) = v / |v|.  The atan2 is the
  // classic two-step octant reduction: t = min/max of |vx|,|vy| lands in
  // [0, 1]; t > tan(pi/8) maps through u = (t-1)/(t+1) (atan identity
  // atan(t) = pi/4 + atan(u)); the polynomial covers |u| <= tan(pi/8);
  // quadrant fix-ups mirror the result back, all via mask selects.
  static void cut_finalize(std::size_t n, const double* vx, const double* vy,
                           double* ang, double* ux, double* uy) noexcept {
    const V zero = P::broadcast(0.0);
    const V one = P::broadcast(1.0);
    const V t0 = P::broadcast(kTanPi8);
    const V pi4 = P::broadcast(kQuarterPi);
    const V pi2 = P::broadcast(kHalfPi);
    const V piv = P::broadcast(geom::kPi);
    const V twopi = P::broadcast(geom::kTwoPi);
    for (std::size_t i = 0; i < n; i += W) {
      const V x = P::load(vx + i);
      const V y = P::load(vy + i);
      const V len = P::sqrt(P::add(P::mul(x, x), P::mul(y, y)));
      P::store(ux + i, P::div(x, len));
      P::store(uy + i, P::div(y, len));

      const V px = P::abs(x);
      const V py = P::abs(y);
      const M swap = P::lt(px, py);
      const V num = P::select(swap, px, py);
      const V den = P::select(swap, py, px);
      const V t = P::div(num, den);  // den = max(|x|,|y|) > kTol
      const M red = P::lt(t0, t);
      const V u =
          P::select(red, P::div(P::sub(t, one), P::add(t, one)), t);
      const V z = P::mul(u, u);
      V poly = P::broadcast(kAtanPoly[8]);
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[7]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[6]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[5]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[4]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[3]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[2]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[1]));
      poly = P::add(P::mul(poly, z), P::broadcast(kAtanPoly[0]));
      const V at = P::add(u, P::mul(u, P::mul(z, poly)));

      V phi = P::select(red, P::add(pi4, at), at);
      phi = P::select(swap, P::sub(pi2, phi), phi);
      phi = P::select(P::lt(x, zero), P::sub(piv, phi), phi);
      phi = P::select(P::lt(y, zero), P::neg(phi), phi);
      phi = P::select(P::lt(phi, zero), P::add(phi, twopi), phi);
      P::store(ang + i, phi);
    }
  }

  // -- rho_pairs ----------------------------------------------------------
  // Scaled radial_distance_along (merge.cpp) for both candidate disks of a
  // sub-span, sharing the ray direction s:
  //   d = dot(rel, s) + sqrt(max(r^2 |s|^2 - cross(rel, s)^2, 0)).
  // Multiplying through by |s| preserves every comparison the caller makes
  // (sign of d_a - d_b, tolerance rescaled by |s|), so s never needs
  // normalizing.  The max() mirrors clamp(radicand, 0.0, radicand).
  static void rho_pairs(std::size_t n, const double* sx, const double* sy,
                        const double* ax, const double* ay, const double* ar,
                        const double* bx, const double* by, const double* br,
                        double ox, double oy, double* da, double* db,
                        double* ss) noexcept {
    const V zero = P::broadcast(0.0);
    const V vox = P::broadcast(ox);
    const V voy = P::broadcast(oy);
    for (std::size_t i = 0; i < n; i += W) {
      const V sxv = P::load(sx + i);
      const V syv = P::load(sy + i);
      const V s2 = P::add(P::mul(sxv, sxv), P::mul(syv, syv));
      P::store(ss + i, s2);

      const V arelx = P::sub(P::load(ax + i), vox);
      const V arely = P::sub(P::load(ay + i), voy);
      const V av_r = P::load(ar + i);
      const V adot = P::add(P::mul(arelx, sxv), P::mul(arely, syv));
      const V across = P::sub(P::mul(arelx, syv), P::mul(arely, sxv));
      const V arad =
          P::sub(P::mul(P::mul(av_r, av_r), s2), P::mul(across, across));
      const V aval = P::add(
          adot, P::sqrt(P::select(P::lt(arad, zero), zero, arad)));
      P::store(da + i, aval);

      const V brelx = P::sub(P::load(bx + i), vox);
      const V brely = P::sub(P::load(by + i), voy);
      const V bv_r = P::load(br + i);
      const V bdot = P::add(P::mul(brelx, sxv), P::mul(brely, syv));
      const V bcross = P::sub(P::mul(brelx, syv), P::mul(brely, sxv));
      const V brad =
          P::sub(P::mul(P::mul(bv_r, bv_r), s2), P::mul(bcross, bcross));
      const V bval = P::add(
          bdot, P::sqrt(P::select(P::lt(brad, zero), zero, brad)));
      P::store(db + i, bval);
    }
  }

  // -- prefilter_dominated ------------------------------------------------
  // Lane-parallel version of the sequential scan in compute_skyline_arcs:
  // containers are radius-descending, so the first lane whose gap is <= 0
  // ends the scan (everything after is smaller still); a dominated verdict
  // counts only if it occurs at a lower index than that stop AND the scan
  // would still be running there under the max_checks cap.  Sentinel
  // padding lanes (radius -DBL_MAX) read as stops, terminating the loop at
  // the logical end.
  static bool prefilter_dominated(double cx, double cy, double r,
                                  const double* lx, const double* ly,
                                  const double* lr, std::size_t n,
                                  double margin, int max_checks) noexcept {
    const V zero = P::broadcast(0.0);
    const V vcx = P::broadcast(cx);
    const V vcy = P::broadcast(cy);
    const V vr = P::broadcast(r);
    const V vmargin = P::broadcast(margin);
    int checks = 0;
    for (std::size_t i = 0; i < n; i += W) {
      const V gap = P::sub(P::sub(P::load(lr + i), vr), vmargin);
      const M stop = P::le(gap, zero);
      const V dx = P::sub(vcx, P::load(lx + i));
      const V dy = P::sub(vcy, P::load(ly + i));
      const V dist2 = P::add(P::mul(dx, dx), P::mul(dy, dy));
      const M dom = P::m_andnot(stop, P::le(dist2, P::mul(gap, gap)));
      const unsigned sb = P::to_bits(stop);
      const unsigned db = P::to_bits(dom);
      if ((sb | db) != 0u) {
        const int first_stop =
            sb != 0u ? std::countr_zero(sb) : static_cast<int>(W);
        const int first_dom =
            db != 0u ? std::countr_zero(db) : static_cast<int>(W);
        return first_dom < first_stop && checks + first_dom < max_checks;
      }
      checks += static_cast<int>(W);
      if (checks >= max_checks) return false;
    }
    return false;
  }
};

/// Assemble one policy's kernels into a dispatch-table entry.
template <class P>
[[nodiscard]] constexpr SkylineKernels make_kernels(
    const char* name) noexcept {
  return SkylineKernels{name, &BatchKernels<P>::circle_isect,
                        &BatchKernels<P>::cut_finalize,
                        &BatchKernels<P>::rho_pairs,
                        &BatchKernels<P>::prefilter_dominated};
}

}  // namespace mldcs::geom::simd::detail
