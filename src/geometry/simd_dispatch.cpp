#include <cstdlib>
#include <cstring>

#include "geometry/simd.hpp"

// Runtime kernel dispatch (see simd.hpp).  The geometry CMakeLists defines
// MLDCS_SIMD_HAS_AVX2 / MLDCS_SIMD_HAS_NEON for exactly the wide TUs it
// compiled in, so this file is the single place that knows what exists.

namespace mldcs::geom::simd {

#if defined(MLDCS_SIMD_HAS_AVX2)
const SkylineKernels& avx2_kernels() noexcept;
#endif
#if defined(MLDCS_SIMD_HAS_NEON)
const SkylineKernels& neon_kernels() noexcept;
#endif

namespace {

/// Test override installed by ScopedKernelOverride; read on every
/// active_kernels() call (plain pointer — single-threaded installers only).
const SkylineKernels* g_override = nullptr;

bool env_forces_scalar() noexcept {
  const char* env = std::getenv("MLDCS_SIMD");
  return env != nullptr && (std::strcmp(env, "off") == 0 ||
                            std::strcmp(env, "scalar") == 0);
}

const SkylineKernels* widest_supported() noexcept {
#if defined(MLDCS_SIMD_HAS_AVX2)
  if (__builtin_cpu_supports("avx2")) return &avx2_kernels();
#endif
#if defined(MLDCS_SIMD_HAS_NEON)
  return &neon_kernels();  // NEON is baseline on AArch64
#endif
  return nullptr;
}

const SkylineKernels* choose() noexcept {
  if (env_forces_scalar()) return &scalar_kernels();
  const SkylineKernels* wide = widest_supported();
  return wide != nullptr ? wide : &scalar_kernels();
}

}  // namespace

const SkylineKernels& active_kernels() noexcept {
  if (g_override != nullptr) return *g_override;
  // First call decides; later calls are one load + branch.  The guard for
  // this local static is warmed by static init / the first skyline call,
  // in line with the hot path's warmed-up zero-lock discipline.
  static const SkylineKernels* const kChosen = choose();
  return *kChosen;
}

const char* detected_isa() noexcept {
  const SkylineKernels* wide = widest_supported();
  return wide != nullptr ? wide->name : "none";
}

const char* dispatch_choice() noexcept { return active_kernels().name; }

bool simd_compiled() noexcept {
#if defined(MLDCS_SIMD_HAS_AVX2) || defined(MLDCS_SIMD_HAS_NEON)
  return true;
#else
  return false;
#endif
}

ScopedKernelOverride::ScopedKernelOverride(const SkylineKernels& k) noexcept
    : prev_(g_override) {
  g_override = &k;
}

ScopedKernelOverride::~ScopedKernelOverride() { g_override = prev_; }

}  // namespace mldcs::geom::simd
