#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "geometry/simd.hpp"
#include "geometry/simd_kernels_impl.hpp"

// 2 x double NEON policy (AArch64 — float64x2_t and vdivq/vsqrtq are
// baseline there, so no runtime feature test is needed).  Compiled with
// -ffp-contract=off like the other kernel TUs; only non-fusing intrinsics
// appear here, preserving byte-identity with the scalar policy.

namespace mldcs::geom::simd {

namespace {

struct NeonPolicy {
  static constexpr std::size_t kWidth = 2;
  using V = float64x2_t;
  using M = uint64x2_t;  // all-ones / all-zeros lanes from vc*q_f64

  static V load(const double* p) noexcept { return vld1q_f64(p); }
  static void store(double* p, V v) noexcept { vst1q_f64(p, v); }
  static V broadcast(double x) noexcept { return vdupq_n_f64(x); }
  static V add(V a, V b) noexcept { return vaddq_f64(a, b); }
  static V sub(V a, V b) noexcept { return vsubq_f64(a, b); }
  static V mul(V a, V b) noexcept { return vmulq_f64(a, b); }
  static V div(V a, V b) noexcept { return vdivq_f64(a, b); }
  static V sqrt(V a) noexcept { return vsqrtq_f64(a); }
  static V abs(V a) noexcept { return vabsq_f64(a); }
  static V neg(V a) noexcept { return vnegq_f64(a); }
  static M le(V a, V b) noexcept { return vcleq_f64(a, b); }
  static M lt(V a, V b) noexcept { return vcltq_f64(a, b); }
  static M m_and(M a, M b) noexcept { return vandq_u64(a, b); }
  static M m_or(M a, M b) noexcept { return vorrq_u64(a, b); }
  static M m_andnot(M a, M b) noexcept { return vbicq_u64(b, a); }
  static V select(M m, V a, V b) noexcept { return vbslq_f64(m, a, b); }
  static unsigned to_bits(M m) noexcept {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
           (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u) << 1);
  }
};

}  // namespace

const SkylineKernels& neon_kernels() noexcept {
  static constexpr SkylineKernels kTable =
      detail::make_kernels<NeonPolicy>("neon");
  return kTable;
}

}  // namespace mldcs::geom::simd

#endif  // __aarch64__
