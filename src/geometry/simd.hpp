#pragma once

/// \file simd.hpp
/// Runtime-dispatched batch kernels for the skyline geometry hot path.
///
/// The divide-and-conquer skyline engine batches its per-span geometry —
/// circle-circle intersection, cut-angle finalization (atan2 + unit
/// vector), paired radial-distance evaluation, and the dominated-disk
/// prefilter — into flat task arrays (see geom::DiskSoA) and runs each
/// batch through one of these kernels.  Every kernel is implemented once,
/// templated over a lane-width policy (simd_kernels_impl.hpp), and
/// instantiated per ISA:
///
///   * "scalar" — width-1 emulation, always compiled in.  This is the
///     differential reference: it executes the exact same operation
///     sequence as the wide policies, one lane at a time.
///   * "avx2"   — 4 x double, compiled on x86-64 when MLDCS_ENABLE_SIMD is
///     ON, selected at runtime only if the CPU reports AVX2.
///   * "neon"   — 2 x double, compiled on AArch64 (NEON is baseline there).
///
/// Bit-identity contract: kernels use only elementwise correctly-rounded
/// IEEE-754 double operations (add/sub/mul/div/sqrt/abs/compare/select) in
/// an identical order across policies, never reduce across lanes, and the
/// kernel translation units are built with -ffp-contract=off so the
/// compiler cannot fuse a mul+add into an FMA on one policy but not
/// another.  Consequently scalar and SIMD dispatch produce byte-identical
/// outputs, which the engine turns into byte-identical skyline arcs.
///
/// Dispatch order: the `MLDCS_SIMD` environment variable ("off" or
/// "scalar" forces the fallback), else the best kernel the CPU supports,
/// else scalar.  The choice is made once per process.

#include <cstddef>

namespace mldcs::geom::simd {

/// Callers pad every task batch up to a multiple of this many lanes
/// (equal to DiskSoA::kLaneBlock) with neutral inputs; kernels assume
/// `n % kBatchPad == 0` and that all arrays are readable/writable up to n.
inline constexpr std::size_t kBatchPad = 8;

/// Batched geom::intersect_circles against a common origin `o` = (ox, oy),
/// fused with the Merge span-acceptance test.  Lane i intersects circle
/// (ax, ay, ar)[i] with (bx, by, br)[i], writes the intersection points
/// *relative to o* (v0 = p0 - o, v1 = p1 - o; tangent lanes get
/// v0 = foot - o), and decides which points fall strictly inside the span
/// [alpha, beta][i] whose endpoint unit vectors are (uax, uay) / (ubx,
/// uby)[i]: spans narrower than 3.0 rad test two cross products against
/// the endpoint units, exact full-circle spans [0.0, 2*pi] test proximity
/// to the +x axis, and anything between is deferred to the caller.
/// acc[i] encodes the verdict: 0 = nothing to do (coincident / disjoint /
/// contained, or no point accepted); bit 0 / bit 1 = intersection point
/// 0 / 1 accepted; bit 2 = deferred — the caller must run the scalar
/// atan2 acceptance itself, on (acc[i] & 3) candidate points.
/// Arithmetic and tolerance tests replicate intersect_circles
/// (geometry/circle_intersect.cpp), up to a multiply-by-reciprocal
/// rewrite of its divisions (<= 1 ulp per quotient, far inside kTol).
///
/// The kernel additionally evaluates both disks' scaled radial distance
/// along the span's representative ray — the midpoint bisector ua + ub
/// for spans narrower than 3.0 rad, else the perpendicular of ua — into
/// (sda, sdb, sss), exactly as RhoPairsFn would (sss = |s|^2).  Spans
/// that end up cut-free (the common case) then need no separate
/// evaluation batch; spans with cuts simply ignore the speculation.
using CircleIsectFn = void (*)(std::size_t n, const double* ax,
                               const double* ay, const double* ar,
                               const double* bx, const double* by,
                               const double* br, const double* uax,
                               const double* uay, const double* ubx,
                               const double* uby, const double* alpha,
                               const double* beta, double ox, double oy,
                               double* v0x, double* v0y, double* v1x,
                               double* v1y, int* acc, double* sda,
                               double* sdb, double* sss);

/// Batched cut finalization: for each accepted cut vector v = p - o
/// (guaranteed |v| > kTol by the caller), writes ang = the angle of v in
/// [0, 2*pi) and the unit direction (ux, uy) = v / |v|.  The angle uses a
/// branch-free polynomial atan2 (max error ~1.5e-14 rad, five orders of
/// magnitude inside kAngleTol) so wide lanes need no libm calls.
using CutFinalizeFn = void (*)(std::size_t n, const double* vx,
                               const double* vy, double* ang, double* ux,
                               double* uy);

/// Batched paired radial-distance evaluation along *unnormalized* ray
/// directions s = (sx, sy): lane i writes
///   da[i] = dot(a - o, s) + sqrt(max(ar^2 |s|^2 - cross(a - o, s)^2, 0))
/// (= |s| * rho_a at the ray angle) and db[i] likewise — the scaled form
/// of merge.cpp's radial_distance_along, letting the caller use the cheap
/// bisector s = u_lo + u_hi instead of a normalized unit vector — plus
/// ss[i] = |s|^2, which the caller's tolerance gate rescales by.
using RhoPairsFn = void (*)(std::size_t n, const double* sx,
                            const double* sy, const double* ax,
                            const double* ay, const double* ar,
                            const double* bx, const double* by,
                            const double* br, double ox, double oy,
                            double* da, double* db, double* ss);

/// Dominated-disk prefilter for one candidate disk (cx, cy, r) against the
/// already-accepted containers (lx, ly, lr), stored radius-descending and
/// sentinel-padded to `n` (a kBatchPad multiple; see DiskSoA).  Returns
/// true iff the sequential scalar scan would: walk containers in order,
/// stop at the first with gap = (lr - r) - margin <= 0, report dominated
/// at the first with dist^2 <= gap^2, and give up after `max_checks`
/// inconclusive tests.  Lane blocks evaluate the tests in parallel but the
/// verdict is taken at the lowest-index lane, so the result matches the
/// scalar scan exactly, cap semantics included.
using PrefilterFn = bool (*)(double cx, double cy, double r,
                             const double* lx, const double* ly,
                             const double* lr, std::size_t n, double margin,
                             int max_checks);

/// One ISA's kernel set.  All four entries always come from the same
/// policy instantiation, so mixing is impossible.
struct SkylineKernels {
  const char* name;  ///< "scalar", "avx2", or "neon"
  CircleIsectFn circle_isect;
  CutFinalizeFn cut_finalize;
  RhoPairsFn rho_pairs;
  PrefilterFn prefilter_dominated;
};

/// The width-1 reference kernels (always available).
[[nodiscard]] const SkylineKernels& scalar_kernels() noexcept;

/// The kernels selected for this process: scalar if the MLDCS_SIMD
/// environment variable is "off"/"scalar" or nothing better is compiled
/// in/supported, else the widest supported ISA.  The decision is made on
/// first call and cached.
[[nodiscard]] const SkylineKernels& active_kernels() noexcept;

/// ISA the CPU supports among the compiled-in kernels ("avx2", "neon",
/// "none") — independent of the MLDCS_SIMD override.
[[nodiscard]] const char* detected_isa() noexcept;

/// Name of the kernel set active_kernels() returns.
[[nodiscard]] const char* dispatch_choice() noexcept;

/// True when a wide (non-scalar) kernel set was compiled into this binary
/// (MLDCS_ENABLE_SIMD=ON and the target architecture has one).
[[nodiscard]] bool simd_compiled() noexcept;

/// Test/bench hook: force active_kernels() to return `k` for this object's
/// lifetime.  Process-global and not thread-safe — install it before
/// spawning workers and keep it alive until they quiesce (the differential
/// tests and the perf suite both use it single-threaded).
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const SkylineKernels& k) noexcept;
  ~ScopedKernelOverride();

  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const SkylineKernels* prev_;
};

}  // namespace mldcs::geom::simd
