#pragma once

/// \file angle.hpp
/// Angle arithmetic on the circle [0, 2*pi).
///
/// Skyline arcs are parameterized by angles measured at the relay node `o`
/// counter-clockwise from the +x axis (paper Section 3.3, Figure 3.4).  The
/// paper's convention of splitting any arc that crosses the +x axis means
/// that once inputs are normalized, all arc endpoints satisfy
/// 0 <= alpha_i < alpha_{i+1} <= 2*pi and no further wrap-around handling is
/// needed downstream; these helpers implement that normalization plus the
/// circular-interval membership tests used by Merge.

#include <cmath>
#include <numbers>

#include "geometry/tolerance.hpp"

namespace mldcs::geom {

inline constexpr double kPi = std::numbers::pi_v<double>;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi_v<double>;

/// Map an arbitrary angle to [0, 2*pi).
[[nodiscard]] inline double normalize_angle(double a) noexcept {
  double r = std::fmod(a, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  // fmod of a tiny negative can round to exactly kTwoPi after the add.
  if (r >= kTwoPi) r -= kTwoPi;
  return r;
}

/// Map an arbitrary angle to (-pi, pi].
[[nodiscard]] inline double normalize_angle_signed(double a) noexcept {
  double r = std::fmod(a + kPi, kTwoPi);
  if (r <= 0.0) r += kTwoPi;
  return r - kPi;
}

/// Counter-clockwise sweep from `from` to `to`, in [0, 2*pi).
[[nodiscard]] inline double ccw_span(double from, double to) noexcept {
  return normalize_angle(to - from);
}

/// True if angle `a` lies in the counter-clockwise closed interval
/// [lo, hi] where the interval is swept CCW from lo to hi.  All three are
/// normalized first.  An interval with lo == hi is treated as the single
/// point {lo} (the full circle is represented by [0, 2*pi] explicitly by
/// callers, never by lo == hi).
[[nodiscard]] inline bool angle_in_ccw_interval(double a, double lo, double hi,
                                                double tol = kAngleTol) noexcept {
  const double span = ccw_span(lo, hi);
  const double off = ccw_span(lo, a);
  return off <= span + tol || off >= kTwoPi - tol;
}

/// True if `a` lies strictly inside the CCW interval (lo, hi).
[[nodiscard]] inline bool angle_strictly_inside(double a, double lo, double hi,
                                                double tol = kAngleTol) noexcept {
  const double span = ccw_span(lo, hi);
  const double off = ccw_span(lo, a);
  return off > tol && off < span - tol;
}

/// Angular coincidence test on the circle: true when a and b differ by a
/// multiple of 2*pi within tolerance.
[[nodiscard]] inline bool approx_equal_angle(double a, double b,
                                             double tol = kAngleTol) noexcept {
  const double d = normalize_angle(a - b);
  return d <= tol || d >= kTwoPi - tol;
}

/// Degrees -> radians (test and example convenience).
[[nodiscard]] constexpr double deg2rad(double deg) noexcept {
  return deg * (std::numbers::pi_v<double> / 180.0);
}

/// Radians -> degrees.
[[nodiscard]] constexpr double rad2deg(double rad) noexcept {
  return rad * (180.0 / std::numbers::pi_v<double>);
}

}  // namespace mldcs::geom
