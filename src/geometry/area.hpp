#pragma once

/// \file area.hpp
/// Area of a union of disks.
///
/// Used by the validation layer (Theorem 3 says the MLDCS covers *exactly*
/// the area of all 1-hop disks; comparing union areas is an independent
/// check on the skyline computation) and by the coverage-gap study of
/// Figure 5.6.

#include <cstdint>
#include <span>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// True if point p is covered by at least one disk in the span.
[[nodiscard]] bool covered_by_union(std::span<const Disk> disks, Vec2 p,
                                    double tol = kTol) noexcept;

/// Deterministic grid estimate of the union area: sample `resolution` x
/// `resolution` cell centers over the union's bounding box and count covered
/// cells.  Error is O(perimeter * cell_size); resolution 1000 gives ~0.1%
/// on the paper's configurations.
[[nodiscard]] double union_area_grid(std::span<const Disk> disks,
                                     std::uint32_t resolution = 512);

/// Exact area of the union of disks in a *local* disk set around origin `o`
/// (every disk must contain `o`), by integrating the squared radial
/// envelope: area = 1/2 * Integral rho(theta)^2 dtheta, evaluated arc by
/// arc in closed form.  The arcs are supplied as (start angle, disk, end
/// angle) triples by the caller (typically a computed skyline); this header
/// only exposes the one-arc building block.
///
/// Closed form for a disk at center distance d, radius r, center angle phi,
/// between ray angles [t0, t1]:
///   1/2 Int rho^2 = 1/2 Int (d cos a + sqrt(r^2 - d^2 sin^2 a))^2 da,
/// with a = theta - phi; integrated analytically (see area.cpp).
[[nodiscard]] double sector_area_under_disk(const Disk& d, Vec2 o, double theta0,
                                            double theta1);

}  // namespace mldcs::geom
