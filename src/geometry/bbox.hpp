#pragma once

/// \file bbox.hpp
/// Axis-aligned bounding boxes; used by the spatial grid, the SVG example,
/// and the area-estimation helpers.

#include <algorithm>
#include <limits>
#include <span>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// Axis-aligned bounding box [min.x, max.x] x [min.y, max.y].
struct BBox {
  Vec2 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec2 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  [[nodiscard]] bool empty() const noexcept {
    return min.x > max.x || min.y > max.y;
  }

  [[nodiscard]] double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] double area() const noexcept {
    return empty() ? 0.0 : width() * height();
  }
  [[nodiscard]] Vec2 center() const noexcept { return midpoint(min, max); }

  [[nodiscard]] bool contains(Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  void expand(Vec2 p) noexcept {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  void expand(const Disk& d) noexcept {
    expand(d.center - Vec2{d.radius, d.radius});
    expand(d.center + Vec2{d.radius, d.radius});
  }

  /// Grow the box by `margin` on every side.
  [[nodiscard]] BBox inflated(double margin) const noexcept {
    BBox b = *this;
    b.min -= Vec2{margin, margin};
    b.max += Vec2{margin, margin};
    return b;
  }
};

/// Bounding box of a set of disks.
[[nodiscard]] inline BBox bbox_of(std::span<const Disk> disks) noexcept {
  BBox b;
  for (const Disk& d : disks) b.expand(d);
  return b;
}

/// Bounding box of a set of points.
[[nodiscard]] inline BBox bbox_of(std::span<const Vec2> pts) noexcept {
  BBox b;
  for (const Vec2& p : pts) b.expand(p);
  return b;
}

}  // namespace mldcs::geom
