#pragma once

/// \file vec2.hpp
/// Minimal 2-D point/vector type used throughout the library.
///
/// The paper models wireless nodes as points in R^2 (Section 3.1); every
/// subsystem (geometry, skyline core, disk graphs, broadcast simulation)
/// shares this one representation.

#include <cmath>
#include <compare>
#include <iosfwd>
#include <ostream>

#include "geometry/tolerance.hpp"

namespace mldcs::geom {

/// A point or displacement in the Euclidean plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) noexcept : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }

  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    return *this;
  }

  /// Exact component-wise comparison (used for container semantics; use
  /// approx_equal(Vec2,Vec2) for geometric coincidence).
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;

  /// Dot product.
  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept {
    return x * o.x + y * o.y;
  }

  /// 2-D cross product (z-component of the 3-D cross product); positive when
  /// `o` is counter-clockwise from `*this`.
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept {
    return x * o.y - y * o.x;
  }

  /// Squared Euclidean norm.  Prefer this to norm() in comparisons to avoid
  /// the sqrt.
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }

  /// Euclidean norm ||v||.
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }

  /// Angle of the vector measured counter-clockwise from the +x axis, in
  /// (-pi, pi].  atan2(0,0) = 0 by convention.
  [[nodiscard]] double angle() const noexcept { return std::atan2(y, x); }

  /// Unit vector in the same direction.  Precondition: norm() > 0.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return {x / n, y / n};
  }

  /// The vector rotated +90 degrees (counter-clockwise).
  [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }

  /// The vector rotated by `theta` radians counter-clockwise.
  [[nodiscard]] Vec2 rotated(double theta) const noexcept {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {x * c - y * s, x * s + y * c};
  }
};

inline constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// Euclidean distance ||a - b||.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

/// Squared distance ||a - b||^2.
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm2();
}

/// Geometric coincidence test under the library tolerance.
[[nodiscard]] inline bool approx_equal(Vec2 a, Vec2 b,
                                       double tol = kTol) noexcept {
  return approx_equal(a.x, b.x, tol) && approx_equal(a.y, b.y, tol);
}

/// Midpoint of segment ab.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Linear interpolation a + t (b - a).
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Unit vector at angle `theta` from the +x axis.
[[nodiscard]] inline Vec2 unit_at(double theta) noexcept {
  return {std::cos(theta), std::sin(theta)};
}

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace mldcs::geom
