#pragma once

/// \file segment.hpp
/// Line segments and rays, used by Lemma 1 / Corollary 2 reasoning, the
/// Figure 5.6 construction, and broadcast-simulation geometry checks.

#include <optional>

#include "geometry/disk.hpp"
#include "geometry/tolerance.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// A closed line segment between two endpoints.
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }

  /// Point at parameter t in [0,1] along the segment.
  [[nodiscard]] constexpr Vec2 at(double t) const noexcept {
    return lerp(a, b, t);
  }

  /// Squared distance from point p to the segment.
  [[nodiscard]] double distance2_to(Vec2 p) const noexcept {
    const Vec2 ab = b - a;
    const double len2 = ab.norm2();
    if (len2 <= kTol * kTol) return distance2(a, p);
    const double t = clamp((p - a).dot(ab) / len2, 0.0, 1.0);
    return distance2(at(t), p);
  }

  /// Distance from point p to the segment.
  [[nodiscard]] double distance_to(Vec2 p) const noexcept {
    return std::sqrt(distance2_to(p));
  }

  /// True if the whole segment lies in the closed disk `d`.  Because disks
  /// are convex this holds iff both endpoints are inside — the fact behind
  /// Lemma 1.
  [[nodiscard]] bool inside_disk(const Disk& d, double tol = kTol) const noexcept {
    return d.contains(a, tol) && d.contains(b, tol);
  }
};

/// A ray (half line) from `origin` in direction `dir` (need not be unit).
struct Ray {
  Vec2 origin;
  Vec2 dir;

  /// Point at parameter t >= 0 along the ray (t in units of ||dir||).
  [[nodiscard]] constexpr Vec2 at(double t) const noexcept {
    return origin + dir * t;
  }
};

/// Intersection parameters (sorted, t >= 0, in units of ||ray.dir||) of a
/// ray with a circle boundary.  Returns how many of `t0 <= t1` are valid
/// (0, 1, or 2).
struct RayCircleHits {
  int count = 0;
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Intersect a ray with the boundary of disk `d`.
[[nodiscard]] inline RayCircleHits intersect_ray_circle(const Ray& ray,
                                                        const Disk& d,
                                                        double tol = kTol) noexcept {
  RayCircleHits out;
  const Vec2 m = ray.origin - d.center;
  const double aa = ray.dir.norm2();
  if (aa <= tol * tol) return out;
  const double bb = 2.0 * m.dot(ray.dir);
  const double cc = m.norm2() - d.radius * d.radius;
  const double disc = bb * bb - 4.0 * aa * cc;
  if (disc < -tol) return out;
  const double sq = std::sqrt(clamp(disc, 0.0, disc));
  const double inv = 1.0 / (2.0 * aa);
  double lo = (-bb - sq) * inv;
  double hi = (-bb + sq) * inv;
  if (hi < -tol) return out;
  if (lo >= -tol) {
    out.count = 2;
    out.t0 = std::max(lo, 0.0);
    out.t1 = std::max(hi, 0.0);
    if (approx_equal(out.t0, out.t1, tol)) out.count = 1;
  } else {
    out.count = 1;
    out.t0 = std::max(hi, 0.0);
    out.t1 = out.t0;
  }
  return out;
}

}  // namespace mldcs::geom
