#include "geometry/triangle.hpp"

#include <array>
#include <cmath>

#include "geometry/tolerance.hpp"

namespace mldcs::geom {

TriangleKind Triangle::classify(double tol) const noexcept {
  if (degenerate(tol)) return TriangleKind::kDegenerate;
  // Sort squared side lengths; the triangle is obtuse/right/acute according
  // to the sign of (a^2 + b^2 - c^2) for the longest side c.
  double s0 = distance2(b, c);
  double s1 = distance2(a, c);
  double s2 = distance2(a, b);
  if (s0 < s1) std::swap(s0, s1);
  if (s0 < s2) std::swap(s0, s2);
  // Now s0 is the largest squared side.
  const double margin = s1 + s2 - s0;
  if (approx_zero(margin, tol)) return TriangleKind::kRight;
  return margin > 0.0 ? TriangleKind::kAcute : TriangleKind::kObtuse;
}

std::optional<Vec2> Triangle::circumcenter(double tol) const noexcept {
  const double d = 2.0 * signed_area2();
  if (std::fabs(d) <= tol) return std::nullopt;
  const double a2 = a.norm2();
  const double b2 = b.norm2();
  const double c2 = c.norm2();
  const double ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  const double uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  return Vec2{ux, uy};
}

std::optional<double> Triangle::circumradius(double tol) const noexcept {
  const auto o = circumcenter(tol);
  if (!o) return std::nullopt;
  return distance(*o, a);
}

std::optional<Vec2> Triangle::orthocenter(double tol) const noexcept {
  const auto o = circumcenter(tol);
  if (!o) return std::nullopt;
  // Euler line: H = A + B + C - 2 O.
  return a + b + c - 2.0 * (*o);
}

bool Triangle::contains(Vec2 p, double tol) const noexcept {
  const double d1 = (b - a).cross(p - a);
  const double d2 = (c - b).cross(p - b);
  const double d3 = (a - c).cross(p - c);
  const bool has_neg = (d1 < -tol) || (d2 < -tol) || (d3 < -tol);
  const bool has_pos = (d1 > tol) || (d2 > tol) || (d3 > tol);
  return !(has_neg && has_pos);
}

std::optional<std::array<Disk, 3>> lemma6_circles(const Triangle& t,
                                                  double radius,
                                                  double tol) noexcept {
  if (t.degenerate(tol)) return std::nullopt;

  const std::array<std::pair<Vec2, Vec2>, 3> edges{{
      {t.a, t.b},
      {t.b, t.c},
      {t.c, t.a},
  }};
  const std::array<Vec2, 3> opposite{t.c, t.a, t.b};

  std::array<Disk, 3> out;
  for (std::size_t i = 0; i < 3; ++i) {
    const Vec2 p = edges[i].first;
    const Vec2 q = edges[i].second;
    const Vec2 mid = midpoint(p, q);
    const double half = 0.5 * distance(p, q);
    if (radius < half - tol) return std::nullopt;
    const double h = std::sqrt(clamp(radius * radius - half * half, 0.0,
                                     radius * radius));
    Vec2 n = (q - p).perp().normalized();
    // Put the center on the side of pq away from the opposite vertex.
    if (n.dot(opposite[i] - mid) > 0.0) n = -n;
    out[i] = Disk(mid + h * n, radius);
  }
  return out;
}

}  // namespace mldcs::geom
