#pragma once

/// \file disk.hpp
/// Closed disks B(c, r) — the coverage model of the paper (Section 3.1).
///
/// A node u_i with transmission radius r_i covers the closed disk
/// B(u_i, r_i); a node u_j is covered by u_i iff u_j is in B(u_i, r_i).

#include <ostream>

#include "geometry/angle.hpp"
#include "geometry/tolerance.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// A closed disk with center `center` and radius `radius` >= 0.
struct Disk {
  Vec2 center;
  double radius = 0.0;

  constexpr Disk() = default;
  constexpr Disk(Vec2 c, double r) noexcept : center(c), radius(r) {}
  constexpr Disk(double cx, double cy, double r) noexcept
      : center(cx, cy), radius(r) {}

  friend constexpr bool operator==(const Disk&, const Disk&) noexcept = default;

  /// True if point p lies in the closed disk (within tolerance).
  [[nodiscard]] bool contains(Vec2 p, double tol = kTol) const noexcept {
    return distance2(center, p) <= (radius + tol) * (radius + tol);
  }

  /// True if point p lies strictly inside the open disk.
  [[nodiscard]] bool strictly_contains(Vec2 p, double tol = kTol) const noexcept {
    const double rr = radius - tol;
    return rr > 0.0 && distance2(center, p) < rr * rr;
  }

  /// True if point p lies on the boundary circle (within tolerance).
  [[nodiscard]] bool on_boundary(Vec2 p, double tol = kTol) const noexcept {
    return approx_equal(distance(center, p), radius, tol);
  }

  /// True if this disk contains the whole of `other` (within tolerance):
  /// ||c1 - c2|| + r2 <= r1.
  [[nodiscard]] bool contains_disk(const Disk& other,
                                   double tol = kTol) const noexcept {
    return distance(center, other.center) + other.radius <= radius + tol;
  }

  /// True if the two closed disks intersect: ||c1 - c2|| <= r1 + r2.
  [[nodiscard]] bool intersects(const Disk& other,
                                double tol = kTol) const noexcept {
    const double s = radius + other.radius + tol;
    return distance2(center, other.center) <= s * s;
  }

  /// Point on the boundary at angle `theta` (measured at the *disk center*).
  [[nodiscard]] Vec2 boundary_point(double theta) const noexcept {
    return center + radius * unit_at(theta);
  }

  /// Disk area pi r^2.
  [[nodiscard]] double area() const noexcept { return kPi * radius * radius; }
};

/// Geometric coincidence of two disks under the library tolerance.
[[nodiscard]] inline bool approx_equal(const Disk& a, const Disk& b,
                                       double tol = kTol) noexcept {
  return approx_equal(a.center, b.center, tol) &&
         approx_equal(a.radius, b.radius, tol);
}

inline std::ostream& operator<<(std::ostream& os, const Disk& d) {
  return os << "B(" << d.center << ", " << d.radius << ')';
}

}  // namespace mldcs::geom
