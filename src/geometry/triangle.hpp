#pragma once

/// \file triangle.hpp
/// Triangle utilities backing the paper's Chapter 4 lemmas.
///
/// Lemma 6 (three circles with the triangle's edges as chords, circumradius
/// radius, centers outside, meet at the orthocenter), Corollary 7 (with
/// radius larger than the circumradius they have empty common intersection),
/// and the Case 1/Case 2 analysis of Lemma 8 all reason about circumradius,
/// orthocenter, and acute/right/obtuse classification.  These helpers are
/// exercised directly by the property-test suite.

#include <array>
#include <optional>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// Angle classification of a triangle by its largest angle.
enum class TriangleKind { kAcute, kRight, kObtuse, kDegenerate };

struct Triangle {
  Vec2 a, b, c;

  /// Twice the signed area (positive when a,b,c are counter-clockwise).
  [[nodiscard]] constexpr double signed_area2() const noexcept {
    return (b - a).cross(c - a);
  }

  /// Unsigned area.
  [[nodiscard]] double area() const noexcept {
    return 0.5 * std::fabs(signed_area2());
  }

  /// True if the three vertices are (nearly) collinear.
  [[nodiscard]] bool degenerate(double tol = kTol) const noexcept {
    return std::fabs(signed_area2()) <= tol;
  }

  /// Classify by the largest angle, using squared side lengths (no trig).
  [[nodiscard]] TriangleKind classify(double tol = kTol) const noexcept;

  /// Circumcenter; nullopt for degenerate triangles.
  [[nodiscard]] std::optional<Vec2> circumcenter(double tol = kTol) const noexcept;

  /// Circumradius; nullopt for degenerate triangles.
  [[nodiscard]] std::optional<double> circumradius(double tol = kTol) const noexcept;

  /// Orthocenter (intersection of the altitudes); nullopt for degenerate
  /// triangles.  Uses the Euler-line identity H = A + B + C - 2*O where O is
  /// the circumcenter.
  [[nodiscard]] std::optional<Vec2> orthocenter(double tol = kTol) const noexcept;

  /// True if point p lies inside or on the triangle.
  [[nodiscard]] bool contains(Vec2 p, double tol = kTol) const noexcept;
};

/// The three "Lemma 6" circles of a (non-degenerate) triangle: for each edge,
/// the circle with that edge as a chord, radius `radius`, and center on the
/// side of the edge *away* from the opposite vertex (i.e. outside the
/// triangle).  Precondition: radius >= half the edge length for every edge.
/// Returns nullopt when the precondition fails or the triangle is degenerate.
[[nodiscard]] std::optional<std::array<Disk, 3>> lemma6_circles(
    const Triangle& t, double radius, double tol = kTol) noexcept;

}  // namespace mldcs::geom
