#include <cmath>
#include <cstddef>

#include "geometry/simd.hpp"
#include "geometry/simd_kernels_impl.hpp"

// The width-1 reference policy: every kernel op maps to one C++ double
// operation.  This TU is compiled with -ffp-contract=off (geometry
// CMakeLists) so the compiler cannot fuse any mul+add into an FMA — the
// wide policies never fuse (their intrinsics map to non-FMA instructions),
// and byte-identity between dispatch choices depends on neither side
// fusing.

namespace mldcs::geom::simd {

namespace {

struct ScalarPolicy {
  static constexpr std::size_t kWidth = 1;
  using V = double;
  using M = bool;

  static V load(const double* p) noexcept { return *p; }
  static void store(double* p, V v) noexcept { *p = v; }
  static V broadcast(double x) noexcept { return x; }
  static V add(V a, V b) noexcept { return a + b; }
  static V sub(V a, V b) noexcept { return a - b; }
  static V mul(V a, V b) noexcept { return a * b; }
  static V div(V a, V b) noexcept { return a / b; }
  static V sqrt(V a) noexcept { return std::sqrt(a); }
  static V abs(V a) noexcept { return std::fabs(a); }
  static V neg(V a) noexcept { return -a; }
  static M le(V a, V b) noexcept { return a <= b; }
  static M lt(V a, V b) noexcept { return a < b; }
  static M m_and(M a, M b) noexcept { return a && b; }
  static M m_or(M a, M b) noexcept { return a || b; }
  static M m_andnot(M a, M b) noexcept { return !a && b; }
  static V select(M m, V a, V b) noexcept { return m ? a : b; }
  static unsigned to_bits(M m) noexcept { return m ? 1u : 0u; }
};

}  // namespace

const SkylineKernels& scalar_kernels() noexcept {
  static constexpr SkylineKernels kTable =
      detail::make_kernels<ScalarPolicy>("scalar");
  return kTable;
}

}  // namespace mldcs::geom::simd
