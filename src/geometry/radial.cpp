#include "geometry/radial.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "geometry/angle.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::geom {

RadialDisk::RadialDisk(const Disk& d, Vec2 o) noexcept
    : disk_(d), o_(o), d_((d.center - o).norm()), phi_((d.center - o).angle()) {}

double RadialDisk::radius_at(double theta) const noexcept {
  // Law-of-cosines solution of ||o + rho*u(theta) - c|| = r for rho >= 0:
  //   rho = d cos(theta - phi) + sqrt(r^2 - d^2 sin^2(theta - phi)).
  // With o inside the disk (d <= r) the radicand is >= r^2 - d^2 >= 0 and
  // the + root is the unique non-negative solution.
  const double a = theta - phi_;
  const double s = std::sin(a);
  const double radicand = disk_.radius * disk_.radius - d_ * d_ * s * s;
  return d_ * std::cos(a) + std::sqrt(clamp(radicand, 0.0, radicand));
}

Vec2 RadialDisk::boundary_point_at(double theta) const noexcept {
  return o_ + radius_at(theta) * unit_at(theta);
}

double radial_distance(const Disk& d, Vec2 o, double theta) noexcept {
  return RadialDisk(d, o).radius_at(theta);
}

std::size_t radial_argmax(std::span<const Disk> disks, Vec2 o,
                          double theta) noexcept {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_rho = -std::numeric_limits<double>::infinity();
  double best_r = -1.0;
  for (std::size_t i = 0; i < disks.size(); ++i) {
    const double rho = radial_distance(disks[i], o, theta);
    if (rho > best_rho + kTol) {
      best = i;
      best_rho = rho;
      best_r = disks[i].radius;
    } else if (rho > best_rho - kTol) {
      // Tie within tolerance: prefer the larger radius, then the smaller
      // index, matching the skyline algorithms' tie-break.
      if (disks[i].radius > best_r + kTol) {
        best = i;
        best_rho = std::max(best_rho, rho);
        best_r = disks[i].radius;
      }
    }
  }
  return best;
}

double radial_envelope(std::span<const Disk> disks, Vec2 o,
                       double theta) noexcept {
  double best = 0.0;
  for (const Disk& d : disks) best = std::max(best, radial_distance(d, o, theta));
  return best;
}

std::vector<double> sample_radial_envelope(std::span<const Disk> disks, Vec2 o,
                                           std::size_t samples) {
  std::vector<double> out(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    const double theta = kTwoPi * static_cast<double>(k) /
                         static_cast<double>(samples);
    out[k] = radial_envelope(disks, o, theta);
  }
  return out;
}

int radial_zero_transitions(const Disk& d, Vec2 o, double out[2],
                            double tol) noexcept {
  const Vec2 rel = d.center - o;
  const double dist = rel.norm();
  if (!approx_equal(dist, d.radius, tol) || d.radius <= tol) return 0;
  const double phi = rel.angle();
  out[0] = normalize_angle(phi + kPi / 2.0);
  out[1] = normalize_angle(phi - kPi / 2.0);
  return 2;
}

bool is_local_disk_set(std::span<const Disk> disks, Vec2 o,
                       double tol) noexcept {
  for (const Disk& d : disks) {
    if (!d.contains(o, tol)) return false;
  }
  return true;
}

}  // namespace mldcs::geom
