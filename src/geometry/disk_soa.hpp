#pragma once

/// \file disk_soa.hpp
/// Structure-of-arrays disk storage for the batch geometry kernels.
///
/// The skyline engine's hot loops (dominated-disk prefilter, circle-circle
/// intersection, per-ray boundary-distance evaluation) consume disk
/// parameters lane-wise: the SIMD kernels in simd.hpp read `kLaneBlock`
/// consecutive centers/radii per step.  An array-of-structs `geom::Disk`
/// span interleaves x/y/r, so every vector load would gather; this type
/// keeps the three components in separate contiguous arrays, padded so a
/// full lane block read past the logical end is always in bounds.
///
/// Padding lanes carry `kSentinelRadius` (most-negative double): in the
/// prefilter kernel a sentinel radius makes the "container too small"
/// early-exit fire on the first padding lane, so the block-wise scan stops
/// exactly where the sequential scalar scan would.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geometry/disk.hpp"

namespace mldcs::geom {

/// Separate cx[]/cy[]/r[] storage for a disk set, padded to the kernel
/// lane-block size.  Lives inside core::SkylineWorkspace so repeated
/// skyline computations reuse the buffers without allocating.
struct DiskSoA {
  /// Every batch kernel consumes task arrays in blocks of this many lanes;
  /// all concrete lane widths (1 scalar, 2 NEON, 4 AVX2) divide it.
  static constexpr std::size_t kLaneBlock = 8;

  /// Radius stored in padding lanes.  -DBL_MAX (not -inf) so `r - other`
  /// stays well-defined for every finite operand while still comparing
  /// below any real radius.
  static constexpr double kSentinelRadius =
      -std::numeric_limits<double>::max();

  std::vector<double> cx;
  std::vector<double> cy;
  std::vector<double> r;
  std::size_t count = 0;  ///< logical (unpadded) number of disks

  /// Smallest multiple of kLaneBlock >= n.
  [[nodiscard]] static constexpr std::size_t padded(std::size_t n) noexcept {
    return (n + kLaneBlock - 1) / kLaneBlock * kLaneBlock;
  }

  /// Padded size of the current contents.
  [[nodiscard]] std::size_t padded_size() const noexcept {
    return padded(count);
  }

  void reserve(std::size_t n) {
    cx.reserve(padded(n));
    cy.reserve(padded(n));
    r.reserve(padded(n));
  }

  /// Size the arrays for up to `n` disks, every lane a sentinel, and reset
  /// the logical count.  Follow with push() — lanes at and beyond `count`
  /// keep their sentinel radius, so the arrays stay safely padded after
  /// every push without touching the tail again.
  void assign_sentinels(std::size_t n) {
    const std::size_t m = padded(n);
    cx.assign(m, 0.0);
    cy.assign(m, 0.0);
    r.assign(m, kSentinelRadius);
    count = 0;
  }

  /// Append one disk.  Precondition: count < the `n` given to
  /// assign_sentinels (the arrays do not grow here — this is hot-path code).
  void push(double x, double y, double radius) noexcept {
    cx[count] = x;
    cy[count] = y;
    r[count] = radius;
    ++count;
  }

  /// Bulk-load a subset of `disks` selected by `idx`, sentinel-padded.
  void assign_subset(std::span<const Disk> disks,
                     std::span<const std::uint32_t> idx) {
    assign_sentinels(idx.size());
    for (const std::uint32_t i : idx) {
      push(disks[i].center.x, disks[i].center.y, disks[i].radius);
    }
  }
};

}  // namespace mldcs::geom
