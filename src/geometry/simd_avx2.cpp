#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "geometry/simd.hpp"
#include "geometry/simd_kernels_impl.hpp"

// 4 x double AVX2 policy.  This TU is compiled with -mavx2
// -ffp-contract=off; the dispatcher only hands out this table after
// __builtin_cpu_supports("avx2") confirms the instructions exist.  Only
// non-FMA intrinsics appear here (vaddpd/vsubpd/vmulpd/vdivpd/vsqrtpd are
// correctly-rounded IEEE ops, bit-identical to their scalar forms), so the
// byte-identity contract with the scalar policy holds by construction.

namespace mldcs::geom::simd {

namespace {

struct Avx2Policy {
  static constexpr std::size_t kWidth = 4;
  using V = __m256d;
  using M = __m256d;  // all-ones / all-zeros lanes from vcmppd

  static V load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) noexcept { _mm256_storeu_pd(p, v); }
  static V broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  static V add(V a, V b) noexcept { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) noexcept { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) noexcept { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) noexcept { return _mm256_div_pd(a, b); }
  static V sqrt(V a) noexcept { return _mm256_sqrt_pd(a); }
  static V abs(V a) noexcept {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static V neg(V a) noexcept {
    return _mm256_xor_pd(_mm256_set1_pd(-0.0), a);
  }
  static M le(V a, V b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
  }
  static M lt(V a, V b) noexcept {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  }
  static M m_and(M a, M b) noexcept { return _mm256_and_pd(a, b); }
  static M m_or(M a, M b) noexcept { return _mm256_or_pd(a, b); }
  static M m_andnot(M a, M b) noexcept { return _mm256_andnot_pd(a, b); }
  static V select(M m, V a, V b) noexcept {
    return _mm256_blendv_pd(b, a, m);
  }
  static unsigned to_bits(M m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
};

}  // namespace

const SkylineKernels& avx2_kernels() noexcept {
  static constexpr SkylineKernels kTable =
      detail::make_kernels<Avx2Policy>("avx2");
  return kTable;
}

}  // namespace mldcs::geom::simd

#endif  // x86-64
