#pragma once

/// \file circle_intersect.hpp
/// Circle-circle intersection, the geometric kernel of the Merge step.
///
/// In the paper's Merge (Section 3.4) two aligned arcs can meet in 0, 1, or 2
/// points (Cases 1-3); those points are exactly the intersection points of
/// the two underlying circles that fall inside the shared angular span.

#include <array>
#include <optional>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// Classification of the relative position of two circles.
enum class CircleRelation {
  kDisjoint,            ///< separated: no common point, neither contains the other
  kExternallyTangent,   ///< touch at one point from outside
  kCrossing,            ///< two proper intersection points
  kInternallyTangent,   ///< touch at one point, one inside the other
  kContained,           ///< one strictly inside the other, no common boundary point
  kCoincident,          ///< same circle (within tolerance)
};

/// Result of intersecting two circle boundaries.
struct CircleIntersection {
  CircleRelation relation = CircleRelation::kDisjoint;
  /// 0, 1, or 2 boundary intersection points.  For kCoincident the boundary
  /// intersection is a whole circle; `count` is 0 and callers must special-
  /// case on `relation`.
  int count = 0;
  std::array<Vec2, 2> points{};
};

/// Intersect the boundaries of two circles.
///
/// For kCrossing the two points are ordered so that points[0] is counter-
/// clockwise from points[1] as seen from the center of `a` (deterministic
/// order for reproducible skylines).  Tolerance `tol` decides tangency vs.
/// crossing.
[[nodiscard]] CircleIntersection intersect_circles(const Disk& a, const Disk& b,
                                                   double tol = kTol) noexcept;

/// Convenience: just the (0-2) proper intersection points; tangency yields
/// the single touch point.
[[nodiscard]] CircleIntersection intersect_circle_boundaries(
    const Disk& a, const Disk& b, double tol = kTol) noexcept;

}  // namespace mldcs::geom
