#pragma once

/// \file tolerance.hpp
/// Central numeric tolerance policy for the geometry subsystem.
///
/// All approximate comparisons in the library flow through these helpers so
/// that the divide-and-conquer skyline, the incremental reference skyline,
/// and the brute-force envelope agree bit-for-bit on which disks are treated
/// as coincident, tangent, or crossing.  Scattering ad-hoc epsilons across
/// call sites is the classic way computational-geometry codes diverge; a
/// single policy keeps every algorithm on the same side of each degeneracy.

#include <cmath>

namespace mldcs::geom {

/// Absolute tolerance for coordinate/length comparisons.
///
/// The paper's deployments live in a 12.5 x 12.5 square with radii in [1,2],
/// so all coordinates are O(10) and double precision carries ~1e-15 relative
/// error; 1e-9 absolute is comfortably above accumulated rounding noise and
/// comfortably below any feature size the algorithms must distinguish.
inline constexpr double kTol = 1e-9;

/// Tolerance for angles in radians.  Angles are derived from atan2 of O(10)
/// coordinates, so their error budget matches kTol scaled by typical radii.
inline constexpr double kAngleTol = 1e-9;

/// True if |a - b| <= tol (absolute comparison; suitable for the bounded
/// coordinate ranges this library works in).
[[nodiscard]] constexpr bool approx_equal(double a, double b,
                                          double tol = kTol) noexcept {
  const double d = a - b;
  return (d <= tol) && (-d <= tol);
}

/// True if a is approximately zero.
[[nodiscard]] constexpr bool approx_zero(double a, double tol = kTol) noexcept {
  return (a <= tol) && (-a <= tol);
}

/// True if a < b by more than tol (a is *definitely* less).
[[nodiscard]] constexpr bool definitely_less(double a, double b,
                                             double tol = kTol) noexcept {
  return a < b - tol;
}

/// True if a > b by more than tol (a is *definitely* greater).
[[nodiscard]] constexpr bool definitely_greater(double a, double b,
                                                double tol = kTol) noexcept {
  return a > b + tol;
}

/// True if a <= b within tolerance.
[[nodiscard]] constexpr bool approx_leq(double a, double b,
                                        double tol = kTol) noexcept {
  return a <= b + tol;
}

/// True if a >= b within tolerance.
[[nodiscard]] constexpr bool approx_geq(double a, double b,
                                        double tol = kTol) noexcept {
  return a >= b - tol;
}

/// Clamp x into [lo, hi]; used to guard sqrt/acos arguments that drift a few
/// ulps outside their mathematical domain.
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace mldcs::geom
