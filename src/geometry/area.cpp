#include "geometry/area.hpp"

#include <cmath>

#include "geometry/bbox.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::geom {

bool covered_by_union(std::span<const Disk> disks, Vec2 p, double tol) noexcept {
  for (const Disk& d : disks) {
    if (d.contains(p, tol)) return true;
  }
  return false;
}

double union_area_grid(std::span<const Disk> disks, std::uint32_t resolution) {
  if (disks.empty() || resolution == 0) return 0.0;
  const BBox box = bbox_of(disks);
  const double dx = box.width() / resolution;
  const double dy = box.height() / resolution;
  if (dx <= 0.0 || dy <= 0.0) return 0.0;
  std::uint64_t hits = 0;
  for (std::uint32_t iy = 0; iy < resolution; ++iy) {
    const double y = box.min.y + (static_cast<double>(iy) + 0.5) * dy;
    for (std::uint32_t ix = 0; ix < resolution; ++ix) {
      const double x = box.min.x + (static_cast<double>(ix) + 0.5) * dx;
      if (covered_by_union(disks, {x, y}, 0.0)) ++hits;
    }
  }
  return static_cast<double>(hits) * dx * dy;
}

namespace {

/// Global antiderivative of rho(a)^2 where rho(a) = d cos a + sqrt(r^2 -
/// d^2 sin^2 a) and a is measured from the disk-center direction:
///   F(a) = (d^2/2) sin 2a + r^2 a
///        + d sin a * sqrt(r^2 - d^2 sin^2 a) + r^2 asin((d/r) sin a).
/// Continuous on all of R because |d sin a| <= d <= r for local disks.
double rho2_antiderivative(double a, double d, double r) noexcept {
  const double s = std::sin(a);
  const double radicand = clamp(r * r - d * d * s * s, 0.0,
                                r * r);
  const double asin_arg = r > 0.0 ? clamp(d * s / r, -1.0, 1.0) : 0.0;
  return 0.5 * d * d * std::sin(2.0 * a) + r * r * a +
         d * s * std::sqrt(radicand) + r * r * std::asin(asin_arg);
}

}  // namespace

double sector_area_under_disk(const Disk& d, Vec2 o, double theta0,
                              double theta1) {
  const Vec2 rel = d.center - o;
  const double dist = rel.norm();
  const double phi = rel.angle();
  const double a0 = theta0 - phi;
  const double a1 = theta1 - phi;
  return 0.5 * (rho2_antiderivative(a1, dist, d.radius) -
                rho2_antiderivative(a0, dist, d.radius));
}

}  // namespace mldcs::geom
