#pragma once

/// \file radial.hpp
/// Polar-around-`o` view of a local disk set.
///
/// For a *local disk set* the relay position `o` lies in every disk
/// (||o - u_i|| <= r_i, Section 3.2).  Lemma 1 then gives star-shapedness:
/// the segment from `o` to any boundary point stays inside the disk, and
/// Corollary 2 says any ray from `o` meets the skyline exactly once.  So in
/// polar coordinates centered at `o` each boundary circle is the graph of a
/// total function rho_i(theta) and the skyline is the upper envelope
/// rho(theta) = max_i rho_i(theta).  This header provides that function and
/// its kin; the skyline algorithms in src/core are built on it.

#include <span>
#include <vector>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::geom {

/// Precomputed polar form of one disk relative to an origin `o` that the
/// disk contains.
class RadialDisk {
 public:
  /// Precondition: d.contains(o) — the defining property of a local disk
  /// set.  Violations are clamped (the radicand is clamped at 0), but the
  /// library's public entry points validate and reject such inputs first.
  RadialDisk(const Disk& d, Vec2 o) noexcept;

  /// Distance from `o` to the boundary of the disk along direction `theta`
  /// (the unique forward crossing — Lemma 1 guarantees there is exactly one
  /// in the +theta direction).
  [[nodiscard]] double radius_at(double theta) const noexcept;

  /// The boundary point at ray angle theta: o + rho(theta) * unit(theta).
  [[nodiscard]] Vec2 boundary_point_at(double theta) const noexcept;

  /// Distance from the origin to the disk center.
  [[nodiscard]] double center_distance() const noexcept { return d_; }

  /// Angle of the disk center as seen from the origin.
  [[nodiscard]] double center_angle() const noexcept { return phi_; }

  [[nodiscard]] const Disk& disk() const noexcept { return disk_; }
  [[nodiscard]] Vec2 origin() const noexcept { return o_; }

 private:
  Disk disk_;
  Vec2 o_;
  double d_ = 0.0;    ///< ||center - o||
  double phi_ = 0.0;  ///< atan2(center - o)
};

/// rho(theta) for disk `d` around origin `o` without precomputation.
/// Precondition: d.contains(o).
[[nodiscard]] double radial_distance(const Disk& d, Vec2 o,
                                     double theta) noexcept;

/// Index of the disk attaining the maximum radial distance at `theta`
/// (ties broken toward larger radius, then smaller index — the library-wide
/// deterministic tie-break).  Returns SIZE_MAX on an empty span.
[[nodiscard]] std::size_t radial_argmax(std::span<const Disk> disks, Vec2 o,
                                        double theta) noexcept;

/// The upper-envelope value max_i rho_i(theta); 0 on an empty span.
[[nodiscard]] double radial_envelope(std::span<const Disk> disks, Vec2 o,
                                     double theta) noexcept;

/// Evaluate the envelope on `samples` equally spaced angles in [0, 2*pi).
[[nodiscard]] std::vector<double> sample_radial_envelope(
    std::span<const Disk> disks, Vec2 o, std::size_t samples);

/// True if every disk in the span contains `o` (i.e. the span is a valid
/// local disk set around `o`).
[[nodiscard]] bool is_local_disk_set(std::span<const Disk> disks, Vec2 o,
                                     double tol = kTol) noexcept;

/// Degenerate-support angles: when `o` lies exactly on the boundary of `d`
/// (||o - c|| == r within tol), rho is 2r*cos(theta - phi) on the half
/// circle facing the center and identically 0 on the other half; the
/// envelope winner can change at the two transition angles phi +- pi/2,
/// which are NOT circle-circle intersection points.  Returns how many
/// angles were written to `out[0..1]` (0 when o is strictly inside).
/// Both skyline implementations add these as breakpoint candidates.
[[nodiscard]] int radial_zero_transitions(const Disk& d, Vec2 o,
                                          double out[2],
                                          double tol = kTol) noexcept;

}  // namespace mldcs::geom
