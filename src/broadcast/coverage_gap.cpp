#include "broadcast/coverage_gap.hpp"

#include <algorithm>

#include "broadcast/set_cover.hpp"

namespace mldcs::bcast {

CoverageGap skyline_coverage_gap(const net::DiskGraph& g, net::NodeId relay) {
  return skyline_coverage_gap(g, local_view(g, relay));
}

CoverageGap skyline_coverage_gap(const net::DiskGraph& g,
                                 const LocalView& view) {
  CoverageGap gap;
  gap.forwarding_set = skyline_forwarding_set(g, view);
  for (net::NodeId w : view.two_hop) {
    bool covered = false;
    for (net::NodeId v : gap.forwarding_set) {
      if (g.linked(v, w)) {
        covered = true;
        break;
      }
    }
    if (!covered) gap.uncovered.push_back(w);
  }
  return gap;
}

net::DiskGraph figure56_topology() {
  // Distances: u-u1 = u-u2 = 0.8 <= 1 (linked);  u1-u4 = u2-u5 = 0.8 <= 1
  // (linked); u-u4 = 1.6 > 1 (2-hop); u3 = (0, 0.5) with radius 4 swallows
  // B(u,1), B(u1,1), B(u2,1); ||u3-u4|| = ||u3-u5|| ~ 1.676 > min(4,1) = 1,
  // so u4/u5 are NOT linked to u3 even though u3's disk covers them.
  std::vector<net::Node> nodes{
      {0, {0.0, 0.0}, 1.0},    // u   (relay)
      {1, {-0.8, 0.0}, 1.0},   // u1
      {2, {0.8, 0.0}, 1.0},    // u2
      {3, {0.0, 0.5}, 4.0},    // u3  (big disk, swallows everything)
      {4, {-1.6, 0.0}, 1.0},   // u4  (2-hop via u1)
      {5, {1.6, 0.0}, 1.0},    // u5  (2-hop via u2)
  };
  return net::DiskGraph::build(std::move(nodes));
}

std::vector<net::NodeId> patched_skyline_forwarding_set(
    const net::DiskGraph& g, const LocalView& view) {
  std::vector<net::NodeId> fwd = skyline_forwarding_set(g, view);

  // Which 2-hop neighbors does the skyline set miss?
  std::vector<std::uint32_t> missed;
  for (std::uint32_t w = 0; w < view.two_hop.size(); ++w) {
    bool covered = false;
    for (net::NodeId v : fwd) {
      if (g.linked(v, view.two_hop[w])) {
        covered = true;
        break;
      }
    }
    if (!covered) missed.push_back(w);
  }
  if (missed.empty()) return fwd;

  // Greedy-cover the missed ones with 1-hop neighbors (restricted universe).
  SetCoverInstance inst;
  inst.universe_size = missed.size();
  inst.sets.resize(view.one_hop.size());
  for (std::size_t i = 0; i < view.one_hop.size(); ++i) {
    const auto nb = g.neighbors(view.one_hop[i]);
    for (std::uint32_t k = 0; k < missed.size(); ++k) {
      if (std::binary_search(nb.begin(), nb.end(),
                             view.two_hop[missed[k]])) {
        inst.sets[i].push_back(k);
      }
    }
  }
  for (std::size_t i : greedy_set_cover(inst)) {
    fwd.push_back(view.one_hop[i]);
  }
  std::sort(fwd.begin(), fwd.end());
  fwd.erase(std::unique(fwd.begin(), fwd.end()), fwd.end());
  return fwd;
}

}  // namespace mldcs::bcast
