#include "broadcast/sharded_cache.hpp"

#include <algorithm>

#include "broadcast/relay_skyline.hpp"
#include "obs/event_log.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mldcs::bcast {

namespace {

/// Post-barrier maintenance telemetry, reported by the composite on the
/// caller thread (shard updates themselves are lock-free and touch no
/// registry).  Names are shared with the single-engine cache where the
/// meaning coincides, so dashboards read both engines the same way.
struct ShardedCacheTelemetry {
  obs::Counter& updates = obs::registry().counter("cache.updates");
  obs::Counter& dirty_relays = obs::registry().counter("cache.dirty_relays");
  obs::Histogram& dirty_per_step =
      obs::registry().histogram("cache.dirty_relays_per_step");
  obs::Histogram& dirty_per_shard =
      obs::registry().histogram("cache.dirty_relays_per_shard");
};

ShardedCacheTelemetry& sharded_cache_telemetry() {
  static ShardedCacheTelemetry t;
  return t;
}

}  // namespace

ShardCache::ShardCache(const net::DynamicDiskGraph& g, std::uint32_t shard,
                       std::span<const std::uint32_t> owner_of, Config config)
    : g_(&g), shard_(shard), owner_of_(owner_of), config_(config) {
  const std::size_t n = g.size();
  slots_.resize(n);
  arc_counts_.assign(n, 0);
  in_dirty_.assign(n, 0);
  committed_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    committed_pos_[i] = g.node(static_cast<net::NodeId>(i)).pos;
  }
  full_sweep();
}

MLDCS_ALLOC_OK void ShardCache::full_sweep() {
  // The initial everything-dirty build is cache recompute too; update()
  // tags the incremental path, this tags the bootstrap.
  const obs::PhaseScope phase(obs::Phase::kCacheRecompute);
  const std::size_t n = g_->size();
  dirty_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId u = static_cast<net::NodeId>(i);
    if (owned(u)) dirty_.push_back(u);
  }
  recompute_marked();
  recomputes_ = 0;  // lifetime counter excludes the initial sweep
  dirty_.clear();
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void ShardCache::update(
    const net::DynamicDiskGraph::StepDelta& delta,
    std::span<const net::NodeId> migrated) {
  const obs::PhaseScope phase(obs::Phase::kCacheRecompute);
  const net::DynamicDiskGraph& g = *g_;
  dirty_.clear();
  const auto mark = [this](net::NodeId w) {
    // Ownership filter: the dirty rule runs over the full region (halo
    // movers dirty owned neighbors) but only owned relays are recomputed —
    // every other resident is some neighbor shard's problem.
    if (owner_of_[w] != shard_ || in_dirty_[w] != 0) return;
    in_dirty_[w] = 1;
    dirty_.push_back(w);
  };

  const double tol2 = config_.position_tolerance * config_.position_tolerance;
  for (const net::NodeId u : delta.moved) {
    // Same accumulation rule as SkylineCache: committed positions advance
    // only when the move dirties.  Evicted movers fall through harmlessly —
    // they own nothing here and their post-apply neighbor list is empty
    // (the removals are in link_changed).
    if (geom::distance2(committed_pos_[u], g.node(u).pos) <= tol2) continue;
    committed_pos_[u] = g.node(u).pos;
    mark(u);
    for (const net::NodeId v : g.neighbors(u)) mark(v);
  }
  for (const net::NodeId w : delta.link_changed) mark(w);
  // Ownership handovers: an arriving relay is recomputed even when its
  // drift stayed under tolerance, so the new owner's slot is never stale
  // (at tolerance 0 arrivals are already dirty and this is a no-op).
  for (const net::NodeId u : migrated) {
    if (owner_of_[u] != shard_) continue;
    committed_pos_[u] = g.node(u).pos;
    mark(u);
  }
  std::sort(dirty_.begin(), dirty_.end());
  for (const net::NodeId w : dirty_) in_dirty_[w] = 0;

  recomputes_ += dirty_.size();
  recompute_marked();
  ++updates_;
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void ShardCache::recompute_marked() {
  const net::DynamicDiskGraph& g = *g_;
  // Serial and in ascending relay order: the store layout is deterministic
  // in the dirty sequence alone, independent of shard count or thread
  // placement (the shard itself is the unit of parallelism).
  for (const net::NodeId u : dirty_) {
    arc_counts_[u] =
        detail::relay_forwarding_set(g, u, ws_, disks_, arcs_, sky_set_,
                                     relay_ids_);
    store(u, relay_ids_);
  }
  if (dead_ids_ > 0 &&
      static_cast<double>(dead_ids_) >
          config_.compaction_threshold * static_cast<double>(ids_.size())) {
    compact();
  }
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void ShardCache::store(
    net::NodeId u, std::span<const net::NodeId> set) {
  Slot& s = slots_[u];
  live_ids_ += set.size();
  live_ids_ -= s.len;
  if (set.size() <= s.cap) {
    std::copy(set.begin(), set.end(), ids_.begin() + s.begin);
    s.len = static_cast<std::uint32_t>(set.size());
    return;
  }
  // Outgrown: abandon the old slot and append a fresh one with new slack.
  // mldcs-analyze:allow(hot-no-alloc): member store growth, amortized
  dead_ids_ += s.cap;
  s.begin = static_cast<std::uint32_t>(ids_.size());
  s.len = static_cast<std::uint32_t>(set.size());
  s.cap = cap_for(set.size());
  ids_.resize(ids_.size() + s.cap);
  std::copy(set.begin(), set.end(), ids_.begin() + s.begin);
}

void ShardCache::corrupt_slot_for_testing(net::NodeId u) {
  Slot& s = slots_[u];
  if (s.len > 0) {
    --s.len;
    --live_ids_;
    return;
  }
  const net::NodeId bogus = u == 0 ? 1 : 0;
  store(u, {&bogus, 1});
}

MLDCS_ALLOC_OK void ShardCache::compact() {
  ++compactions_;
  std::vector<net::NodeId> packed;
  packed.reserve(live_ids_ + live_ids_ / 4 + 2 * slots_.size());
  for (Slot& s : slots_) {
    const std::uint32_t begin = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), ids_.begin() + s.begin,
                  ids_.begin() + s.begin + s.len);
    const std::uint32_t cap = cap_for(s.len);
    packed.resize(packed.size() + (cap - s.len));
    s.begin = begin;
    s.cap = cap;
  }
  ids_ = std::move(packed);
  dead_ids_ = 0;
}

ShardedSkylineCache::ShardedSkylineCache(net::ShardedEngine& engine,
                                         Config config)
    : engine_(&engine) {
  // Eager registration (the PR 4 thread-pool fix): materialize the cache.*
  // series now, so a /snapshot.json taken before the first step already
  // carries them instead of waiting for the first recompute to land.
  sharded_cache_telemetry();
  const std::size_t shards = engine.shard_count();
  shards_.resize(shards);
  engine.pool().parallel_for(shards, [&](std::size_t s) {
    shards_[s] = std::make_unique<ShardCache>(
        engine_->shard_graph(s), static_cast<std::uint32_t>(s),
        engine_->owner_map(), config);
  });
  engine.set_shard_hook([this](std::size_t s) {
    shards_[s]->update(engine_->shard_delta(s), engine_->migrated_last_step());
    // Feed the observer load table (introspection /shards, blackbox
    // heartbeats) — one relaxed store into shard s's own slot.
    engine_->publish_shard_dirty(s, shards_[s]->last_dirty().size());
  });
}

ShardedSkylineCache::~ShardedSkylineCache() {
  engine_->set_shard_hook(nullptr);
}

MLDCS_HOT_PATH void ShardedSkylineCache::step(
    std::span<const net::Node> current,
    std::span<const net::NodeId> moved_hint) {
  const obs::TraceSpan span("cache.sharded_step");
  engine_->step(current, moved_hint);  // shard hook recomputes dirty relays

  ++updates_;
  last_dirty_count_ = 0;
  for (const auto& sh : shards_) {
    last_dirty_count_ += sh->last_dirty().size();
  }
  last_update_event_ = obs::emit_event(
      obs::EventType::kCacheUpdate,
      static_cast<std::uint32_t>(last_dirty_count_), obs::kNoNode,
      engine_->last_event(), updates_);

  ShardedCacheTelemetry& t = sharded_cache_telemetry();
  t.updates.add();
  t.dirty_relays.add(last_dirty_count_);
  t.dirty_per_step.record(last_dirty_count_);
  for (const auto& sh : shards_) {
    t.dirty_per_shard.record(sh->last_dirty().size());
  }
}

std::size_t ShardedSkylineCache::total_forwarders() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < engine_->size(); ++i) {
    total += forwarding_set(static_cast<net::NodeId>(i)).size();
  }
  return total;
}

std::uint64_t ShardedSkylineCache::recompute_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->recompute_count();
  return total;
}

}  // namespace mldcs::bcast
