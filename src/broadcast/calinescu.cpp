/// \file calinescu.cpp
/// The selecting-forwarding-set heuristic of Călinescu, Măndoiu, Wan and
/// Zelikovsky (MONET 9(2), 2004) as described in Section 2.2 of the paper:
/// homogeneous networks only.
///
/// Per quadrant around the relay: (1) compute the skyline disks of the
/// 1-hop neighborhood and order them counter-clockwise; (2) each 2-hop
/// neighbor in the quadrant is covered by a set of skyline disks; (3) a
/// simple greedy sweep picks disks until all 2-hop neighbors in the
/// quadrant are covered.  Restricting candidates to *skyline* disks is safe
/// because the skyline set is a disk cover set: any 2-hop neighbor inside
/// some 1-hop disk is inside a skyline disk, and in a homogeneous network
/// being inside a neighbor's disk is the same as being linked to it.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "broadcast/forwarding.hpp"
#include "core/mldcs.hpp"
#include "geometry/angle.hpp"
#include "geometry/tolerance.hpp"

namespace mldcs::bcast {

std::vector<net::NodeId> calinescu_forwarding_set(const net::DiskGraph& g,
                                                  const LocalView& view) {
  // Homogeneity check over the nodes this computation touches.
  const double r0 = g.node(view.self).radius;
  for (net::NodeId v : view.one_hop) {
    if (!geom::approx_equal(g.node(v).radius, r0)) {
      throw std::invalid_argument(
          "selecting-forwarding-set requires a homogeneous network "
          "(node radii differ)");
    }
  }
  if (view.two_hop.empty()) return {};

  const geom::Vec2 origin = g.node(view.self).pos;

  // Candidate relays: the skyline disks of the 1-hop neighborhood, in
  // counter-clockwise order of their centers as seen from the relay.
  const std::vector<geom::Disk> disks = local_disk_set(g, view);
  std::vector<net::NodeId> sky_nodes;
  for (std::size_t idx : core::mldcs_unchecked(disks, origin)) {
    if (idx != 0) sky_nodes.push_back(view.one_hop[idx - 1]);
  }
  // Non-skyline 1-hop neighbors may still be the *only* graph-link to some
  // 2-hop node in degenerate tie cases; keep all 1-hop neighbors as backup
  // candidates after the skyline ones so the result always dominates the
  // 2-hop set (matching the guarantee of [6]).
  std::vector<net::NodeId> candidates = sky_nodes;
  for (net::NodeId v : view.one_hop) {
    if (!std::binary_search(sky_nodes.begin(), sky_nodes.end(), v)) {
      candidates.push_back(v);
    }
  }

  const auto angle_at = [&](net::NodeId v) {
    return geom::normalize_angle((g.node(v).pos - origin).angle());
  };

  std::vector<net::NodeId> chosen;
  // Quadrant partition (Section 2.2: "partition the plane into quadrants").
  for (int q = 0; q < 4; ++q) {
    const double lo = geom::kPi / 2.0 * q;
    const double hi = geom::kPi / 2.0 * (q + 1);

    // 2-hop neighbors in this quadrant, swept counter-clockwise.
    std::vector<net::NodeId> targets;
    for (net::NodeId w : view.two_hop) {
      const double a = angle_at(w);
      if (a >= lo && a < hi) targets.push_back(w);
    }
    if (targets.empty()) continue;
    std::sort(targets.begin(), targets.end(),
              [&](net::NodeId a, net::NodeId b) {
                return angle_at(a) < angle_at(b);
              });

    // Greedy sweep: for the first uncovered target (in angle order), pick
    // the candidate that covers it and the most further targets; repeat.
    std::vector<bool> covered(targets.size(), false);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (covered[t]) continue;
      net::NodeId pick = net::kNoNode;
      std::size_t best_gain = 0;
      for (net::NodeId v : candidates) {
        if (!g.linked(v, targets[t])) continue;
        std::size_t gain = 0;
        for (std::size_t s = t; s < targets.size(); ++s) {
          if (!covered[s] && g.linked(v, targets[s])) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          pick = v;
        }
      }
      if (pick == net::kNoNode) continue;  // uncoverable (shouldn't happen)
      chosen.push_back(pick);
      for (std::size_t s = t; s < targets.size(); ++s) {
        if (g.linked(pick, targets[s])) covered[s] = true;
      }
    }
  }

  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  return chosen;
}

}  // namespace mldcs::bcast
