#pragma once

/// \file broadcast_sim.hpp
/// Network-wide broadcast simulation under sender-designated forwarding.
///
/// The source transmits; each transmission names the sender's forwarding
/// set; a node re-transmits (once) iff it has received the message and some
/// sender designated it.  Blind flooding is the special case "everyone is
/// designated".  The simulator counts transmissions (the broadcast-storm
/// metric), delivery, and hop latency, and can model *physical* reception
/// (any node inside the sender's disk hears it) separately from the
/// bidirectional-link graph used for neighbor knowledge — the distinction
/// at the heart of Figure 5.6.

#include <cstdint>
#include <vector>

#include "broadcast/forwarding.hpp"
#include "net/disk_graph.hpp"

namespace mldcs::bcast {

/// Reception model for a transmission by node u.
enum class ReceptionModel {
  kBidirectionalLink,  ///< v hears u iff linked(u, v) (the paper's graph model)
  kPhysicalCoverage,   ///< v hears u iff v is inside B(u, r_u)
};

/// Outcome of one simulated broadcast.
struct BroadcastResult {
  std::uint64_t transmissions = 0;  ///< nodes that transmitted (incl. source)
  std::uint64_t delivered = 0;      ///< nodes that received (incl. source)
  std::uint64_t max_hops = 0;       ///< eccentricity of the delivery tree
  std::uint64_t reachable = 0;      ///< nodes reachable from source in the graph
  /// Receptions of an already-held copy — the redundancy metric of the
  /// broadcast storm analysis (Ni et al. [1]): every one of these is a
  /// wasted airtime slot at the receiver.
  std::uint64_t redundant_receptions = 0;
  /// True if every graph-reachable node received the message.
  [[nodiscard]] bool full_delivery() const noexcept {
    return delivered >= reachable;
  }
  /// Fraction of reachable nodes that received the message.
  [[nodiscard]] double delivery_ratio() const noexcept {
    return reachable == 0 ? 1.0
                          : static_cast<double>(delivered) /
                                static_cast<double>(reachable);
  }
};

/// Simulate one broadcast from `source` with forwarding sets chosen by
/// `scheme` at every relaying node.
[[nodiscard]] BroadcastResult simulate_broadcast(
    const net::DiskGraph& g, net::NodeId source, Scheme scheme,
    ReceptionModel reception = ReceptionModel::kBidirectionalLink);

}  // namespace mldcs::bcast
