#include "broadcast/skyline_cache.hpp"

#include <algorithm>

#include "broadcast/relay_skyline.hpp"
#include "obs/event_log.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mldcs::bcast {

namespace {

/// Maintenance telemetry (docs/OBSERVABILITY.md): per-step dirty-relay
/// distribution, slot overflow / compaction churn, and the live/dead shape
/// of the slotted store — the signals that tune position_tolerance,
/// compaction_threshold, and the slot slack policy.
struct CacheTelemetry {
  obs::Counter& updates = obs::registry().counter("cache.updates");
  obs::Counter& dirty_relays = obs::registry().counter("cache.dirty_relays");
  obs::Counter& slot_overflows =
      obs::registry().counter("cache.slot_overflows");
  obs::Counter& compactions = obs::registry().counter("cache.compactions");
  obs::Histogram& dirty_per_step =
      obs::registry().histogram("cache.dirty_relays_per_step");
  obs::Gauge& store_size = obs::registry().gauge("cache.store_size");
  obs::Gauge& live_ids = obs::registry().gauge("cache.live_ids");
  obs::Gauge& dead_permille = obs::registry().gauge("cache.dead_permille");
};

CacheTelemetry& cache_telemetry() {
  static CacheTelemetry t;
  return t;
}

}  // namespace

SkylineCache::SkylineCache(const net::DynamicDiskGraph& g,
                           sim::ThreadPool& pool, Config config)
    : g_(&g), pool_(&pool), config_(config) {
  const std::size_t n = g.size();
  slots_.resize(n);
  arc_counts_.assign(n, 0);
  in_dirty_.assign(n, 0);
  committed_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    committed_pos_[i] = g.node(static_cast<net::NodeId>(i)).pos;
  }
  full_sweep();
}

void SkylineCache::full_sweep() {
  const std::size_t n = g_->size();
  if (n == 0) return;
  // Reuse the incremental machinery: everything is dirty once.
  dirty_.resize(n);
  for (std::size_t i = 0; i < n; ++i) dirty_[i] = static_cast<net::NodeId>(i);
  recompute_dirty();
  recomputes_ = 0;  // lifetime counter excludes the initial sweep
  dirty_.clear();
}

MLDCS_HOT_PATH void SkylineCache::update(
    const net::DynamicDiskGraph::StepDelta& delta) {
  const obs::TraceSpan span("cache.update");
  const net::DynamicDiskGraph& g = *g_;
  dirty_.clear();
  const auto mark = [this](net::NodeId w) {
    if (in_dirty_[w] != 0) return;
    in_dirty_[w] = 1;
    dirty_.push_back(w);
  };

  const double tol2 =
      config_.position_tolerance * config_.position_tolerance;
  for (const net::NodeId u : delta.moved) {
    // Below-tolerance drift accumulates: committed_pos_ only advances when
    // the move actually dirties, so slow nodes cannot creep forever.
    if (geom::distance2(committed_pos_[u], g.node(u).pos) <= tol2) continue;
    committed_pos_[u] = g.node(u).pos;
    mark(u);
    for (const net::NodeId v : g.neighbors(u)) mark(v);
  }
  // A flipped edge changes both endpoints' local disk sets regardless of
  // how far anyone drifted (committed positions are left alone: a link
  // flip says nothing about how far the endpoint itself has crept).
  for (const net::NodeId w : delta.link_changed) mark(w);
  std::sort(dirty_.begin(), dirty_.end());
  for (const net::NodeId w : dirty_) in_dirty_[w] = 0;

  recomputes_ += dirty_.size();
  recompute_dirty();

  ++updates_;
  last_update_event_ = obs::emit_event(
      obs::EventType::kCacheUpdate,
      static_cast<std::uint32_t>(dirty_.size()), obs::kNoNode, delta.event_id,
      updates_);

  CacheTelemetry& t = cache_telemetry();
  t.updates.add();
  t.dirty_relays.add(dirty_.size());
  t.dirty_per_step.record(dirty_.size());
  t.store_size.set(static_cast<std::int64_t>(ids_.size()));
  t.live_ids.set(static_cast<std::int64_t>(live_ids_));
  t.dead_permille.set(
      ids_.empty() ? 0
                   : static_cast<std::int64_t>(
                         1000 * dead_ids_ / ids_.size()));
}

void SkylineCache::recompute_dirty() {
  if (dirty_.empty()) return;
  const net::DynamicDiskGraph& g = *g_;
  const std::size_t n_dirty = dirty_.size();

  // Phase 1 (parallel): compute every dirty relay's new set into per-chunk
  // buffers; arc counts go straight to the shared array (disjoint indices).
  // chunk_out_ only ever grows and carries each chunk's scratch (workspace
  // plus relay buffers), so steady-state updates allocate nothing here.
  const std::size_t n_chunks = std::min(pool_->size(), n_dirty);
  if (chunk_out_.size() < n_chunks) chunk_out_.resize(n_chunks);
  {
    const obs::TraceSpan recompute_span("cache.recompute_dirty");
    pool_->parallel_chunks(
        n_dirty, [&](std::size_t c, std::size_t lo, std::size_t hi) {
          const obs::PhaseScope phase(obs::Phase::kCacheRecompute);
          ChunkOut& co = chunk_out_[c];
          co.ids.clear();
          co.lens.clear();
          co.lo = lo;
          for (std::size_t k = lo; k < hi; ++k) {
            const net::NodeId u = dirty_[k];
            arc_counts_[u] = detail::relay_forwarding_set(
                g, u, co.ws, co.disks, co.arcs, co.sky_set, co.relay_ids);
            co.ids.insert(co.ids.end(), co.relay_ids.begin(),
                          co.relay_ids.end());
            co.lens.push_back(static_cast<std::uint32_t>(co.relay_ids.size()));
          }
        });
  }

  // Phase 2 (serial): patch the slotted store in dirty order — in place
  // when the new set fits the slot, appended otherwise.  Serial and in
  // ascending relay order, so the store layout is deterministic and
  // independent of the pool's thread count.
  {
    const obs::TraceSpan patch_span("cache.patch_store");
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const ChunkOut& co = chunk_out_[c];
      std::size_t off = 0;
      for (std::size_t k = 0; k < co.lens.size(); ++k) {
        const net::NodeId u = dirty_[co.lo + k];
        const std::uint32_t len = co.lens[k];
        store(u, {co.ids.data() + off, len});
        off += len;
      }
    }
  }

  if (dead_ids_ > 0 &&
      static_cast<double>(dead_ids_) >
          config_.compaction_threshold * static_cast<double>(ids_.size())) {
    compact();
  }
}

void SkylineCache::store(net::NodeId u, std::span<const net::NodeId> set) {
  Slot& s = slots_[u];
  live_ids_ += set.size();
  live_ids_ -= s.len;
  if (set.size() <= s.cap) {
    std::copy(set.begin(), set.end(), ids_.begin() + s.begin);
    s.len = static_cast<std::uint32_t>(set.size());
    return;
  }
  // Outgrown: abandon the old slot (dead until the next compaction) and
  // append a fresh one with new slack.  cap == 0 means the slot was never
  // assigned (initial sweep), not an overflow worth counting.
  if (s.cap != 0) cache_telemetry().slot_overflows.add();
  dead_ids_ += s.cap;
  s.begin = static_cast<std::uint32_t>(ids_.size());
  s.len = static_cast<std::uint32_t>(set.size());
  s.cap = cap_for(set.size());
  ids_.resize(ids_.size() + s.cap);
  std::copy(set.begin(), set.end(), ids_.begin() + s.begin);
}

void SkylineCache::corrupt_slot_for_testing(net::NodeId u) {
  Slot& s = slots_[u];
  if (s.len > 0) {
    --s.len;
    --live_ids_;
    return;
  }
  const net::NodeId bogus = u == 0 ? 1 : 0;
  store(u, {&bogus, 1});
}

MLDCS_ALLOC_OK void SkylineCache::compact() {
  const obs::TraceSpan span("cache.compact");
  ++compactions_;
  cache_telemetry().compactions.add();
  std::vector<net::NodeId> packed;
  packed.reserve(live_ids_ + live_ids_ / 4 + 2 * slots_.size());
  for (Slot& s : slots_) {
    const std::uint32_t begin = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), ids_.begin() + s.begin,
                  ids_.begin() + s.begin + s.len);
    const std::uint32_t cap = cap_for(s.len);
    packed.resize(packed.size() + (cap - s.len));
    s.begin = begin;
    s.cap = cap;
  }
  ids_ = std::move(packed);
  dead_ids_ = 0;
}

}  // namespace mldcs::bcast
