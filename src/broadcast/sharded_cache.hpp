#pragma once

/// \file sharded_cache.hpp
/// Sharded incremental MLDCS forwarding sets: one serial `ShardCache` per
/// engine shard, recomputed inside the engine's per-step barrier.
///
/// The single-engine `SkylineCache` parallelizes *within* one dirty set
/// (chunked workers into one slotted store).  At deployment scale the
/// better unit of parallelism is the shard: each `net::ShardedEngine` tile
/// gets its own cache — private slotted arc store, private workspace,
/// private dirty set — maintaining forwarding sets for exactly the relays
/// the tile owns.  Because an owned relay's adjacency in its shard's
/// region graph is identical to the whole-plane adjacency (sorted global
/// NodeIds — the halo guarantee), the per-relay inner loop
/// (relay_skyline.hpp) produces byte-identical sets, so
/// `ShardedSkylineCache::forwarding_set(u)` — which reads the owner
/// shard's store — equals the single-engine cache after every step.  Exact
/// at position_tolerance 0; a positive tolerance keeps each shard
/// internally consistent but lets committed positions drift from what one
/// global cache would have (a relay that crosses a border is force-marked
/// dirty on arrival so its new owner never serves a stale slot).
///
/// Concurrency contract: `ShardCache::update` runs on the engine's worker
/// threads, one shard per call, with **zero cross-shard locking** — it is
/// `MLDCS_NO_LOCK` and therefore touches no telemetry registry, no trace
/// spans, no event log (all of which are lock-light but not lock-free to
/// first-register).  Every counter it keeps is a plain member; the
/// composite aggregates them and reports after the barrier, on the caller
/// thread.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/arc.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/node.hpp"
#include "net/sharded_engine.hpp"
#include "obs/event_log.hpp"

namespace mldcs::bcast {

/// One shard's forwarding-set cache: serial dirty-relay maintenance over a
/// region-mode graph, restricted to the relays this shard owns.  Slot
/// indexing is by global NodeId (dense arrays of the full deployment size),
/// so lookups need no id translation.
class ShardCache {
 public:
  struct Config {
    /// Same meaning as SkylineCache::Config: 0 = exact maintenance.
    double position_tolerance = 0.0;
    /// Dead fraction of the slotted store that triggers compaction.
    double compaction_threshold = 0.5;
  };

  /// Full initial sweep over the relays `owner_of` assigns to `shard`.
  /// `g` (the shard's region graph) and the `owner_of` span (the engine's
  /// live owner map) must outlive the cache.
  ShardCache(const net::DynamicDiskGraph& g, std::uint32_t shard,
             std::span<const std::uint32_t> owner_of, Config config);

  /// Recompute the owned relays dirtied by this shard's `delta` (already
  /// applied to the graph).  `migrated` is the engine's global migration
  /// list for the step; arrivals into this shard are force-marked dirty so
  /// ownership handover never serves a stale slot.  Serial, shard-local,
  /// lock-free; steady-state allocation-free outside member-scratch
  /// growth.
  MLDCS_HOT_PATH MLDCS_NO_LOCK void update(
      const net::DynamicDiskGraph::StepDelta& delta,
      std::span<const net::NodeId> migrated);

  /// The cached forwarding set of relay `u`, sorted ascending.  Valid only
  /// while this shard owns `u` (the composite routes queries to owners).
  [[nodiscard]] std::span<const net::NodeId> forwarding_set(
      net::NodeId u) const noexcept {
    const Slot& s = slots_[u];
    return {ids_.data() + s.begin, ids_.data() + s.begin + s.len};
  }

  [[nodiscard]] std::uint32_t arc_count(net::NodeId u) const noexcept {
    return arc_counts_[u];
  }

  /// Owned relays recomputed by the most recent update (sorted ascending).
  [[nodiscard]] std::span<const net::NodeId> last_dirty() const noexcept {
    return dirty_;
  }

  [[nodiscard]] std::uint64_t recompute_count() const noexcept {
    return recomputes_;
  }
  [[nodiscard]] std::uint64_t compaction_count() const noexcept {
    return compactions_;
  }
  [[nodiscard]] std::uint64_t update_count() const noexcept {
    return updates_;
  }
  [[nodiscard]] std::size_t store_size() const noexcept { return ids_.size(); }

  /// Deliberately corrupt relay `u`'s slot (watchdog tests only).
  void corrupt_slot_for_testing(net::NodeId u);

 private:
  struct Slot {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  /// Slot slack policy, identical to SkylineCache::cap_for.
  [[nodiscard]] static std::uint32_t cap_for(std::size_t len) noexcept {
    return static_cast<std::uint32_t>(len + len / 4 + 2);
  }

  [[nodiscard]] bool owned(net::NodeId u) const noexcept {
    return owner_of_[u] == shard_;
  }
  MLDCS_ALLOC_OK void full_sweep();
  MLDCS_HOT_PATH MLDCS_NO_LOCK void recompute_marked();
  MLDCS_HOT_PATH MLDCS_NO_LOCK void store(net::NodeId u,
                                          std::span<const net::NodeId> set);
  MLDCS_ALLOC_OK void compact();

  const net::DynamicDiskGraph* g_;
  std::uint32_t shard_;
  std::span<const std::uint32_t> owner_of_;
  Config config_;

  std::vector<Slot> slots_;
  std::vector<net::NodeId> ids_;
  std::vector<std::uint32_t> arc_counts_;
  std::size_t live_ids_ = 0;  ///< sum of slot lengths (store accounting)
  std::size_t dead_ids_ = 0;  ///< abandoned (outgrown) slot capacity

  std::vector<geom::Vec2> committed_pos_;
  std::vector<net::NodeId> dirty_;
  std::vector<std::uint8_t> in_dirty_;

  /// Serial per-shard recompute scratch (the shard *is* the worker).
  core::SkylineWorkspace ws_;
  std::vector<geom::Disk> disks_;
  std::vector<core::Arc> arcs_;
  std::vector<std::size_t> sky_set_;
  std::vector<net::NodeId> relay_ids_;

  std::uint64_t recomputes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t updates_ = 0;
};

/// Whole-deployment forwarding sets over a ShardedEngine: one ShardCache
/// per shard, updated inside the engine's step barrier via the shard hook,
/// queried by owner routing.  Drop-in equivalent of the single-engine
/// `SkylineCache` (same query surface, same kCacheUpdate event per step,
/// bit-identical sets at tolerance 0).
class ShardedSkylineCache {
 public:
  using Config = ShardCache::Config;

  /// Builds every shard's cache (initial sweeps run in parallel on the
  /// engine's pool) and installs the engine's shard hook.  The engine must
  /// outlive this cache, which must be the engine's only hook client.
  explicit ShardedSkylineCache(net::ShardedEngine& engine, Config config = {});
  ~ShardedSkylineCache();

  ShardedSkylineCache(const ShardedSkylineCache&) = delete;
  ShardedSkylineCache& operator=(const ShardedSkylineCache&) = delete;

  /// One fused mobility step: engine ownership commit, parallel per-shard
  /// graph apply + dirty recompute (one barrier), then position commit and
  /// step-level reporting.  Arguments as in ShardedEngine::step.
  MLDCS_HOT_PATH void step(std::span<const net::Node> current,
                           std::span<const net::NodeId> moved_hint);

  [[nodiscard]] std::size_t size() const noexcept { return engine_->size(); }

  /// The cached forwarding set of relay `u` (owner shard's store).
  [[nodiscard]] std::span<const net::NodeId> forwarding_set(
      net::NodeId u) const noexcept {
    return shards_[engine_->owner_of(u)]->forwarding_set(u);
  }
  [[nodiscard]] std::uint32_t arc_count(net::NodeId u) const noexcept {
    return shards_[engine_->owner_of(u)]->arc_count(u);
  }

  /// Total forwarding-set cardinality over all relays (owner-routed scan).
  [[nodiscard]] std::size_t total_forwarders() const;

  /// Owned relays recomputed in the most recent step, across all shards.
  [[nodiscard]] std::uint64_t last_dirty_count() const noexcept {
    return last_dirty_count_;
  }
  [[nodiscard]] std::uint64_t recompute_count() const noexcept;
  [[nodiscard]] std::uint64_t update_count() const noexcept {
    return updates_;
  }

  /// Flight-recorder id of the most recent step's kCacheUpdate event
  /// (parented to the engine's kShardExchange).
  [[nodiscard]] std::uint64_t last_update_event() const noexcept {
    return last_update_event_;
  }

  [[nodiscard]] const net::ShardedEngine& engine() const noexcept {
    return *engine_;
  }
  [[nodiscard]] ShardCache& shard(std::size_t s) noexcept {
    return *shards_[s];
  }
  [[nodiscard]] const ShardCache& shard(std::size_t s) const noexcept {
    return *shards_[s];
  }

  /// Corrupt relay `u`'s slot in its owner shard (watchdog tests only).
  void corrupt_slot_for_testing(net::NodeId u) {
    shards_[engine_->owner_of(u)]->corrupt_slot_for_testing(u);
  }

 private:
  net::ShardedEngine* engine_;
  std::vector<std::unique_ptr<ShardCache>> shards_;
  std::uint64_t updates_ = 0;
  std::uint64_t last_dirty_count_ = 0;
  std::uint64_t last_update_event_ = obs::kNoEvent;
};

}  // namespace mldcs::bcast
