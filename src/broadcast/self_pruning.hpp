#pragma once

/// \file self_pruning.hpp
/// Receiver-based broadcast baselines from the related-work chapter.
///
/// The forwarding-set schemes of Chapter 5 are *sender-designated*: the
/// transmitter names its relays.  The self-pruning family (Wu & Dai [10],
/// Wu & Li [11]) is *receiver-based*: on first receipt, a node compares its
/// own neighborhood with the sender's and stays silent when it would add
/// nothing.  Because the silence decision is made with fresh local
/// information at every hop, self-pruning composes with any sender scheme;
/// `simulate_pruned_broadcast` runs the hybrid (sender designation AND
/// receiver self-pruning), which is where the network-wide storm reduction
/// the forwarding-set literature promises actually materializes (see the
/// abl_network_storm bench).

#include "broadcast/broadcast_sim.hpp"
#include "broadcast/forwarding.hpp"
#include "net/disk_graph.hpp"

namespace mldcs::bcast {

/// Wu-Li self-pruning rule: receiver v, hearing sender s, retransmits iff
/// v has at least one neighbor that is neither s nor a neighbor of s —
/// i.e. iff N(v) \ (N(s) + {s}) is non-empty.  Exposed for tests.
[[nodiscard]] bool self_pruning_would_forward(const net::DiskGraph& g,
                                              net::NodeId sender,
                                              net::NodeId receiver);

/// Simulate a broadcast where a node retransmits iff (a) the sender-side
/// scheme designated it (flooding designates everyone), AND (b) the Wu-Li
/// self-pruning rule does not silence it.  Delivery is still guaranteed in
/// the graphs where the pure scheme guarantees it: a silenced node's
/// neighbors all hear the same transmission it heard.
[[nodiscard]] BroadcastResult simulate_pruned_broadcast(
    const net::DiskGraph& g, net::NodeId source, Scheme scheme,
    ReceptionModel reception = ReceptionModel::kBidirectionalLink);

}  // namespace mldcs::bcast
