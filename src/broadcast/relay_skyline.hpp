#pragma once

/// \file relay_skyline.hpp
/// The shared inner loop of batched MLDCS computation: one relay's skyline
/// forwarding set straight from adjacency, using caller-owned scratch.
///
/// Both whole-network engines — the one-shot `compute_all_skylines` and the
/// incremental `SkylineCache` — run exactly this per relay, so the
/// bit-identical guarantee between them reduces to sharing this function.
/// Templated on the graph type (`net::DiskGraph` and `net::DynamicDiskGraph`
/// expose the same node()/neighbors() surface).

#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "core/arc.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/disk.hpp"
#include "net/node.hpp"

namespace mldcs::bcast::detail {

/// Compute relay `id`'s skyline forwarding set into `out_ids` (cleared
/// first; sorted ascending) and return the skyline arc count.  `disks`,
/// `arcs`, `sky_set` and `ws` are reusable scratch — one set per worker
/// makes a whole sweep allocation-free in steady state.
template <typename Graph>
MLDCS_HOT_PATH MLDCS_NO_LOCK std::uint32_t relay_forwarding_set(
    const Graph& g, net::NodeId id, core::SkylineWorkspace& ws,
    std::vector<geom::Disk>& disks, std::vector<core::Arc>& arcs,
    std::vector<std::size_t>& sky_set, std::vector<net::NodeId>& out_ids) {
  const auto nb = g.neighbors(id);
  disks.clear();
  disks.push_back(g.node(id).disk());
  for (const net::NodeId v : nb) disks.push_back(g.node(v).disk());

  core::compute_skyline_arcs(disks, g.node(id).pos, ws, arcs);

  // Skyline set: sorted unique disk indices.  Disk 0 is the relay itself —
  // its area was served by the transmission the relay already made, so it
  // never needs a forwarder (Section 3.2).  Neighbor disks follow `nb`'s
  // ascending id order, so ascending indices map to ascending node ids
  // with no re-sort.
  sky_set.clear();
  for (const core::Arc& a : arcs) sky_set.push_back(a.disk);
  std::sort(sky_set.begin(), sky_set.end());
  sky_set.erase(std::unique(sky_set.begin(), sky_set.end()), sky_set.end());
  out_ids.clear();
  for (const std::size_t idx : sky_set) {
    if (idx == 0) continue;
    out_ids.push_back(nb[idx - 1]);
  }
  return static_cast<std::uint32_t>(arcs.size());
}

}  // namespace mldcs::bcast::detail
