#pragma once

/// \file coverage_gap.hpp
/// The Figure 5.6 phenomenon: in heterogeneous networks under bidirectional
/// links, the skyline forwarding set — computed from 1-hop information
/// alone — may fail to dominate the 2-hop neighborhood.  A large-radius
/// neighbor can swallow every other disk (so the skyline set is just that
/// neighbor), yet some 2-hop neighbors are linked only to the swallowed
/// small-radius neighbors.  The paper leaves fixing this to future work; we
/// provide the canonical construction, a detector, and (as an extension) a
/// repaired scheme that patches the skyline set with greedy cover of the
/// missed 2-hop neighbors.

#include <vector>

#include "broadcast/forwarding.hpp"
#include "net/disk_graph.hpp"

namespace mldcs::bcast {

/// Result of checking a relay's skyline forwarding set against its 2-hop
/// neighborhood.
struct CoverageGap {
  std::vector<net::NodeId> forwarding_set;  ///< the skyline forwarding set
  std::vector<net::NodeId> uncovered;       ///< 2-hop neighbors no member links to
  [[nodiscard]] bool exists() const noexcept { return !uncovered.empty(); }
};

/// Detect whether `relay`'s skyline forwarding set leaves 2-hop neighbors
/// unreachable (no member of the set is graph-linked to them).
[[nodiscard]] CoverageGap skyline_coverage_gap(const net::DiskGraph& g,
                                               net::NodeId relay);

/// Same, with a precomputed local view (relay sweeps build the view once —
/// via the scratch-reuse local_view overload — and share it between the
/// detector and patched_skyline_forwarding_set).
[[nodiscard]] CoverageGap skyline_coverage_gap(const net::DiskGraph& g,
                                               const LocalView& view);

/// The exact 6-node construction of Figure 5.6: relay u with 1-hop
/// neighbors u1, u2, u3 and 2-hop neighbors u4 (via u1) and u5 (via u2);
/// u3's big disk swallows every other disk so the skyline set is {u3}, but
/// u4/u5 cannot hear back from... rather, cannot *link* to u3 (their radii
/// are too small), so the optimal forwarding set is {u1, u2} while the
/// skyline set misses both 2-hop neighbors.  Node ids: 0=u, 1=u1, 2=u2,
/// 3=u3, 4=u4, 5=u5.
[[nodiscard]] net::DiskGraph figure56_topology();

/// Extension ("future work" repair): skyline forwarding set patched by a
/// greedy cover of any 2-hop neighbors the skyline set misses.  Needs 2-hop
/// information only for the patch step; identical to the skyline set when
/// no gap exists.
[[nodiscard]] std::vector<net::NodeId> patched_skyline_forwarding_set(
    const net::DiskGraph& g, const LocalView& view);

}  // namespace mldcs::bcast
