#pragma once

/// \file cache_watchdog.hpp
/// Binds the generic obs::ConsistencyWatchdog to a SkylineCache: the
/// reference function recomputes one relay's skyline forwarding set from
/// scratch (relay_skyline.hpp — the same inner loop the cache itself
/// runs), the cached function reads the slotted store.  Any divergence
/// means the dirty rule, the slot patching, or the store itself broke.
///
/// Usage (one line per mobility step):
///
///   auto wd = bcast::make_cache_watchdog(dyn, cache, {.period=16,
///                                                     .samples=8});
///   ...
///   const auto& delta = dyn.apply(...);
///   cache.update(delta);
///   wd.on_step(cache.last_update_event());
///   ...
///   if (!wd.clean()) alarm(wd.last_mismatched_relays());

#include "broadcast/sharded_cache.hpp"
#include "broadcast/skyline_cache.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/sharded_engine.hpp"
#include "obs/watchdog.hpp"

namespace mldcs::bcast {

/// A watchdog auditing `cache` against from-scratch recomputation on `g`.
/// Both must outlive the returned watchdog.
[[nodiscard]] obs::ConsistencyWatchdog make_cache_watchdog(
    const net::DynamicDiskGraph& g, const SkylineCache& cache,
    obs::ConsistencyWatchdog::Config config = {});

/// Sharded variant: each sampled relay is recomputed from scratch on its
/// owner shard's region graph (whose owned adjacency equals the
/// whole-plane one — the halo guarantee the watchdog then re-proves every
/// period) and compared against the owner's slotted store.  Call
/// `on_step(cache.last_update_event())` once per sharded step, after it.
[[nodiscard]] obs::ConsistencyWatchdog make_cache_watchdog(
    const ShardedSkylineCache& cache,
    obs::ConsistencyWatchdog::Config config = {});

}  // namespace mldcs::bcast
