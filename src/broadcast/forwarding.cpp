#include "broadcast/forwarding.hpp"

#include <algorithm>

#include "broadcast/set_cover.hpp"
#include "core/mldcs.hpp"
#include "core/skyline_dc.hpp"

namespace mldcs::bcast {

std::string_view scheme_name(Scheme s) noexcept {
  switch (s) {
    case Scheme::kFlooding:
      return "flooding";
    case Scheme::kSkyline:
      return "skyline";
    case Scheme::kSelectingForwardingSet:
      return "sel-fwd-set";
    case Scheme::kGreedy:
      return "greedy";
    case Scheme::kOptimal:
      return "optimal";
  }
  return "?";
}

bool requires_two_hop_info(Scheme s) noexcept {
  return s == Scheme::kSelectingForwardingSet || s == Scheme::kGreedy ||
         s == Scheme::kOptimal;
}

bool supports_heterogeneous(Scheme s) noexcept {
  return s != Scheme::kSelectingForwardingSet;
}

namespace {

/// Disk 0 is the relay itself; its area was served by the transmission the
/// relay already made, so it never needs a forwarder (Section 3.2).
std::vector<net::NodeId> sky_set_to_node_ids(
    const std::vector<std::size_t>& sky, const LocalView& view) {
  std::vector<net::NodeId> out;
  out.reserve(sky.size());
  for (std::size_t idx : sky) {
    if (idx == 0) continue;
    out.push_back(view.one_hop[idx - 1]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<net::NodeId> skyline_forwarding_set(const net::DiskGraph& g,
                                                const LocalView& view) {
  const std::vector<geom::Disk> disks = local_disk_set(g, view);
  return sky_set_to_node_ids(
      core::mldcs_unchecked(disks, g.node(view.self).pos), view);
}

std::vector<net::NodeId> skyline_forwarding_set(const net::DiskGraph& g,
                                                const LocalView& view,
                                                core::SkylineWorkspace& ws) {
  const std::vector<geom::Disk> disks = local_disk_set(g, view);
  return sky_set_to_node_ids(
      core::compute_skyline(disks, g.node(view.self).pos, ws).skyline_set(),
      view);
}

namespace {

SetCoverInstance two_hop_cover_instance(const net::DiskGraph& g,
                                        const LocalView& view) {
  SetCoverInstance inst;
  inst.universe_size = view.two_hop.size();
  inst.sets = two_hop_coverage(g, view);
  return inst;
}

std::vector<net::NodeId> to_node_ids(const LocalView& view,
                                     const std::vector<std::size_t>& picks) {
  std::vector<net::NodeId> out;
  out.reserve(picks.size());
  for (std::size_t i : picks) out.push_back(view.one_hop[i]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<net::NodeId> greedy_forwarding_set(const net::DiskGraph& g,
                                               const LocalView& view) {
  return to_node_ids(view, greedy_set_cover(two_hop_cover_instance(g, view)));
}

std::vector<net::NodeId> optimal_forwarding_set(const net::DiskGraph& g,
                                                const LocalView& view) {
  return to_node_ids(view, optimal_set_cover(two_hop_cover_instance(g, view)));
}

std::vector<net::NodeId> forwarding_set(const net::DiskGraph& g,
                                        const LocalView& view, Scheme scheme) {
  switch (scheme) {
    case Scheme::kFlooding:
      return view.one_hop;
    case Scheme::kSkyline:
      return skyline_forwarding_set(g, view);
    case Scheme::kSelectingForwardingSet:
      return calinescu_forwarding_set(g, view);
    case Scheme::kGreedy:
      return greedy_forwarding_set(g, view);
    case Scheme::kOptimal:
      return optimal_forwarding_set(g, view);
  }
  return {};
}

std::vector<net::NodeId> forwarding_set(const net::DiskGraph& g,
                                        const LocalView& view, Scheme scheme,
                                        core::SkylineWorkspace& ws) {
  if (scheme == Scheme::kSkyline) return skyline_forwarding_set(g, view, ws);
  return forwarding_set(g, view, scheme);
}

std::vector<net::NodeId> forwarding_set(const net::DiskGraph& g,
                                        net::NodeId relay, Scheme scheme) {
  return forwarding_set(g, local_view(g, relay), scheme);
}

}  // namespace mldcs::bcast
