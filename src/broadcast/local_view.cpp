#include "broadcast/local_view.hpp"

#include <algorithm>

namespace mldcs::bcast {

LocalView local_view(const net::DiskGraph& g, net::NodeId self) {
  LocalView v;
  local_view(g, self, v);
  return v;
}

void local_view(const net::DiskGraph& g, net::NodeId self, LocalView& out) {
  out.self = self;
  const auto nb = g.neighbors(self);
  out.one_hop.assign(nb.begin(), nb.end());
  g.two_hop_neighbors(self, out.two_hop);
}

std::vector<geom::Disk> local_disk_set(const net::DiskGraph& g,
                                       const LocalView& view) {
  std::vector<geom::Disk> disks;
  disks.reserve(view.one_hop.size() + 1);
  disks.push_back(g.node(view.self).disk());
  for (net::NodeId v : view.one_hop) disks.push_back(g.node(v).disk());
  return disks;
}

std::vector<std::vector<std::uint32_t>> two_hop_coverage(
    const net::DiskGraph& g, const LocalView& view) {
  std::vector<std::vector<std::uint32_t>> covers(view.one_hop.size());
  for (std::size_t i = 0; i < view.one_hop.size(); ++i) {
    const net::NodeId v = view.one_hop[i];
    const auto nb = g.neighbors(v);
    for (std::size_t w = 0; w < view.two_hop.size(); ++w) {
      if (std::binary_search(nb.begin(), nb.end(), view.two_hop[w])) {
        covers[i].push_back(static_cast<std::uint32_t>(w));
      }
    }
  }
  return covers;
}

}  // namespace mldcs::bcast
