#pragma once

/// \file all_skylines.hpp
/// Batched whole-network MLDCS computation: the forwarding set of *every*
/// node of a deployment in one call.
///
/// Network-scale broadcast studies (storm simulations, the all-relay
/// tables, the ROADMAP's whole-network serving workloads) need the skyline
/// forwarding set of each node, not just the center source.  Doing that
/// with per-relay calls pays, per node, a LocalView construction (including
/// an unneeded 2-hop BFS — the skyline scheme is 1-hop only) and fresh
/// vectors for disks and arcs.  compute_all_skylines instead walks the CSR
/// adjacency directly and runs the iterative skyline engine with one
/// SkylineWorkspace per worker thread, so the whole sweep performs O(1)
/// allocations per chunk rather than O(1) per node — measured >= 2x faster
/// than the per-relay loop (see bench/perf_suite.cpp and
/// docs/PERFORMANCE.md).

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "net/disk_graph.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::bcast {

/// The MLDCS forwarding set of every node, in CSR layout, plus per-node
/// skyline arc counts (the Lemma 8 instrumentation).
class AllSkylines {
 public:
  AllSkylines() = default;

  /// Number of nodes covered.
  [[nodiscard]] std::size_t size() const noexcept { return arc_counts_.size(); }

  /// The skyline/MLDCS forwarding set of node `u`: sorted 1-hop neighbor
  /// ids designated to re-transmit.  Identical to
  /// skyline_forwarding_set(g, local_view(g, u)).
  [[nodiscard]] std::span<const net::NodeId> forwarding_set(
      net::NodeId u) const noexcept {
    return {ids_.data() + offsets_[u], ids_.data() + offsets_[u + 1]};
  }

  /// Arc count of node `u`'s skyline (bounded by Lemma 8: 2 * (degree+1)).
  [[nodiscard]] std::size_t arc_count(net::NodeId u) const noexcept {
    return arc_counts_[u];
  }

  /// Largest skyline arc count over all nodes.
  [[nodiscard]] std::size_t max_arc_count() const noexcept;

  /// Total forwarding-set cardinality over all nodes.
  [[nodiscard]] std::size_t total_forwarders() const noexcept {
    return ids_.size();
  }

  /// Mean forwarding-set size over all nodes.
  [[nodiscard]] double average_forwarding_size() const noexcept;

 private:
  friend AllSkylines compute_all_skylines(const net::DiskGraph& g,
                                          sim::ThreadPool& pool);

  std::vector<std::uint32_t> offsets_;     ///< size() + 1 entries
  std::vector<net::NodeId> ids_;           ///< forwarding sets, sorted per node
  std::vector<std::uint32_t> arc_counts_;  ///< skyline arcs per node
};

/// Compute the MLDCS forwarding set of every node of `g`, parallelized over
/// `pool` with one SkylineWorkspace per worker chunk.  Deterministic: the
/// result is independent of the pool's thread count.
[[nodiscard]] MLDCS_HOT_PATH AllSkylines compute_all_skylines(
    const net::DiskGraph& g, sim::ThreadPool& pool);

}  // namespace mldcs::bcast
