#include "broadcast/all_skylines.hpp"

#include <algorithm>

#include "core/skyline_dc.hpp"
#include "geometry/disk.hpp"

namespace mldcs::bcast {

std::size_t AllSkylines::max_arc_count() const noexcept {
  std::size_t m = 0;
  for (const std::uint32_t c : arc_counts_) m = std::max<std::size_t>(m, c);
  return m;
}

double AllSkylines::average_forwarding_size() const noexcept {
  return arc_counts_.empty() ? 0.0
                             : static_cast<double>(ids_.size()) /
                                   static_cast<double>(arc_counts_.size());
}

AllSkylines compute_all_skylines(const net::DiskGraph& g,
                                 sim::ThreadPool& pool) {
  const std::size_t n = g.size();
  AllSkylines out;
  out.offsets_.assign(n + 1, 0);
  out.arc_counts_.assign(n, 0);
  if (n == 0) return out;

  // Each chunk appends its nodes' forwarding sets to a private blob and
  // records per-node counts in the shared (disjointly indexed) offsets
  // array; chunks cover contiguous node ranges, so stitching is one
  // straight copy per chunk after a prefix sum.
  struct ChunkOut {
    std::vector<net::NodeId> ids;
    std::size_t lo = 0;
  };
  std::vector<ChunkOut> chunk_out(std::min(pool.size(), n));

  pool.parallel_chunks(n, [&](std::size_t c, std::size_t lo, std::size_t hi) {
    ChunkOut& co = chunk_out[c];
    co.lo = lo;
    // Per-chunk scratch, reused across every node of the range: the skyline
    // engine's workspace plus the local disk set / arc / index buffers.
    core::SkylineWorkspace ws;
    ws.reserve(64);
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    for (std::size_t u = lo; u < hi; ++u) {
      const net::NodeId id = static_cast<net::NodeId>(u);
      const auto nb = g.neighbors(id);
      disks.clear();
      disks.push_back(g.node(id).disk());
      for (const net::NodeId v : nb) disks.push_back(g.node(v).disk());

      core::compute_skyline_arcs(disks, g.node(id).pos, ws, arcs);
      out.arc_counts_[u] = static_cast<std::uint32_t>(arcs.size());

      // Skyline set: sorted unique disk indices.  Disk 0 is the relay
      // itself — its area was served by the transmission the relay already
      // made, so it never needs a forwarder (Section 3.2).  Neighbor disks
      // follow `nb`'s ascending id order, so ascending indices map to
      // ascending node ids with no re-sort.
      sky_set.clear();
      for (const core::Arc& a : arcs) sky_set.push_back(a.disk);
      std::sort(sky_set.begin(), sky_set.end());
      sky_set.erase(std::unique(sky_set.begin(), sky_set.end()),
                    sky_set.end());
      std::uint32_t count = 0;
      for (const std::size_t idx : sky_set) {
        if (idx == 0) continue;
        co.ids.push_back(nb[idx - 1]);
        ++count;
      }
      out.offsets_[u + 1] = count;  // shifted; prefix-summed below
    }
  });

  for (std::size_t i = 0; i < n; ++i) out.offsets_[i + 1] += out.offsets_[i];
  out.ids_.resize(out.offsets_[n]);
  for (const ChunkOut& co : chunk_out) {
    std::copy(co.ids.begin(), co.ids.end(),
              out.ids_.begin() + out.offsets_[co.lo]);
  }
  return out;
}

}  // namespace mldcs::bcast
