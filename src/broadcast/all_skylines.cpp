#include "broadcast/all_skylines.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "broadcast/relay_skyline.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/disk.hpp"

namespace mldcs::bcast {

std::size_t AllSkylines::max_arc_count() const noexcept {
  std::size_t m = 0;
  for (const std::uint32_t c : arc_counts_) m = std::max<std::size_t>(m, c);
  return m;
}

double AllSkylines::average_forwarding_size() const noexcept {
  return arc_counts_.empty() ? 0.0
                             : static_cast<double>(ids_.size()) /
                                   static_cast<double>(arc_counts_.size());
}

MLDCS_HOT_PATH AllSkylines compute_all_skylines(const net::DiskGraph& g,
                                                sim::ThreadPool& pool) {
  const std::size_t n = g.size();
  AllSkylines out;
  out.offsets_.assign(n + 1, 0);
  out.arc_counts_.assign(n, 0);
  if (n == 0) return out;

  // Each chunk appends its nodes' forwarding sets to a private blob and
  // stages per-node set sizes and arc counts in private arrays too — the
  // sweep writes NOTHING shared, so chunk-boundary cache lines never
  // ping-pong between workers.  Chunks cover contiguous node ranges, so
  // after a (serial, O(n)) prefix sum the stitch is one straight copy per
  // chunk, run back on the pool: the memory-bandwidth-heavy patch-in
  // scales with the workers instead of serializing on the caller.  The
  // chunk struct also carries the per-chunk scratch (skyline workspace
  // plus the local disk set / arc / index buffers), reused across every
  // node of the range.
  struct ChunkOut {
    std::vector<net::NodeId> ids;
    std::vector<std::uint32_t> set_sizes;   // per node in [lo, hi)
    std::vector<std::uint32_t> arc_counts;  // per node in [lo, hi)
    std::size_t lo = 0;
    core::SkylineWorkspace ws;
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    std::vector<net::NodeId> relay_ids;
  };
  // mldcs-analyze:allow(hot-no-alloc): one-shot sweep setup, O(threads)
  std::vector<ChunkOut> chunk_out(std::min(pool.size(), n));

  // Per-relay skyline cost scales with the local disk set (the relay's
  // 1-hop neighborhood), so chunk by degree instead of node count —
  // otherwise a contiguous cluster of hubs lands in one chunk and the
  // sweep waits on that worker.  +1 keeps isolated nodes visible to the
  // boundary sweep (their per-call overhead is not zero).
  // mldcs-analyze:allow(hot-no-alloc): one-shot sweep setup, O(nodes)
  std::vector<std::uint32_t> weights(n);
  for (std::size_t u = 0; u < n; ++u) {
    weights[u] =
        static_cast<std::uint32_t>(g.degree(static_cast<net::NodeId>(u)) + 1);
  }

  pool.parallel_weighted_chunks(weights, [&](std::size_t c, std::size_t lo,
                                             std::size_t hi) {
    ChunkOut& co = chunk_out[c];
    co.lo = lo;
    co.ws.reserve(64);
    co.set_sizes.reserve(hi - lo);
    co.arc_counts.reserve(hi - lo);
    for (std::size_t u = lo; u < hi; ++u) {
      const net::NodeId id = static_cast<net::NodeId>(u);
      co.arc_counts.push_back(detail::relay_forwarding_set(
          g, id, co.ws, co.disks, co.arcs, co.sky_set, co.relay_ids));
      co.ids.insert(co.ids.end(), co.relay_ids.begin(), co.relay_ids.end());
      co.set_sizes.push_back(static_cast<std::uint32_t>(co.relay_ids.size()));
    }
  });

  // Serial O(n) spine: shifted counts, then the prefix sum.
  for (const ChunkOut& co : chunk_out) {
    std::copy(co.set_sizes.begin(), co.set_sizes.end(),
              out.offsets_.begin() + co.lo + 1);
  }
  for (std::size_t i = 0; i < n; ++i) out.offsets_[i + 1] += out.offsets_[i];
  out.ids_.resize(out.offsets_[n]);

  // Parallel stitch: each chunk patches its own contiguous CSR span and
  // arc-count range; spans are disjoint by construction, so no locking.
  pool.parallel_for(chunk_out.size(), [&](std::size_t c) {
    const ChunkOut& co = chunk_out[c];
    std::copy(co.ids.begin(), co.ids.end(),
              out.ids_.begin() + out.offsets_[co.lo]);
    std::copy(co.arc_counts.begin(), co.arc_counts.end(),
              out.arc_counts_.begin() + co.lo);
  });
  return out;
}

}  // namespace mldcs::bcast
