#pragma once

/// \file skyline_cache.hpp
/// Incrementally maintained whole-network MLDCS forwarding sets.
///
/// The Section 5.1.1 argument for the skyline scheme is that forwarding
/// sets depend only on *fresh 1-hop* information — which also means that
/// when a node moves, the only relays whose forwarding set can change are
/// the node itself, its current neighbors, and the endpoints of any links
/// that flipped.  `SkylineCache` exploits exactly that: it holds the result
/// of a whole-network sweep (the CSR store of bcast::compute_all_skylines)
/// and, fed the `StepDelta` of a `net::DynamicDiskGraph`, recomputes only
/// the **dirty** relays:
///
///   dirty(w)  iff  w's 1-hop neighbor set changed (w is an endpoint of a
///                  flipped edge), or w itself moved beyond the position
///                  tolerance, or a current neighbor of w did.
///
/// With the default tolerance 0 this is exact: after every update the
/// cached sets are bit-identical to a from-scratch `DiskGraph::build` +
/// `compute_all_skylines` on the same positions (differential-tested over
/// long mobility runs in tests/broadcast/skyline_cache_test.cpp).  A
/// positive tolerance trades exactness for even fewer recomputes: a node
/// must drift that far from its last committed position before it dirties
/// its neighborhood.
///
/// Dirty relays are recomputed in parallel through the per-chunk
/// `SkylineWorkspace` machinery (same inner loop as compute_all_skylines —
/// see relay_skyline.hpp), and results are patched into a slotted arc
/// store: every node owns a stable slot with some slack, so a recomputed
/// set that still fits is written in place and clean relays cost zero.
/// Slots that outgrow their slack are re-appended; when the dead fraction
/// of the store passes the compaction threshold the store is repacked.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "core/arc.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/node.hpp"
#include "obs/event_log.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::bcast {

/// Cached all-relay skyline forwarding sets over a DynamicDiskGraph.
class SkylineCache {
 public:
  struct Config {
    /// A moved node dirties its neighborhood only once it has drifted more
    /// than this from its last committed position.  0 = exact maintenance
    /// (cached output always bit-identical to a from-scratch sweep).
    double position_tolerance = 0.0;
    /// Dead fraction of the slotted store that triggers compaction.
    double compaction_threshold = 0.5;
  };

  /// Full initial sweep over `g` (which must outlive the cache).  `pool` is
  /// retained and reused by every update — steady-state maintenance spawns
  /// no threads.
  SkylineCache(const net::DynamicDiskGraph& g, sim::ThreadPool& pool,
               Config config);
  SkylineCache(const net::DynamicDiskGraph& g, sim::ThreadPool& pool)
      : SkylineCache(g, pool, Config()) {}

  /// Recompute the relays dirtied by `delta` (the return value of the
  /// graph's `apply` for this step, which must already be applied).
  /// Steady-state updates are allocation-free: all scratch (dirty set,
  /// per-chunk workspaces and buffers) is retained across calls.
  MLDCS_HOT_PATH void update(const net::DynamicDiskGraph::StepDelta& delta);

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// The cached skyline/MLDCS forwarding set of relay `u`, sorted
  /// ascending.  Identical to compute_all_skylines(...).forwarding_set(u).
  [[nodiscard]] std::span<const net::NodeId> forwarding_set(
      net::NodeId u) const noexcept {
    const Slot& s = slots_[u];
    return {ids_.data() + s.begin, ids_.data() + s.begin + s.len};
  }

  /// Cached skyline arc count of relay `u` (Lemma 8 instrumentation).
  [[nodiscard]] std::uint32_t arc_count(net::NodeId u) const noexcept {
    return arc_counts_[u];
  }

  /// Total forwarding-set cardinality over all relays.
  [[nodiscard]] std::size_t total_forwarders() const noexcept {
    return live_ids_;
  }

  // --- Maintenance instrumentation -----------------------------------------

  /// Relays recomputed by the most recent update (sorted ascending; empty
  /// after a no-op step).  Valid until the next update.
  [[nodiscard]] std::span<const net::NodeId> last_dirty() const noexcept {
    return dirty_;
  }

  /// Total relays recomputed over the cache's lifetime (excluding the
  /// initial sweep).
  [[nodiscard]] std::uint64_t recompute_count() const noexcept {
    return recomputes_;
  }

  /// Times the slotted store was repacked.
  [[nodiscard]] std::uint64_t compaction_count() const noexcept {
    return compactions_;
  }

  /// Updates applied (excluding the initial sweep).
  [[nodiscard]] std::uint64_t update_count() const noexcept {
    return updates_;
  }

  /// Flight-recorder id of the most recent update's kCacheUpdate event
  /// (obs::kNoEvent when collection is disarmed) — the causal parent for a
  /// watchdog check auditing that update.
  [[nodiscard]] std::uint64_t last_update_event() const noexcept {
    return last_update_event_;
  }

  /// Deliberately corrupt relay `u`'s cached forwarding set (drop an entry,
  /// or plant a bogus one when the true set is empty).  Exists so watchdog
  /// tests can prove injected corruption is caught; never called by the
  /// maintenance path.
  void corrupt_slot_for_testing(net::NodeId u);

  /// Current size of the slotted store (live + slack + dead entries).
  [[nodiscard]] std::size_t store_size() const noexcept { return ids_.size(); }

 private:
  struct Slot {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  /// Slot capacity policy: enough slack that typical set-size jitter under
  /// motion stays in place.
  [[nodiscard]] static std::uint32_t cap_for(std::size_t len) noexcept {
    return static_cast<std::uint32_t>(len + len / 4 + 2);
  }

  MLDCS_ALLOC_OK void full_sweep();
  void recompute_dirty();
  void store(net::NodeId u, std::span<const net::NodeId> set);
  MLDCS_ALLOC_OK void compact();

  const net::DynamicDiskGraph* g_;
  sim::ThreadPool* pool_;
  Config config_;

  std::vector<Slot> slots_;
  std::vector<net::NodeId> ids_;  ///< slotted blob (slack between slots)
  std::vector<std::uint32_t> arc_counts_;
  std::size_t live_ids_ = 0;  ///< sum of slot lengths
  std::size_t dead_ids_ = 0;  ///< abandoned (outgrown) slot capacity

  /// Last position at which each node's neighborhood was committed; only
  /// drift beyond the tolerance re-dirties (always current when
  /// position_tolerance == 0).
  std::vector<geom::Vec2> committed_pos_;

  std::vector<net::NodeId> dirty_;     ///< last update's recomputed relays
  std::vector<std::uint8_t> in_dirty_; ///< membership mask for dirty_

  /// Per-worker-chunk recompute output plus the chunk's reusable scratch
  /// (skyline workspace and relay buffers), stitched serially into the
  /// store.  Keeping the scratch here — not as locals of the recompute
  /// lambda — is what makes steady-state updates allocation-free: every
  /// buffer holds its high-water capacity across steps.
  struct ChunkOut {
    std::vector<net::NodeId> ids;
    std::vector<std::uint32_t> lens;
    std::size_t lo = 0;
    core::SkylineWorkspace ws;
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    std::vector<net::NodeId> relay_ids;
  };
  std::vector<ChunkOut> chunk_out_;

  std::uint64_t recomputes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t last_update_event_ = obs::kNoEvent;
};

}  // namespace mldcs::bcast
