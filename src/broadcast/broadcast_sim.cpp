#include "broadcast/broadcast_sim.hpp"

#include <algorithm>
#include <queue>

#include "obs/event_log.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mldcs::bcast {

namespace {

/// Broadcast telemetry (docs/OBSERVABILITY.md): storm pressure
/// (transmissions, redundant receptions) and coverage outcome per
/// simulated broadcast.
struct BcastTelemetry {
  obs::Counter& broadcasts = obs::registry().counter("bcast.broadcasts");
  obs::Counter& transmissions =
      obs::registry().counter("bcast.transmissions");
  obs::Counter& redundant =
      obs::registry().counter("bcast.redundant_receptions");
  obs::Histogram& tx_per_broadcast =
      obs::registry().histogram("bcast.transmissions_per_broadcast");
  obs::Histogram& delivery_permille =
      obs::registry().histogram("bcast.delivery_permille");
  obs::Histogram& max_hops = obs::registry().histogram("bcast.max_hops");
};

BcastTelemetry& bcast_telemetry() {
  static BcastTelemetry t;
  return t;
}

/// Receivers of a transmission by u under the chosen reception model.
std::vector<net::NodeId> receivers_of(const net::DiskGraph& g, net::NodeId u,
                                      ReceptionModel model) {
  if (model == ReceptionModel::kBidirectionalLink) {
    const auto nb = g.neighbors(u);
    return {nb.begin(), nb.end()};
  }
  // Physical coverage: anyone inside B(u, r_u).  (O(N) scan; the physical
  // model is only used in the Figure 5.6 study on small graphs.)
  std::vector<net::NodeId> out;
  const net::Node& nu = g.node(u);
  for (const net::Node& v : g.nodes()) {
    if (v.id != u && nu.covers(v)) out.push_back(v.id);
  }
  return out;
}

}  // namespace

BroadcastResult simulate_broadcast(const net::DiskGraph& g, net::NodeId source,
                                   Scheme scheme, ReceptionModel reception) {
  const obs::TraceSpan span("bcast.simulate_broadcast");
  BroadcastResult result;
  if (source >= g.size()) return result;
  result.reachable = g.reachable_from(source).size();

  std::vector<bool> received(g.size(), false);
  std::vector<bool> designated(g.size(), false);
  std::vector<bool> transmitted(g.size(), false);
  std::vector<std::uint64_t> hops(g.size(), 0);

  // Flight recorder (docs/OBSERVABILITY.md): hoisted so the disarmed run
  // pays one relaxed load per broadcast, not per reception.  rx_event[v]
  // remembers the reception that delivered v's first copy — the causal
  // parent of v's own transmission, and of its suppression verdict.
  const bool ev = obs::events_enabled();
  std::vector<std::uint64_t> rx_event;
  if (ev) {
    rx_event.assign(g.size(), obs::kNoEvent);
    obs::emit_event(
        obs::EventType::kBroadcast, source,
        (static_cast<std::uint32_t>(reception) << 8) |
            static_cast<std::uint32_t>(scheme),
        obs::kNoEvent, result.reachable);
  }

  // FIFO queue of pending transmissions keeps hop counts BFS-ordered.
  std::queue<net::NodeId> pending;
  received[source] = true;
  designated[source] = true;
  pending.push(source);
  result.delivered = 1;

  while (!pending.empty()) {
    const net::NodeId u = pending.front();
    pending.pop();
    if (transmitted[u]) continue;
    transmitted[u] = true;
    ++result.transmissions;
    std::uint64_t tx_id = obs::kNoEvent;
    if (ev) {
      tx_id = obs::emit_event(obs::EventType::kTx,
                              static_cast<std::uint32_t>(u), obs::kNoNode,
                              rx_event[u], hops[u]);
    }

    // The sender names its forwarding set from its own local knowledge.
    const std::vector<net::NodeId> fwd =
        scheme == Scheme::kFlooding
            ? std::vector<net::NodeId>{}  // flooding designates everyone
            : forwarding_set(g, u, scheme);

    for (net::NodeId v : receivers_of(g, u, reception)) {
      const bool named =
          scheme == Scheme::kFlooding ||
          std::binary_search(fwd.begin(), fwd.end(), v);
      if (!received[v]) {
        received[v] = true;
        hops[v] = hops[u] + 1;
        ++result.delivered;
        result.max_hops = std::max(result.max_hops, hops[v]);
        if (ev) {
          rx_event[v] = obs::emit_event(
              obs::EventType::kRx, static_cast<std::uint32_t>(v),
              static_cast<std::uint32_t>(u), tx_id, hops[v]);
        }
      } else {
        ++result.redundant_receptions;
        if (ev) {
          obs::emit_event(obs::EventType::kDuplicateRx,
                          static_cast<std::uint32_t>(v),
                          static_cast<std::uint32_t>(u), tx_id, hops[u] + 1);
        }
      }
      if (named && !designated[v]) {
        designated[v] = true;
        if (ev) {
          obs::emit_event(obs::EventType::kDesignate,
                          static_cast<std::uint32_t>(v),
                          static_cast<std::uint32_t>(u), tx_id, 0);
        }
        if (!transmitted[v]) pending.push(v);
      }
    }
  }

  if (ev) {
    // Suppression verdicts: nodes that received but were never designated
    // by any transmission will stay silent — the storm saving, and the
    // delivery risk, of sender-designated forwarding.
    for (net::NodeId v = 0; v < g.size(); ++v) {
      if (received[v] && !designated[v]) {
        obs::emit_event(obs::EventType::kSuppress,
                        static_cast<std::uint32_t>(v), obs::kNoNode,
                        rx_event[v], 0);
      }
    }
  }

  BcastTelemetry& t = bcast_telemetry();
  t.broadcasts.add();
  t.transmissions.add(result.transmissions);
  t.redundant.add(result.redundant_receptions);
  t.tx_per_broadcast.record(result.transmissions);
  t.delivery_permille.record(
      static_cast<std::uint64_t>(1000.0 * result.delivery_ratio()));
  t.max_hops.record(result.max_hops);
  return result;
}

}  // namespace mldcs::bcast
