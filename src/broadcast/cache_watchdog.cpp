#include "broadcast/cache_watchdog.hpp"

#include <memory>
#include <vector>

#include "broadcast/relay_skyline.hpp"
#include "core/skyline_dc.hpp"

namespace mldcs::bcast {

obs::ConsistencyWatchdog make_cache_watchdog(
    const net::DynamicDiskGraph& g, const SkylineCache& cache,
    obs::ConsistencyWatchdog::Config config) {
  // One shared scratch set per watchdog: checks are serial and rare
  // (samples per period), so a single workspace amortizes across them.
  struct Scratch {
    core::SkylineWorkspace ws;
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    std::vector<net::NodeId> relay_ids;
  };
  auto scratch = std::make_shared<Scratch>();

  auto reference = [&g, scratch](std::uint32_t u) {
    Scratch& s = *scratch;
    detail::relay_forwarding_set(g, u, s.ws, s.disks, s.arcs, s.sky_set,
                                 s.relay_ids);
    return s.relay_ids;
  };
  auto cached = [&cache](std::uint32_t u) {
    const auto set = cache.forwarding_set(u);
    return std::vector<std::uint32_t>(set.begin(), set.end());
  };
  return {g.size(), std::move(reference), std::move(cached), config};
}

obs::ConsistencyWatchdog make_cache_watchdog(
    const ShardedSkylineCache& cache,
    obs::ConsistencyWatchdog::Config config) {
  struct Scratch {
    core::SkylineWorkspace ws;
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    std::vector<net::NodeId> relay_ids;
  };
  auto scratch = std::make_shared<Scratch>();

  const net::ShardedEngine& engine = cache.engine();
  auto reference = [&engine, scratch](std::uint32_t u) {
    Scratch& s = *scratch;
    // The owner shard's region graph holds u's complete 1-hop set, so the
    // from-scratch recompute sees exactly what a whole-plane graph would.
    const net::DynamicDiskGraph& g = engine.shard_graph(engine.owner_of(u));
    detail::relay_forwarding_set(g, u, s.ws, s.disks, s.arcs, s.sky_set,
                                 s.relay_ids);
    return s.relay_ids;
  };
  auto cached = [&cache](std::uint32_t u) {
    const auto set = cache.forwarding_set(u);
    return std::vector<std::uint32_t>(set.begin(), set.end());
  };
  return {engine.size(), std::move(reference), std::move(cached), config};
}

}  // namespace mldcs::bcast
