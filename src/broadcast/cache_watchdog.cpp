#include "broadcast/cache_watchdog.hpp"

#include <memory>
#include <vector>

#include "broadcast/relay_skyline.hpp"
#include "core/skyline_dc.hpp"

namespace mldcs::bcast {

obs::ConsistencyWatchdog make_cache_watchdog(
    const net::DynamicDiskGraph& g, const SkylineCache& cache,
    obs::ConsistencyWatchdog::Config config) {
  // One shared scratch set per watchdog: checks are serial and rare
  // (samples per period), so a single workspace amortizes across them.
  struct Scratch {
    core::SkylineWorkspace ws;
    std::vector<geom::Disk> disks;
    std::vector<core::Arc> arcs;
    std::vector<std::size_t> sky_set;
    std::vector<net::NodeId> relay_ids;
  };
  auto scratch = std::make_shared<Scratch>();

  auto reference = [&g, scratch](std::uint32_t u) {
    Scratch& s = *scratch;
    detail::relay_forwarding_set(g, u, s.ws, s.disks, s.arcs, s.sky_set,
                                 s.relay_ids);
    return s.relay_ids;
  };
  auto cached = [&cache](std::uint32_t u) {
    const auto set = cache.forwarding_set(u);
    return std::vector<std::uint32_t>(set.begin(), set.end());
  };
  return {g.size(), std::move(reference), std::move(cached), config};
}

}  // namespace mldcs::bcast
