#pragma once

/// \file local_view.hpp
/// The local knowledge a relay node has when it selects its forwarding set:
/// its 1-hop neighbors (positions + radii, from round-1 HELLOs) and, for the
/// 2-hop schemes, its strict 2-hop neighborhood (from round-2 HELLOs).

#include <vector>

#include "geometry/disk.hpp"
#include "net/disk_graph.hpp"
#include "net/node.hpp"

namespace mldcs::bcast {

/// Snapshot of what node `self` knows about its neighborhood.
struct LocalView {
  net::NodeId self = net::kNoNode;
  std::vector<net::NodeId> one_hop;  ///< sorted 1-hop neighbor ids
  std::vector<net::NodeId> two_hop;  ///< sorted strict 2-hop neighbor ids
};

/// Extract the local view of `self` from the ground-truth graph (equivalent
/// to what two HELLO rounds deliver; the hello module's tables are tested to
/// agree with this).
[[nodiscard]] LocalView local_view(const net::DiskGraph& g, net::NodeId self);

/// Scratch-reuse overload for relay sweeps: refills `out` in place, reusing
/// its vectors' capacity (no per-relay allocations in steady state; uses
/// the scratch-buffer DiskGraph::two_hop_neighbors).
void local_view(const net::DiskGraph& g, net::NodeId self, LocalView& out);

/// The local disk set of `self` in the paper's sense: disk 0 is self's own
/// coverage disk, disks 1..k are the 1-hop neighbors' disks, in the order of
/// `view.one_hop`.  Valid by the bidirectional-link rule: every neighbor's
/// disk contains self's position.
[[nodiscard]] std::vector<geom::Disk> local_disk_set(const net::DiskGraph& g,
                                                     const LocalView& view);

/// Which 2-hop neighbors each 1-hop neighbor can deliver to:
/// covers[i] lists indices into view.two_hop adjacent (bidirectional) to
/// view.one_hop[i].
[[nodiscard]] std::vector<std::vector<std::uint32_t>> two_hop_coverage(
    const net::DiskGraph& g, const LocalView& view);

}  // namespace mldcs::bcast
