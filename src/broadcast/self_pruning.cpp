#include "broadcast/self_pruning.hpp"

#include <algorithm>
#include <queue>

namespace mldcs::bcast {

bool self_pruning_would_forward(const net::DiskGraph& g, net::NodeId sender,
                                net::NodeId receiver) {
  const auto ns = g.neighbors(sender);
  for (net::NodeId w : g.neighbors(receiver)) {
    if (w == sender) continue;
    if (!std::binary_search(ns.begin(), ns.end(), w)) return true;
  }
  return false;
}

BroadcastResult simulate_pruned_broadcast(const net::DiskGraph& g,
                                          net::NodeId source, Scheme scheme,
                                          ReceptionModel reception) {
  BroadcastResult result;
  if (source >= g.size()) return result;
  result.reachable = g.reachable_from(source).size();

  std::vector<bool> received(g.size(), false);
  std::vector<bool> scheduled(g.size(), false);
  std::vector<bool> transmitted(g.size(), false);
  std::vector<std::uint64_t> hops(g.size(), 0);

  std::queue<net::NodeId> pending;
  received[source] = true;
  scheduled[source] = true;
  pending.push(source);
  result.delivered = 1;

  while (!pending.empty()) {
    const net::NodeId u = pending.front();
    pending.pop();
    if (transmitted[u]) continue;
    transmitted[u] = true;
    ++result.transmissions;

    const std::vector<net::NodeId> fwd =
        scheme == Scheme::kFlooding ? std::vector<net::NodeId>{}
                                    : forwarding_set(g, u, scheme);

    // Receivers under the chosen reception model.
    std::vector<net::NodeId> hearers;
    if (reception == ReceptionModel::kBidirectionalLink) {
      const auto nb = g.neighbors(u);
      hearers.assign(nb.begin(), nb.end());
    } else {
      for (const net::Node& v : g.nodes()) {
        if (v.id != u && g.node(u).covers(v)) hearers.push_back(v.id);
      }
    }

    for (net::NodeId v : hearers) {
      if (!received[v]) {
        received[v] = true;
        hops[v] = hops[u] + 1;
        ++result.delivered;
        result.max_hops = std::max(result.max_hops, hops[v]);
      } else {
        ++result.redundant_receptions;
      }
      const bool named = scheme == Scheme::kFlooding ||
                         std::binary_search(fwd.begin(), fwd.end(), v);
      // The hybrid rule: designated by the sender AND not self-pruned.
      if (named && !scheduled[v] &&
          self_pruning_would_forward(g, u, v)) {
        scheduled[v] = true;
        if (!transmitted[v]) pending.push(v);
      }
    }
  }
  return result;
}

}  // namespace mldcs::bcast
