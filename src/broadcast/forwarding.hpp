#pragma once

/// \file forwarding.hpp
/// The five forwarding-set algorithms compared in Chapter 5.
///
/// | Scheme                    | Info needed | Heterogeneous? | Guarantees            |
/// |---------------------------|-------------|----------------|-----------------------|
/// | blind flooding            | 1-hop       | yes            | all neighbors relay   |
/// | skyline (MLDCS, ours)     | 1-hop       | yes            | covers 1-hop area     |
/// | selecting forwarding set  | 1+2-hop     | no (paper [6]) | covers 2-hop nodes    |
/// | greedy (Chvátal / MPR)    | 1+2-hop     | yes            | covers 2-hop nodes    |
/// | optimal (exact min cover) | 1+2-hop     | yes            | min covering 2-hop    |

#include <string_view>
#include <vector>

#include "broadcast/local_view.hpp"
#include "net/disk_graph.hpp"
#include "net/node.hpp"

namespace mldcs::core {
class SkylineWorkspace;
}  // namespace mldcs::core

namespace mldcs::bcast {

/// Forwarding-set selection scheme.
enum class Scheme {
  kFlooding,
  kSkyline,
  kSelectingForwardingSet,
  kGreedy,
  kOptimal,
};

/// Human-readable scheme name (matches the curve labels of Figures 5.1/5.4).
[[nodiscard]] std::string_view scheme_name(Scheme s) noexcept;

/// True if the scheme needs 2-hop neighborhood information (everything but
/// flooding and skyline).
[[nodiscard]] bool requires_two_hop_info(Scheme s) noexcept;

/// True if the scheme is defined for heterogeneous radii (all but the
/// selecting-forwarding-set algorithm of [6], per Section 5.1.2).
[[nodiscard]] bool supports_heterogeneous(Scheme s) noexcept;

/// Compute the forwarding set of `relay` under `scheme`: the subset of its
/// 1-hop neighbors designated to re-transmit.  Sorted node ids.
[[nodiscard]] std::vector<net::NodeId> forwarding_set(const net::DiskGraph& g,
                                                      net::NodeId relay,
                                                      Scheme scheme);

/// Same, with a precomputed local view (avoids recomputing 1/2-hop sets when
/// several schemes run on the same relay, as in every figure bench).
[[nodiscard]] std::vector<net::NodeId> forwarding_set(const net::DiskGraph& g,
                                                      const LocalView& view,
                                                      Scheme scheme);

/// The skyline/MLDCS forwarding set (our scheme): the skyline set of the
/// local disk set {self} + 1-hop neighbors, minus self.  1-hop info only,
/// O(n log n).
[[nodiscard]] std::vector<net::NodeId> skyline_forwarding_set(
    const net::DiskGraph& g, const LocalView& view);

/// Workspace overload for sweeps: same result, with the skyline engine's
/// scratch taken from `ws` (one workspace per thread; see
/// core::SkylineWorkspace).  forwarding_set(g, view, scheme, ws) routes
/// Scheme::kSkyline through this and everything else through the plain
/// overload.
[[nodiscard]] std::vector<net::NodeId> skyline_forwarding_set(
    const net::DiskGraph& g, const LocalView& view,
    core::SkylineWorkspace& ws);

/// Scheme dispatch with a caller-provided skyline workspace.
[[nodiscard]] std::vector<net::NodeId> forwarding_set(
    const net::DiskGraph& g, const LocalView& view, Scheme scheme,
    core::SkylineWorkspace& ws);

/// Chvátal-greedy 2-hop cover (the paper's "greedy algorithm").
[[nodiscard]] std::vector<net::NodeId> greedy_forwarding_set(
    const net::DiskGraph& g, const LocalView& view);

/// Exact minimum 2-hop cover (the paper's "optimal algorithm").
[[nodiscard]] std::vector<net::NodeId> optimal_forwarding_set(
    const net::DiskGraph& g, const LocalView& view);

/// Călinescu et al. selecting-forwarding-set heuristic (homogeneous
/// networks); declared in calinescu.cpp.  Precondition: all radii equal
/// (checked; throws std::invalid_argument otherwise).
[[nodiscard]] std::vector<net::NodeId> calinescu_forwarding_set(
    const net::DiskGraph& g, const LocalView& view);

}  // namespace mldcs::bcast
