#pragma once

/// \file set_cover.hpp
/// Set-cover machinery behind the greedy and optimal forwarding schemes.
///
/// The minimum forwarding set problem is minimum set cover: the universe is
/// the relay's strict 2-hop neighborhood, the candidate sets are the 1-hop
/// neighbors (each covering the 2-hop neighbors it is adjacent to).  The
/// paper evaluates a Chvátal greedy heuristic and a brute-force optimum;
/// here the optimum is an exact branch-and-bound that returns the same
/// answer as enumeration (verified in tests) but survives degree-20+
/// instances at 200 trials per sweep point.

#include <cstdint>
#include <vector>

namespace mldcs::bcast {

/// A set-cover instance: `sets[i]` lists the universe elements (0-based,
/// < universe_size) covered by candidate i.
struct SetCoverInstance {
  std::size_t universe_size = 0;
  std::vector<std::vector<std::uint32_t>> sets;
};

/// True if choosing `chosen` (candidate indices) covers every universe
/// element that *can* be covered by the full candidate family.
[[nodiscard]] bool covers_universe(const SetCoverInstance& inst,
                                   const std::vector<std::size_t>& chosen);

/// Chvátal's greedy: repeatedly pick the candidate covering the most not-
/// yet-covered elements (ties -> smallest index).  Elements covered by no
/// candidate are ignored (they are uncoverable).  O(n * m) per pick.
[[nodiscard]] std::vector<std::size_t> greedy_set_cover(
    const SetCoverInstance& inst);

/// Exact minimum set cover by branch-and-bound:
///  - reduction: forced candidates (sole coverer of some element) and
///    dominated candidates (covering a subset of another's elements),
///  - greedy upper bound,
///  - branching on the element with the fewest remaining coverers,
///  - lower bound ceil(uncovered / max_set_size).
/// Uncoverable elements are ignored.  Returns candidate indices, sorted.
[[nodiscard]] std::vector<std::size_t> optimal_set_cover(
    const SetCoverInstance& inst);

/// Reference exact solver: enumerate subsets in increasing cardinality.
/// Exponential; only for cross-checking optimal_set_cover in tests
/// (practical to ~20 candidates).
[[nodiscard]] std::vector<std::size_t> bruteforce_set_cover(
    const SetCoverInstance& inst);

}  // namespace mldcs::bcast
