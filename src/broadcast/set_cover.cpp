#include "broadcast/set_cover.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>

namespace mldcs::bcast {

namespace {

/// Fixed-width dynamic bitset over the universe.
using Mask = std::vector<std::uint64_t>;

Mask make_mask(std::size_t universe) {
  return Mask((universe + 63) / 64, 0);
}

void set_bit(Mask& m, std::uint32_t i) { m[i >> 6] |= 1ULL << (i & 63); }

bool test_bit(const Mask& m, std::uint32_t i) {
  return (m[i >> 6] >> (i & 63)) & 1ULL;
}

void or_into(Mask& dst, const Mask& src) {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] |= src[w];
}

/// popcount(src & ~covered): how many new elements src would add.
std::size_t new_coverage(const Mask& src, const Mask& covered) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < src.size(); ++w) {
    n += static_cast<std::size_t>(std::popcount(src[w] & ~covered[w]));
  }
  return n;
}

bool is_subset(const Mask& a, const Mask& b) {  // a subset of b
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w] & ~b[w]) return false;
  }
  return true;
}

bool mask_equal(const Mask& a, const Mask& b) { return a == b; }

std::size_t popcount_mask(const Mask& m) {
  std::size_t n = 0;
  for (std::uint64_t w : m) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::vector<Mask> candidate_masks(const SetCoverInstance& inst) {
  std::vector<Mask> masks(inst.sets.size(), make_mask(inst.universe_size));
  for (std::size_t i = 0; i < inst.sets.size(); ++i) {
    for (std::uint32_t e : inst.sets[i]) set_bit(masks[i], e);
  }
  return masks;
}

Mask coverable_mask(const std::vector<Mask>& masks, std::size_t universe) {
  Mask all = make_mask(universe);
  for (const Mask& m : masks) or_into(all, m);
  return all;
}

}  // namespace

bool covers_universe(const SetCoverInstance& inst,
                     const std::vector<std::size_t>& chosen) {
  const auto masks = candidate_masks(inst);
  const Mask target = coverable_mask(masks, inst.universe_size);
  Mask got = make_mask(inst.universe_size);
  for (std::size_t i : chosen) {
    if (i >= masks.size()) return false;
    or_into(got, masks[i]);
  }
  return mask_equal(got, target);
}

std::vector<std::size_t> greedy_set_cover(const SetCoverInstance& inst) {
  const auto masks = candidate_masks(inst);
  const Mask target = coverable_mask(masks, inst.universe_size);
  Mask covered = make_mask(inst.universe_size);
  std::vector<std::size_t> chosen;

  while (!mask_equal(covered, target)) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      const std::size_t gain = new_coverage(masks[i], covered);
      if (gain > best_gain) {  // ties -> smallest index, by scan order
        best_gain = gain;
        best = i;
      }
    }
    if (best_gain == 0) break;  // defensive; target is coverable by union
    chosen.push_back(best);
    or_into(covered, masks[best]);
  }
  return chosen;
}

std::vector<std::size_t> optimal_set_cover(const SetCoverInstance& inst) {
  const std::size_t n = inst.sets.size();
  auto masks = candidate_masks(inst);
  const Mask target = coverable_mask(masks, inst.universe_size);
  const std::size_t universe = inst.universe_size;

  if (popcount_mask(target) == 0) return {};

  // --- Reduction 1: drop dominated candidates (mask_i subset of mask_j).
  // Keep the earlier index when two candidates tie exactly.
  std::vector<std::size_t> alive;  // original indices of surviving candidates
  for (std::size_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < n && !dominated; ++j) {
      if (i == j) continue;
      if (!is_subset(masks[i], masks[j])) continue;
      if (mask_equal(masks[i], masks[j])) {
        dominated = j < i;  // among equals only the first survives
      } else {
        dominated = true;
      }
    }
    if (!dominated) alive.push_back(i);
  }

  std::vector<Mask> live_masks;
  live_masks.reserve(alive.size());
  for (std::size_t i : alive) live_masks.push_back(masks[i]);

  // --- Reduction 2: forced candidates (sole coverer of some element),
  // applied iteratively on the live set.
  Mask covered = make_mask(universe);
  std::vector<std::size_t> forced;  // indices into `alive`
  std::vector<bool> taken(alive.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (!test_bit(target, e) || test_bit(covered, e)) continue;
      std::size_t sole = std::numeric_limits<std::size_t>::max();
      int count = 0;
      for (std::size_t k = 0; k < live_masks.size() && count < 2; ++k) {
        if (!taken[k] && test_bit(live_masks[k], e)) {
          sole = k;
          ++count;
        }
      }
      if (count == 1 && !taken[sole]) {
        taken[sole] = true;
        forced.push_back(sole);
        or_into(covered, live_masks[sole]);
        changed = true;
      }
    }
  }

  // --- Upper bound from greedy on the residual problem.
  std::vector<std::size_t> best;  // indices into `alive`
  {
    Mask gc = covered;
    best = forced;
    while (!mask_equal(gc, target)) {
      std::size_t pick = std::numeric_limits<std::size_t>::max();
      std::size_t gain = 0;
      for (std::size_t k = 0; k < live_masks.size(); ++k) {
        const std::size_t g = new_coverage(live_masks[k], gc);
        if (g > gain) {
          gain = g;
          pick = k;
        }
      }
      if (gain == 0) break;
      best.push_back(pick);
      or_into(gc, live_masks[pick]);
    }
  }

  // --- Branch and bound on the hardest (fewest-coverers) element.
  std::size_t max_set_size = 1;
  for (const Mask& m : live_masks) {
    max_set_size = std::max(max_set_size, popcount_mask(m));
  }

  std::vector<std::size_t> chosen = forced;
  const std::function<void(Mask&)> dfs = [&](Mask& cov) {
    if (mask_equal(cov, target)) {
      if (chosen.size() < best.size()) best = chosen;
      return;
    }
    const std::size_t uncovered = popcount_mask(target) - popcount_mask(cov);
    const std::size_t lb = (uncovered + max_set_size - 1) / max_set_size;
    if (chosen.size() + lb >= best.size()) return;

    // Element with the fewest remaining coverers.
    std::uint32_t pivot = 0;
    std::size_t fewest = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (!test_bit(target, e) || test_bit(cov, e)) continue;
      std::size_t c = 0;
      for (std::size_t k = 0; k < live_masks.size(); ++k) {
        if (test_bit(live_masks[k], e)) ++c;
      }
      if (c < fewest) {
        fewest = c;
        pivot = e;
      }
    }
    if (fewest == 0 || fewest == std::numeric_limits<std::size_t>::max())
      return;  // uncoverable residue (cannot happen: target is coverable)

    // Branch on coverers of the pivot, largest marginal gain first.
    std::vector<std::size_t> coverers;
    for (std::size_t k = 0; k < live_masks.size(); ++k) {
      if (test_bit(live_masks[k], pivot)) coverers.push_back(k);
    }
    std::sort(coverers.begin(), coverers.end(),
              [&](std::size_t a, std::size_t b) {
                return new_coverage(live_masks[a], cov) >
                       new_coverage(live_masks[b], cov);
              });
    for (std::size_t k : coverers) {
      Mask next = cov;
      or_into(next, live_masks[k]);
      chosen.push_back(k);
      dfs(next);
      chosen.pop_back();
    }
  };
  Mask cov0 = covered;
  dfs(cov0);

  // Map live indices back to original candidate indices.
  std::vector<std::size_t> out;
  out.reserve(best.size());
  for (std::size_t k : best) out.push_back(alive[k]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> bruteforce_set_cover(const SetCoverInstance& inst) {
  const auto masks = candidate_masks(inst);
  const Mask target = coverable_mask(masks, inst.universe_size);
  const std::size_t n = inst.sets.size();
  if (popcount_mask(target) == 0) return {};

  std::vector<std::size_t> combo;
  std::vector<std::size_t> found;
  const std::function<bool(std::size_t, std::size_t)> rec =
      [&](std::size_t start, std::size_t remaining) -> bool {
    if (remaining == 0) {
      Mask got = make_mask(inst.universe_size);
      for (std::size_t i : combo) or_into(got, masks[i]);
      if (mask_equal(got, target)) {
        found = combo;
        return true;
      }
      return false;
    }
    for (std::size_t i = start; i + remaining <= n + 0 && i < n; ++i) {
      combo.push_back(i);
      if (rec(i + 1, remaining - 1)) return true;
      combo.pop_back();
    }
    return false;
  };

  for (std::size_t k = 0; k <= n; ++k) {
    combo.clear();
    if (rec(0, k)) return found;
  }
  return found;  // unreachable for coverable targets
}

}  // namespace mldcs::bcast
