#pragma once

/// \file topology.hpp
/// Random deployments reproducing the Chapter 5 simulation setup:
/// nodes uniform over a 12.5 x 12.5 square, a source node at the center,
/// homogeneous (r = 1) or heterogeneous (r ~ U[1, 2]) radii, and node
/// counts calibrated so the *average 1-hop degree* equals the sweep value n.

#include <cstdint>
#include <vector>

#include "net/disk_graph.hpp"
#include "net/node.hpp"
#include "sim/rng.hpp"

namespace mldcs::net {

/// Radius model for a deployment.
enum class RadiusModel {
  kHomogeneous,    ///< every node has radius `r_fixed` (Section 5.1.1: 1.0)
  kUniform,        ///< radius ~ U[r_min, r_max] per node (Section 5.1.2: [1,2])
};

/// Parameters of a Chapter 5 deployment.
struct DeploymentParams {
  double side = 12.5;            ///< deployment square side length
  RadiusModel model = RadiusModel::kHomogeneous;
  double r_fixed = 1.0;          ///< homogeneous radius
  double r_min = 1.0;            ///< heterogeneous lower bound
  double r_max = 2.0;            ///< heterogeneous upper bound
  double target_avg_degree = 10; ///< the paper's x-axis value n
};

/// E[min(R_1, R_2)^2] for two independent radii under the model — the
/// quantity that sets expected degree under the bidirectional-link rule
/// (a uniform pair at distance d links iff d <= min(r1, r2), so
/// E[degree] = density * pi * E[min^2]).  For kHomogeneous this is
/// r_fixed^2; for kUniform over [1,2] it evaluates to 11/6.
[[nodiscard]] double expected_min_radius_sq(const DeploymentParams& p) noexcept;

/// Number of non-source nodes to deploy so the average degree matches
/// `target_avg_degree`:  round(side^2 / (pi * E[min^2]) * n)  — the paper's
/// (12.5^2 / (pi r^2)) * n generalized to heterogeneous radii.
[[nodiscard]] std::size_t node_count_for(const DeploymentParams& p) noexcept;

/// Draw one radius under the model.
[[nodiscard]] double draw_radius(const DeploymentParams& p,
                                 sim::Xoshiro256& rng) noexcept;

/// Generate one deployment: node 0 is the source at the center of the
/// square (radius drawn from the same model, as in Section 5.1.2:
/// "including the source node"); node_count_for(p) further nodes uniform
/// over the square.
[[nodiscard]] std::vector<Node> generate_deployment(const DeploymentParams& p,
                                                    sim::Xoshiro256& rng);

/// Generate + build the disk graph in one step.
[[nodiscard]] DiskGraph generate_graph(const DeploymentParams& p,
                                       sim::Xoshiro256& rng);

}  // namespace mldcs::net
