#pragma once

/// \file spatial_grid.hpp
/// Uniform-grid spatial index over node positions.
///
/// Building the bidirectional disk graph naively is O(N^2) point-pair
/// tests; with deployments up to a few thousand nodes per trial and 200
/// trials per sweep point that dominates the harness.  A uniform grid with
/// cell size = max radius reduces neighbor candidate generation to the 3x3
/// cell neighborhood, which is O(N * density) for the paper's parameters.

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/node.hpp"

namespace mldcs::net {

/// Immutable spatial hash of a fixed point set.
class SpatialGrid {
 public:
  /// Index `nodes` with square cells of side `cell_size` (> 0).
  SpatialGrid(std::span<const Node> nodes, double cell_size);

  /// Append to `out` the ids of all indexed nodes within Euclidean distance
  /// `range` of `p` (inclusive), excluding `exclude`.
  void query(geom::Vec2 p, double range, NodeId exclude,
             std::vector<NodeId>& out) const;

  /// Candidate superset: ids in the cells overlapping the disk B(p, range).
  /// Exact distance filtering is the caller's job; exposed for testing.
  void query_candidates(geom::Vec2 p, double range,
                        std::vector<NodeId>& out) const;

  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_;
  }

 private:
  [[nodiscard]] std::int64_t cell_of(geom::Vec2 p) const noexcept;

  std::span<const Node> nodes_;
  double cell_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::int64_t nx_ = 1;
  std::int64_t ny_ = 1;
  // CSR layout: ids_ grouped by cell, offsets_ has cell_count()+1 entries.
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> ids_;
};

}  // namespace mldcs::net
