#include "net/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "obs/shard_stats.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mldcs::net {

namespace {

/// Sharding telemetry (docs/OBSERVABILITY.md): how much state the tiling
/// replicates (halo residents), how much it moves per step (routed halo
/// updates, border migrations), and how well the barrier balances (per
/// shard, time spent waiting for the slowest shard).  Histograms take one
/// sample per shard per step, so their distributions read across shards.
struct ShardTelemetry {
  obs::Counter& steps = obs::registry().counter("shard.steps");
  obs::Counter& exchanged = obs::registry().counter("shard.exchanged");
  obs::Counter& migrations = obs::registry().counter("shard.migrations");
  obs::Gauge& count = obs::registry().gauge("shard.count");
  obs::Histogram& halo_nodes = obs::registry().histogram("shard.halo_nodes");
  obs::Histogram& incoming = obs::registry().histogram("shard.incoming");
  obs::Histogram& barrier_wait_ns =
      obs::registry().histogram("shard.barrier_wait_ns");
};

ShardTelemetry& shard_telemetry() {
  static ShardTelemetry t;
  return t;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Factor `shards` into rows*cols so tiles stay as square as the
/// deployment aspect allows: among divisor pairs, maximize the smaller
/// tile side.  Degenerate extents force a single row/column.
void choose_grid(std::size_t shards, double width, double height,
                 std::size_t& rows, std::size_t& cols) {
  rows = 1;
  cols = shards;
  if (height <= 0.0) return;
  if (width <= 0.0) {
    rows = shards;
    cols = 1;
    return;
  }
  double best = -1.0;
  for (std::size_t r = 1; r <= shards; ++r) {
    if (shards % r != 0) continue;
    const std::size_t c = shards / r;
    const double min_side = std::min(width / static_cast<double>(c),
                                     height / static_cast<double>(r));
    if (min_side > best) {
      best = min_side;
      rows = r;
      cols = c;
    }
  }
}

}  // namespace

ShardedEngine::ShardedEngine(std::vector<Node> nodes, sim::ThreadPool& pool,
                             Config config)
    : pool_(&pool) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = static_cast<NodeId>(i);
  }
  nodes_ = std::move(nodes);
  const std::size_t n = nodes_.size();

  geom::BBox positions;
  for (const Node& node : nodes_) {
    positions.expand(node.pos);
    max_radius_ = std::max(max_radius_, node.radius);
  }
  if (n == 0) positions = {{0.0, 0.0}, {0.0, 0.0}};
  deployment_ = config.deployment.empty() ? positions : config.deployment;
  for (const Node& node : nodes_) {
    if (!deployment_.contains(node.pos)) {
      throw std::invalid_argument(
          "ShardedEngine: initial position outside the deployment rectangle");
    }
  }

  const std::size_t shards = std::max<std::size_t>(1, config.shards);
  choose_grid(shards, deployment_.width(), deployment_.height(), rows_, cols_);
  tile_w_ = deployment_.width() / static_cast<double>(cols_);
  tile_h_ = deployment_.height() / static_cast<double>(rows_);

  owner_of_.resize(n);
  owned_count_.assign(shards, 0);
  for (const Node& node : nodes_) {
    const std::uint32_t t = tile_of(node.pos);
    owner_of_[node.id] = t;
    ++owned_count_[t];
  }

  // Region = tile dilated by the max radius: every link of an owned node
  // fits inside (a link spans at most max_radius), so owned adjacency is
  // complete.  Shard construction is embarrassingly parallel — each builds
  // its own grid and resident adjacency from a private copy of the nodes.
  shards_.resize(shards);
  pool_->parallel_for(shards, [this](std::size_t s) {
    const std::size_t r = s / cols_;
    const std::size_t c = s % cols_;
    const geom::BBox tile{
        {deployment_.min.x + static_cast<double>(c) * tile_w_,
         deployment_.min.y + static_cast<double>(r) * tile_h_},
        {deployment_.min.x + static_cast<double>(c + 1) * tile_w_,
         deployment_.min.y + static_cast<double>(r + 1) * tile_h_}};
    shards_[s] = std::make_unique<Shard>(
        std::vector<Node>(nodes_.begin(), nodes_.end()),
        tile.inflated(max_radius_));
  });

  // Eager registration: touching shard_telemetry() here materializes every
  // shard.* series, so a /snapshot.json taken before the first step already
  // carries them (same fix PR 4 applied to the thread pool's pool.*).
  ShardTelemetry& t = shard_telemetry();
  t.count.set(static_cast<std::int64_t>(shards));

  // Load slots observers read (obs/shard_stats.hpp): seeded with the
  // initial ownership split so `/shards` is meaningful before step one.
  load_ = std::make_unique<ShardLoad[]>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    load_[s].owned.store(owned_count_[s], std::memory_order_relaxed);
    load_[s].halo.store(halo_count(s), std::memory_order_relaxed);
  }
  obs::set_shard_stats_provider(
      this, [this](std::vector<obs::ShardStat>& out) {
        const std::size_t count = shards_.size();
        out.reserve(count);
        for (std::size_t s = 0; s < count; ++s) {
          const ShardLoad& l = load_[s];
          out.push_back({static_cast<std::uint32_t>(s),
                         l.owned.load(std::memory_order_relaxed),
                         l.halo.load(std::memory_order_relaxed),
                         l.incoming.load(std::memory_order_relaxed),
                         l.dirty.load(std::memory_order_relaxed),
                         l.step_ns.load(std::memory_order_relaxed),
                         l.barrier_wait_ns.load(std::memory_order_relaxed)});
        }
        return published_step_.load(std::memory_order_acquire);
      });
  // The constructing thread drives phase 1/3 of every step; make sure it
  // shows up in profiles (pool workers register in worker_loop).
  obs::profiler_register_thread();
}

ShardedEngine::~ShardedEngine() {
  obs::clear_shard_stats_provider(this);
}

std::uint32_t ShardedEngine::tile_of(geom::Vec2 p) const noexcept {
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  if (cols_ > 1) {
    cx = static_cast<std::int64_t>(
        std::floor((p.x - deployment_.min.x) / tile_w_));
    cx = std::clamp<std::int64_t>(cx, 0, static_cast<std::int64_t>(cols_) - 1);
  }
  if (rows_ > 1) {
    cy = static_cast<std::int64_t>(
        std::floor((p.y - deployment_.min.y) / tile_h_));
    cy = std::clamp<std::int64_t>(cy, 0, static_cast<std::int64_t>(rows_) - 1);
  }
  return static_cast<std::uint32_t>(
      cy * static_cast<std::int64_t>(cols_) + cx);
}

double ShardedEngine::halo_fraction() const noexcept {
  if (nodes_.empty() || shards_.size() <= 1) return 0.0;
  std::size_t resident = 0;
  for (const auto& sh : shards_) resident += sh->graph.resident_count();
  return static_cast<double>(resident - nodes_.size()) /
         static_cast<double>(nodes_.size());
}

MLDCS_HOT_PATH void ShardedEngine::step(std::span<const Node> current,
                                        std::span<const NodeId> moved_hint) {
  if (current.size() != nodes_.size()) {
    throw std::invalid_argument("ShardedEngine::step: node count changed");
  }
  const obs::TraceSpan span("engine.step");

  // Phase 1 (serial): ownership commit.  Owner tiles follow the *new*
  // positions so the parallel phase — including any cache hook — reads one
  // stable owner map; border crossings are this step's migrations.
  {
    const obs::PhaseScope phase(obs::Phase::kStepOwnership);
    migrated_.clear();
    for (const NodeId u : moved_hint) {
      assert(deployment_.contains(current[u].pos) &&
             "ShardedEngine::step: position escaped the deployment rectangle");
      const std::uint32_t t = tile_of(current[u].pos);
      const std::uint32_t prev = owner_of_[u];
      if (t != prev) {
        migrated_.push_back(u);
        --owned_count_[prev];
        ++owned_count_[t];
        owner_of_[u] = t;
      }
    }
    migrations_ += migrated_.size();
  }

  // Phase 2 (parallel, the per-step barrier): every shard routes the
  // movers whose old (nodes_) or new (current) position falls in its
  // region, applies them to its region graph, then runs the hook.  Reads
  // shared state only (nodes_, current, owner map); writes shard-local
  // state only — zero cross-shard locking.
  pool_->parallel_chunks(
      shards_.size(), [&](std::size_t /*chunk*/, std::size_t lo,
                          std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const obs::PhaseScope phase(obs::Phase::kShardStep);
          Shard& sh = *shards_[s];
          const std::uint64_t t0 = now_ns();
          {
            // Halo exchange proper: routing movers into the shard's
            // region and applying them to its graph.  The hook (cache
            // recompute) tags its own phase.
            const obs::PhaseScope halo(obs::Phase::kHaloExchange);
            sh.incoming.clear();
            for (const NodeId u : moved_hint) {
              if (sh.region.contains(nodes_[u].pos) ||
                  sh.region.contains(current[u].pos)) {
                sh.incoming.push_back(u);
              }
            }
            sh.graph.apply(current, sh.incoming);
          }
          if (hook_) hook_(s);
          sh.step_ns = now_ns() - t0;
        }
      });

  // Phase 3 (serial): commit global positions and report.
  const obs::PhaseScope phase(obs::Phase::kStepCommit);
  for (const NodeId u : moved_hint) nodes_[u].pos = current[u].pos;
  ++steps_;

  std::uint64_t slowest = 0;
  std::size_t exchanged = 0;
  for (const auto& sh : shards_) {
    slowest = std::max(slowest, sh->step_ns);
    exchanged += sh->incoming.size();
  }
  ShardTelemetry& t = shard_telemetry();
  t.steps.add();
  t.exchanged.add(exchanged);
  t.migrations.add(migrated_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t halo = halo_count(s);
    const std::uint64_t incoming = shards_[s]->incoming.size();
    const std::uint64_t wait = slowest - shards_[s]->step_ns;
    t.halo_nodes.record(halo);
    t.incoming.record(incoming);
    t.barrier_wait_ns.record(wait);
    // Observer load slots (read by /shards and heartbeat frames): relaxed
    // stores only — nothing added to the hot path beyond what the metric
    // records above already cost.
    ShardLoad& l = load_[s];
    l.owned.store(owned_count_[s], std::memory_order_relaxed);
    l.halo.store(halo, std::memory_order_relaxed);
    l.incoming.store(incoming, std::memory_order_relaxed);
    l.step_ns.store(shards_[s]->step_ns, std::memory_order_relaxed);
    l.barrier_wait_ns.store(wait, std::memory_order_relaxed);
  }
  published_step_.store(steps_, std::memory_order_release);

  last_event_ = obs::emit_event(
      obs::EventType::kShardExchange, static_cast<std::uint32_t>(exchanged),
      static_cast<std::uint32_t>(migrated_.size()), obs::kNoEvent, steps_);
}

}  // namespace mldcs::net
