#pragma once

/// \file disk_graph.hpp
/// The network topology model of Section 3.1: a disk graph with
/// bidirectional links — nodes u, v are adjacent iff
/// ||u - v|| <= min(r_u, r_v).

#include <span>
#include <vector>

#include "net/node.hpp"

namespace mldcs::net {

/// Immutable bidirectional disk graph in CSR adjacency layout.
class DiskGraph {
 public:
  /// Build the graph.  Node ids are reassigned to positions in `nodes`
  /// (callers address nodes by index).  Uses a spatial grid, O(N * degree).
  static DiskGraph build(std::vector<Node> nodes);

  /// Adopt known adjacency lists (adj[i] = sorted neighbor ids of node i)
  /// without re-deriving them from geometry — O(edges).  Used by
  /// DynamicDiskGraph::to_disk_graph to materialize an incrementally
  /// maintained topology.  Node ids are reassigned to indices; `adj` must
  /// be symmetric and sorted (unchecked).
  static DiskGraph from_adjacency(std::vector<Node> nodes,
                                  std::span<const std::vector<NodeId>> adj);

  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const noexcept { return nodes_[id]; }

  /// 1-hop neighbors of `id`, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const noexcept;

  /// Degree of `id`.
  [[nodiscard]] std::size_t degree(NodeId id) const noexcept {
    return neighbors(id).size();
  }

  /// True if u and v are adjacent (binary search; u != v assumed).
  [[nodiscard]] bool linked(NodeId u, NodeId v) const noexcept;

  /// Strict 2-hop neighbors of `id`: nodes at graph distance exactly 2
  /// (neighbors of neighbors, minus id and its 1-hop set), sorted ascending.
  [[nodiscard]] std::vector<NodeId> two_hop_neighbors(NodeId id) const;

  /// Scratch-buffer overload: fills `out` (cleared first, capacity reused)
  /// instead of allocating a fresh vector — the form relay sweeps should
  /// use (see bcast::local_view's reuse overload).
  void two_hop_neighbors(NodeId id, std::vector<NodeId>& out) const;

  /// Number of edges (each counted once).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return adjacency_.size() / 2;
  }

  /// Average degree over all nodes.
  [[nodiscard]] double average_degree() const noexcept {
    return nodes_.empty() ? 0.0
                          : static_cast<double>(adjacency_.size()) /
                                static_cast<double>(nodes_.size());
  }

  /// Ids of all nodes reachable from `from` (including it), via BFS.
  [[nodiscard]] std::vector<NodeId> reachable_from(NodeId from) const;

  /// True if the graph is connected (or empty).
  [[nodiscard]] bool connected() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> offsets_;  ///< size() + 1 entries
  std::vector<NodeId> adjacency_;       ///< neighbor lists, sorted per node
};

}  // namespace mldcs::net
