#pragma once

/// \file dynamic_disk_graph.hpp
/// Incrementally maintained disk graph for mobile networks.
///
/// `DiskGraph::build` rebuilds the spatial grid and the whole CSR adjacency
/// from scratch — the right tool for one-shot deployments, but an O(network)
/// cost per beacon period under mobility even when only a handful of nodes
/// moved.  `DynamicDiskGraph` keeps the same bidirectional-link topology
/// (Section 3.1: u ~ v iff ||u - v|| <= min(r_u, r_v)) in *mutable* form:
///
///  - a bucketed uniform grid whose cells are updated only for nodes whose
///    cell actually changed,
///  - per-node sorted adjacency lists patched by edge diffs: each moved
///    node's neighbor list is recomputed from the grid, and only the
///    added/removed edges touch the (unmoved) other endpoints.
///
/// Every `apply` returns a `StepDelta` naming the moved nodes and the
/// endpoints of flipped edges — exactly the information a cached-skyline
/// layer (bcast::SkylineCache) needs to recompute only dirty relays.  The
/// maintained adjacency is always identical to what `DiskGraph::build`
/// would produce on the current positions (differential-tested in
/// tests/net/dynamic_disk_graph_test.cpp).
///
/// **Region mode** (the shard substrate of net::ShardedEngine): constructed
/// with an interest rectangle, the graph keeps every node *slot* (ids stay
/// global) but only nodes inside the rectangle are *resident* — bucketed in
/// the grid with maintained adjacency.  `apply` then classifies each hinted
/// mover by (was resident, new position in region): stay → ordinary move,
/// enter → insertion (adjacency grown from empty via the same edge diff),
/// leave → eviction (adjacency diffed to empty, bucket slot dropped), and
/// movers that never touch the region are ignored.  Non-resident nodes have
/// empty neighbor lists and may hold stale positions; residents' adjacency
/// — restricted to resident endpoints — is exact.  When the interest
/// rectangle is a tile dilated by the deployment's maximum radius, every
/// node inside the tile has its complete 1-hop set resident (a link spans
/// at most max radius), which is the halo-correctness guarantee the
/// sharded skyline cache is built on.

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "geometry/bbox.hpp"
#include "net/disk_graph.hpp"
#include "net/node.hpp"
#include "obs/event_log.hpp"

namespace mldcs::net {

/// Mutable disk graph: positions may change step to step; radii and the
/// node set are fixed at construction (the mobility model of Section 5.1.1
/// moves nodes but never re-provisions antennas).
class DynamicDiskGraph {
 public:
  /// What changed in one `apply` call.
  struct StepDelta {
    /// Nodes whose position changed (ascending).
    std::vector<NodeId> moved;
    /// Endpoints of every added or removed edge (ascending, unique).
    std::vector<NodeId> link_changed;
    std::size_t edges_added = 0;
    std::size_t edges_removed = 0;
    /// Flight-recorder id of this step's kStep event (obs::kNoEvent when
    /// event collection is disarmed) — the causal parent for downstream
    /// kCacheUpdate events.
    std::uint64_t event_id = obs::kNoEvent;

    [[nodiscard]] bool empty() const noexcept {
      return moved.empty() && link_changed.empty();
    }
  };

  /// Build the initial topology.  Node ids are reassigned to indices, as in
  /// `DiskGraph::build`.
  explicit DynamicDiskGraph(std::vector<Node> nodes);

  /// Region mode: keep a slot for every node (ids are still indices into the
  /// full deployment) but bucket and link only the nodes inside `interest`.
  /// Grid geometry (cell size, extent) is computed from the full deployment,
  /// so shard grids agree with the global one.  See the file comment.
  DynamicDiskGraph(std::vector<Node> nodes, const geom::BBox& interest);

  [[nodiscard]] bool region_mode() const noexcept { return region_mode_; }
  [[nodiscard]] const geom::BBox& interest() const noexcept {
    return interest_;
  }

  /// True if `id` is currently inside this graph's interest region (always
  /// true in whole-plane mode).  Non-resident nodes have empty neighbor
  /// lists and possibly stale positions.
  [[nodiscard]] bool resident(NodeId id) const noexcept {
    return resident_[id] != 0;
  }
  [[nodiscard]] std::size_t resident_count() const noexcept {
    return resident_count_;
  }

  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const noexcept {
    return nodes_[id];
  }

  /// 1-hop neighbors of `id`, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const noexcept {
    return adjacency_[id];
  }

  [[nodiscard]] std::size_t degree(NodeId id) const noexcept {
    return adjacency_[id].size();
  }

  /// True if u and v are adjacent (binary search; u != v assumed).
  [[nodiscard]] bool linked(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Mobility steps applied so far (the `value` of emitted kStep events).
  [[nodiscard]] std::uint64_t step_count() const noexcept { return steps_; }

  [[nodiscard]] double average_degree() const noexcept {
    return nodes_.empty() ? 0.0
                          : 2.0 * static_cast<double>(edges_) /
                                static_cast<double>(nodes_.size());
  }

  /// Move nodes to the positions in `current` (same size and order as
  /// `nodes()`; radii must be unchanged).  Nodes whose position differs are
  /// re-bucketed if their grid cell changed, their adjacency lists are
  /// recomputed from the grid, and the resulting edge diffs are patched
  /// into the unmoved endpoints' lists.  Returns the delta of this step;
  /// the reference stays valid until the next `apply`.
  ///
  /// In region mode each mover is first classified against the interest
  /// rectangle (move / insert / evict / ignore); `delta.moved` then lists
  /// only the movers that touched the region, and evicted nodes appear in
  /// `moved` with their links torn down in `link_changed`.  Region-mode
  /// steps emit no kStep event and touch no global telemetry — many shard
  /// graphs step concurrently, and the sharded engine reports for all of
  /// them (`delta.event_id` stays obs::kNoEvent).
  MLDCS_HOT_PATH const StepDelta& apply(std::span<const Node> current);

  /// Same, with the moved set supplied by the caller (e.g.
  /// `MobileNetwork::moved_last_step()`), skipping the O(n) change scan.
  /// Ids not in `moved_hint` must be unchanged in `current` (region mode:
  /// hints whose old and new positions are both outside the region are
  /// permitted and ignored).
  MLDCS_HOT_PATH const StepDelta& apply(
      std::span<const Node> current, std::span<const NodeId> moved_hint);

  /// The most recent `apply`'s delta (an empty delta before the first
  /// apply).  Same lifetime rule as the `apply` return value.
  [[nodiscard]] const StepDelta& last_delta() const noexcept { return delta_; }

  /// Materialize the current topology as an immutable CSR `DiskGraph`
  /// (O(edges) copy of the maintained adjacency — no grid rebuild).
  /// Whole-plane mode only: a region graph's non-resident slots hold stale
  /// positions, so the snapshot would be meaningless (throws).
  [[nodiscard]] DiskGraph to_disk_graph() const;

 private:
  void init(std::vector<Node> nodes);
  MLDCS_HOT_PATH const StepDelta& apply_moved(std::span<const Node> current);
  MLDCS_HOT_PATH void classify_movers(std::span<const Node> current);
  [[nodiscard]] std::size_t cell_of(geom::Vec2 p) const noexcept;
  void query_candidates(geom::Vec2 p, double range,
                        std::vector<NodeId>& out) const;
  void rebucket(NodeId u, geom::Vec2 new_pos);

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;  ///< sorted per node
  std::size_t edges_ = 0;
  std::uint64_t steps_ = 0;

  // Region mode (see file comment).  resident_ is all-ones in whole-plane
  // mode so `resident()` needs no branch.
  bool region_mode_ = false;
  geom::BBox interest_{};
  std::vector<std::uint8_t> resident_;
  std::size_t resident_count_ = 0;

  // Bucketed grid (same geometry as SpatialGrid: cell side = max radius,
  // fixed origin/extent from the initial deployment, out-of-range positions
  // clamped into the border cells).
  double cell_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::int64_t nx_ = 1;
  std::int64_t ny_ = 1;
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<std::uint32_t> bucket_of_;  ///< node -> bucket index

  // Step scratch, reused across apply() calls.
  StepDelta delta_;
  std::vector<NodeId> scratch_candidates_;
  std::vector<NodeId> scratch_adj_;
  /// Membership mask for delta_.moved: 0 = unmoved, 1 = moved (or inserted
  /// into the region), 2 = evicted from the region (new adjacency forced
  /// empty in phase 2).
  std::vector<std::uint8_t> in_moved_;
};

}  // namespace mldcs::net
