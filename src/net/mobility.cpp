#include "net/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/angle.hpp"

namespace mldcs::net {

MobileNetwork::MobileNetwork(const DeploymentParams& deploy,
                             const WaypointParams& move, sim::Xoshiro256& rng)
    : nodes_(generate_deployment(deploy, rng)),
      states_(nodes_.size()),
      move_(move),
      side_(deploy.side) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    redraw_waypoint(i, rng);
    if (move_.steady_state_init && move_.pause > 0.0) {
      states_[i].pause_left = rng.uniform(0.0, move_.pause);
    }
  }
}

void MobileNetwork::redraw_waypoint(std::size_t i, sim::Xoshiro256& rng) {
  if (move_.max_leg > 0.0) {
    // Bounded leg: uniform direction, uniform distance in (0, max_leg],
    // clamped to the deployment square.
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double leg = rng.uniform(0.0, move_.max_leg);
    const geom::Vec2 raw = nodes_[i].pos + geom::unit_at(theta) * leg;
    states_[i].target = {std::clamp(raw.x, 0.0, side_),
                         std::clamp(raw.y, 0.0, side_)};
  } else {
    states_[i].target = {rng.uniform(0.0, side_), rng.uniform(0.0, side_)};
  }
  states_[i].speed = rng.uniform(move_.v_min, move_.v_max);
  states_[i].pause_left = 0.0;
}

void MobileNetwork::step(double dt, sim::Xoshiro256& rng) {
  moved_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    double remaining = dt;
    WaypointState& st = states_[i];
    Node& n = nodes_[i];
    const geom::Vec2 pos_before = n.pos;
    // A node may finish a pause, walk, arrive, pause, and redraw within one
    // step; loop until the step's time budget is consumed.
    while (remaining > 1e-12) {
      if (st.pause_left > 0.0) {
        const double wait = std::min(st.pause_left, remaining);
        st.pause_left -= wait;
        remaining -= wait;
        if (st.pause_left <= 0.0) redraw_waypoint(i, rng);
        continue;
      }
      const geom::Vec2 to_target = st.target - n.pos;
      const double dist = to_target.norm();
      const double reach = st.speed * remaining;
      if (reach >= dist || dist < 1e-12) {
        // Arrive this step: move to the waypoint, start the pause.  With a
        // zero pause the next waypoint is drawn immediately, otherwise the
        // while-loop would spin on an already-reached target.
        n.pos = st.target;
        travelled_ += dist;
        remaining -= st.speed > 0.0 ? dist / st.speed : remaining;
        st.pause_left = move_.pause;
        if (st.pause_left <= 0.0) redraw_waypoint(i, rng);
      } else {
        n.pos += to_target * (reach / dist);
        travelled_ += reach;
        remaining = 0.0;
      }
    }
    if (n.pos != pos_before) moved_.push_back(static_cast<NodeId>(i));
  }
}

}  // namespace mldcs::net
