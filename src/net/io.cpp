#include "net/io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace mldcs::net {

void write_deployment(std::ostream& os, const std::vector<Node>& nodes,
                      const std::string& comment) {
  if (!comment.empty()) os << "# " << comment << '\n';
  os << "# format: node <x> <y> <radius>;  ids are line order\n";
  os << std::setprecision(17);
  for (const Node& n : nodes) {
    os << "node " << n.pos.x << ' ' << n.pos.y << ' ' << n.radius << '\n';
  }
}

std::vector<Node> read_deployment(std::istream& is) {
  std::vector<Node> nodes;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream fields(line);
    std::string tag;
    double x = 0.0, y = 0.0, r = 0.0;
    if (!(fields >> tag >> x >> y >> r) || tag != "node") {
      throw DeploymentParseError("line " + std::to_string(lineno) +
                                 ": expected 'node <x> <y> <radius>', got '" +
                                 line + "'");
    }
    std::string extra;
    if (fields >> extra) {
      throw DeploymentParseError("line " + std::to_string(lineno) +
                                 ": trailing tokens after radius: '" + extra +
                                 "'");
    }
    if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(r)) {
      throw DeploymentParseError("line " + std::to_string(lineno) +
                                 ": non-finite coordinate or radius");
    }
    if (r < 0.0) {
      throw DeploymentParseError("line " + std::to_string(lineno) +
                                 ": negative radius " + std::to_string(r));
    }
    nodes.push_back(Node{static_cast<NodeId>(nodes.size()), {x, y}, r});
  }
  return nodes;
}

void save_deployment(const std::string& path, const std::vector<Node>& nodes,
                     const std::string& comment) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_deployment(os, nodes, comment);
}

std::vector<Node> load_deployment(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_deployment(is);
}

}  // namespace mldcs::net
