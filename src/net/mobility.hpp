#pragma once

/// \file mobility.hpp
/// Random-waypoint mobility — the standard ad hoc network mobility model.
///
/// Each node picks a uniform waypoint in the deployment square and a
/// uniform speed in [v_min, v_max], walks straight toward the waypoint,
/// pauses there for `pause` time units, then repeats.  The paper's
/// Section 5.1.1 argues the skyline scheme's 1-hop-only information ages
/// better under mobility; this model (plus the HELLO cost accounting)
/// makes that argument quantitative in `mobility_maintenance` and the
/// `abl_network_storm` bench.

#include <span>
#include <vector>

#include "net/disk_graph.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::net {

/// Random-waypoint parameters.
struct WaypointParams {
  double v_min = 0.05;  ///< minimum speed (units per time step)
  double v_max = 0.5;   ///< maximum speed
  double pause = 2.0;   ///< pause duration at each waypoint (time steps)

  /// 0 = classic random waypoint (next target uniform over the square).
  /// > 0 = bounded-leg variant: the next target is drawn within this
  /// distance of the current position (clamped to the square) — the
  /// quasi-static regime of sensor deployments that mostly sit still and
  /// occasionally relocate, where incremental topology maintenance pays
  /// off most (see bench/perf_suite.cpp's mobility_steady_state section).
  double max_leg = 0.0;

  /// Start each node with a residual pause ~ U(0, pause) instead of
  /// mid-leg, desynchronizing waypoint arrivals so the network begins near
  /// the mobility process's steady state (classic RWP warm-up fix).  Off
  /// by default to keep existing seeded runs bit-identical.
  bool steady_state_init = false;
};

/// Mobility state of one node.
struct WaypointState {
  geom::Vec2 target;     ///< current waypoint
  double speed = 0.0;    ///< current leg's speed
  double pause_left = 0; ///< remaining pause time (0 while moving)
};

/// A deployment whose nodes move by random waypoint inside the square.
/// Deterministic given (DeploymentParams, WaypointParams, seed stream).
class MobileNetwork {
 public:
  /// Deploy as in Chapter 5 (node 0 = source at the center) and initialize
  /// every node's first waypoint/speed from `rng`.
  MobileNetwork(const DeploymentParams& deploy, const WaypointParams& move,
                sim::Xoshiro256& rng);

  /// Advance all nodes by `dt` time units (straight-line motion toward the
  /// waypoint, waypoint re-draw on arrival after the pause).
  void step(double dt, sim::Xoshiro256& rng);

  /// Ids of nodes whose position changed in the last step() call, ascending
  /// (paused nodes don't appear) — the moved-set hint for
  /// DynamicDiskGraph::apply.  Empty before the first step.
  [[nodiscard]] std::span<const NodeId> moved_last_step() const noexcept {
    return moved_;
  }

  /// Node positions/radii right now (ids = indices).
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }

  /// Build the disk graph of the current snapshot.
  [[nodiscard]] DiskGraph snapshot() const { return DiskGraph::build(nodes_); }

  /// Total distance travelled by all nodes so far (mobility intensity).
  [[nodiscard]] double total_distance() const noexcept { return travelled_; }

  [[nodiscard]] const WaypointParams& params() const noexcept { return move_; }
  [[nodiscard]] double side() const noexcept { return side_; }

 private:
  void redraw_waypoint(std::size_t i, sim::Xoshiro256& rng);

  std::vector<Node> nodes_;
  std::vector<WaypointState> states_;
  std::vector<NodeId> moved_;  ///< nodes that moved in the last step
  WaypointParams move_;
  double side_;
  double travelled_ = 0.0;
};

}  // namespace mldcs::net
