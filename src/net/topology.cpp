#include "net/topology.hpp"

#include <cmath>

#include "geometry/angle.hpp"

namespace mldcs::net {

double expected_min_radius_sq(const DeploymentParams& p) noexcept {
  switch (p.model) {
    case RadiusModel::kHomogeneous:
      return p.r_fixed * p.r_fixed;
    case RadiusModel::kUniform: {
      // For R1, R2 ~ U[a,b] iid, M = min has density f(m) = 2(b-m)/(b-a)^2,
      // so E[M^2] = Int_a^b m^2 * 2(b-m)/(b-a)^2 dm
      //           = (2 b (b^3 - a^3) / 3 - (b^4 - a^4) / 2) / (b-a)^2.
      const double a = p.r_min;
      const double b = p.r_max;
      const double w = b - a;
      if (w <= 0.0) return a * a;  // degenerate uniform == homogeneous
      return (2.0 * b * (b * b * b - a * a * a) / 3.0 -
              (b * b * b * b - a * a * a * a) / 2.0) /
             (w * w);
    }
  }
  return p.r_fixed * p.r_fixed;
}

std::size_t node_count_for(const DeploymentParams& p) noexcept {
  const double area = p.side * p.side;
  const double per_node = geom::kPi * expected_min_radius_sq(p);
  const double count = area / per_node * p.target_avg_degree;
  return static_cast<std::size_t>(std::llround(count));
}

double draw_radius(const DeploymentParams& p, sim::Xoshiro256& rng) noexcept {
  switch (p.model) {
    case RadiusModel::kHomogeneous:
      return p.r_fixed;
    case RadiusModel::kUniform:
      return rng.uniform(p.r_min, p.r_max);
  }
  return p.r_fixed;
}

std::vector<Node> generate_deployment(const DeploymentParams& p,
                                      sim::Xoshiro256& rng) {
  const std::size_t extra = node_count_for(p);
  std::vector<Node> nodes;
  nodes.reserve(extra + 1);
  // Node 0: the source, at the center of the deployment region.
  nodes.push_back(Node{0, {p.side * 0.5, p.side * 0.5}, draw_radius(p, rng)});
  for (std::size_t i = 0; i < extra; ++i) {
    const geom::Vec2 pos{rng.uniform(0.0, p.side), rng.uniform(0.0, p.side)};
    nodes.push_back(
        Node{static_cast<NodeId>(i + 1), pos, draw_radius(p, rng)});
  }
  return nodes;
}

DiskGraph generate_graph(const DeploymentParams& p, sim::Xoshiro256& rng) {
  return DiskGraph::build(generate_deployment(p, rng));
}

}  // namespace mldcs::net
