#include "net/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mldcs::net {

SpatialGrid::SpatialGrid(std::span<const Node> nodes, double cell_size)
    : nodes_(nodes), cell_(cell_size > 0.0 ? cell_size : 1.0) {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (const Node& n : nodes_) {
    min_x = std::min(min_x, n.pos.x);
    min_y = std::min(min_y, n.pos.y);
    max_x = std::max(max_x, n.pos.x);
    max_y = std::max(max_y, n.pos.y);
  }
  if (nodes_.empty()) {
    min_x = min_y = 0.0;
    max_x = max_y = 0.0;
  }
  min_x_ = min_x;
  min_y_ = min_y;
  nx_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor((max_x - min_x) / cell_)) + 1);
  ny_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor((max_y - min_y) / cell_)) + 1);

  // Counting sort of node ids into cells (CSR).
  const std::size_t cells = cell_count();
  offsets_.assign(cells + 1, 0);
  for (const Node& n : nodes_) {
    ++offsets_[static_cast<std::size_t>(cell_of(n.pos)) + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) offsets_[c + 1] += offsets_[c];
  ids_.resize(nodes_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Node& n : nodes_) {
    ids_[cursor[static_cast<std::size_t>(cell_of(n.pos))]++] = n.id;
  }
}

std::int64_t SpatialGrid::cell_of(geom::Vec2 p) const noexcept {
  std::int64_t cx = static_cast<std::int64_t>(std::floor((p.x - min_x_) / cell_));
  std::int64_t cy = static_cast<std::int64_t>(std::floor((p.y - min_y_) / cell_));
  cx = std::clamp<std::int64_t>(cx, 0, nx_ - 1);
  cy = std::clamp<std::int64_t>(cy, 0, ny_ - 1);
  return cy * nx_ + cx;
}

void SpatialGrid::query_candidates(geom::Vec2 p, double range,
                                   std::vector<NodeId>& out) const {
  const std::int64_t cx0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.x - range - min_x_) / cell_)), 0,
      nx_ - 1);
  const std::int64_t cx1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.x + range - min_x_) / cell_)), 0,
      nx_ - 1);
  const std::int64_t cy0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.y - range - min_y_) / cell_)), 0,
      ny_ - 1);
  const std::int64_t cy1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.y + range - min_y_) / cell_)), 0,
      ny_ - 1);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = static_cast<std::size_t>(cy * nx_ + cx);
      for (std::uint32_t k = offsets_[c]; k < offsets_[c + 1]; ++k) {
        out.push_back(ids_[k]);
      }
    }
  }
}

void SpatialGrid::query(geom::Vec2 p, double range, NodeId exclude,
                        std::vector<NodeId>& out) const {
  std::vector<NodeId> candidates;
  query_candidates(p, range, candidates);
  const double r2 = range * range;
  for (NodeId id : candidates) {
    if (id == exclude) continue;
    if (geom::distance2(nodes_[id].pos, p) <= r2) out.push_back(id);
  }
}

}  // namespace mldcs::net
