#pragma once

/// \file hello.hpp
/// HELLO-beacon neighbor discovery (Section 5.1 / 5.1.1).
///
/// The paper's cost argument: the skyline algorithm needs only 1-hop
/// information (each node's position + radius, learned from plain HELLO
/// beacons), while the selecting-forwarding-set / greedy / optimal schemes
/// need 2-hop information, which requires each HELLO to carry the sender's
/// full 1-hop neighbor list — larger beacons, and stale faster under
/// mobility.  This module actually runs the beacon exchange (so integration
/// tests can check the discovered tables against the ground-truth graph) and
/// accounts messages and bytes for the `tbl_hello_overhead` bench.

#include <cstdint>
#include <vector>

#include "net/disk_graph.hpp"
#include "net/node.hpp"

namespace mldcs::net {

/// On-air encoding sizes (bytes) for cost accounting.  Chosen to match a
/// compact binary beacon: 4-byte id, two 8-byte coordinates, 8-byte radius.
struct BeaconEncoding {
  std::uint64_t id_bytes = 4;
  std::uint64_t position_bytes = 16;
  std::uint64_t radius_bytes = 8;

  /// Size of a 1-hop HELLO: sender id + position + radius.
  [[nodiscard]] std::uint64_t hello1_size() const noexcept {
    return id_bytes + position_bytes + radius_bytes;
  }

  /// Size of a 2-hop HELLO: a 1-hop HELLO plus one (id, position, radius)
  /// entry per 1-hop neighbor of the sender.
  [[nodiscard]] std::uint64_t hello2_size(std::size_t neighbors) const noexcept {
    return hello1_size() +
           static_cast<std::uint64_t>(neighbors) *
               (id_bytes + position_bytes + radius_bytes);
  }
};

/// What one node knows about another from beacons.
struct NeighborInfo {
  NodeId id = kNoNode;
  geom::Vec2 pos;
  double radius = 0.0;
};

/// Per-node neighbor tables built by the exchange.
struct NeighborTable {
  std::vector<NeighborInfo> one_hop;                ///< sorted by id
  std::vector<std::vector<NeighborInfo>> via;       ///< via[k]: 1-hop list of one_hop[k]
};

/// Aggregate beacon cost over the whole network for one beacon period.
struct HelloCost {
  std::uint64_t messages = 0;  ///< beacons transmitted
  std::uint64_t bytes = 0;     ///< total payload bytes transmitted
};

/// Round 1: every node broadcasts a 1-hop HELLO; every node builds its
/// 1-hop table from beacons it physically receives over a *bidirectional*
/// link (consistent with the graph model).  Returns per-node tables with
/// `via` left empty.
[[nodiscard]] std::vector<NeighborTable> run_hello_round1(const DiskGraph& g);

/// Round 2: every node re-broadcasts a HELLO carrying its 1-hop list;
/// receivers fill in `via`, giving each node its 2-hop view.  Requires the
/// round-1 tables.
void run_hello_round2(const DiskGraph& g, std::vector<NeighborTable>& tables);

/// Cost of one 1-hop beacon period (every node sends one hello1).
[[nodiscard]] HelloCost hello1_cost(const DiskGraph& g,
                                    const BeaconEncoding& enc = {});

/// Cost of one 2-hop beacon period (every node sends one hello2 carrying
/// its current 1-hop list).
[[nodiscard]] HelloCost hello2_cost(const DiskGraph& g,
                                    const BeaconEncoding& enc = {});

/// Extract the 2-hop neighbor ids implied by a node's table (nodes seen in
/// `via` lists that are neither the node itself nor 1-hop neighbors),
/// sorted — for integration tests against DiskGraph::two_hop_neighbors.
[[nodiscard]] std::vector<NodeId> two_hop_from_table(const NeighborTable& t,
                                                     NodeId self);

}  // namespace mldcs::net
