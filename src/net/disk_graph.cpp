#include "net/disk_graph.hpp"

#include <algorithm>

#include "net/spatial_grid.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::net {

namespace {

/// Deployments below this size build serially: the paper's per-trial graphs
/// (hundreds of nodes) are built inside already-parallel trial loops, where
/// spinning up a transient pool per build would cost more than it saves.
constexpr std::size_t kParallelBuildThreshold = 4096;

}  // namespace

DiskGraph DiskGraph::build(std::vector<Node> nodes) {
  DiskGraph g;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = static_cast<NodeId>(i);
  }
  g.nodes_ = std::move(nodes);
  const std::size_t n = g.nodes_.size();

  double max_r = 0.0;
  for (const Node& node : g.nodes_) max_r = std::max(max_r, node.radius);
  const SpatialGrid grid(g.nodes_, std::max(max_r, 1e-6));

  // Count-then-fill CSR build, no per-node vectors.  A node's neighbors are
  // within min(r_u, r_v) <= r_u of it, so querying the grid at range r_u
  // and filtering by the bidirectional rule finds all of them; the grid
  // query is cheap enough that running it twice (count pass, fill pass)
  // beats materializing a vector<vector> of all adjacency lists.
  g.offsets_.assign(n + 1, 0);

  // Candidates come straight from query_candidates into per-thread scratch
  // (query() would allocate an intermediate vector per call); linked_to is
  // stricter than the grid's range filter, so no exactness is lost.
  const auto count_range = [&g, &grid](std::vector<NodeId>& scratch,
                                       std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Node& u = g.nodes_[i];
      scratch.clear();
      grid.query_candidates(u.pos, u.radius, scratch);
      std::uint32_t deg = 0;
      for (NodeId v : scratch) {
        if (v != u.id && u.linked_to(g.nodes_[v])) ++deg;
      }
      g.offsets_[i + 1] = deg;  // shifted; prefix-summed below
    }
  };
  const auto fill_range = [&g, &grid](std::vector<NodeId>& scratch,
                                      std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Node& u = g.nodes_[i];
      scratch.clear();
      grid.query_candidates(u.pos, u.radius, scratch);
      NodeId* dst = g.adjacency_.data() + g.offsets_[i];
      NodeId* const first = dst;
      for (NodeId v : scratch) {
        if (v != u.id && u.linked_to(g.nodes_[v])) *dst++ = v;
      }
      std::sort(first, dst);
    }
  };

  const bool parallel = n >= kParallelBuildThreshold;
  sim::ThreadPool pool(parallel ? 0 : 1);
  const auto run_pass = [&pool, n](const auto& pass) {
    pool.parallel_chunks(
        n, [&pass](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
          // Per-chunk (= per-worker) candidate scratch, reused across the
          // whole contiguous node range.
          std::vector<NodeId> scratch;
          pass(scratch, lo, hi);
        });
  };

  run_pass(count_range);
  for (std::size_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adjacency_.resize(g.offsets_[n]);
  run_pass(fill_range);
  return g;
}

DiskGraph DiskGraph::from_adjacency(std::vector<Node> nodes,
                                    std::span<const std::vector<NodeId>> adj) {
  DiskGraph g;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = static_cast<NodeId>(i);
  }
  g.nodes_ = std::move(nodes);
  const std::size_t n = g.nodes_.size();
  g.offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    g.offsets_[i + 1] =
        g.offsets_[i] + static_cast<std::uint32_t>(adj[i].size());
  }
  g.adjacency_.resize(g.offsets_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(adj[i].begin(), adj[i].end(),
              g.adjacency_.begin() + g.offsets_[i]);
  }
  return g;
}

std::span<const NodeId> DiskGraph::neighbors(NodeId id) const noexcept {
  return {adjacency_.data() + offsets_[id],
          adjacency_.data() + offsets_[id + 1]};
}

bool DiskGraph::linked(NodeId u, NodeId v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<NodeId> DiskGraph::two_hop_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  two_hop_neighbors(id, out);
  return out;
}

void DiskGraph::two_hop_neighbors(NodeId id, std::vector<NodeId>& out) const {
  const auto one_hop = neighbors(id);
  out.clear();
  for (NodeId v : one_hop) {
    for (NodeId w : neighbors(v)) {
      if (w == id) continue;
      if (std::binary_search(one_hop.begin(), one_hop.end(), w)) continue;
      out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<NodeId> DiskGraph::reachable_from(NodeId from) const {
  std::vector<NodeId> out;
  if (from >= nodes_.size()) return out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    out.push_back(u);
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool DiskGraph::connected() const {
  if (nodes_.empty()) return true;
  return reachable_from(0).size() == nodes_.size();
}

}  // namespace mldcs::net
