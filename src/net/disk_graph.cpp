#include "net/disk_graph.hpp"

#include <algorithm>

#include "net/spatial_grid.hpp"

namespace mldcs::net {

DiskGraph DiskGraph::build(std::vector<Node> nodes) {
  DiskGraph g;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = static_cast<NodeId>(i);
  }
  g.nodes_ = std::move(nodes);

  double max_r = 0.0;
  for (const Node& n : g.nodes_) max_r = std::max(max_r, n.radius);
  const SpatialGrid grid(g.nodes_, std::max(max_r, 1e-6));

  // A node's neighbors are within min(r_u, r_v) <= r_u of it, so querying
  // the grid at range r_u and filtering by the bidirectional rule finds all
  // of them.
  g.offsets_.assign(g.nodes_.size() + 1, 0);
  std::vector<std::vector<NodeId>> adj(g.nodes_.size());
  std::vector<NodeId> scratch;
  for (const Node& u : g.nodes_) {
    scratch.clear();
    grid.query(u.pos, u.radius, u.id, scratch);
    for (NodeId v : scratch) {
      if (u.linked_to(g.nodes_[v])) adj[u.id].push_back(v);
    }
    std::sort(adj[u.id].begin(), adj[u.id].end());
  }

  std::size_t total = 0;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    g.offsets_[i] = static_cast<std::uint32_t>(total);
    total += adj[i].size();
  }
  g.offsets_[adj.size()] = static_cast<std::uint32_t>(total);
  g.adjacency_.reserve(total);
  for (const auto& list : adj) {
    g.adjacency_.insert(g.adjacency_.end(), list.begin(), list.end());
  }
  return g;
}

std::span<const NodeId> DiskGraph::neighbors(NodeId id) const noexcept {
  return {adjacency_.data() + offsets_[id],
          adjacency_.data() + offsets_[id + 1]};
}

bool DiskGraph::linked(NodeId u, NodeId v) const noexcept {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<NodeId> DiskGraph::two_hop_neighbors(NodeId id) const {
  const auto one_hop = neighbors(id);
  std::vector<NodeId> out;
  for (NodeId v : one_hop) {
    for (NodeId w : neighbors(v)) {
      if (w == id) continue;
      if (std::binary_search(one_hop.begin(), one_hop.end(), w)) continue;
      out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> DiskGraph::reachable_from(NodeId from) const {
  std::vector<NodeId> out;
  if (from >= nodes_.size()) return out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    out.push_back(u);
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool DiskGraph::connected() const {
  if (nodes_.empty()) return true;
  return reachable_from(0).size() == nodes_.size();
}

}  // namespace mldcs::net
