#include "net/hello.hpp"

#include <algorithm>

namespace mldcs::net {

std::vector<NeighborTable> run_hello_round1(const DiskGraph& g) {
  std::vector<NeighborTable> tables(g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    // u transmits; every bidirectional neighbor v receives and records u.
    const Node& nu = g.node(u);
    for (NodeId v : g.neighbors(u)) {
      tables[v].one_hop.push_back(NeighborInfo{u, nu.pos, nu.radius});
    }
  }
  for (auto& t : tables) {
    std::sort(t.one_hop.begin(), t.one_hop.end(),
              [](const NeighborInfo& a, const NeighborInfo& b) {
                return a.id < b.id;
              });
  }
  return tables;
}

void run_hello_round2(const DiskGraph& g, std::vector<NeighborTable>& tables) {
  for (NodeId v = 0; v < g.size(); ++v) {
    tables[v].via.assign(tables[v].one_hop.size(), {});
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    // u transmits its 1-hop list; each neighbor v files it under u's slot.
    const auto& list = tables[u].one_hop;
    for (NodeId v : g.neighbors(u)) {
      auto& table = tables[v];
      const auto it = std::lower_bound(
          table.one_hop.begin(), table.one_hop.end(), u,
          [](const NeighborInfo& a, NodeId id) { return a.id < id; });
      if (it != table.one_hop.end() && it->id == u) {
        table.via[static_cast<std::size_t>(
            std::distance(table.one_hop.begin(), it))] = list;
      }
    }
  }
}

HelloCost hello1_cost(const DiskGraph& g, const BeaconEncoding& enc) {
  HelloCost c;
  c.messages = g.size();
  c.bytes = g.size() * enc.hello1_size();
  return c;
}

HelloCost hello2_cost(const DiskGraph& g, const BeaconEncoding& enc) {
  HelloCost c;
  c.messages = g.size();
  for (NodeId u = 0; u < g.size(); ++u) {
    c.bytes += enc.hello2_size(g.degree(u));
  }
  return c;
}

std::vector<NodeId> two_hop_from_table(const NeighborTable& t, NodeId self) {
  std::vector<NodeId> one_hop_ids;
  one_hop_ids.reserve(t.one_hop.size());
  for (const NeighborInfo& info : t.one_hop) one_hop_ids.push_back(info.id);

  std::vector<NodeId> out;
  for (const auto& list : t.via) {
    for (const NeighborInfo& info : list) {
      if (info.id == self) continue;
      if (std::binary_search(one_hop_ids.begin(), one_hop_ids.end(), info.id))
        continue;
      out.push_back(info.id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mldcs::net
