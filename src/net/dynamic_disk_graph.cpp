#include "net/dynamic_disk_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mldcs::net {

namespace {

/// Topology-maintenance telemetry (docs/OBSERVABILITY.md): how much of the
/// network each step actually perturbs — movers, grid re-buckets, link
/// flips — the denominators for reading SkylineCache dirty fractions.
struct GraphTelemetry {
  obs::Counter& steps = obs::registry().counter("graph.steps");
  obs::Counter& movers = obs::registry().counter("graph.movers");
  obs::Counter& rebucketed = obs::registry().counter("graph.rebucketed");
  obs::Counter& edges_added = obs::registry().counter("graph.edges_added");
  obs::Counter& edges_removed =
      obs::registry().counter("graph.edges_removed");
  obs::Histogram& movers_per_step =
      obs::registry().histogram("graph.movers_per_step");
  obs::Histogram& flips_per_step =
      obs::registry().histogram("graph.link_flips_per_step");
};

GraphTelemetry& graph_telemetry() {
  static GraphTelemetry t;
  return t;
}

}  // namespace

DynamicDiskGraph::DynamicDiskGraph(std::vector<Node> nodes) {
  init(std::move(nodes));
}

DynamicDiskGraph::DynamicDiskGraph(std::vector<Node> nodes,
                                   const geom::BBox& interest)
    : region_mode_(true), interest_(interest) {
  init(std::move(nodes));
}

void DynamicDiskGraph::init(std::vector<Node> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = static_cast<NodeId>(i);
  }
  nodes_ = std::move(nodes);
  const std::size_t n = nodes_.size();

  double max_r = 0.0;
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (const Node& node : nodes_) {
    max_r = std::max(max_r, node.radius);
    min_x = std::min(min_x, node.pos.x);
    min_y = std::min(min_y, node.pos.y);
    max_x = std::max(max_x, node.pos.x);
    max_y = std::max(max_y, node.pos.y);
  }
  if (nodes_.empty()) {
    min_x = min_y = 0.0;
    max_x = max_y = 0.0;
  }
  cell_ = std::max(max_r, 1e-6);
  min_x_ = min_x;
  min_y_ = min_y;
  nx_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor((max_x - min_x) / cell_)) + 1);
  ny_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor((max_y - min_y) / cell_)) + 1);

  resident_.assign(n, 1);
  resident_count_ = n;
  if (region_mode_) {
    resident_count_ = 0;
    for (const Node& node : nodes_) {
      resident_[node.id] = interest_.contains(node.pos) ? 1 : 0;
      resident_count_ += resident_[node.id];
    }
  }

  buckets_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_),
                  {});
  bucket_of_.resize(n);
  for (const Node& node : nodes_) {
    if (resident_[node.id] == 0) continue;
    const std::size_t c = cell_of(node.pos);
    bucket_of_[node.id] = static_cast<std::uint32_t>(c);
    buckets_[c].push_back(node.id);
  }

  adjacency_.resize(n);
  in_moved_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (resident_[u] == 0) continue;
    const Node& nu = nodes_[u];
    scratch_candidates_.clear();
    query_candidates(nu.pos, nu.radius, scratch_candidates_);
    std::vector<NodeId>& adj = adjacency_[u];
    for (const NodeId v : scratch_candidates_) {
      if (v != u && nu.linked_to(nodes_[v])) adj.push_back(v);
    }
    std::sort(adj.begin(), adj.end());
    edges_ += adj.size();
  }
  edges_ /= 2;
}

std::size_t DynamicDiskGraph::cell_of(geom::Vec2 p) const noexcept {
  std::int64_t cx =
      static_cast<std::int64_t>(std::floor((p.x - min_x_) / cell_));
  std::int64_t cy =
      static_cast<std::int64_t>(std::floor((p.y - min_y_) / cell_));
  cx = std::clamp<std::int64_t>(cx, 0, nx_ - 1);
  cy = std::clamp<std::int64_t>(cy, 0, ny_ - 1);
  return static_cast<std::size_t>(cy * nx_ + cx);
}

void DynamicDiskGraph::query_candidates(geom::Vec2 p, double range,
                                        std::vector<NodeId>& out) const {
  const std::int64_t cx0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.x - range - min_x_) / cell_)), 0,
      nx_ - 1);
  const std::int64_t cx1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.x + range - min_x_) / cell_)), 0,
      nx_ - 1);
  const std::int64_t cy0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.y - range - min_y_) / cell_)), 0,
      ny_ - 1);
  const std::int64_t cy1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor((p.y + range - min_y_) / cell_)), 0,
      ny_ - 1);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const std::vector<NodeId>& bucket =
          buckets_[static_cast<std::size_t>(cy * nx_ + cx)];
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
  }
}

bool DynamicDiskGraph::linked(NodeId u, NodeId v) const noexcept {
  const std::vector<NodeId>& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

void DynamicDiskGraph::rebucket(NodeId u, geom::Vec2 new_pos) {
  const std::size_t new_cell = cell_of(new_pos);
  const std::size_t old_cell = bucket_of_[u];
  if (new_cell == old_cell) return;
  // Shard graphs step concurrently and report through shard.* counters
  // instead (and must not race to first-initialize the registry entries).
  if (!region_mode_) graph_telemetry().rebucketed.add();
  std::vector<NodeId>& old_bucket = buckets_[old_cell];
  // Bucket order is irrelevant to correctness (adjacency lists are sorted
  // after the exact-distance filter), so swap-erase keeps removal O(1).
  const auto it = std::find(old_bucket.begin(), old_bucket.end(), u);
  *it = old_bucket.back();
  old_bucket.pop_back();
  buckets_[new_cell].push_back(u);
  bucket_of_[u] = static_cast<std::uint32_t>(new_cell);
}

MLDCS_HOT_PATH const DynamicDiskGraph::StepDelta& DynamicDiskGraph::apply(
    std::span<const Node> current) {
  if (current.size() != nodes_.size()) {
    throw std::invalid_argument("DynamicDiskGraph::apply: node count changed");
  }
  delta_.moved.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (current[i].pos != nodes_[i].pos) {
      delta_.moved.push_back(static_cast<NodeId>(i));
    }
  }
  return apply_moved(current);
}

MLDCS_HOT_PATH const DynamicDiskGraph::StepDelta& DynamicDiskGraph::apply(
    std::span<const Node> current, std::span<const NodeId> moved_hint) {
  if (current.size() != nodes_.size()) {
    throw std::invalid_argument("DynamicDiskGraph::apply: node count changed");
  }
  delta_.moved.assign(moved_hint.begin(), moved_hint.end());
  std::sort(delta_.moved.begin(), delta_.moved.end());
  delta_.moved.erase(std::unique(delta_.moved.begin(), delta_.moved.end()),
                     delta_.moved.end());
  return apply_moved(current);
}

MLDCS_HOT_PATH void DynamicDiskGraph::classify_movers(
    std::span<const Node> current) {
  // Rewrite delta_.moved in place, keeping only movers that touch the
  // interest rectangle and recording each survivor's kind in in_moved_
  // (1 = move or insert, 2 = evict).  Order — hence sortedness — is kept.
  std::size_t w = 0;
  for (const NodeId u : delta_.moved) {
    const bool was = resident_[u] != 0;
    const bool now = interest_.contains(current[u].pos);
    if (!was && !now) continue;  // passed by outside: not our node
    in_moved_[u] = (was && !now) ? 2 : 1;
    delta_.moved[w++] = u;
  }
  delta_.moved.resize(w);
}

MLDCS_HOT_PATH const DynamicDiskGraph::StepDelta&
DynamicDiskGraph::apply_moved(
    std::span<const Node> current) {
  const obs::TraceSpan span("graph.apply");
  delta_.link_changed.clear();
  delta_.edges_added = 0;
  delta_.edges_removed = 0;

  if (region_mode_) classify_movers(current);

  // Phase 1: commit every moved position and re-bucket, so phase 2's grid
  // queries and symmetric linked_to tests all see the new geometry.  In
  // region mode this is also where residency flips: an entering node gets a
  // fresh bucket slot, a leaving node loses its slot (so no later grid
  // query can see it) and keeps in_moved_ == 2 for phase 2.
  for (const NodeId u : delta_.moved) {
    assert(current[u].radius == nodes_[u].radius &&
           "apply: radii are fixed under mobility");
    if (in_moved_[u] == 2) {
      std::vector<NodeId>& bucket = buckets_[bucket_of_[u]];
      const auto it = std::find(bucket.begin(), bucket.end(), u);
      *it = bucket.back();
      bucket.pop_back();
      resident_[u] = 0;
      --resident_count_;
    } else {
      in_moved_[u] = 1;
      if (resident_[u] == 0) {
        const std::size_t c = cell_of(current[u].pos);
        bucket_of_[u] = static_cast<std::uint32_t>(c);
        buckets_[c].push_back(u);
        resident_[u] = 1;
        ++resident_count_;
      } else {
        rebucket(u, current[u].pos);
      }
    }
    nodes_[u].pos = current[u].pos;
  }

  // Phase 2: recompute each moved node's neighbor list exactly, and patch
  // the diffs into unmoved endpoints.  A flipped edge between two moved
  // nodes shows up in both recomputations (linked_to is symmetric and both
  // sides see post-move positions), so it is counted only from the lower
  // endpoint.  An evicted node's new list is empty by fiat — its bucket
  // slot is already gone, so every old link shows up as removed.
  for (const NodeId u : delta_.moved) {
    scratch_adj_.clear();
    if (in_moved_[u] != 2) {
      const Node& nu = nodes_[u];
      scratch_candidates_.clear();
      query_candidates(nu.pos, nu.radius, scratch_candidates_);
      for (const NodeId v : scratch_candidates_) {
        if (v != u && nu.linked_to(nodes_[v])) scratch_adj_.push_back(v);
      }
      std::sort(scratch_adj_.begin(), scratch_adj_.end());
    }

    // Sorted two-pointer diff of old (adjacency_[u]) vs new (scratch_adj_).
    const std::vector<NodeId>& old_adj = adjacency_[u];
    std::size_t i = 0;
    std::size_t k = 0;
    const auto record = [this, u](NodeId v, bool added) {
      if (in_moved_[v] != 0 && v < u) return;  // counted from min(u, v)
      added ? ++delta_.edges_added : ++delta_.edges_removed;
      delta_.link_changed.push_back(u);
      delta_.link_changed.push_back(v);
      if (in_moved_[v] == 0) {
        // Patch the unmoved endpoint's sorted list in place.
        std::vector<NodeId>& adj = adjacency_[v];
        const auto pos = std::lower_bound(adj.begin(), adj.end(), u);
        added ? static_cast<void>(adj.insert(pos, u))
              : static_cast<void>(adj.erase(pos));
      }
    };
    while (i < old_adj.size() || k < scratch_adj_.size()) {
      if (k == scratch_adj_.size() ||
          (i < old_adj.size() && old_adj[i] < scratch_adj_[k])) {
        record(old_adj[i], /*added=*/false);
        ++i;
      } else if (i == old_adj.size() || scratch_adj_[k] < old_adj[i]) {
        record(scratch_adj_[k], /*added=*/true);
        ++k;
      } else {
        ++i;
        ++k;
      }
    }
    adjacency_[u].assign(scratch_adj_.begin(), scratch_adj_.end());
  }
  edges_ += delta_.edges_added;
  edges_ -= delta_.edges_removed;

  for (const NodeId u : delta_.moved) in_moved_[u] = 0;
  std::sort(delta_.link_changed.begin(), delta_.link_changed.end());
  delta_.link_changed.erase(
      std::unique(delta_.link_changed.begin(), delta_.link_changed.end()),
      delta_.link_changed.end());

  ++steps_;
  if (region_mode_) {
    // Shard steps run concurrently: no global counters, and the engine
    // emits one kShardExchange event for the whole barrier instead of a
    // kStep per shard.
    delta_.event_id = obs::kNoEvent;
    return delta_;
  }

  GraphTelemetry& t = graph_telemetry();
  t.steps.add();
  t.movers.add(delta_.moved.size());
  t.edges_added.add(delta_.edges_added);
  t.edges_removed.add(delta_.edges_removed);
  t.movers_per_step.record(delta_.moved.size());
  t.flips_per_step.record(delta_.edges_added + delta_.edges_removed);

  delta_.event_id = obs::emit_event(
      obs::EventType::kStep, static_cast<std::uint32_t>(delta_.moved.size()),
      static_cast<std::uint32_t>(delta_.link_changed.size()), obs::kNoEvent,
      steps_);
  return delta_;
}

DiskGraph DynamicDiskGraph::to_disk_graph() const {
  if (region_mode_) {
    throw std::logic_error(
        "DynamicDiskGraph::to_disk_graph: region graphs hold stale "
        "positions for non-resident slots; snapshot the whole-plane graph");
  }
  return DiskGraph::from_adjacency(
      std::vector<Node>(nodes_.begin(), nodes_.end()), adjacency_);
}

}  // namespace mldcs::net
