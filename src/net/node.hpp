#pragma once

/// \file node.hpp
/// A wireless node: position + transmission radius (paper Section 3.1).

#include <cstdint>
#include <ostream>

#include "geometry/disk.hpp"
#include "geometry/vec2.hpp"

namespace mldcs::net {

/// Node identifier; index into DiskGraph::nodes().
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A wireless node with an omnidirectional antenna of range `radius`.
struct Node {
  NodeId id = kNoNode;
  geom::Vec2 pos;
  double radius = 0.0;

  /// The node's coverage disk B(pos, radius).
  [[nodiscard]] geom::Disk disk() const noexcept { return {pos, radius}; }

  /// Bidirectional-link rule (Section 3.1): u and v are neighbors iff
  /// ||u - v|| <= min(r_u, r_v).
  [[nodiscard]] bool linked_to(const Node& other) const noexcept {
    const double rmin = std::min(radius, other.radius);
    return geom::distance2(pos, other.pos) <= rmin * rmin;
  }

  /// Unidirectional coverage: this node's transmissions physically reach
  /// `other` (other is inside this node's disk), regardless of whether
  /// `other` could answer.  The gap between this and linked_to() is exactly
  /// the Figure 5.6 pathology.
  [[nodiscard]] bool covers(const Node& other) const noexcept {
    return geom::distance2(pos, other.pos) <= radius * radius;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Node& n) {
  return os << "node" << n.id << '@' << n.pos << " r=" << n.radius;
}

}  // namespace mldcs::net
