#pragma once

/// \file io.hpp
/// Plain-text serialization of deployments and local disk sets.
///
/// Format (one record per line, '#' comments and blank lines ignored):
///
///     node <x> <y> <radius>
///
/// Node ids are assigned by position in the file (the DiskGraph convention).
/// The same format serves local disk sets (first node = the relay).  Used
/// by the mldcs_cli example and by bug-report reproduction workflows: any
/// deployment a bench draws can be dumped, attached, and re-loaded.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/node.hpp"

namespace mldcs::net {

/// Error thrown by the loader on malformed input; the message carries the
/// line number and the offending text.
class DeploymentParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write nodes in the text format, with a provenance comment header.
void write_deployment(std::ostream& os, const std::vector<Node>& nodes,
                      const std::string& comment = {});

/// Parse nodes from the text format.  Throws DeploymentParseError on
/// malformed lines, non-finite values, or negative radii.
[[nodiscard]] std::vector<Node> read_deployment(std::istream& is);

/// Convenience: file-path overloads.  Throw std::runtime_error when the
/// file cannot be opened.
void save_deployment(const std::string& path, const std::vector<Node>& nodes,
                     const std::string& comment = {});
[[nodiscard]] std::vector<Node> load_deployment(const std::string& path);

}  // namespace mldcs::net
