#pragma once

/// \file sharded_engine.hpp
/// Spatially sharded topology maintenance: an R×C tile grid of region-mode
/// `DynamicDiskGraph`s stepped in parallel with halo exchange.
///
/// The paper's local-disk-cover premise (Section 3: a relay's MLDCS depends
/// only on its 1-hop disk set) makes whole-network maintenance spatially
/// decomposable: partition the deployment rectangle into R×C tiles, give
/// each tile's shard a region-mode graph whose interest rectangle is the
/// tile dilated by the deployment's maximum radius, and every node *owned*
/// by a tile (positioned inside it) has its complete 1-hop neighborhood
/// resident in that shard — a link spans at most max radius.  The dilation
/// band is the **halo**: nodes within max radius of a tile border are
/// resident in more than one shard, and they are the only state ever
/// exchanged between shards.
///
/// Per mobility step (the GVT-style barrier of the ROSS exemplar — every
/// shard advances to the same virtual time before anyone proceeds):
///
///  1. **Ownership commit (serial):** each mover's owner tile is recomputed
///     from its new position; border crossings are recorded as migrations.
///     Serial so the parallel phase reads a stable owner map.
///  2. **Parallel shard step (one pool barrier):** each shard routes the
///     movers whose old or new position falls in its region (its halo
///     update), applies them to its region graph — insertions, evictions,
///     and moves all ride the same `StepDelta` edge-diff machinery — and
///     then runs the caller-installed per-shard hook (the sharded skyline
///     cache recomputes its dirty owned relays here).  No shard takes a
///     lock or touches another shard's state; the pool latch is the only
///     synchronization.
///  3. **Position commit + report (serial):** global committed positions
///     advance, per-shard halo/exchange/barrier-wait telemetry is recorded,
///     and one kShardExchange event is emitted (the step-level causal
///     parent — region graphs do not emit per-shard kStep events).
///
/// Owned-relay adjacency in a shard is identical (same sorted global
/// NodeIds) to the whole-plane graph's, which is what makes the sharded
/// skyline cache bit-identical to the single-engine one (see
/// broadcast/sharded_cache.hpp and tests/net/sharded_engine_test.cpp).
///
/// Contract: every position the run ever produces must lie inside the
/// deployment rectangle (mobility models here confine nodes to the square;
/// the constructor rejects initial positions outside it).  A node outside
/// the rectangle could drift beyond its owner tile's dilation band and lose
/// sight of its neighborhood.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/annotations.hpp"
#include "geometry/bbox.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/node.hpp"
#include "obs/event_log.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::net {

/// Tiled fleet of region-mode DynamicDiskGraphs stepped in parallel.
class ShardedEngine {
 public:
  struct Config {
    /// Target shard count; factored into an R×C grid that keeps tiles as
    /// close to square as the deployment aspect allows (0 treated as 1).
    std::size_t shards = 1;
    /// Deployment rectangle that bounds every position for the whole run.
    /// Empty (the default) means the bounding box of the initial positions
    /// — only safe for static or in-place workloads; mobility callers pass
    /// the full deployment square.
    geom::BBox deployment{};
  };

  /// Build the tile grid and every shard's region graph (shards are
  /// constructed in parallel on `pool`, which is retained for every step).
  /// Node ids are reassigned to indices, as everywhere else.  Construction
  /// also registers the engine as the process-wide shard-stats provider
  /// (obs/shard_stats.hpp) and eagerly registers every `shard.*` metric,
  /// so a snapshot taken before the first step carries all shard series.
  ShardedEngine(std::vector<Node> nodes, sim::ThreadPool& pool, Config config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The pool every step's barrier runs on (shared with composing layers
  /// so initial sweeps reuse the same workers).
  [[nodiscard]] sim::ThreadPool& pool() const noexcept { return *pool_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Committed global positions (advanced at the end of each step).
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }

  /// Shard `s`'s region graph (region = tile dilated by max radius).
  [[nodiscard]] const DynamicDiskGraph& shard_graph(std::size_t s) const {
    return shards_[s]->graph;
  }
  [[nodiscard]] const geom::BBox& shard_region(std::size_t s) const {
    return shards_[s]->region;
  }

  /// Shard `s`'s StepDelta from the most recent step (empty delta before
  /// the first step).
  [[nodiscard]] const DynamicDiskGraph::StepDelta& shard_delta(
      std::size_t s) const {
    return shards_[s]->graph.last_delta();
  }

  /// Owner shard of node `u` right now (the tile its committed position
  /// lies in).
  [[nodiscard]] std::uint32_t owner_of(NodeId u) const noexcept {
    return owner_of_[u];
  }
  /// The whole owner map; the span stays valid for the engine's lifetime
  /// and is rewritten during each step's serial ownership phase.
  [[nodiscard]] std::span<const std::uint32_t> owner_map() const noexcept {
    return owner_of_;
  }

  /// Nodes owned by shard `s` right now.
  [[nodiscard]] std::size_t owned_count(std::size_t s) const noexcept {
    return owned_count_[s];
  }
  /// Halo residents of shard `s`: resident but owned elsewhere.
  [[nodiscard]] std::size_t halo_count(std::size_t s) const noexcept {
    return shards_[s]->graph.resident_count() - owned_count_[s];
  }
  /// Total halo residency across shards over the node count — the fraction
  /// of the deployment that is replicated state (0 for one shard).
  [[nodiscard]] double halo_fraction() const noexcept;

  /// Nodes whose owner tile changed in the most recent step (ascending —
  /// routed movers preserve the hint order).
  [[nodiscard]] std::span<const NodeId> migrated_last_step() const noexcept {
    return migrated_;
  }

  [[nodiscard]] std::uint64_t step_count() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t migration_count() const noexcept {
    return migrations_;
  }

  /// Flight-recorder id of the most recent step's kShardExchange event
  /// (obs::kNoEvent when collection is disarmed) — the causal parent for
  /// downstream cache updates.
  [[nodiscard]] std::uint64_t last_event() const noexcept {
    return last_event_;
  }

  /// Install a hook run once per shard per step, on the shard's worker
  /// thread, after that shard's graph applied its routed movers.  This is
  /// how the sharded skyline cache fuses its dirty-relay recompute into the
  /// same barrier; the hook must only touch shard-`s` state (it runs with
  /// zero cross-shard synchronization).
  void set_shard_hook(std::function<void(std::size_t)> hook) {
    hook_ = std::move(hook);
  }

  /// Apply one mobility step: `current` is the full node array (same size
  /// and order as `nodes()`, radii unchanged), `moved_hint` the ascending
  /// ids of nodes whose position changed (e.g.
  /// `MobileNetwork::moved_last_step()`).  Steady-state steps are
  /// allocation-free outside member-scratch growth.
  MLDCS_HOT_PATH void step(std::span<const Node> current,
                           std::span<const NodeId> moved_hint);

  /// Publish shard `s`'s dirty-relay count into its load slot (one relaxed
  /// store).  Called by the sharded cache's hook on shard `s`'s worker
  /// thread — each shard writes only its own slot, so the barrier phase
  /// stays free of cross-shard synchronization.
  MLDCS_HOT_PATH MLDCS_NO_LOCK void publish_shard_dirty(
      std::size_t s, std::uint64_t dirty) noexcept {
    load_[s].dirty.store(dirty, std::memory_order_relaxed);
  }

  /// Owner tile of a position (clamped to the grid).
  [[nodiscard]] std::uint32_t tile_of(geom::Vec2 p) const noexcept;

 private:
  struct Shard {
    DynamicDiskGraph graph;
    geom::BBox region;
    std::vector<NodeId> incoming;  ///< routed movers, retained across steps
    std::uint64_t step_ns = 0;     ///< parallel-phase duration, this step

    Shard(std::vector<Node> nodes, const geom::BBox& r)
        : graph(std::move(nodes), r), region(r) {}
  };

  std::vector<Node> nodes_;  ///< committed global positions
  sim::ThreadPool* pool_;
  geom::BBox deployment_{};
  double max_radius_ = 0.0;
  std::size_t rows_ = 1;
  std::size_t cols_ = 1;
  double tile_w_ = 1.0;
  double tile_h_ = 1.0;

  /// Per-shard load snapshot published for observers (obs/shard_stats.hpp
  /// provider, installed in the constructor).  Each slot is written by one
  /// thread at a time — phase 3's serial report loop, except `dirty`,
  /// stored by the shard's own hook thread — and read from foreign
  /// introspection/blackbox threads, so every field is a relaxed atomic
  /// and slots are cache-line separated to keep the stores from sharing.
  struct alignas(64) ShardLoad {
    std::atomic<std::uint64_t> owned{0};
    std::atomic<std::uint64_t> halo{0};
    std::atomic<std::uint64_t> incoming{0};
    std::atomic<std::uint64_t> dirty{0};
    std::atomic<std::uint64_t> step_ns{0};
    std::atomic<std::uint64_t> barrier_wait_ns{0};
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> owner_of_;
  std::vector<std::size_t> owned_count_;
  std::vector<NodeId> migrated_;
  std::unique_ptr<ShardLoad[]> load_;
  std::atomic<std::uint64_t> published_step_{0};

  std::function<void(std::size_t)> hook_;

  std::uint64_t steps_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t last_event_ = obs::kNoEvent;
};

}  // namespace mldcs::net
