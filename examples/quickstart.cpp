/// Quickstart: compute the Minimum Local Disk Cover Set of a relay node.
///
/// A relay `o` has learned (from HELLO beacons) the positions and radii of
/// its 1-hop neighbors.  The MLDCS is the smallest subset of neighbors
/// whose coverage disks jointly cover everything any neighbor covers — the
/// paper's forwarding set.  Build a LocalDiskSet, call mldcs(), and you are
/// done; skyline_of() additionally exposes the boundary arcs.

#include <iostream>

#include "core/mldcs.hpp"
#include "geometry/angle.hpp"

int main() {
  using namespace mldcs;

  // The relay sits at the origin with transmission radius 1.0; five
  // neighbors with heterogeneous radii.  Every neighbor's disk contains the
  // relay (the bidirectional-link rule guarantees this in a real network).
  const geom::Vec2 relay{0.0, 0.0};
  const std::vector<geom::Disk> disks{
      {relay, 1.0},            // [0] the relay's own disk
      {{0.9, 0.0}, 1.2},       // [1] east neighbor
      {{0.0, 0.8}, 1.1},       // [2] north neighbor
      {{0.2, 0.1}, 0.4},       // [3] a dominated neighbor (covers nothing new)
      {{-0.85, 0.1}, 1.3},     // [4] west neighbor
      {{0.05, -0.9}, 1.25},    // [5] south neighbor
  };

  try {
    const core::LocalDiskSet set(relay, disks);

    // The minimum local disk cover set, O(n log n).
    const std::vector<std::size_t> cover = core::mldcs(set);
    std::cout << "MLDCS (disk indices): {";
    for (std::size_t i : cover) std::cout << ' ' << i;
    std::cout << " }\n";
    std::cout << "=> the relay designates neighbors";
    for (std::size_t i : cover) {
      if (i != 0) std::cout << " u" << i;
    }
    std::cout << " as forwarders; neighbor u3 is redundant.\n\n";

    // The skyline: the boundary of the union of all disks, as arcs
    // (alpha_i, u_j, r_j, alpha_{i+1}) with angles measured at the relay.
    const core::Skyline sky = core::skyline_of(set);
    std::cout << "skyline arcs (" << sky.arc_count() << "):\n";
    for (const core::Arc& a : sky.arcs()) {
      std::cout << "  [" << geom::rad2deg(a.start) << " deg .. "
                << geom::rad2deg(a.end) << " deg] from disk " << a.disk
                << " " << disks[a.disk] << '\n';
    }
    std::cout << "\nexact covered area: " << sky.enclosed_area(set.disks())
              << " (units^2)\n";
  } catch (const core::InvalidLocalDiskSet& err) {
    std::cerr << "invalid input: " << err.what() << '\n';
    return 1;
  }
  return 0;
}
