/// Broadcast demo: deploy a heterogeneous ad hoc network, broadcast from
/// the center under each forwarding scheme, and compare the broadcast-storm
/// metrics (transmissions, delivery, latency).
///
/// Usage: broadcast_demo [avg_degree] [seed] [hetero(0|1)] [--events PATH]
///
/// --events arms the flight recorder (obs/event_log.hpp) across every
/// simulated broadcast, writes the mldcs-events-v1 JSONL to PATH, and
/// appends a "why" section derived purely from the events: which
/// transmitters burned the redundant-airtime budget, and — for any scheme
/// that failed full delivery — a per-node account of why each missed node
/// never got the message (obs/event_replay.hpp).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "broadcast/broadcast_sim.hpp"
#include "broadcast/coverage_gap.hpp"
#include "net/topology.hpp"
#include "obs/event_log.hpp"
#include "obs/event_replay.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mldcs;

  std::string events_path;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: broadcast_demo [avg_degree] [seed] [hetero(0|1)] "
                   "[--events PATH]\n";
      return 2;
    } else {
      pos.push_back(arg);
    }
  }
  const double degree = pos.size() > 0 ? std::atof(pos[0].c_str()) : 10.0;
  const std::uint64_t seed =
      pos.size() > 1 ? static_cast<std::uint64_t>(std::atoll(pos[1].c_str()))
                     : 7;
  const bool hetero = pos.size() > 2 ? std::atoi(pos[2].c_str()) != 0 : true;

  net::DeploymentParams p;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  p.target_avg_degree = degree;
  sim::Xoshiro256 rng(seed);
  const net::DiskGraph g = net::generate_graph(p, rng);

  std::cout << "deployment: " << g.size() << " nodes over " << p.side << " x "
            << p.side << (hetero ? ", radii U[1,2]" : ", radius 1") << '\n'
            << "edges: " << g.edge_count()
            << ", average degree: " << g.average_degree()
            << ", connected: " << (g.connected() ? "yes" : "no") << "\n\n";

  const bcast::LocalView view = bcast::local_view(g, 0);
  std::cout << "source (center) has " << view.one_hop.size()
            << " 1-hop and " << view.two_hop.size() << " 2-hop neighbors\n\n";

  sim::Table table({"scheme", "fwd_set_of_source", "transmissions",
                    "delivered", "reachable", "max_hops", "full_delivery"});
  std::vector<bcast::Scheme> schemes{bcast::Scheme::kFlooding,
                                     bcast::Scheme::kSkyline,
                                     bcast::Scheme::kGreedy,
                                     bcast::Scheme::kOptimal};
  if (!hetero) {
    schemes.insert(schemes.begin() + 2, bcast::Scheme::kSelectingForwardingSet);
  }

  if (!events_path.empty()) obs::events_start();
  for (const bcast::Scheme s : schemes) {
    const auto fwd = bcast::forwarding_set(g, view, s);
    const auto r = bcast::simulate_broadcast(g, 0, s);
    table.add_row({std::string(bcast::scheme_name(s)),
                   std::to_string(fwd.size()), std::to_string(r.transmissions),
                   std::to_string(r.delivered), std::to_string(r.reachable),
                   std::to_string(r.max_hops),
                   r.full_delivery() ? "yes" : "NO"});
  }
  if (!events_path.empty()) obs::events_stop();
  table.print(std::cout);

  if (!events_path.empty()) {
    const auto replays = obs::replay_broadcasts(obs::events_snapshot());
    if (replays.empty()) {
      std::cout << "\n(no events recorded: telemetry is compiled out in "
                   "this build, so the flight recorder is a no-op)\n";
    }
    // One replay per scheme, in simulation order: ask each "why" question
    // the storm analysis cares about straight from the event stream.
    for (std::size_t i = 0; i < replays.size() && i < schemes.size(); ++i) {
      const obs::ReplayedBroadcast& r = replays[i];
      std::cout << "\nwhy [" << bcast::scheme_name(schemes[i]) << "]:\n";

      const auto by_tx = obs::redundancy_by_transmitter(r);
      std::cout << "  redundant receptions: " << r.redundant_receptions;
      if (!by_tx.empty()) {
        std::cout << "; top transmitters:";
        for (std::size_t k = 0; k < by_tx.size() && k < 3; ++k) {
          std::cout << " node " << by_tx[k].first << " (" << by_tx[k].second
                    << ")";
        }
      }
      std::cout << '\n';

      std::size_t explained = 0;
      for (net::NodeId v = 0; v < g.size() && explained < 3; ++v) {
        if (r.fate(v).received) continue;
        const auto nb = g.neighbors(v);
        std::cout << "  "
                  << obs::explain_missed(r, v, {nb.data(), nb.size()})
                  << '\n';
        ++explained;
      }
      if (explained == 0 && r.delivered == r.reachable) {
        std::cout << "  full delivery: no node left to explain\n";
      }
    }

    std::ofstream events_out(events_path);
    if (!events_out) {
      std::cerr << "error: cannot open " << events_path << " for writing\n";
      return 1;
    }
    obs::write_events_jsonl(events_out);
    std::cout << "\nwrote event log to " << events_path
              << " (validate/report with tools/mldcs_report.py)\n";
  }

  if (hetero) {
    const auto gap = bcast::skyline_coverage_gap(g, 0);
    std::cout << "\nskyline 2-hop coverage gap at the source: "
              << (gap.exists() ? "YES (Figure 5.6 case)" : "no");
    if (gap.exists()) {
      std::cout << " — missed 2-hop neighbors:";
      for (auto w : gap.uncovered) std::cout << ' ' << w;
    }
    std::cout << '\n';
  }
  return 0;
}
