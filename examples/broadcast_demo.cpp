/// Broadcast demo: deploy a heterogeneous ad hoc network, broadcast from
/// the center under each forwarding scheme, and compare the broadcast-storm
/// metrics (transmissions, delivery, latency).
///
/// Usage: broadcast_demo [avg_degree] [seed] [hetero(0|1)]

#include <cstdlib>
#include <iostream>
#include <string>

#include "broadcast/broadcast_sim.hpp"
#include "broadcast/coverage_gap.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mldcs;

  const double degree = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2
                                 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                                 : 7;
  const bool hetero = argc > 3 ? std::atoi(argv[3]) != 0 : true;

  net::DeploymentParams p;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  p.target_avg_degree = degree;
  sim::Xoshiro256 rng(seed);
  const net::DiskGraph g = net::generate_graph(p, rng);

  std::cout << "deployment: " << g.size() << " nodes over " << p.side << " x "
            << p.side << (hetero ? ", radii U[1,2]" : ", radius 1") << '\n'
            << "edges: " << g.edge_count()
            << ", average degree: " << g.average_degree()
            << ", connected: " << (g.connected() ? "yes" : "no") << "\n\n";

  const bcast::LocalView view = bcast::local_view(g, 0);
  std::cout << "source (center) has " << view.one_hop.size()
            << " 1-hop and " << view.two_hop.size() << " 2-hop neighbors\n\n";

  sim::Table table({"scheme", "fwd_set_of_source", "transmissions",
                    "delivered", "reachable", "max_hops", "full_delivery"});
  std::vector<bcast::Scheme> schemes{bcast::Scheme::kFlooding,
                                     bcast::Scheme::kSkyline,
                                     bcast::Scheme::kGreedy,
                                     bcast::Scheme::kOptimal};
  if (!hetero) {
    schemes.insert(schemes.begin() + 2, bcast::Scheme::kSelectingForwardingSet);
  }

  for (const bcast::Scheme s : schemes) {
    const auto fwd = bcast::forwarding_set(g, view, s);
    const auto r = bcast::simulate_broadcast(g, 0, s);
    table.add_row({std::string(bcast::scheme_name(s)),
                   std::to_string(fwd.size()), std::to_string(r.transmissions),
                   std::to_string(r.delivered), std::to_string(r.reachable),
                   std::to_string(r.max_hops),
                   r.full_delivery() ? "yes" : "NO"});
  }
  table.print(std::cout);

  if (hetero) {
    const auto gap = bcast::skyline_coverage_gap(g, 0);
    std::cout << "\nskyline 2-hop coverage gap at the source: "
              << (gap.exists() ? "YES (Figure 5.6 case)" : "no");
    if (gap.exists()) {
      std::cout << " — missed 2-hop neighbors:";
      for (auto w : gap.uncovered) std::cout << ' ' << w;
    }
    std::cout << '\n';
  }
  return 0;
}
