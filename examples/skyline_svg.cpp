/// Skyline visualizer: renders a local disk set and its computed skyline to
/// an SVG file — the disks in grey, the skyline arcs color-coded by
/// contributing disk, the relay at the center.  Handy for eyeballing
/// Figures 3.2 / 4.1-style configurations.
///
/// Usage: skyline_svg [out.svg] [n_disks] [seed]
///        skyline_svg fig41 [out.svg] [k]     — render the Figure 4.1 config

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/angle.hpp"
#include "geometry/bbox.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mldcs;

const char* kPalette[] = {"#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
                          "#ff7f00", "#a65628", "#f781bf", "#17becf"};

void write_svg(const std::string& path, const core::Scenario& sc) {
  const auto sky = core::compute_skyline(sc.disks, sc.origin);
  geom::BBox box = geom::bbox_of(std::span<const geom::Disk>(sc.disks));
  box = box.inflated(0.25);

  const double scale = 640.0 / std::max(box.width(), box.height());
  const auto X = [&](double x) { return (x - box.min.x) * scale; };
  const auto Y = [&](double y) { return (box.max.y - y) * scale; };

  std::ofstream svg(path);
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << box.width() * scale << "' height='" << box.height() * scale
      << "'>\n<rect width='100%' height='100%' fill='white'/>\n";

  // Disks (faint) and centers.
  for (std::size_t i = 0; i < sc.disks.size(); ++i) {
    const geom::Disk& d = sc.disks[i];
    svg << "<circle cx='" << X(d.center.x) << "' cy='" << Y(d.center.y)
        << "' r='" << d.radius * scale
        << "' fill='#dddddd' fill-opacity='0.35' stroke='#999999' "
           "stroke-width='1'/>\n";
    svg << "<circle cx='" << X(d.center.x) << "' cy='" << Y(d.center.y)
        << "' r='3' fill='#444444'/>\n"
        << "<text x='" << X(d.center.x) + 5 << "' y='" << Y(d.center.y) - 5
        << "' font-size='12'>u" << i << "</text>\n";
  }

  // Skyline arcs, color-coded by disk; drawn as dense polylines along the
  // radial function (robust for any arc geometry).
  for (const core::Arc& a : sky.arcs()) {
    const geom::RadialDisk rd(sc.disks[a.disk], sc.origin);
    svg << "<polyline fill='none' stroke='"
        << kPalette[a.disk % (sizeof(kPalette) / sizeof(kPalette[0]))]
        << "' stroke-width='3' points='";
    const int steps = std::max(8, static_cast<int>(a.span() * 64));
    for (int s = 0; s <= steps; ++s) {
      const double theta = a.start + a.span() * s / steps;
      const geom::Vec2 pt = rd.boundary_point_at(theta);
      svg << X(pt.x) << ',' << Y(pt.y) << ' ';
    }
    svg << "'/>\n";
  }

  // The relay.
  svg << "<circle cx='" << X(sc.origin.x) << "' cy='" << Y(sc.origin.y)
      << "' r='5' fill='black'/>\n"
      << "<text x='" << X(sc.origin.x) + 7 << "' y='" << Y(sc.origin.y) + 4
      << "' font-size='14' font-weight='bold'>o</text>\n</svg>\n";

  std::cout << "wrote " << path << ": " << sc.disks.size() << " disks, "
            << sky.arc_count() << " skyline arcs, skyline set {";
  for (std::size_t i : sky.skyline_set()) std::cout << ' ' << i;
  std::cout << " }\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "fig41") {
    const std::string out = argc > 2 ? argv[2] : "fig41.svg";
    const std::size_t k = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 6;
    write_svg(out, core::figure41_configuration(k));
    return 0;
  }
  const std::string out = argc > 1 ? argv[1] : "skyline.svg";
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 9;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 4;
  sim::Xoshiro256 rng(seed);
  write_svg(out, core::random_local_set(rng, n, true));
  return 0;
}
