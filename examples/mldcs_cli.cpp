/// mldcs_cli — command-line front end to the library.
///
/// Subcommands:
///   mldcs_cli cover <deployment-file> [relay-index]
///       Load a node file (see src/net/io.hpp format), treat the given node
///       (default 0) as the relay, and print its MLDCS, skyline arcs, and
///       exact covered area/perimeter.
///   mldcs_cli forward <deployment-file> <relay-index> <scheme>
///       Build the full disk graph and print the forwarding set of the
///       relay under the scheme (flooding|skyline|sel|greedy|optimal).
///   mldcs_cli gen <avg-degree> <hetero 0|1> <seed>
///       Generate a Chapter 5 deployment and dump it in the file format
///       (pipe to a file to get a reproducible test case).
///
/// Exit code 0 on success, 1 on bad usage, 2 on invalid input data.

#include <iostream>
#include <string>

#include "broadcast/forwarding.hpp"
#include "core/mldcs.hpp"
#include "geometry/angle.hpp"
#include "net/io.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mldcs;

int usage() {
  std::cerr << "usage:\n"
            << "  mldcs_cli cover <file> [relay-index]\n"
            << "  mldcs_cli forward <file> <relay-index> "
               "<flooding|skyline|sel|greedy|optimal>\n"
            << "  mldcs_cli gen <avg-degree> <hetero 0|1> <seed>\n";
  return 1;
}

int cmd_cover(const std::string& path, net::NodeId relay) {
  const auto nodes = net::load_deployment(path);
  if (relay >= nodes.size()) {
    std::cerr << "relay index " << relay << " out of range (file has "
              << nodes.size() << " nodes)\n";
    return 2;
  }
  // The relay's local disk set: its own disk + its bidirectional neighbors'.
  std::vector<geom::Disk> disks{nodes[relay].disk()};
  std::vector<net::NodeId> ids{relay};
  for (const net::Node& n : nodes) {
    if (n.id != relay && nodes[relay].linked_to(n)) {
      disks.push_back(n.disk());
      ids.push_back(n.id);
    }
  }
  const core::LocalDiskSet set(nodes[relay].pos, disks);
  const core::Skyline sky = core::skyline_of(set);

  std::cout << "relay: node " << relay << " at " << nodes[relay].pos
            << " r=" << nodes[relay].radius << '\n'
            << "1-hop neighbors: " << disks.size() - 1 << '\n';
  std::cout << "MLDCS nodes:";
  for (std::size_t i : sky.skyline_set()) {
    if (i != 0) std::cout << ' ' << ids[i];
  }
  std::cout << "\nskyline arcs:\n";
  for (const core::Arc& a : sky.arcs()) {
    std::cout << "  [" << geom::rad2deg(a.start) << ", "
              << geom::rad2deg(a.end) << "] deg  node " << ids[a.disk] << '\n';
  }
  std::cout << "covered area: " << sky.enclosed_area(set.disks())
            << "  perimeter: " << sky.perimeter(set.disks()) << '\n';
  return 0;
}

bcast::Scheme parse_scheme(const std::string& s, bool& ok) {
  ok = true;
  if (s == "flooding") return bcast::Scheme::kFlooding;
  if (s == "skyline") return bcast::Scheme::kSkyline;
  if (s == "sel") return bcast::Scheme::kSelectingForwardingSet;
  if (s == "greedy") return bcast::Scheme::kGreedy;
  if (s == "optimal") return bcast::Scheme::kOptimal;
  ok = false;
  return bcast::Scheme::kFlooding;
}

int cmd_forward(const std::string& path, net::NodeId relay,
                const std::string& scheme_str) {
  bool ok = false;
  const bcast::Scheme scheme = parse_scheme(scheme_str, ok);
  if (!ok) {
    std::cerr << "unknown scheme '" << scheme_str << "'\n";
    return 1;
  }
  const auto g = net::DiskGraph::build(net::load_deployment(path));
  if (relay >= g.size()) {
    std::cerr << "relay index out of range\n";
    return 2;
  }
  const auto fwd = bcast::forwarding_set(g, relay, scheme);
  std::cout << bcast::scheme_name(scheme) << " forwarding set of node "
            << relay << " (" << fwd.size() << " nodes):";
  for (net::NodeId v : fwd) std::cout << ' ' << v;
  std::cout << '\n';
  return 0;
}

int cmd_gen(double degree, bool hetero, std::uint64_t seed) {
  net::DeploymentParams p;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  p.target_avg_degree = degree;
  sim::Xoshiro256 rng(seed);
  const auto nodes = net::generate_deployment(p, rng);
  net::write_deployment(std::cout, nodes,
                        "generated: degree=" + std::to_string(degree) +
                            " hetero=" + std::to_string(hetero) +
                            " seed=" + std::to_string(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "cover" && argc >= 3) {
      const net::NodeId relay =
          argc > 3 ? static_cast<net::NodeId>(std::atoi(argv[3])) : 0;
      return cmd_cover(argv[2], relay);
    }
    if (cmd == "forward" && argc == 5) {
      return cmd_forward(argv[2], static_cast<net::NodeId>(std::atoi(argv[3])),
                         argv[4]);
    }
    if (cmd == "gen" && argc == 5) {
      return cmd_gen(std::atof(argv[2]), std::atoi(argv[3]) != 0,
                     static_cast<std::uint64_t>(std::atoll(argv[4])));
    }
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 2;
  }
  return usage();
}
