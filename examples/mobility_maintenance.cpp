/// Mobility maintenance: the Section 5.1.1 argument in action.
///
/// Nodes move by a random-waypoint-style step each beacon period.  Every
/// period, all nodes re-beacon; 1-hop schemes (skyline) are consistent
/// after ONE period, while 2-hop schemes need TWO (a position change
/// propagates to neighbors-of-neighbors only on the second beacon).  The
/// example measures (a) cumulative beacon bytes for 1-hop vs 2-hop
/// maintenance, and (b) how often a greedy forwarding set computed from
/// one-period-stale 2-hop data fails to dominate the true 2-hop set,
/// versus the skyline set which is always computed from fresh 1-hop data.
///
/// The topology itself is maintained *incrementally*: a DynamicDiskGraph
/// re-buckets only the nodes that moved and diffs only their links, and a
/// SkylineCache recomputes only the relays whose 1-hop neighborhood
/// actually changed — while staying bit-identical to a from-scratch sweep
/// (that is the whole point of the 1-hop locality argument).  The example
/// reports how many relays each period actually dirtied, and times the
/// incremental step against a full rebuild.
///
/// Usage: mobility_maintenance [periods] [speed] [seed]
///                              [--trace PATH] [--telemetry PATH]
///                              [--events PATH] [--watchdog K,M]
///                              [--shards N] [--introspect PORT]
///                              [--blackbox PATH] [--profile PATH]
///
/// --trace records the run as chrome://tracing trace events (graph.apply /
/// cache.update spans per period); --telemetry dumps the process-wide
/// mldcs-telemetry-v1 registry snapshot — dirty-relay histograms, slot
/// overflows, compactions, pool busy time (docs/OBSERVABILITY.md).
///
/// --events records the run in the flight recorder (kStep / kCacheUpdate
/// causal chain per period) and writes the mldcs-events-v1 JSONL to PATH.
/// --watchdog K,M audits the skyline cache online: every K periods, M
/// randomly sampled relays are recomputed from scratch and compared
/// against the cached forwarding sets (obs/watchdog.hpp); the verdict is
/// printed at the end and any mismatch makes the run exit 1.
///
/// --shards N maintains the topology through the spatially sharded engine
/// (net::ShardedEngine + bcast::ShardedSkylineCache) instead of the single
/// DynamicDiskGraph — bit-identical forwarding sets, and the per-shard
/// load table becomes visible to the observability surfaces below.
///
/// --introspect PORT serves live introspection on 127.0.0.1:PORT (0 picks
/// an ephemeral port, printed at startup): /metrics, /snapshot.json,
/// /events?tail=N, /shards, /healthz (poll with curl, Prometheus, or
/// tools/mldcs_top.py).  --blackbox PATH arms the flight recorder: one
/// heartbeat frame per period into a crash-safe ring, dumped to PATH as a
/// mldcs-blackbox-v1 report on SIGSEGV/SIGABRT/SIGBUS, on a watchdog
/// mismatch, and at clean exit (validate with tools/summarize_trace.py
/// --blackbox PATH).
///
/// --profile PATH arms the obs/profiler.hpp sampling profiler at 97 Hz
/// for the whole run and writes the collapsed-stack profile
/// (mldcs-profile-v1 folded text; feed to flamegraph.pl / speedscope, or
/// tools/summarize_trace.py --profile) at exit.  A crash while armed
/// appends the phase breakdown to the blackbox report.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "broadcast/all_skylines.hpp"
#include "broadcast/cache_watchdog.hpp"
#include "broadcast/forwarding.hpp"
#include "broadcast/sharded_cache.hpp"
#include "broadcast/skyline_cache.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/hello.hpp"
#include "net/mobility.hpp"
#include "net/sharded_engine.hpp"
#include "net/topology.hpp"
#include "obs/blackbox.hpp"
#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/introspect.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"
#include "sim/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mldcs;

  // Flags may appear anywhere; whatever remains is the positional
  // [periods] [speed] [seed] triple.
  std::string trace_path;
  std::string telemetry_path;
  std::string events_path;
  std::string blackbox_path;
  std::string profile_path;
  int introspect_port = -1;  // -1: server off; 0: ephemeral
  std::size_t shards = 1;
  std::uint32_t wd_period = 0;  // 0: watchdog off
  std::uint32_t wd_samples = 8;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--blackbox" && i + 1 < argc) {
      blackbox_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--introspect" && i + 1 < argc) {
      introspect_port = std::atoi(argv[++i]);
      if (introspect_port < 0 || introspect_port > 65535) {
        std::cerr << "error: --introspect expects a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--shards" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::cerr << "error: --shards expects N >= 1\n";
        return 2;
      }
      shards = static_cast<std::size_t>(n);
    } else if (arg == "--watchdog" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t comma = spec.find(',');
      wd_period = static_cast<std::uint32_t>(
          std::atoi(spec.substr(0, comma).c_str()));
      if (comma != std::string::npos) {
        wd_samples = static_cast<std::uint32_t>(
            std::atoi(spec.substr(comma + 1).c_str()));
      }
      if (wd_period == 0 || wd_samples == 0) {
        std::cerr << "error: --watchdog expects K,M with K,M >= 1 (got '"
                  << spec << "')\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: mobility_maintenance [periods] [speed] [seed]\n"
                   "                            [--trace PATH] "
                   "[--telemetry PATH]\n"
                   "                            [--events PATH] "
                   "[--watchdog K,M]\n"
                   "                            [--shards N] "
                   "[--introspect PORT]\n"
                   "                            [--blackbox PATH] "
                   "[--profile PATH]\n";
      return 2;
    } else {
      pos.push_back(arg);
    }
  }
  const int periods = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 20;
  const double speed =
      pos.size() > 1 ? std::atof(pos[1].c_str()) : 0.25;  // per period
  const std::uint64_t seed =
      pos.size() > 2 ? static_cast<std::uint64_t>(std::atoll(pos[2].c_str()))
                     : 11;
  if (!trace_path.empty()) obs::trace_start();
  // The flight recorder and the /events endpoint both read the event log;
  // arm it whenever any consumer is on, not just --events.
  if (!events_path.empty() || !blackbox_path.empty() || introspect_port >= 0) {
    obs::events_start();
  }
  if (!blackbox_path.empty()) {
    obs::BlackBoxConfig bb;
    bb.path = blackbox_path.c_str();
    if (!obs::blackbox_arm(bb)) {
      if constexpr (!obs::kTelemetryEnabled) {
        std::cerr << "note: --blackbox ignored (built with "
                     "MLDCS_ENABLE_TELEMETRY=OFF)\n";
      } else {
        std::cerr << "error: cannot arm blackbox at " << blackbox_path << "\n";
        return 1;
      }
    } else {
      std::cout << "blackbox armed: " << blackbox_path
                << " (dumps on SIGSEGV/SIGABRT/SIGBUS, watchdog alarm, "
                   "exit)\n";
    }
  }
  if (!profile_path.empty()) {
    if (!obs::profiler_arm(obs::ProfilerConfig{})) {
      if constexpr (!obs::kTelemetryEnabled) {
        std::cerr << "note: --profile ignored (built with "
                     "MLDCS_ENABLE_TELEMETRY=OFF)\n";
      } else {
        std::cerr << "error: cannot arm profiler\n";
        return 1;
      }
    } else {
      std::cout << "profiler armed: 97 Hz per-thread CPU sampling, folded "
                   "profile to "
                << profile_path << " at exit\n";
    }
  }

  net::DeploymentParams p;
  p.model = net::RadiusModel::kUniform;
  p.target_avg_degree = 10;
  net::WaypointParams wp;
  wp.v_min = speed * 0.2;
  wp.v_max = speed;
  wp.pause = 1.0;
  sim::Xoshiro256 rng(seed);
  net::MobileNetwork mobile(p, wp, rng);

  sim::ThreadPool& pool = sim::default_pool();
  // Maintenance stack: the single incremental engine, or the spatially
  // sharded one behind --shards (same forwarding sets, same audit hooks).
  std::optional<net::DynamicDiskGraph> dyn;
  std::optional<bcast::SkylineCache> cache;
  std::optional<net::ShardedEngine> engine;
  std::optional<bcast::ShardedSkylineCache> sharded_cache;
  const bool sharded = shards > 1;
  if (sharded) {
    net::ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.deployment = {{0.0, 0.0}, {p.side, p.side}};
    engine.emplace(
        std::vector<net::Node>(mobile.nodes().begin(), mobile.nodes().end()),
        pool, cfg);
    sharded_cache.emplace(*engine);
  } else {
    dyn.emplace(
        std::vector<net::Node>(mobile.nodes().begin(), mobile.nodes().end()));
    cache.emplace(*dyn, pool);
  }
  std::optional<obs::ConsistencyWatchdog> watchdog;
  if (wd_period > 0) {
    const obs::ConsistencyWatchdog::Config wd_cfg{.period = wd_period,
                                                  .samples = wd_samples};
    watchdog.emplace(
        sharded ? bcast::make_cache_watchdog(*sharded_cache, wd_cfg)
                : bcast::make_cache_watchdog(*dyn, *cache, wd_cfg));
  }

  // /healthz mirrors the latest watchdog verdict through an atomic (the
  // server thread must not read watchdog state the main loop is writing).
  std::atomic<bool> healthy{true};
  obs::IntrospectServer introspect;
  if (introspect_port >= 0) {
    obs::IntrospectServer::Options opt;
    opt.port = static_cast<std::uint16_t>(introspect_port);
    std::string err;
    if (!introspect.start(opt, &err)) {
      std::cerr << "error: cannot start introspection server: " << err
                << "\n";
      return 1;
    }
    introspect.set_health([&healthy](std::string&) {
      return healthy.load(std::memory_order_relaxed);
    });
    std::cout << "introspection server listening on 127.0.0.1:"
              << introspect.port()
              << " (/metrics /snapshot.json /events /shards /healthz)\n";
  }

  std::uint64_t bytes_1hop = 0;
  std::uint64_t bytes_2hop = 0;
  int stale_failures = 0;
  int checks = 0;
  std::uint64_t edge_flips = 0;
  double incremental_s = 0.0;
  double rebuild_s = 0.0;

  // The 2-hop view a node holds is what its neighbors advertised LAST
  // period (their own 1-hop lists lag one period behind reality).
  net::DiskGraph prev = mobile.snapshot();

  for (int t = 0; t < periods; ++t) {
    mobile.step(1.0, rng);  // one beacon period of random-waypoint motion

    // Incremental maintenance: diff the moved nodes' links, recompute only
    // the dirtied relays.
    const auto t_inc = std::chrono::steady_clock::now();
    if (sharded) {
      sharded_cache->step(mobile.nodes(), mobile.moved_last_step());
      if (watchdog) {
        watchdog->on_step(sharded_cache->last_update_event());
      }
    } else {
      const auto& delta = dyn->apply(mobile.nodes(), mobile.moved_last_step());
      cache->update(delta);
      if (watchdog) watchdog->on_step(cache->last_update_event());
      edge_flips += delta.edges_added + delta.edges_removed;
    }
    if (watchdog) {
      healthy.store(watchdog->clean(), std::memory_order_relaxed);
    }
    incremental_s += seconds_since(t_inc);
    obs::blackbox_heartbeat(static_cast<std::uint64_t>(t) + 1);

    // What a 1-hop-oblivious implementation pays every period instead.
    const auto t_full = std::chrono::steady_clock::now();
    const net::DiskGraph now = mobile.snapshot();
    const bcast::AllSkylines full = bcast::compute_all_skylines(now, pool);
    rebuild_s += seconds_since(t_full);
    static_cast<void>(full);

    // Beacon cost this period.
    bytes_1hop += net::hello1_cost(now).bytes;
    bytes_2hop += net::hello2_cost(now).bytes;

    // Staleness check at the source: greedy computed with last period's
    // 2-hop knowledge vs today's true 2-hop neighborhood.
    const bcast::LocalView fresh = bcast::local_view(now, 0);
    const bcast::LocalView stale = bcast::local_view(prev, 0);
    if (!fresh.two_hop.empty() && !stale.one_hop.empty()) {
      ++checks;
      const auto greedy_stale = bcast::greedy_forwarding_set(prev, stale);
      bool dominates = true;
      for (net::NodeId w : fresh.two_hop) {
        bool covered = false;
        for (net::NodeId v : greedy_stale) {
          covered = covered || now.linked(v, w);
        }
        if (!covered) {
          dominates = false;
          break;
        }
      }
      if (!dominates) ++stale_failures;
    }
    prev = now;
  }

  sim::Table table({"metric", "1-hop (skyline)", "2-hop (greedy/optimal)"});
  table.add_row({"beacon bytes over " + std::to_string(periods) + " periods",
                 std::to_string(bytes_1hop), std::to_string(bytes_2hop)});
  table.add_row({"bytes ratio", "1.00",
                 sim::format_double(static_cast<double>(bytes_2hop) /
                                        static_cast<double>(bytes_1hop),
                                    2)});
  table.add_row({"stale-knowledge 2-hop coverage failures",
                 "0 (always fresh: 1 period suffices)",
                 std::to_string(stale_failures) + " / " +
                     std::to_string(checks) + " periods"});
  table.print(std::cout);

  const std::size_t node_count = mobile.nodes().size();
  const std::uint64_t recomputes =
      sharded ? sharded_cache->recompute_count() : cache->recompute_count();
  std::uint64_t compactions = 0;
  if (sharded) {
    for (std::size_t s = 0; s < engine->shard_count(); ++s) {
      compactions += sharded_cache->shard(s).compaction_count();
    }
  } else {
    compactions = cache->compaction_count();
  }
  const double n = static_cast<double>(node_count);
  const double avg_dirty =
      periods > 0 ? static_cast<double>(recomputes) /
                        static_cast<double>(periods)
                  : 0.0;
  std::cout << "\nincremental maintenance over " << periods << " periods ("
            << node_count << " nodes"
            << (sharded ? ", " + std::to_string(engine->shard_count()) +
                              " shards"
                        : std::string())
            << "):\n";
  if (!sharded) {
    std::cout << "  edge flips:          " << edge_flips << "\n";
  } else {
    std::cout << "  border migrations:   " << engine->migration_count()
              << "\n"
              << "  halo fraction:       "
              << sim::format_double(engine->halo_fraction(), 3) << "\n";
  }
  std::cout << "  relays recomputed:   " << recomputes << " (avg "
            << sim::format_double(avg_dirty, 1) << "/period, "
            << sim::format_double(100.0 * avg_dirty / n, 1) << "% of nodes)\n"
            << "  store compactions:   " << compactions << "\n"
            << "  incremental step:    "
            << sim::format_double(1e3 * incremental_s / periods, 3)
            << " ms/period\n"
            << "  full rebuild:        "
            << sim::format_double(1e3 * rebuild_s / periods, 3)
            << " ms/period ("
            << sim::format_double(rebuild_s / incremental_s, 2)
            << "x the incremental cost)\n";

  std::cout << "\ntotal distance travelled by all nodes: "
            << sim::format_double(mobile.total_distance(), 1) << " units over "
            << periods << " random-waypoint periods\n";
  std::cout << "\nreading: maintaining 2-hop views costs ~(1+degree)x the "
               "beacon bytes and still lags one period behind under "
               "mobility; the skyline scheme's 1-hop view is both cheaper "
               "and fresher (Section 5.1.1), and lets the topology + "
               "forwarding sets be patched incrementally instead of "
               "rebuilt.\n";

  if (watchdog) {
    std::cout << "\nwatchdog verdict (every " << wd_period << " periods, "
              << wd_samples << " relays/check):\n"
              << "  checks:              " << watchdog->checks() << "\n"
              << "  relays audited:      " << watchdog->sampled() << "\n"
              << "  mismatches:          " << watchdog->mismatches() << "\n";
    if (watchdog->clean()) {
      std::cout << "  verdict:             CLEAN (cache == from-scratch on "
                   "every sampled relay)\n";
    } else {
      std::cout << "  verdict:             INCONSISTENT (last at period "
                << watchdog->last_mismatch_step() << "; relays:";
      for (const auto u : watchdog->last_mismatched_relays()) {
        std::cout << ' ' << u;
      }
      std::cout << ")\n";
    }
  }

  if (introspect.running()) {
    std::cout << "\nintrospection server served " << introspect.requests()
              << " request(s)\n";
    introspect.stop();
  }
  if (obs::blackbox_armed()) {
    // A clean exit still leaves a report behind — the same file a crash
    // would have produced, so pipelines validate one artifact either way.
    if (obs::blackbox_dump_now("exit")) {
      std::cout << "wrote blackbox report to " << blackbox_path << " ("
                << obs::blackbox_heartbeat_count()
                << " heartbeats recorded; validate with "
                   "tools/summarize_trace.py --blackbox)\n";
    }
    obs::blackbox_disarm();
  }
  if (obs::profiler_armed()) {
    // Disarm joins the drain thread, so the report below is complete.
    obs::profiler_disarm();
    std::ofstream prof_out(profile_path);
    if (!prof_out) {
      std::cerr << "error: cannot open " << profile_path << " for writing\n";
      return 1;
    }
    const obs::ProfileReport report = obs::profiler_report();
    obs::write_profile_folded(prof_out, report);
    std::uint64_t named = 0;
    for (const auto& [phase, count] : report.phases) {
      if (phase != "none") named += count;
    }
    std::cout << "wrote folded profile to " << profile_path << " ("
              << report.total_samples << " samples, " << named
              << " phase-tagged; flamegraph.pl or speedscope it, or "
                 "tools/summarize_trace.py --profile)\n";
  }

  if (!events_path.empty()) {
    obs::events_stop();
    std::ofstream events_out(events_path);
    if (!events_out) {
      std::cerr << "error: cannot open " << events_path << " for writing\n";
      return 1;
    }
    obs::write_events_jsonl(events_out);
    std::cout << "\nwrote event log to " << events_path
              << " (validate/report with tools/mldcs_report.py)\n";
  }

  if (!trace_path.empty()) {
    obs::trace_stop();
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::cerr << "error: cannot open " << trace_path << " for writing\n";
      return 1;
    }
    obs::write_trace_json(trace_out);
    std::cout << "\nwrote trace to " << trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!telemetry_path.empty()) {
    std::ofstream snap_out(telemetry_path);
    if (!snap_out) {
      std::cerr << "error: cannot open " << telemetry_path
                << " for writing\n";
      return 1;
    }
    obs::write_snapshot_json(snap_out, obs::registry());
    std::cout << "wrote telemetry snapshot to " << telemetry_path << "\n";
  }
  return watchdog && !watchdog->clean() ? 1 : 0;
}
