/// Figure 5.6 — the drawback of 1-hop-only skyline forwarding under
/// bidirectional links in heterogeneous networks.
///
/// Part A reproduces the paper's exact 6-node construction: the skyline set
/// is {u3} but the optimal forwarding set is {u1, u2}, and a skyline-driven
/// broadcast never reaches the 2-hop neighbors u4, u5.
///
/// Part B (extension) quantifies how often the phenomenon occurs in the
/// Chapter 5 random heterogeneous deployments, versus average degree, and
/// shows the patched scheme (skyline + greedy gap repair) restores 2-hop
/// domination.

#include <iostream>

#include "../bench/common.hpp"
#include "broadcast/broadcast_sim.hpp"
#include "broadcast/coverage_gap.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Figure 5.6",
                "skyline forwarding can miss 2-hop neighbors under "
                "bidirectional links");

  // --- Part A: the canonical construction.
  {
    const auto g = bcast::figure56_topology();
    const bcast::LocalView view = bcast::local_view(g, 0);
    const auto sky = bcast::skyline_forwarding_set(g, view);
    const auto opt = bcast::optimal_forwarding_set(g, view);
    const auto gap = bcast::skyline_coverage_gap(g, 0);

    std::cout << "Part A: the paper's 6-node construction\n";
    std::cout << "  nodes:\n";
    for (const auto& n : g.nodes()) std::cout << "    " << n << '\n';
    std::cout << "  skyline forwarding set of u:  {";
    for (auto v : sky) std::cout << " u" << v;
    std::cout << " }   (paper: {u3})\n";
    std::cout << "  optimal forwarding set of u:  {";
    for (auto v : opt) std::cout << " u" << v;
    std::cout << " }   (paper: {u1, u2})\n";
    std::cout << "  2-hop neighbors missed by the skyline set: {";
    for (auto v : gap.uncovered) std::cout << " u" << v;
    std::cout << " }   (paper: {u4, u5})\n";

    const auto link = bcast::simulate_broadcast(
        g, 0, bcast::Scheme::kSkyline,
        bcast::ReceptionModel::kBidirectionalLink);
    const auto phys = bcast::simulate_broadcast(
        g, 0, bcast::Scheme::kSkyline,
        bcast::ReceptionModel::kPhysicalCoverage);
    std::cout << "  skyline broadcast, link reception:     delivered "
              << link.delivered << "/" << link.reachable << '\n'
              << "  skyline broadcast, physical reception: delivered "
              << phys.delivered << "/" << g.size()
              << "  (the gap is a bidirectional-link artifact)\n\n";
  }

  // --- Part B: Monte-Carlo frequency of the gap in Chapter 5 deployments.
  std::cout << "Part B: frequency in random heterogeneous deployments "
               "(r ~ U[1,2])\n";
  sim::Table table({"avg_1hop", "gap_trials_of_200", "avg_missed_2hop",
                    "patched_gap_trials"});
  bool any_gap = false;
  for (int n = 4; n <= 20; n += 4) {
    std::size_t gap_trials = 0;
    std::size_t patched_gap_trials = 0;
    double missed_acc = 0.0;
    bcast::LocalView view;  // refilled per trial, capacity reused
    for (std::size_t t = 0; t < bench::kTrials; ++t) {
      net::DeploymentParams p;
      p.model = net::RadiusModel::kUniform;
      p.target_avg_degree = n;
      sim::Xoshiro256 rng(sim::derive_seed(
          bench::kMasterSeed, 560000 + static_cast<std::uint64_t>(n) * 1000 + t));
      const auto g = net::generate_graph(p, rng);
      bcast::local_view(g, 0, view);
      const auto gap = bcast::skyline_coverage_gap(g, view);
      if (gap.exists()) {
        ++gap_trials;
        missed_acc += static_cast<double>(gap.uncovered.size());
      }
      // Patched scheme: must never leave a 2-hop neighbor uncovered.
      const auto patched = bcast::patched_skyline_forwarding_set(g, view);
      for (net::NodeId w : view.two_hop) {
        bool covered = false;
        for (net::NodeId v : patched) covered = covered || g.linked(v, w);
        if (!covered) {
          ++patched_gap_trials;
          break;
        }
      }
    }
    any_gap = any_gap || gap_trials > 0;
    table.add_row({std::to_string(n), std::to_string(gap_trials),
                   sim::format_double(
                       gap_trials ? missed_acc / static_cast<double>(gap_trials)
                                  : 0.0,
                       2),
                   std::to_string(patched_gap_trials)});
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  std::cout << (any_gap
                    ? "\n[OK] the Figure 5.6 phenomenon occurs in random "
                      "heterogeneous deployments; the patched scheme closes it\n"
                    : "\n[WARN] no gap observed — unexpected\n");
  return any_gap ? 0 : 1;
}
