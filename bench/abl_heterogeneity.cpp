/// Ablation — how radius heterogeneity shapes the skyline set.
///
/// Figure 5.4's skyline curve sits *below* its homogeneous counterpart:
/// with radii in a wider band, large disks swallow small ones and the
/// skyline set shrinks.  This ablation sweeps the radius band
/// r ~ U[1, 1 + w] for w in {0, 0.25, ..., 2} at fixed average degree and
/// measures the skyline forwarding-set size, the per-relay 2-hop coverage
/// gap frequency (Figure 5.6's phenomenon should *grow* with w), and the
/// share of 1-hop neighbors dominated by a single bigger neighbor.

#include <iostream>

#include "../bench/common.hpp"
#include "broadcast/coverage_gap.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Ablation: radius heterogeneity",
                "skyline size and coverage-gap rate vs radius band width");

  sim::Table table({"band_w", "avg_1hop_meas", "skyline_avg", "flooding_avg",
                    "gap_rate_pct"});
  std::vector<double> sky_means;
  std::vector<double> gap_rates;

  for (double w : {0.0, 0.25, 0.5, 1.0, 1.5, 2.0}) {
    sim::RunningStats deg, sky, flood;
    std::size_t gaps = 0;
    const std::size_t trials = 120;
    for (std::size_t t = 0; t < trials; ++t) {
      net::DeploymentParams p;
      p.model = w == 0.0 ? net::RadiusModel::kHomogeneous
                         : net::RadiusModel::kUniform;
      p.r_fixed = 1.0;
      p.r_min = 1.0;
      p.r_max = 1.0 + w;
      p.target_avg_degree = 10;
      sim::Xoshiro256 rng(sim::derive_seed(
          bench::kMasterSeed,
          990000 + static_cast<std::uint64_t>(w * 100) * 1000 + t));
      const auto g = net::generate_graph(p, rng);
      const bcast::LocalView view = bcast::local_view(g, 0);
      deg.add(static_cast<double>(view.one_hop.size()));
      flood.add(static_cast<double>(view.one_hop.size()));
      sky.add(static_cast<double>(
          bcast::skyline_forwarding_set(g, view).size()));
      if (bcast::skyline_coverage_gap(g, 0).exists()) ++gaps;
    }
    const double gap_rate =
        100.0 * static_cast<double>(gaps) / static_cast<double>(trials);
    sky_means.push_back(sky.mean());
    gap_rates.push_back(gap_rate);
    table.add_numeric_row({w, deg.mean(), sky.mean(), flood.mean(), gap_rate});
  }

  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  // Shape: skyline size shrinks with heterogeneity; homogeneous band has
  // zero gaps, wide bands have many.
  const bool shrinks = sky_means.front() > sky_means.back();
  const bool gaps_grow = gap_rates.front() == 0.0 &&
                         gap_rates.back() > gap_rates[1];
  std::cout << "\nreading: wider radius bands let big disks swallow small "
               "ones — the MLDCS shrinks, but the 1-hop-only guarantee "
               "erodes (more Figure 5.6 coverage gaps).\n";
  std::cout << ((shrinks && gaps_grow)
                    ? "[OK] heterogeneity shrinks the skyline and grows the gap rate\n"
                    : "[WARN] unexpected heterogeneity trend\n");
  return (shrinks && gaps_grow) ? 0 : 1;
}
