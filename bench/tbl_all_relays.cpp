/// Extension table — forwarding-set statistics over ALL relays, not just
/// the center source.
///
/// Chapter 5 measures only the source node at the center of the square;
/// relays near the boundary see asymmetric neighborhoods and lower degrees.
/// This bench computes, for every node of each deployment, its skyline /
/// greedy forwarding set, and reports the center-vs-boundary split — a
/// robustness check that the paper's center-only numbers generalize.
///
/// The skyline column and the arc-count instrumentation come from the
/// batched compute_all_skylines API (one workspace per worker, whole
/// deployment per call); greedy still goes through per-relay LocalViews,
/// since it genuinely needs the 2-hop neighborhood.

#include <iostream>

#include "../bench/common.hpp"
#include "broadcast/all_skylines.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Table: all relays",
                "per-relay forwarding sets across the whole deployment");

  sim::Table table({"avg_1hop", "model", "region", "relays", "degree",
                    "skyline", "greedy", "sky_arcs_max"});
  sim::ThreadPool pool;

  for (const bool hetero : {false, true}) {
    for (const int n : {8, 16}) {
      sim::RunningStats deg_in, sky_in, greedy_in;
      sim::RunningStats deg_out, sky_out, greedy_out;
      std::size_t relays_in = 0, relays_out = 0;
      std::size_t max_arcs = 0;
      const std::size_t trials = 12;
      for (std::size_t t = 0; t < trials; ++t) {
        net::DeploymentParams p;
        p.model = hetero ? net::RadiusModel::kUniform
                         : net::RadiusModel::kHomogeneous;
        p.target_avg_degree = n;
        sim::Xoshiro256 rng(sim::derive_seed(
            bench::kMasterSeed,
            440000 + static_cast<std::uint64_t>(n) * 100 + (hetero ? 50u : 0u) +
                t));
        const auto g = net::generate_graph(p, rng);
        // Every relay's skyline forwarding set + arc counts in one batched
        // call; track the worst skyline arc complexity seen anywhere.
        const bcast::AllSkylines all = bcast::compute_all_skylines(g, pool);
        max_arcs = std::max(max_arcs, all.max_arc_count());
        // "Interior" = farther than 2 units (the max radius) from any edge
        // of the square, so the full disk fits inside the deployment.
        const double margin = 2.0;
        for (net::NodeId u = 0; u < g.size(); ++u) {
          const auto& pos = g.node(u).pos;
          const bool interior = pos.x > margin && pos.x < p.side - margin &&
                                pos.y > margin && pos.y < p.side - margin;
          const bcast::LocalView view = bcast::local_view(g, u);
          const auto sky = all.forwarding_set(u);
          const auto greedy = bcast::greedy_forwarding_set(g, view);
          if (interior) {
            ++relays_in;
            deg_in.add(static_cast<double>(view.one_hop.size()));
            sky_in.add(static_cast<double>(sky.size()));
            greedy_in.add(static_cast<double>(greedy.size()));
          } else {
            ++relays_out;
            deg_out.add(static_cast<double>(view.one_hop.size()));
            sky_out.add(static_cast<double>(sky.size()));
            greedy_out.add(static_cast<double>(greedy.size()));
          }
        }
      }
      const std::string model = hetero ? "hetero" : "homo";
      table.add_row({std::to_string(n), model, "interior",
                     std::to_string(relays_in),
                     sim::format_double(deg_in.mean(), 2),
                     sim::format_double(sky_in.mean(), 2),
                     sim::format_double(greedy_in.mean(), 2),
                     std::to_string(max_arcs)});
      table.add_row({std::to_string(n), model, "boundary",
                     std::to_string(relays_out),
                     sim::format_double(deg_out.mean(), 2),
                     sim::format_double(sky_out.mean(), 2),
                     sim::format_double(greedy_out.mean(), 2), ""});
    }
  }

  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);
  std::cout << "\nreading: boundary relays have fewer neighbors and smaller "
               "forwarding sets, but the skyline-vs-greedy relationship "
               "matches the center-node figures; the paper's center-only "
               "measurement generalizes.  sky_arcs_max is the largest arc "
               "count observed in any relay's skyline (Lemma 8 bound: 2n).\n";
  std::cout << "[OK] all-relay sweep completed\n";
  return 0;
}
