/// Theorem 9 / Lemma 8 — complexity benchmark: the divide-and-conquer
/// Skyline runs in O(n log n) while the incremental and brute-force
/// references are O(n^2)+; skylines never exceed 2n arcs.
///
/// Uses google-benchmark; BigO complexity fits are reported directly.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "sim/rng.hpp"

namespace {

using mldcs::core::Scenario;

Scenario make_scenario(std::size_t n) {
  // Narrow radius band maximizes arc churn (the hard regime for Merge).
  mldcs::sim::Xoshiro256 rng(0xF1C5CA1EULL + n);
  return mldcs::core::random_local_set(rng, n, true, 1.0, 1.2);
}

void BM_SkylineDivideAndConquer(benchmark::State& state) {
  const Scenario sc = make_scenario(static_cast<std::size_t>(state.range(0)));
  std::size_t arcs = 0;
  for (auto _ : state) {
    const auto sky = mldcs::core::compute_skyline(sc.disks, sc.origin);
    arcs = sky.arc_count();
    benchmark::DoNotOptimize(arcs);
  }
  state.SetComplexityN(state.range(0));
  state.counters["arcs"] = static_cast<double>(arcs);
  state.counters["arcs_per_disk"] =
      static_cast<double>(arcs) / static_cast<double>(state.range(0));
}
BENCHMARK(BM_SkylineDivideAndConquer)
    ->RangeMultiplier(2)
    ->Range(16, 8192)
    ->Complexity(benchmark::oNLogN);

void BM_SkylineIncremental(benchmark::State& state) {
  const Scenario sc = make_scenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto sky =
        mldcs::core::compute_skyline_incremental(sc.disks, sc.origin);
    benchmark::DoNotOptimize(sky.arc_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SkylineIncremental)
    ->RangeMultiplier(2)
    ->Range(16, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_SkylineBruteForce(benchmark::State& state) {
  const Scenario sc = make_scenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto sky =
        mldcs::core::compute_skyline_bruteforce(sc.disks, sc.origin);
    benchmark::DoNotOptimize(sky.arc_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SkylineBruteForce)
    ->RangeMultiplier(4)
    ->Range(16, 256)  // O(n^2 log n) breakpoints x O(n) argmax: keep small
    ->Complexity();

void BM_MergeWorkPerLevel(benchmark::State& state) {
  // Lemma 8 in operation: total Merge spans across the recursion is
  // O(n log n); reported as a counter for the EXPERIMENTS.md table.
  const Scenario sc = make_scenario(static_cast<std::size_t>(state.range(0)));
  mldcs::core::MergeStats stats;
  for (auto _ : state) {
    stats = {};
    const auto sky = mldcs::core::compute_skyline(sc.disks, sc.origin, &stats);
    benchmark::DoNotOptimize(sky.arc_count());
  }
  state.SetComplexityN(state.range(0));
  state.counters["merge_spans"] = static_cast<double>(stats.spans);
  state.counters["spans_per_n"] =
      static_cast<double>(stats.spans) / static_cast<double>(state.range(0));
}
BENCHMARK(BM_MergeWorkPerLevel)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
