/// Ablation — Lemma 8's insertion-order argument, measured.
///
/// Lemma 8's proof inserts disks in DECREASING radius order and shows each
/// insertion adds at most 2 arcs to the skyline.  Figure 4.1 shows the
/// bound fails for other orders: a small disk inserted late can add k arcs.
/// This ablation inserts the same random disk sets under decreasing /
/// increasing / input order and records the maximum per-insertion arc
/// delta: decreasing order must never exceed +2; the others may.

#include <algorithm>
#include <iostream>

#include "../bench/common.hpp"
#include "core/merge.hpp"
#include "core/scenarios.hpp"
#include "core/skyline.hpp"

namespace {

using namespace mldcs;

/// Insert disks one at a time in the given permutation; return the largest
/// single-insertion increase in skyline arc count.
long max_arc_delta(const std::vector<geom::Disk>& disks, geom::Vec2 o,
                   const std::vector<std::size_t>& order) {
  std::vector<core::Arc> acc;
  long worst = 0;
  long prev = 0;
  for (std::size_t idx : order) {
    const std::vector<core::Arc> single{core::Arc{0.0, geom::kTwoPi, idx}};
    acc = acc.empty() ? single
                      : core::merge_skylines(acc, single, disks, o);
    const long now = static_cast<long>(acc.size());
    worst = std::max(worst, now - prev);
    prev = now;
  }
  return worst;
}

std::vector<std::size_t> sorted_order(const std::vector<geom::Disk>& disks,
                                      bool decreasing) {
  std::vector<std::size_t> order(disks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return decreasing ? disks[a].radius > disks[b].radius
                                       : disks[a].radius < disks[b].radius;
                   });
  return order;
}

}  // namespace

int main() {
  bench::banner("Ablation: insertion order (Lemma 8)",
                "max arcs added by one insertion, by radius order");

  sim::Table table({"scenario", "decreasing", "increasing", "input_order"});
  bool lemma_holds = true;
  long worst_other = 0;

  // Random heterogeneous neighborhoods (narrow band -> many crossings).
  sim::Xoshiro256 rng(0xAB1A);
  long dec_w = 0, inc_w = 0, inp_w = 0;
  for (int rep = 0; rep < 300; ++rep) {
    const core::Scenario sc = core::random_local_set(rng, 24, true, 1.0, 1.3);
    std::vector<std::size_t> input(sc.disks.size());
    for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;
    dec_w = std::max(dec_w,
                     max_arc_delta(sc.disks, sc.origin,
                                   sorted_order(sc.disks, true)));
    inc_w = std::max(inc_w,
                     max_arc_delta(sc.disks, sc.origin,
                                   sorted_order(sc.disks, false)));
    inp_w = std::max(inp_w, max_arc_delta(sc.disks, sc.origin, input));
  }
  lemma_holds = lemma_holds && dec_w <= 2;
  worst_other = std::max({worst_other, inc_w, inp_w});
  table.add_row({"random n=24 (300 reps)", std::to_string(dec_w),
                 std::to_string(inc_w), std::to_string(inp_w)});

  // The Figure 4.1 adversarial configurations.
  for (std::size_t k : {4u, 8u, 12u}) {
    const core::Scenario sc = core::figure41_configuration(k);
    std::vector<std::size_t> input(sc.disks.size());
    for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;
    const long dec = max_arc_delta(sc.disks, sc.origin,
                                   sorted_order(sc.disks, true));
    const long inc = max_arc_delta(sc.disks, sc.origin,
                                   sorted_order(sc.disks, false));
    const long inp = max_arc_delta(sc.disks, sc.origin, input);
    lemma_holds = lemma_holds && dec <= 2;
    worst_other = std::max({worst_other, inc, inp});
    table.add_row({"figure 4.1 k=" + std::to_string(k), std::to_string(dec),
                   std::to_string(inc), std::to_string(inp)});
  }

  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  std::cout << "\nreading: decreasing-radius insertion never adds more than "
               "2 arcs (Lemma 8); other orders reach +"
            << worst_other << " in the Figure 4.1 configurations.\n";
  std::cout << (lemma_holds && worst_other > 2
                    ? "[OK] Lemma 8 insertion bound confirmed, and shown to "
                      "fail without the ordering\n"
                    : "[WARN] unexpected insertion-order behaviour\n");
  return (lemma_holds && worst_other > 2) ? 0 : 1;
}
