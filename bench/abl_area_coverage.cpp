/// Ablation — area coverage of the forwarding sets.
///
/// The MLDCS/skyline forwarding set is defined by AREA equality: together
/// with the relay it covers exactly what all 1-hop disks cover, so any node
/// *anywhere* in that area (even one the relay has never heard of) still
/// receives the rebroadcast.  The 2-hop schemes only promise to reach the
/// currently-known 2-hop NODES; the area they cover is strictly smaller.
/// This ablation measures covered area per scheme (exact, via the skyline
/// sector integral) and the practical consequence: how often a newly
/// arrived node inside the 1-hop coverage area would miss a rebroadcast.

#include <iostream>

#include "../bench/common.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/area.hpp"
#include "geometry/bbox.hpp"
#include "geometry/radial.hpp"

namespace {

using namespace mldcs;

/// Exact union area of {relay disk} + the chosen neighbors' disks.
double covered_area(const net::DiskGraph& g, const bcast::LocalView& view,
                    const std::vector<net::NodeId>& fwd) {
  std::vector<geom::Disk> disks{g.node(view.self).disk()};
  for (net::NodeId v : fwd) disks.push_back(g.node(v).disk());
  const auto sky = core::compute_skyline(disks, g.node(view.self).pos);
  return sky.enclosed_area(disks);
}

}  // namespace

int main() {
  bench::banner("Ablation: area coverage",
                "fraction of the 1-hop coverage area served by each scheme's "
                "forwarding set");

  const std::vector<bcast::Scheme> schemes{
      bcast::Scheme::kFlooding, bcast::Scheme::kSkyline,
      bcast::Scheme::kGreedy, bcast::Scheme::kOptimal};

  sim::Table table({"avg_1hop", "flooding_pct", "skyline_pct", "greedy_pct",
                    "optimal_pct", "new_node_miss_rate_greedy_pct"});
  bool skyline_exact = true;

  for (int n = 6; n <= 18; n += 6) {
    std::vector<sim::RunningStats> frac(schemes.size());
    sim::RunningStats miss_rate;
    const std::size_t trials = 80;
    for (std::size_t t = 0; t < trials; ++t) {
      net::DeploymentParams p;
      p.model = net::RadiusModel::kUniform;
      p.target_avg_degree = n;
      sim::Xoshiro256 rng(sim::derive_seed(
          bench::kMasterSeed, 770000 + static_cast<std::uint64_t>(n) * 1000 + t));
      const auto g = net::generate_graph(p, rng);
      const bcast::LocalView view = bcast::local_view(g, 0);
      if (view.one_hop.empty()) continue;

      const double full = covered_area(g, view, view.one_hop);
      std::vector<std::vector<net::NodeId>> sets(schemes.size());
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        sets[s] = bcast::forwarding_set(g, view, schemes[s]);
        frac[s].add(100.0 * covered_area(g, view, sets[s]) / full);
      }

      // "New node" probe: drop 200 uniform points inside the 1-hop coverage
      // area (sampled within the union via rejection on the skyline) and
      // ask whether the greedy set's coverage reaches them.
      std::vector<geom::Disk> all{g.node(0).disk()};
      for (net::NodeId v : view.one_hop) all.push_back(g.node(v).disk());
      std::vector<geom::Disk> greedy_disks{g.node(0).disk()};
      const std::size_t greedy_index = 2;
      for (net::NodeId v : sets[greedy_index]) {
        greedy_disks.push_back(g.node(v).disk());
      }
      std::size_t probes = 0, missed = 0;
      const geom::BBox box = geom::bbox_of(std::span<const geom::Disk>(all));
      while (probes < 200) {
        const geom::Vec2 q{rng.uniform(box.min.x, box.max.x),
                           rng.uniform(box.min.y, box.max.y)};
        if (!geom::covered_by_union(all, q, 0.0)) continue;
        ++probes;
        if (!geom::covered_by_union(greedy_disks, q, 0.0)) ++missed;
      }
      miss_rate.add(100.0 * static_cast<double>(missed) /
                    static_cast<double>(probes));
    }
    skyline_exact = skyline_exact && frac[1].mean() > 99.999;
    table.add_numeric_row({static_cast<double>(n), frac[0].mean(),
                           frac[1].mean(), frac[2].mean(), frac[3].mean(),
                           miss_rate.mean()});
  }

  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  std::cout << "\nreading: skyline covers 100.000% of the 1-hop area by "
               "construction (Theorem 3); the node-cover schemes leave area "
               "uncovered, which is exactly where a newly arrived or silent "
               "node misses the rebroadcast.\n";
  std::cout << (skyline_exact
                    ? "[OK] skyline area coverage is exact at every density\n"
                    : "[WARN] skyline area coverage below 100%\n");
  return skyline_exact ? 0 : 1;
}
