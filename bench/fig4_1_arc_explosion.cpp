/// Figure 4.1 — the construction showing why Lemma 8's "each disk adds at
/// most 2 arcs" needs decreasing-radius insertion order: k unit disks on a
/// ring of radius 1/2 around o, plus a central disk B(o, r) with
/// ||o-p|| < r < 3/2, where p is the outer intersection of adjacent unit
/// circles.  Added last (smallest radius), the central disk contributes
/// exactly k arcs — yet the total skyline still respects the 2n bound.

#include <iostream>

#include "../bench/common.hpp"
#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "core/validate.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Figure 4.1",
                "a disk added last can contribute k arcs (Lemma 8 needs "
                "decreasing-radius order)");

  sim::Table table({"k", "central_disk_arcs", "total_arcs", "2n_bound",
                    "radial_err", "valid"});
  bool ok = true;
  for (std::size_t k : {3u, 4u, 5u, 6u, 8u, 10u, 12u, 16u}) {
    const core::Scenario sc = core::figure41_configuration(k);
    const auto sky = core::compute_skyline(sc.disks, sc.origin);

    std::size_t central = 0;
    for (const auto& [disk, arcs] : sky.arcs_per_disk()) {
      if (disk == k) central = arcs;
    }
    const double err = core::max_radial_error(sky, sc.disks, 4096);
    const bool valid = core::verify_skyline(sky, sc.disks).empty() &&
                       central == k &&
                       sky.arc_count() <= 2 * sc.disks.size();
    ok = ok && valid;
    table.add_row({std::to_string(k), std::to_string(central),
                   std::to_string(sky.arc_count()),
                   std::to_string(2 * sc.disks.size()),
                   sim::format_double(err, 10),
                   valid ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  // Radius sweep at k = 6: below ||o-p|| the central disk vanishes from the
  // skyline; inside the window it contributes k arcs.
  std::cout << "\nradius sweep at k = 6 (r_frac in [-0.2, 1.1] of the "
               "(||o-p||, 3/2) window):\n";
  sim::Table sweep({"r_frac", "central_arcs"});
  for (double f : {-0.2, -0.05, 0.05, 0.25, 0.5, 0.75, 0.95}) {
    const core::Scenario sc = core::figure41_configuration(6, f);
    const auto sky = core::compute_skyline(sc.disks, sc.origin);
    std::size_t central = 0;
    for (const auto& [disk, arcs] : sky.arcs_per_disk()) {
      if (disk == 6) central = arcs;
    }
    sweep.add_row({sim::format_double(f, 2), std::to_string(central)});
  }
  sweep.print(std::cout);

  std::cout << (ok ? "\n[OK] Figure 4.1 construction reproduced for all k\n"
                   : "\n[WARN] construction failed for some k\n");
  return ok ? 0 : 1;
}
