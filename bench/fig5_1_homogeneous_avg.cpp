/// Figure 5.1 — homogeneous networks (r = 1): average forwarding-set size
/// of the source vs average number of 1-hop neighbors, for blind flooding,
/// the skyline (MLDCS) algorithm, the selecting-forwarding-set algorithm of
/// [6], the greedy algorithm, and the brute-force optimal.
///
/// Paper shape to reproduce: five curves ordered (top to bottom) flooding >
/// skyline > selecting-forwarding-set > greedy > optimal; flooding grows
/// linearly with density while the 2-hop schemes saturate.

#include <iostream>

#include "../bench/common.hpp"
#include "sim/chart.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Figure 5.1",
                "homogeneous networks: avg #forward nodes vs avg #1-hop "
                "neighbors");

  const std::vector<bcast::Scheme> schemes{
      bcast::Scheme::kFlooding, bcast::Scheme::kSkyline,
      bcast::Scheme::kSelectingForwardingSet, bcast::Scheme::kGreedy,
      bcast::Scheme::kOptimal};

  std::vector<double> degrees;
  for (int n = 4; n <= 20; n += 2) degrees.push_back(n);

  sim::Table table({"avg_1hop", "flooding", "skyline", "sel-fwd-set",
                    "greedy", "optimal"});
  std::vector<sim::Series> series(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    series[s].name = std::string(bcast::scheme_name(schemes[s]));
  }

  for (double n : degrees) {
    net::DeploymentParams p;  // homogeneous, r = 1, 12.5 x 12.5
    p.target_avg_degree = n;
    const auto sizes = bench::run_sweep_point(
        p, schemes, bench::kTrials,
        sim::derive_seed(bench::kMasterSeed, static_cast<std::uint64_t>(n)));
    std::vector<double> row{n};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double avg = bench::mean_size(sizes[s]);
      row.push_back(avg);
      series[s].xs.push_back(n);
      series[s].ys.push_back(avg);
    }
    table.add_numeric_row(row);
  }

  table.print(std::cout);
  std::cout << '\n';
  sim::render_line_chart(std::cout, series, "Figure 5.1 (reproduced)",
                         "average number of 1-hop neighbors",
                         "average number of forward nodes");
  std::cout << '\n';
  table.print_csv(std::cout);

  // Sanity: the paper's curve ordering must hold at every sweep point.
  bool ordered = true;
  for (std::size_t k = 0; k < degrees.size(); ++k) {
    ordered = ordered && series[0].ys[k] >= series[1].ys[k] &&  // flood >= sky
              series[3].ys[k] >= series[4].ys[k];               // greedy >= opt
  }
  std::cout << (ordered ? "\n[OK] curve ordering matches the paper\n"
                        : "\n[WARN] curve ordering deviates from the paper\n");
  return ordered ? 0 : 1;
}
