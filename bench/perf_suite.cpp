/// Performance-tracking suite — the repo's perf trajectory, one JSON per
/// run (BENCH_skyline.json, uploaded per-commit by the bench-smoke CI job;
/// format documented in docs/PERFORMANCE.md).
///
/// Three measurements:
///  1. single-relay skyline, narrow-band hard regime (nearly equal radii,
///     neighbors pushed to the rim, so almost every disk survives into the
///     skyline): the iterative SkylineWorkspace engine vs the recursive
///     divide-and-conquer baseline, with heap allocations per call counted
///     by a replaced global operator new.
///  2. batched all-relay throughput on the ~1000-node heterogeneous
///     deployment: compute_all_skylines vs the pre-batch per-relay loop
///     (LocalView + skyline_forwarding_set) and vs a bare per-relay
///     compute_skyline loop.
///  3. DiskGraph::build timings at growing deployment sizes (count-then-
///     fill CSR construction).
///  4. compute_all_skylines thread scaling: the batched sweep at several
///     pool sizes, reported as speedup over one thread.
///  5. mobility steady state: incremental maintenance (DynamicDiskGraph
///     edge diffs + SkylineCache dirty-relay recomputation) vs a full
///     per-step rebuild, across mobility regimes, with per-step
///     bit-identity verified against the rebuild along the way.
///  6. single-relay skyline SIMD dispatch: the workspace engine under the
///     runtime-dispatched kernels vs the same engine pinned to the scalar
///     reference kernels (ScopedKernelOverride), so a silent regression to
///     the fallback shows up as simd_vs_scalar_speedup ~ 1.0.
///  7. sharded mobility: the tiled ShardedEngine + ShardedSkylineCache at
///     growing deployment sizes (10k / 100k, plus 1M in --full) and shard
///     counts {1, 2, 4, 8}, each shard count on its own pool of that many
///     workers.  Reports recomputed relays/s, halo-node fraction, and
///     speedup_vs_1_shard; every other step a stride sample of relays is
///     compared bit-for-bit against a single-engine SkylineCache that
///     replayed the identical trajectory (recorded in an untimed pass), so
///     the scaling numbers are for provably identical output.
///
/// The JSON header carries a provenance object (compiler, build flags,
/// detected SIMD ISA, dispatch choice) so BENCH_history.jsonl deltas are
/// attributable to toolchain or dispatch changes, not just code.
///
/// Usage: perf_suite [--quick] [--threads N] [--out PATH]
///                   [--list-sections] [--section NAME]...
///                   [--trace PATH] [--telemetry PATH] [--events PATH]
///                   [--introspect PORT] [--blackbox PATH]
///                   [--profile PATH]
///
/// --section restricts the run to the named section(s); skipped sections
/// are simply absent from the JSON (tools/check_bench.py warns and moves
/// on).  --trace writes a chrome://tracing trace of the run; --telemetry
/// writes an mldcs-telemetry-v1 registry snapshot; --events arms the
/// flight recorder and writes an mldcs-events-v1 JSONL log — arming it
/// perturbs the mobility timings, so use it for forensics runs, not for
/// regenerating BENCH_skyline.json (docs/OBSERVABILITY.md).
///
/// --introspect PORT serves /metrics, /snapshot.json, /events, /shards,
/// and /healthz live on 127.0.0.1:PORT while sections run; --blackbox
/// PATH arms the obs/blackbox.hpp flight recorder with one heartbeat per
/// section boundary and writes a mldcs-blackbox-v1 report on crash or
/// exit.  --profile PATH arms the obs/profiler.hpp sampling profiler at
/// 97 Hz for the whole run and writes the collapsed-stack profile
/// (mldcs-profile-v1 folded text) at exit — like --events, arming it
/// perturbs timings, so keep it off when regenerating BENCH_skyline.json.
/// All three are recorded in the provenance block ("introspect",
/// "blackbox", "profile") since an attached observer can perturb timings.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "broadcast/all_skylines.hpp"
#include "broadcast/forwarding.hpp"
#include "broadcast/local_view.hpp"
#include "broadcast/sharded_cache.hpp"
#include "broadcast/skyline_cache.hpp"
#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "geometry/angle.hpp"
#include "geometry/simd.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/mobility.hpp"
#include "net/sharded_engine.hpp"
#include "net/topology.hpp"
#include "obs/blackbox.hpp"
#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/introspect.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "support/alloc_guard.hpp"

// Allocation counting comes from the shared interposer the tests also use
// (tests/support/alloc_guard.hpp): referencing allocation_count() links the
// program-wide counting operator new replacement into this binary.

namespace {

using namespace mldcs;

std::uint64_t allocations() noexcept { return test::allocation_count(); }

// --- Measurement harness ---------------------------------------------------

struct Measurement {
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
  std::uint64_t reps = 0;
};

/// Repeat `fn` until ~`budget_ns` of wall time is spent (first batch of 1,
/// doubling), then report per-op time and per-op heap allocations.
template <typename F>
Measurement measure(double budget_ns, F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup: grow workspaces/thread-locals outside the measurement
  Measurement m;
  std::uint64_t batch = 1;
  double total_ns = 0.0;
  std::uint64_t total_reps = 0;
  std::uint64_t total_allocs = 0;
  while (total_ns < budget_ns) {
    const std::uint64_t a0 = allocations();
    const auto t0 = clock::now();
    for (std::uint64_t r = 0; r < batch; ++r) fn();
    const auto t1 = clock::now();
    total_allocs += allocations() - a0;
    total_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    total_reps += batch;
    batch *= 2;
  }
  m.ns_per_op = total_ns / static_cast<double>(total_reps);
  m.allocs_per_op =
      static_cast<double>(total_allocs) / static_cast<double>(total_reps);
  m.reps = total_reps;
  return m;
}

// --- Provenance -------------------------------------------------------------

/// Compiler identification, from predefined macros (no subprocesses).
std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Effective optimization flags, captured by the build system.
std::string build_flags() {
#if defined(MLDCS_BENCH_BUILD_TYPE)
  return std::string(MLDCS_BENCH_BUILD_TYPE) + ": " + MLDCS_BENCH_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

// --- Scenario: narrow-band hard regime -------------------------------------

/// Local disk set where nearly every disk survives into the skyline: radii
/// in the narrow band [1.0, 1.02] and neighbors at 97% of the maximum
/// bidirectional distance, spread around the circle.  This is the hard
/// regime for Merge — the arc count stays Θ(n) instead of collapsing to a
/// few dominating disks.
std::vector<geom::Disk> narrow_band_set(sim::Xoshiro256& rng, std::size_t n) {
  std::vector<geom::Disk> disks;
  disks.reserve(n);
  const double r0 = 1.01;
  disks.push_back({{0.0, 0.0}, r0});
  for (std::size_t i = 1; i < n; ++i) {
    const double radius = rng.uniform(1.0, 1.02);
    const double dist = 0.97 * std::min(r0, radius);
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    disks.push_back(
        {{dist * std::cos(theta), dist * std::sin(theta)}, radius});
  }
  return disks;
}

// --- JSON writer ------------------------------------------------------------

struct JsonWriter {
  std::ostream& os;
  bool first = true;

  void sep() {
    if (!first) os << ",";
    first = false;
  }
  void key(const std::string& k) {
    sep();
    os << "\"" << k << "\":";
  }
  void field(const std::string& k, double v) {
    key(k);
    os << v;
  }
  void field(const std::string& k, std::uint64_t v) {
    key(k);
    os << v;
  }
  void field(const std::string& k, const std::string& v) {
    key(k);
    os << "\"" << v << "\"";
  }
  void open_obj(const char* k = nullptr) {
    if (k != nullptr) key(k);
    else sep();
    os << "{";
    first = true;
  }
  void close_obj() {
    os << "}";
    first = false;
  }
  void open_arr(const char* k) {
    key(k);
    os << "[";
    first = true;
  }
  void close_arr() {
    os << "]";
    first = false;
  }
};

/// The JSON section names, in run order — the contract shared with
/// --section, --list-sections, and tools/check_bench.py.
constexpr const char* kSections[] = {
    "single_relay_skyline", "batch_all_relays", "graph_build",
    "batch_all_relays_threads", "mobility_steady_state",
    "single_relay_skyline_simd", "sharded_mobility"};

bool known_section(const std::string& name) {
  for (const char* s : kSections) {
    if (name == s) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t n_threads = 0;  // 0 = hardware concurrency
  std::string out_path = "BENCH_skyline.json";
  std::string trace_path;
  std::string telemetry_path;
  std::string events_path;
  std::string blackbox_path;
  std::string profile_path;
  int introspect_port = -1;  // -1: server off; 0: ephemeral
  std::vector<std::string> sections;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      n_threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--blackbox" && i + 1 < argc) {
      blackbox_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--introspect" && i + 1 < argc) {
      introspect_port = std::atoi(argv[++i]);
      if (introspect_port < 0 || introspect_port > 65535) {
        std::cerr << "error: --introspect expects a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--section" && i + 1 < argc) {
      sections.emplace_back(argv[++i]);
      if (!known_section(sections.back())) {
        std::cerr << "error: unknown section '" << sections.back()
                  << "' (see --list-sections)\n";
        return 2;
      }
    } else if (arg == "--list-sections") {
      for (const char* s : kSections) std::cout << s << "\n";
      return 0;
    } else {
      std::cerr << "usage: perf_suite [--quick] [--threads N] [--out PATH]\n"
                   "                  [--list-sections] [--section NAME]...\n"
                   "                  [--trace PATH] [--telemetry PATH]\n"
                   "                  [--events PATH] [--introspect PORT]\n"
                   "                  [--blackbox PATH] [--profile PATH]\n";
      return 2;
    }
  }
  const double budget_ns = quick ? 3e7 : 3e8;
  // No --section flags = run everything.  Each section that runs opens a
  // blackbox heartbeat frame (a no-op when the recorder is disarmed), so
  // a crash dump pins down which section was in flight.
  std::uint64_t section_no = 0;
  const auto run_section = [&sections, &section_no](const char* name) {
    const bool run =
        sections.empty() ||
        std::find(sections.begin(), sections.end(), name) != sections.end();
    if (run) obs::blackbox_heartbeat(++section_no);
    return run;
  };
  if (!trace_path.empty()) obs::trace_start();
  if (!events_path.empty() || !blackbox_path.empty() || introspect_port >= 0) {
    obs::events_start();
  }

  std::string blackbox_note = "off";
  if (!blackbox_path.empty()) {
    obs::BlackBoxConfig bb;
    bb.path = blackbox_path.c_str();
    if (!obs::blackbox_arm(bb)) {
      if constexpr (!obs::kTelemetryEnabled) {
        std::cerr << "note: --blackbox ignored (built with "
                     "MLDCS_ENABLE_TELEMETRY=OFF)\n";
      } else {
        std::cerr << "error: cannot arm blackbox at " << blackbox_path
                  << "\n";
        return 1;
      }
    } else {
      blackbox_note = blackbox_path;
    }
  }
  std::string profile_note = "off";
  if (!profile_path.empty()) {
    if (!obs::profiler_arm(obs::ProfilerConfig{})) {
      if constexpr (!obs::kTelemetryEnabled) {
        std::cerr << "note: --profile ignored (built with "
                     "MLDCS_ENABLE_TELEMETRY=OFF)\n";
      } else {
        std::cerr << "error: cannot arm profiler\n";
        return 1;
      }
    } else {
      profile_note = profile_path;
    }
  }
  obs::IntrospectServer introspect;
  std::string introspect_note = "off";
  if (introspect_port >= 0) {
    obs::IntrospectServer::Options opt;
    opt.port = static_cast<std::uint16_t>(introspect_port);
    std::string err;
    if (!introspect.start(opt, &err)) {
      std::cerr << "error: cannot start introspection server: " << err
                << "\n";
      return 1;
    }
    introspect_note = "on:" + std::to_string(introspect.port());
    std::cout << "introspection server listening on 127.0.0.1:"
              << introspect.port() << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out.precision(6);
  JsonWriter j{out};

  sim::ThreadPool pool(n_threads);
  std::cout << "perf_suite: " << (quick ? "quick" : "full") << " mode, "
            << pool.size() << " worker thread(s), writing " << out_path
            << "\n";

  j.open_obj();
  j.field("schema", std::string("mldcs-perf-v1"));
  j.field("mode", std::string(quick ? "quick" : "full"));
  j.field("threads", static_cast<std::uint64_t>(pool.size()));
  j.open_obj("provenance");
  j.field("compiler", compiler_id());
  j.field("build_flags", build_flags());
  j.field("simd_compiled",
          std::string(geom::simd::simd_compiled() ? "yes" : "no"));
  j.field("detected_isa", std::string(geom::simd::detected_isa()));
  j.field("dispatch", std::string(geom::simd::dispatch_choice()));
  // Thread-scaling sections are meaningless without the core count: a
  // 1.0x curve on a 1-core host is physics, on a 16-core host a bug.
  j.field("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  // An attached observer (live endpoint polls, heartbeat snapshots) can
  // perturb timings, so its presence is provenance, like the dispatch.
  j.field("introspect", introspect_note);
  j.field("blackbox", blackbox_note);
  j.field("profile", profile_note);
  j.close_obj();
  std::cout << "  provenance: " << compiler_id() << "; simd dispatch "
            << geom::simd::dispatch_choice() << " (detected "
            << geom::simd::detected_isa() << ")\n";

  // --- 1. single-relay skyline, workspace vs recursive ---------------------
  if (run_section("single_relay_skyline")) {
  const obs::TraceSpan section_span("bench.single_relay_skyline");
  j.open_arr("single_relay_skyline");
  for (const std::size_t n : {std::size_t{64}, std::size_t{256},
                              std::size_t{1024}, std::size_t{4096}}) {
    sim::Xoshiro256 rng(0xBADC0FFEEULL + n);
    const std::vector<geom::Disk> disks = narrow_band_set(rng, n);
    const geom::Vec2 o{0.0, 0.0};

    core::SkylineWorkspace ws;
    std::vector<core::Arc> arcs;
    const Measurement m_ws = measure(budget_ns, [&] {
      core::compute_skyline_arcs(disks, o, ws, arcs);
    });
    const Measurement m_rec = measure(budget_ns, [&] {
      const core::Skyline sky = core::compute_skyline_recursive(disks, o);
      if (sky.arc_count() == 0) std::abort();  // keep the optimizer honest
    });
    const double arcs_per_disk =
        static_cast<double>(arcs.size()) / static_cast<double>(n);

    std::cout << "  skyline n=" << n << ": workspace " << m_ws.ns_per_op
              << " ns/op (" << m_ws.allocs_per_op << " allocs), recursive "
              << m_rec.ns_per_op << " ns/op (" << m_rec.allocs_per_op
              << " allocs)\n";

    j.open_obj();
    j.field("n_disks", static_cast<std::uint64_t>(n));
    j.field("skyline_arcs", static_cast<std::uint64_t>(arcs.size()));
    j.field("arcs_per_disk", arcs_per_disk);
    j.open_obj("workspace");
    j.field("ns_per_op", m_ws.ns_per_op);
    j.field("ops_per_s", 1e9 / m_ws.ns_per_op);
    j.field("allocs_per_op", m_ws.allocs_per_op);
    j.field("reps", m_ws.reps);
    j.close_obj();
    j.open_obj("recursive");
    j.field("ns_per_op", m_rec.ns_per_op);
    j.field("ops_per_s", 1e9 / m_rec.ns_per_op);
    j.field("allocs_per_op", m_rec.allocs_per_op);
    j.field("reps", m_rec.reps);
    j.close_obj();
    j.field("speedup_vs_recursive", m_rec.ns_per_op / m_ws.ns_per_op);
    j.field("alloc_ratio_vs_recursive",
            m_ws.allocs_per_op / (m_rec.allocs_per_op > 0.0
                                      ? m_rec.allocs_per_op
                                      : 1.0));
    j.close_obj();
  }
  j.close_arr();
  }

  // --- 1b. single-relay skyline, dispatched kernels vs scalar pin ----------
  // Same engine, same workload; only the kernel set differs.  On a host
  // where dispatch lands on a wide ISA this reports the SIMD multiplier in
  // isolation; when dispatch is already scalar (no wide kernels compiled,
  // or MLDCS_SIMD=off) both runs measure the same code and the speedup
  // sits at ~1.0 — check_bench.py gates on it either way to catch silent
  // regressions to the fallback.
  if (run_section("single_relay_skyline_simd")) {
    const obs::TraceSpan section_span("bench.single_relay_skyline_simd");
    j.open_arr("single_relay_skyline_simd");
    for (const std::size_t n :
         {std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
      sim::Xoshiro256 rng(0xBADC0FFEEULL + n);
      const std::vector<geom::Disk> disks = narrow_band_set(rng, n);
      const geom::Vec2 o{0.0, 0.0};

      core::SkylineWorkspace ws;
      std::vector<core::Arc> arcs;
      const Measurement m_active = measure(budget_ns, [&] {
        core::compute_skyline_arcs(disks, o, ws, arcs);
      });
      Measurement m_scalar;
      {
        const geom::simd::ScopedKernelOverride pin(
            geom::simd::scalar_kernels());
        m_scalar = measure(budget_ns, [&] {
          core::compute_skyline_arcs(disks, o, ws, arcs);
        });
      }

      std::cout << "  skyline-simd n=" << n << ": "
                << geom::simd::dispatch_choice() << " " << m_active.ns_per_op
                << " ns/op, scalar " << m_scalar.ns_per_op << " ns/op => "
                << m_scalar.ns_per_op / m_active.ns_per_op << "x\n";

      j.open_obj();
      j.field("n_disks", static_cast<std::uint64_t>(n));
      j.field("dispatch", std::string(geom::simd::dispatch_choice()));
      j.open_obj("active");
      j.field("ns_per_op", m_active.ns_per_op);
      j.field("ops_per_s", 1e9 / m_active.ns_per_op);
      j.field("allocs_per_op", m_active.allocs_per_op);
      j.field("reps", m_active.reps);
      j.close_obj();
      j.open_obj("scalar");
      j.field("ns_per_op", m_scalar.ns_per_op);
      j.field("ops_per_s", 1e9 / m_scalar.ns_per_op);
      j.field("allocs_per_op", m_scalar.allocs_per_op);
      j.field("reps", m_scalar.reps);
      j.close_obj();
      j.field("simd_vs_scalar_speedup",
              m_scalar.ns_per_op / m_active.ns_per_op);
      j.close_obj();
    }
    j.close_arr();
  }

  // --- 2. batched all-relay throughput -------------------------------------
  // The paper's heterogeneous deployment scaled to ~1000 nodes (side fixed,
  // degree raised until node_count_for lands at 1000).
  if (run_section("batch_all_relays")) {
    const obs::TraceSpan section_span("bench.batch_all_relays");
    net::DeploymentParams p;
    p.model = net::RadiusModel::kUniform;
    p.target_avg_degree = 36.8;  // node_count_for(p) ~= 1000 on 12.5 x 12.5
    sim::Xoshiro256 rng(0x5EEDC0DEULL);
    const net::DiskGraph g = net::generate_graph(p, rng);

    const Measurement m_batch = measure(budget_ns, [&] {
      const bcast::AllSkylines all = bcast::compute_all_skylines(g, pool);
      if (all.size() != g.size()) std::abort();
    });
    // The pre-batch loop exactly as tbl_all_relays ran it: LocalView (with
    // its 2-hop BFS) + per-relay skyline forwarding set.
    const Measurement m_loop = measure(budget_ns, [&] {
      std::size_t total = 0;
      for (net::NodeId u = 0; u < g.size(); ++u) {
        total += bcast::skyline_forwarding_set(g, bcast::local_view(g, u))
                     .size();
      }
      if (total == 0) std::abort();
    });
    // Bare per-relay compute_skyline loop: 1-hop disks only, recursive
    // engine, no LocalView — isolates the skyline-engine gain.
    const Measurement m_bare = measure(budget_ns, [&] {
      std::vector<geom::Disk> disks;
      std::size_t total = 0;
      for (net::NodeId u = 0; u < g.size(); ++u) {
        disks.clear();
        disks.push_back(g.node(u).disk());
        for (const net::NodeId v : g.neighbors(u)) {
          disks.push_back(g.node(v).disk());
        }
        total +=
            core::compute_skyline_recursive(disks, g.node(u).pos).arc_count();
      }
      if (total == 0) std::abort();
    });

    const double n_nodes = static_cast<double>(g.size());
    std::cout << "  all-relays (" << g.size() << " nodes, avg degree "
              << g.average_degree() << "): batch " << m_batch.ns_per_op / 1e6
              << " ms, per-relay loop " << m_loop.ns_per_op / 1e6
              << " ms, bare skyline loop " << m_bare.ns_per_op / 1e6
              << " ms => speedup " << m_loop.ns_per_op / m_batch.ns_per_op
              << "x\n";

    j.open_obj("batch_all_relays");
    j.field("nodes", static_cast<std::uint64_t>(g.size()));
    j.field("edges", static_cast<std::uint64_t>(g.edge_count()));
    j.field("avg_degree", g.average_degree());
    j.field("batch_ns", m_batch.ns_per_op);
    j.field("batch_allocs", m_batch.allocs_per_op);
    j.field("batch_relays_per_s", n_nodes * 1e9 / m_batch.ns_per_op);
    j.field("per_relay_loop_ns", m_loop.ns_per_op);
    j.field("per_relay_loop_allocs", m_loop.allocs_per_op);
    j.field("bare_skyline_loop_ns", m_bare.ns_per_op);
    j.field("bare_skyline_loop_allocs", m_bare.allocs_per_op);
    j.field("speedup_vs_per_relay_loop",
            m_loop.ns_per_op / m_batch.ns_per_op);
    j.field("speedup_vs_bare_skyline_loop",
            m_bare.ns_per_op / m_batch.ns_per_op);
    j.close_obj();
  }

  // --- 3. graph build ------------------------------------------------------
  if (run_section("graph_build")) {
  const obs::TraceSpan section_span("bench.graph_build");
  j.open_arr("graph_build");
  for (const double scale : (quick ? std::vector<double>{1.0, 4.0}
                                   : std::vector<double>{1.0, 4.0, 16.0})) {
    net::DeploymentParams p;
    p.model = net::RadiusModel::kUniform;
    p.target_avg_degree = 36.8;
    p.side = 12.5 * std::sqrt(scale);  // constant density: ~1000 * scale nodes
    sim::Xoshiro256 rng(0xD15C0ULL + static_cast<std::uint64_t>(scale));
    std::vector<net::Node> nodes = net::generate_deployment(p, rng);
    const std::size_t n_nodes = nodes.size();

    const Measurement m_build = measure(budget_ns, [&] {
      std::vector<net::Node> copy = nodes;
      const net::DiskGraph g = net::DiskGraph::build(std::move(copy));
      if (g.size() != n_nodes) std::abort();
    });

    std::cout << "  graph build n=" << n_nodes << ": "
              << m_build.ns_per_op / 1e6 << " ms ("
              << m_build.ns_per_op / static_cast<double>(n_nodes)
              << " ns/node)\n";

    j.open_obj();
    j.field("nodes", static_cast<std::uint64_t>(n_nodes));
    j.field("build_ns", m_build.ns_per_op);
    j.field("ns_per_node",
            m_build.ns_per_op / static_cast<double>(n_nodes));
    j.field("allocs_per_build", m_build.allocs_per_op);
    j.close_obj();
  }
  j.close_arr();
  }

  // --- 4. batched all-relay thread scaling ---------------------------------
  // The same ~1000-node sweep as section 2, at several pool sizes.  On a
  // single-core runner the >1 configurations measure oversubscription
  // overhead rather than speedup; the speedup_vs_1_thread field makes that
  // legible either way.
  if (run_section("batch_all_relays_threads")) {
    const obs::TraceSpan section_span("bench.batch_all_relays_threads");
    net::DeploymentParams p;
    p.model = net::RadiusModel::kUniform;
    p.target_avg_degree = 36.8;
    sim::Xoshiro256 rng(0x5EEDC0DEULL);
    const net::DiskGraph g = net::generate_graph(p, rng);

    // Plain array: the replaced global operator new/delete pair confuses
    // GCC's -Wmismatched-new-delete for vectors of local types at -O2.
    std::size_t counts[4] = {0, 0, 0, 0};
    std::size_t n_counts = 0;
    if (quick) {
      counts[n_counts++] = 1;
      counts[n_counts++] = pool.size() > 1 ? pool.size() : 2;
    } else {
      counts[n_counts++] = 1;
      counts[n_counts++] = 2;
      counts[n_counts++] = 4;
      if (pool.size() > 4) counts[n_counts++] = pool.size();
    }

    j.open_arr("batch_all_relays_threads");
    double ns_1thread = 0.0;
    for (std::size_t ci = 0; ci < n_counts; ++ci) {
      const std::size_t t = counts[ci];
      sim::ThreadPool pool_t(t);
      const Measurement m = measure(budget_ns, [&] {
        const bcast::AllSkylines all = bcast::compute_all_skylines(g, pool_t);
        if (all.size() != g.size()) std::abort();
      });
      if (ns_1thread == 0.0) ns_1thread = m.ns_per_op;  // counts starts at 1

      std::cout << "  all-relays threads=" << t << ": " << m.ns_per_op / 1e6
                << " ms (" << ns_1thread / m.ns_per_op << "x vs 1 thread)\n";

      j.open_obj();
      j.field("threads", static_cast<std::uint64_t>(t));
      j.field("batch_ns", m.ns_per_op);
      j.field("batch_relays_per_s",
              static_cast<double>(g.size()) * 1e9 / m.ns_per_op);
      j.field("speedup_vs_1_thread", ns_1thread / m.ns_per_op);
      j.close_obj();
    }
    j.close_arr();
  }

  // --- 5. mobility steady state: incremental vs full rebuild ---------------
  // Random-waypoint motion on the ~1000-node heterogeneous deployment.  Each
  // step is maintained twice: incrementally (DynamicDiskGraph::apply with
  // the mover hint + SkylineCache::update) and from scratch (DiskGraph::
  // build + compute_all_skylines on the same pool).  Every 10th step the
  // cached forwarding sets are compared with the rebuild and the bench
  // aborts on any mismatch — the speedups below are for *bit-identical*
  // output.  Dirty-relay counts are reported so the speedup can be read
  // against how much of the network each regime actually perturbs.
  if (run_section("mobility_steady_state")) {
    const obs::TraceSpan section_span("bench.mobility_steady_state");
    struct MobilityRegime {
      const char* name;
      net::WaypointParams wp;
    };
    MobilityRegime regimes[4];
    regimes[0].name = "quasi_static";
    regimes[0].wp.v_min = 0.02;
    regimes[0].wp.v_max = 0.1;
    regimes[0].wp.pause = 2000.0;
    regimes[0].wp.max_leg = 1.0;
    regimes[0].wp.steady_state_init = true;
    regimes[1].name = "low_speed";
    regimes[1].wp.v_min = 0.02;
    regimes[1].wp.v_max = 0.1;
    regimes[1].wp.pause = 2.0;
    regimes[1].wp.steady_state_init = true;
    regimes[2].name = "moderate";
    regimes[2].wp.v_min = 0.1;
    regimes[2].wp.v_max = 0.5;
    regimes[2].wp.pause = 2.0;
    regimes[3].name = "high_speed";
    regimes[3].wp.v_min = 0.5;
    regimes[3].wp.v_max = 2.0;
    regimes[3].wp.pause = 0.0;

    const int warmup_steps = 20;
    const int steps = quick ? 30 : 100;
    using clock = std::chrono::steady_clock;

    j.open_arr("mobility_steady_state");
    for (const MobilityRegime& regime : regimes) {
      net::DeploymentParams p;
      p.model = net::RadiusModel::kUniform;
      p.target_avg_degree = 36.8;
      sim::Xoshiro256 rng(0x5EEDC0DEULL);
      net::MobileNetwork mobile(p, regime.wp, rng);
      net::DynamicDiskGraph dyn{std::vector<net::Node>(
          mobile.nodes().begin(), mobile.nodes().end())};
      bcast::SkylineCache cache(dyn, pool);

      for (int t = 0; t < warmup_steps; ++t) {
        mobile.step(1.0, rng);
        cache.update(dyn.apply(mobile.nodes(), mobile.moved_last_step()));
      }

      const std::uint64_t dirty0 = cache.recompute_count();
      std::uint64_t moved_total = 0;
      std::uint64_t flips_total = 0;
      double inc_ns = 0.0;
      double full_ns = 0.0;
      std::uint64_t inc_allocs = 0;
      for (int t = 0; t < steps; ++t) {
        mobile.step(1.0, rng);

        const std::uint64_t a0 = allocations();
        const auto t0 = clock::now();
        const auto& delta =
            dyn.apply(mobile.nodes(), mobile.moved_last_step());
        cache.update(delta);
        const auto t1 = clock::now();
        inc_ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        inc_allocs += allocations() - a0;
        moved_total += delta.moved.size();
        flips_total += delta.edges_added + delta.edges_removed;

        const auto t2 = clock::now();
        std::vector<net::Node> copy(mobile.nodes().begin(),
                                    mobile.nodes().end());
        const net::DiskGraph fresh_g = net::DiskGraph::build(std::move(copy));
        const bcast::AllSkylines fresh =
            bcast::compute_all_skylines(fresh_g, pool);
        const auto t3 = clock::now();
        full_ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
                .count());

        if (t % 10 == 0) {
          for (net::NodeId u = 0; u < dyn.size(); ++u) {
            const auto got = cache.forwarding_set(u);
            const auto want = fresh.forwarding_set(u);
            if (!std::equal(got.begin(), got.end(), want.begin(),
                            want.end())) {
              std::cerr << "FATAL: cached skyline diverged from rebuild ("
                        << regime.name << ", step " << t << ", relay " << u
                        << ")\n";
              std::abort();
            }
          }
        }
      }

      const double d_steps = static_cast<double>(steps);
      const double avg_dirty =
          static_cast<double>(cache.recompute_count() - dirty0) / d_steps;
      const double speedup = full_ns / inc_ns;
      std::cout << "  mobility " << regime.name << ": incremental "
                << inc_ns / d_steps / 1e6 << " ms/step vs rebuild "
                << full_ns / d_steps / 1e6 << " ms/step => " << speedup
                << "x (avg " << avg_dirty << " dirty relays, "
                << static_cast<double>(moved_total) / d_steps
                << " movers/step)\n";

      j.open_obj();
      j.field("regime", std::string(regime.name));
      j.field("nodes", static_cast<std::uint64_t>(dyn.size()));
      j.field("steps", static_cast<std::uint64_t>(steps));
      j.field("v_min", regime.wp.v_min);
      j.field("v_max", regime.wp.v_max);
      j.field("pause", regime.wp.pause);
      j.field("avg_moved_per_step",
              static_cast<double>(moved_total) / d_steps);
      j.field("avg_edge_flips_per_step",
              static_cast<double>(flips_total) / d_steps);
      j.field("avg_dirty_relays_per_step", avg_dirty);
      j.field("incremental_ns_per_step", inc_ns / d_steps);
      j.field("incremental_allocs_per_step",
              static_cast<double>(inc_allocs) / d_steps);
      j.field("full_rebuild_ns_per_step", full_ns / d_steps);
      j.field("speedup_vs_full_rebuild", speedup);
      j.field("compactions", cache.compaction_count());
      j.close_obj();
    }
    j.close_arr();
  }

  // --- 6. sharded mobility: tiled engine scaling ---------------------------
  // Constant-density deployments (the ~1000-node paper setup scaled up by
  // area) under moderate random-waypoint motion, maintained by the tiled
  // ShardedEngine + ShardedSkylineCache at shard counts {1, 2, 4, 8}; each
  // shard count gets its own worker pool of that many threads, so
  // speedup_vs_1_shard is the end-to-end decomposition + threading gain
  // (on a single-core host it measures oversubscription instead — read it
  // against provenance.hardware_concurrency).  Bit-identity: an untimed
  // reference pass replays the identical trajectory (same seed) on a
  // single-engine SkylineCache and records a stride sample of forwarding
  // sets every other step; every sharded run is compared against the
  // recording and the bench aborts on any divergence.
  if (run_section("sharded_mobility")) {
    const obs::TraceSpan section_span("bench.sharded_mobility");
    const std::vector<std::size_t> node_targets =
        quick ? std::vector<std::size_t>{10000}
              : std::vector<std::size_t>{10000, 100000, 1000000};
    constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
    constexpr int kCheckEvery = 2;

    j.open_arr("sharded_mobility");
    for (const std::size_t target : node_targets) {
      net::DeploymentParams p;
      p.model = net::RadiusModel::kUniform;
      p.target_avg_degree = 36.8;
      p.side = 12.5 * std::sqrt(static_cast<double>(target) / 1000.0);
      net::WaypointParams wp;  // moderate regime
      wp.v_min = 0.1;
      wp.v_max = 0.5;
      wp.pause = 2.0;
      const std::uint64_t seed = 0x5EEDC0DEULL + target;
      const int steps = target >= 1000000 ? 3 : (target >= 100000 ? 6 : 10);

      // Untimed reference pass: single engine, same trajectory; record a
      // stride sample of forwarding sets at every check step.
      std::vector<std::vector<std::vector<net::NodeId>>> recorded;
      std::size_t n_nodes = 0;
      std::size_t stride = 1;
      {
        sim::Xoshiro256 rng(seed);
        net::MobileNetwork mobile(p, wp, rng);
        net::DynamicDiskGraph dyn{std::vector<net::Node>(
            mobile.nodes().begin(), mobile.nodes().end())};
        bcast::SkylineCache ref(dyn, pool);
        n_nodes = dyn.size();
        stride = std::max<std::size_t>(1, n_nodes / 2048);
        for (int t = 0; t < steps; ++t) {
          mobile.step(1.0, rng);
          ref.update(dyn.apply(mobile.nodes(), mobile.moved_last_step()));
          if (t % kCheckEvery != 0) continue;
          std::vector<std::vector<net::NodeId>> sample;
          for (std::size_t u = 0; u < n_nodes; u += stride) {
            const auto set =
                ref.forwarding_set(static_cast<net::NodeId>(u));
            sample.emplace_back(set.begin(), set.end());
          }
          recorded.push_back(std::move(sample));
        }
      }

      double ns_1shard = 0.0;
      for (const std::size_t shards : kShardCounts) {
        sim::Xoshiro256 rng(seed);
        net::MobileNetwork mobile(p, wp, rng);
        sim::ThreadPool pool_s(shards);
        net::ShardedEngine::Config cfg;
        cfg.shards = shards;
        cfg.deployment = {{0.0, 0.0}, {p.side, p.side}};
        net::ShardedEngine engine{
            std::vector<net::Node>(mobile.nodes().begin(),
                                   mobile.nodes().end()),
            pool_s, cfg};
        bcast::ShardedSkylineCache cache(engine);

        using clock = std::chrono::steady_clock;
        const std::uint64_t recomputes0 = cache.recompute_count();
        double step_ns = 0.0;
        std::size_t checked = 0;
        for (int t = 0; t < steps; ++t) {
          mobile.step(1.0, rng);
          const auto t0 = clock::now();
          cache.step(mobile.nodes(), mobile.moved_last_step());
          const auto t1 = clock::now();
          step_ns += static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          if (t % kCheckEvery != 0) continue;
          const auto& sample = recorded[checked++];
          std::size_t si = 0;
          for (std::size_t u = 0; u < n_nodes; u += stride, ++si) {
            const auto got = cache.forwarding_set(static_cast<net::NodeId>(u));
            const auto& want = sample[si];
            if (!std::equal(got.begin(), got.end(), want.begin(),
                            want.end())) {
              std::cerr << "FATAL: sharded cache diverged from single "
                           "engine (nodes " << n_nodes << ", shards "
                        << shards << ", step " << t << ", relay " << u
                        << ")\n";
              std::abort();
            }
          }
        }

        const double d_steps = static_cast<double>(steps);
        const std::uint64_t recomputed =
            cache.recompute_count() - recomputes0;
        const double relays_per_s =
            static_cast<double>(recomputed) * 1e9 / step_ns;
        if (shards == 1) ns_1shard = step_ns;
        const double speedup = ns_1shard / step_ns;

        std::cout << "  sharded n=" << n_nodes << " shards=" << shards
                  << " (" << engine.rows() << "x" << engine.cols() << "): "
                  << step_ns / d_steps / 1e6 << " ms/step, "
                  << relays_per_s << " relays/s, halo "
                  << engine.halo_fraction() << " => " << speedup
                  << "x vs 1 shard\n";

        j.open_obj();
        j.field("nodes", static_cast<std::uint64_t>(n_nodes));
        j.field("shards", static_cast<std::uint64_t>(shards));
        j.field("rows", static_cast<std::uint64_t>(engine.rows()));
        j.field("cols", static_cast<std::uint64_t>(engine.cols()));
        j.field("steps", static_cast<std::uint64_t>(steps));
        j.field("step_ns", step_ns / d_steps);
        j.field("recomputed_relays_per_step",
                static_cast<double>(recomputed) / d_steps);
        j.field("relays_per_s", relays_per_s);
        j.field("halo_fraction", engine.halo_fraction());
        j.field("migrations_per_step",
                static_cast<double>(engine.migration_count()) / d_steps);
        j.field("speedup_vs_1_shard", speedup);
        j.field("identity_checks", static_cast<std::uint64_t>(checked));
        j.field("identity_relays_per_check",
                static_cast<std::uint64_t>((n_nodes + stride - 1) / stride));
        j.close_obj();
      }
    }
    j.close_arr();
  }

  j.close_obj();
  out << "\n";
  out.close();
  std::cout << "[OK] wrote " << out_path << "\n";

  if (introspect.running()) {
    std::cout << "[OK] introspection server served " << introspect.requests()
              << " request(s)\n";
    introspect.stop();
  }
  if (obs::blackbox_armed()) {
    obs::blackbox_heartbeat(++section_no);  // final frame: end-of-run state
    if (obs::blackbox_dump_now("exit")) {
      std::cout << "[OK] wrote blackbox report to " << blackbox_path << "\n";
    }
    obs::blackbox_disarm();
  }
  if (obs::profiler_armed()) {
    obs::profiler_disarm();  // joins the drain: the report below is final
    std::ofstream prof_out(profile_path);
    if (!prof_out) {
      std::cerr << "error: cannot open " << profile_path << " for writing\n";
      return 1;
    }
    obs::write_profile_folded(prof_out, obs::profiler_report());
    std::cout << "[OK] wrote " << profile_path << "\n";
  }

  if (!trace_path.empty()) {
    obs::trace_stop();
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::cerr << "error: cannot open " << trace_path << " for writing\n";
      return 1;
    }
    obs::write_trace_json(trace_out);
    std::cout << "[OK] wrote " << trace_path << "\n";
  }
  if (!telemetry_path.empty()) {
    std::ofstream snap_out(telemetry_path);
    if (!snap_out) {
      std::cerr << "error: cannot open " << telemetry_path
                << " for writing\n";
      return 1;
    }
    obs::write_snapshot_json(snap_out, obs::registry());
    std::cout << "[OK] wrote " << telemetry_path << "\n";
  }
  if (!events_path.empty()) {
    obs::events_stop();
    std::ofstream ev_out(events_path);
    if (!ev_out) {
      std::cerr << "error: cannot open " << events_path << " for writing\n";
      return 1;
    }
    obs::write_events_jsonl(ev_out);
    std::cout << "[OK] wrote " << events_path << "\n";
  }
  return 0;
}
