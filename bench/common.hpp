#pragma once

/// \file common.hpp
/// Shared driver for the Chapter 5 figure benches: run the paper's
/// simulation protocol (random point sets over the 12.5 x 12.5 square,
/// source u at the center, 200 trials) and collect the forwarding-set size
/// of u under each scheme.

#include <array>
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broadcast/forwarding.hpp"
#include "core/skyline_dc.hpp"
#include "net/topology.hpp"
#include "sim/histogram.hpp"
#include "sim/montecarlo.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

namespace mldcs::bench {

/// The paper's trial count (Section 5.1: "200 random point sets").
inline constexpr std::size_t kTrials = 200;

/// Master seed for all figure benches; change to re-draw every experiment.
inline constexpr std::uint64_t kMasterSeed = 20070600;  // ICPP 2007 vintage

/// Upper bound on schemes per sweep (there are 5; 8 pads a trial's row of
/// counters to exactly one cache line).
inline constexpr std::size_t kMaxSchemes = 8;

/// Per-trial forwarding-set sizes of the source node (node 0) for each
/// requested scheme, on freshly drawn deployments.  sizes[s][t] = size of
/// scheme `schemes[s]`'s forwarding set in trial t.  Trials are
/// deterministic per (seed, trial) and shared across schemes (every scheme
/// sees the same point set, as in the paper).
///
/// Pass `pool` to reuse a caller's ThreadPool across sweep points
/// (otherwise a transient pool is spun up, as before).
inline std::vector<std::vector<std::uint64_t>> run_sweep_point(
    const net::DeploymentParams& params,
    const std::vector<bcast::Scheme>& schemes, std::size_t trials,
    std::uint64_t seed, sim::ThreadPool* pool = nullptr) {
  if (schemes.size() > kMaxSchemes) {
    throw std::invalid_argument("run_sweep_point: too many schemes");
  }
  // Trial-major accumulation: each trial owns one cache-line-aligned row,
  // so concurrent trials on different threads never write the same line
  // (the old sizes[s][t] scheme-major layout put up to 8 adjacent trials'
  // counters on one line — false sharing on every store).  Transposed to
  // the scheme-major return shape once, after the parallel section.
  struct alignas(64) TrialRow {
    std::array<std::uint64_t, kMaxSchemes> size_of_scheme;
  };
  std::vector<TrialRow> rows(trials);
  const auto body = [&](std::size_t t) {
    sim::Xoshiro256 rng(sim::derive_seed(seed, t));
    const net::DiskGraph g = net::generate_graph(params, rng);
    const bcast::LocalView view = bcast::local_view(g, 0);
    // One skyline-engine workspace per worker thread (workers are
    // persistent, so this amortizes across every trial and sweep point).
    thread_local core::SkylineWorkspace ws;
    rows[t].size_of_scheme.fill(0);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      rows[t].size_of_scheme[s] =
          bcast::forwarding_set(g, view, schemes[s], ws).size();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, body);
  } else {
    sim::parallel_for(trials, body);
  }

  std::vector<std::vector<std::uint64_t>> sizes(
      schemes.size(), std::vector<std::uint64_t>(trials, 0));
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      sizes[s][t] = rows[t].size_of_scheme[s];
    }
  }
  return sizes;
}

/// Mean of integer sizes.
inline double mean_size(const std::vector<std::uint64_t>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (auto v : xs) acc += static_cast<double>(v);
  return acc / static_cast<double>(xs.size());
}

/// Standard bench banner so every binary's output is self-describing.
inline void banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "==================================================================\n"
            << experiment_id << " — " << what << '\n'
            << "trials per point: " << kTrials << ", master seed: "
            << kMasterSeed << '\n'
            << "==================================================================\n";
}

}  // namespace mldcs::bench
