/// Section 5.1.1 cost argument — HELLO-beacon overhead: the skyline scheme
/// needs only 1-hop beacons; the selecting-forwarding-set / greedy /
/// optimal schemes need 2-hop beacons (each HELLO carries the sender's
/// neighbor list).  This bench quantifies the per-period message/byte cost
/// on the Chapter 5 deployments, and the maintenance amplification under
/// mobility (every position change re-triggers beacons; 2-hop knowledge
/// additionally goes stale at neighbors-of-neighbors).

#include <iostream>

#include "../bench/common.hpp"
#include "net/hello.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Table: HELLO overhead",
                "1-hop vs 2-hop neighbor-information maintenance cost");

  sim::Table table({"avg_1hop", "model", "hello1_bytes", "hello2_bytes",
                    "ratio"});
  bool ordered = true;
  double prev_ratio = 0.0;
  for (int n = 4; n <= 20; n += 4) {
    for (const bool hetero : {false, true}) {
      net::DeploymentParams p;
      p.model = hetero ? net::RadiusModel::kUniform
                       : net::RadiusModel::kHomogeneous;
      p.target_avg_degree = n;
      sim::RunningStats h1, h2;
      for (std::size_t t = 0; t < 50; ++t) {
        sim::Xoshiro256 rng(sim::derive_seed(
            bench::kMasterSeed,
            700000 + static_cast<std::uint64_t>(n) * 100 + t * 2 +
                (hetero ? 1 : 0)));
        const auto g = net::generate_graph(p, rng);
        h1.add(static_cast<double>(net::hello1_cost(g).bytes));
        h2.add(static_cast<double>(net::hello2_cost(g).bytes));
      }
      const double ratio = h2.mean() / h1.mean();
      if (!hetero) {
        ordered = ordered && ratio > prev_ratio;  // grows with density
        prev_ratio = ratio;
      }
      table.add_row({std::to_string(n), hetero ? "hetero" : "homo",
                     sim::format_double(h1.mean(), 0),
                     sim::format_double(h2.mean(), 0),
                     sim::format_double(ratio, 2)});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  std::cout
      << "\nreading: a 2-hop HELLO period costs ~(1 + avg_degree)x the bytes"
         " of a 1-hop period; under mobility every beacon period repeats "
         "this, so 1-hop-only schemes (skyline) amortize far better — the "
         "Section 5.1.1 argument.\n";
  std::cout << (ordered
                    ? "[OK] 2-hop/1-hop cost ratio grows with density\n"
                    : "[WARN] cost ratio not monotone in density\n");
  return ordered ? 0 : 1;
}
