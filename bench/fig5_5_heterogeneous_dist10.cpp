/// Figure 5.5 — heterogeneous networks (r ~ U[1,2]), average degree 10:
/// distribution of the number of forward nodes over 200 random point sets.

#include <iostream>

#include "../bench/common.hpp"
#include "sim/chart.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Figure 5.5",
                "heterogeneous, avg degree 10: distribution of #forward nodes");

  const std::vector<bcast::Scheme> schemes{
      bcast::Scheme::kFlooding, bcast::Scheme::kSkyline,
      bcast::Scheme::kGreedy, bcast::Scheme::kOptimal};

  net::DeploymentParams p;
  p.model = net::RadiusModel::kUniform;
  p.target_avg_degree = 10;
  const auto sizes = bench::run_sweep_point(
      p, schemes, bench::kTrials, sim::derive_seed(bench::kMasterSeed, 55));

  std::vector<std::string> names;
  std::vector<sim::IntHistogram> hists(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    names.emplace_back(bcast::scheme_name(schemes[s]));
    hists[s].add_all(sizes[s]);
  }

  sim::render_histogram_table(std::cout, names, hists,
                              "Figure 5.5 (reproduced): counts per size bin");
  std::cout << '\n';
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    sim::render_histogram(std::cout, hists[s], "distribution: " + names[s]);
    std::cout << "  mean=" << sim::format_double(hists[s].mean(), 2)
              << " mode=" << hists[s].mode() << "\n\n";
  }

  sim::Table csv({"size", "flooding", "skyline", "greedy", "optimal"});
  std::uint64_t hi = 0;
  for (const auto& h : hists) hi = std::max(hi, h.max_value());
  for (std::uint64_t v = 0; v <= hi; ++v) {
    std::vector<std::string> row{std::to_string(v)};
    for (const auto& h : hists) row.push_back(std::to_string(h.count(v)));
    csv.add_row(std::move(row));
  }
  csv.print_csv(std::cout);

  const bool shape = hists[3].mean() <= hists[2].mean() + 1e-9 &&
                     hists[2].mean() <= hists[1].mean() + 1e-9 &&
                     hists[1].mean() <= hists[0].mean() + 1e-9;
  std::cout << (shape ? "\n[OK] distribution ordering matches the paper\n"
                      : "\n[WARN] distribution ordering deviates\n");
  return shape ? 0 : 1;
}
