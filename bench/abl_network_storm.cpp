/// Ablation — network-wide broadcast storm: sender designation alone vs the
/// hybrid with receiver-side self-pruning (related work [10][11]).
///
/// The Chapter 5 figures measure *per-relay* forwarding-set size.  Network-
/// wide, sender-based designation accumulates (a node relays if ANY sender
/// names it), so the storm reduction is muted; adding the Wu-Li
/// self-pruning rule at receivers recovers it.  This bench quantifies both
/// effects and checks that delivery never suffers.

#include <iostream>

#include "../bench/common.hpp"
#include "broadcast/broadcast_sim.hpp"
#include "broadcast/self_pruning.hpp"

int main() {
  using namespace mldcs;
  bench::banner("Ablation: network-wide storm",
                "total transmissions per broadcast, sender-only vs hybrid");

  sim::Table table({"avg_1hop", "nodes", "flooding", "skyline",
                    "flood+prune", "skyline+prune", "greedy+prune",
                    "delivery_ok"});
  bool all_delivered = true;
  bool hybrid_wins = true;

  for (int n = 6; n <= 18; n += 4) {
    sim::RunningStats nodes_s, flood, sky, floodp, skyp, greedyp;
    bool delivered = true;
    const std::size_t trials = 60;
    for (std::size_t t = 0; t < trials; ++t) {
      net::DeploymentParams p;
      p.model = net::RadiusModel::kHomogeneous;  // delivery guaranteed
      p.target_avg_degree = n;
      sim::Xoshiro256 rng(sim::derive_seed(
          bench::kMasterSeed, 880000 + static_cast<std::uint64_t>(n) * 1000 + t));
      const auto g = net::generate_graph(p, rng);
      nodes_s.add(static_cast<double>(g.size()));

      const auto f = bcast::simulate_broadcast(g, 0, bcast::Scheme::kFlooding);
      const auto s = bcast::simulate_broadcast(g, 0, bcast::Scheme::kSkyline);
      const auto fp =
          bcast::simulate_pruned_broadcast(g, 0, bcast::Scheme::kFlooding);
      const auto sp =
          bcast::simulate_pruned_broadcast(g, 0, bcast::Scheme::kSkyline);
      const auto gp =
          bcast::simulate_pruned_broadcast(g, 0, bcast::Scheme::kGreedy);
      delivered = delivered && f.full_delivery() && s.full_delivery() &&
                  fp.full_delivery() && sp.full_delivery() &&
                  gp.full_delivery();
      flood.add(static_cast<double>(f.transmissions));
      sky.add(static_cast<double>(s.transmissions));
      floodp.add(static_cast<double>(fp.transmissions));
      skyp.add(static_cast<double>(sp.transmissions));
      greedyp.add(static_cast<double>(gp.transmissions));
    }
    all_delivered = all_delivered && delivered;
    hybrid_wins = hybrid_wins && skyp.mean() <= sky.mean() + 1e-9 &&
                  floodp.mean() < flood.mean() &&
                  skyp.mean() <= floodp.mean() + 1e-9;
    table.add_numeric_row({static_cast<double>(n), nodes_s.mean(),
                           flood.mean(), sky.mean(), floodp.mean(),
                           skyp.mean(), greedyp.mean()});
    // delivery flag as last column (numeric row then patch would be ugly;
    // re-add as a separate textual row only on failure)
    if (!delivered) {
      table.add_row({"^^^", "", "", "", "", "", "", "DELIVERY FAILED"});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout);

  std::cout << "\nreading: per-broadcast transmissions.  Sender-only skyline "
               "trims little network-wide (designations accumulate), but "
               "skyline+self-pruning beats flooding+self-pruning: smaller "
               "designated sets give the pruning rule more silence to work "
               "with.\n";
  std::cout << ((all_delivered && hybrid_wins)
                    ? "[OK] full delivery everywhere; hybrid reduces the storm\n"
                    : "[WARN] unexpected storm/delivery behaviour\n");
  return (all_delivered && hybrid_wins) ? 0 : 1;
}
