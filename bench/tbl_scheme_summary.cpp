/// Summary table — every forwarding scheme in the repository, side by side,
/// at the paper's two headline densities (10 and 20 average 1-hop
/// neighbors), homogeneous and heterogeneous, with 95% confidence
/// intervals.  This is the one-stop table a reader checks before trusting
/// any single figure: per-relay set size, 2-hop domination rate, and
/// network-wide transmissions.

#include <iostream>

#include "../bench/common.hpp"
#include "broadcast/broadcast_sim.hpp"
#include "broadcast/coverage_gap.hpp"
#include "broadcast/self_pruning.hpp"

namespace {

using namespace mldcs;

struct Row {
  std::string name;
  sim::RunningStats fwd_size;
  sim::RunningStats tx;
  std::size_t dominated = 0;  ///< trials where the set covers all 2-hop nodes
  std::size_t trials = 0;
};

bool dominates(const net::DiskGraph& g, const bcast::LocalView& view,
               const std::vector<net::NodeId>& fwd) {
  for (net::NodeId w : view.two_hop) {
    bool covered = false;
    for (net::NodeId v : fwd) covered = covered || g.linked(v, w);
    if (!covered) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("Table: scheme summary",
                "all schemes at densities 10 and 20, homo + hetero, CI95");

  for (const bool hetero : {false, true}) {
    for (const int degree : {10, 20}) {
      std::vector<Row> rows;
      rows.push_back({"flooding", {}, {}, 0, 0});
      rows.push_back({"skyline", {}, {}, 0, 0});
      if (!hetero) rows.push_back({"sel-fwd-set", {}, {}, 0, 0});
      rows.push_back({"greedy", {}, {}, 0, 0});
      rows.push_back({"optimal", {}, {}, 0, 0});
      rows.push_back({"skyline+patch", {}, {}, 0, 0});
      rows.push_back({"skyline+prune (net)", {}, {}, 0, 0});

      const std::size_t trials = 100;
      bcast::LocalView view;  // refilled per trial, capacity reused
      for (std::size_t t = 0; t < trials; ++t) {
        net::DeploymentParams p;
        p.model = hetero ? net::RadiusModel::kUniform
                         : net::RadiusModel::kHomogeneous;
        p.target_avg_degree = degree;
        sim::Xoshiro256 rng(sim::derive_seed(
            bench::kMasterSeed,
            660000 + static_cast<std::uint64_t>(degree) * 10000 +
                (hetero ? 5000u : 0u) + t));
        const auto g = net::generate_graph(p, rng);
        bcast::local_view(g, 0, view);

        const auto record = [&](Row& row,
                                const std::vector<net::NodeId>& fwd) {
          row.fwd_size.add(static_cast<double>(fwd.size()));
          if (dominates(g, view, fwd)) ++row.dominated;
          ++row.trials;
        };

        std::size_t r = 0;
        record(rows[r++], view.one_hop);
        record(rows[r++], bcast::skyline_forwarding_set(g, view));
        if (!hetero) record(rows[r++], bcast::calinescu_forwarding_set(g, view));
        record(rows[r++], bcast::greedy_forwarding_set(g, view));
        record(rows[r++], bcast::optimal_forwarding_set(g, view));
        record(rows[r++], bcast::patched_skyline_forwarding_set(g, view));
        // The hybrid row reports network-wide transmissions instead of a
        // per-relay set; reuse fwd_size for the skyline set it designates.
        record(rows[r], bcast::skyline_forwarding_set(g, view));
        rows[r].tx.add(static_cast<double>(
            bcast::simulate_pruned_broadcast(g, 0, bcast::Scheme::kSkyline)
                .transmissions));
      }

      sim::Table table({"scheme", "avg_fwd_size", "ci95", "2hop_dominated_pct",
                        "net_tx_mean"});
      for (const Row& row : rows) {
        table.add_row(
            {row.name, sim::format_double(row.fwd_size.mean(), 2),
             "+-" + sim::format_double(row.fwd_size.ci95_halfwidth(), 2),
             sim::format_double(100.0 * static_cast<double>(row.dominated) /
                                    static_cast<double>(row.trials),
                                1),
             row.tx.count() ? sim::format_double(row.tx.mean(), 1) : "-"});
      }
      std::cout << (hetero ? "heterogeneous r~U[1,2]" : "homogeneous r=1")
                << ", avg degree " << degree << ":\n";
      table.print(std::cout);
      table.print_csv(std::cout);
      std::cout << '\n';
    }
  }

  std::cout << "[OK] summary table generated\n";
  return 0;
}
