// Tests for the sampling profiler: arm/disarm lifecycle, PhaseScope
// nesting, phase attribution over a tagged busy loop (the sampling path
// itself, end to end: timers, SIGPROF handler, ring, drain, fold),
// capture-window semantics, the crash-snapshot line, the folded/JSON
// writers' schema, and the telemetry-off stub contract.

#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

namespace mldcs::obs {
namespace {

/// Burn CPU for roughly `ms` of wall time (the loop is CPU-bound, so
/// CPU-clock timers see it 1:1).  Returns a value the optimizer must
/// keep, so the loop cannot be elided.
std::uint64_t spin_for_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile std::uint64_t acc = 1;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 4096; ++i) {
      acc = acc * 2862933555777941757ULL + 3037000493ULL;
    }
  }
  return acc;
}

std::uint64_t phase_sum(const ProfileReport& r) {
  std::uint64_t sum = 0;
  for (const auto& [name, count] : r.phases) sum += count;
  return sum;
}

std::uint64_t phase_count(const ProfileReport& r, const char* name) {
  for (const auto& [n, count] : r.phases) {
    if (n == name) return count;
  }
  return 0;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kTelemetryEnabled) {
      GTEST_SKIP() << "profiler requires MLDCS_ENABLE_TELEMETRY";
    }
    profiler_disarm();  // isolate from any earlier test's arming
  }
  void TearDown() override { profiler_disarm(); }
};

TEST_F(ProfilerTest, DisarmedIsInert) {
  EXPECT_FALSE(profiler_armed());
  profiler_disarm();  // disarming while disarmed must be a safe no-op
  EXPECT_FALSE(profiler_armed());
  profiler_register_thread();  // registration while disarmed: also safe
}

TEST_F(ProfilerTest, ArmIsExclusiveAndRearmable) {
  ProfilerConfig cfg;
  ASSERT_TRUE(profiler_arm(cfg));
  EXPECT_TRUE(profiler_armed());
  EXPECT_FALSE(profiler_arm(cfg)) << "second arm while armed must fail";
  profiler_disarm();
  EXPECT_FALSE(profiler_armed());
  ASSERT_TRUE(profiler_arm(cfg)) << "disarm must allow rearming";
  profiler_disarm();
}

TEST_F(ProfilerTest, PhaseScopeNestsAndRestores) {
  EXPECT_EQ(profiler_current_phase(), Phase::kNone);
  {
    const PhaseScope outer(Phase::kShardStep);
    EXPECT_EQ(profiler_current_phase(), Phase::kShardStep);
    {
      const PhaseScope inner(Phase::kHaloExchange);
      EXPECT_EQ(profiler_current_phase(), Phase::kHaloExchange);
    }
    EXPECT_EQ(profiler_current_phase(), Phase::kShardStep);
  }
  EXPECT_EQ(profiler_current_phase(), Phase::kNone);
}

// The end-to-end sampling path: a tagged busy loop on the arming thread
// must dominate the profile, and the per-phase counts must sum exactly
// to the total (every sample carries one phase).
TEST_F(ProfilerTest, TaggedBusyLoopDominatesProfile) {
  ProfilerConfig cfg;
  cfg.hz = 500;  // dense sampling keeps the test short but stable
  ASSERT_TRUE(profiler_arm(cfg));
  {
    const PhaseScope phase(Phase::kSimdKernel);
    EXPECT_NE(spin_for_ms(400), 0u);
  }
  profiler_disarm();

  const ProfileReport r = profiler_report();
  EXPECT_EQ(r.hz, 500u);
  EXPECT_GT(r.duration_s, 0.0);
  ASSERT_GT(r.total_samples, 20u)
      << "a 400 ms busy loop at 500 Hz must produce samples";
  EXPECT_EQ(phase_sum(r), r.total_samples)
      << "phase counts must sum to the total";
  const std::uint64_t tagged = phase_count(r, "simd_kernel");
  EXPECT_GE(static_cast<double>(tagged),
            0.9 * static_cast<double>(r.total_samples))
      << "the tagged loop owns the CPU, so >=90% of samples must carry "
      << "its phase (got " << tagged << "/" << r.total_samples << ")";
}

// capture_window from a disarmed state arms, samples registered worker
// threads (the caller sleeps on its CPU clock, so the samples must come
// from the worker), disarms, and returns a complete report.
TEST_F(ProfilerTest, CaptureWindowSamplesRegisteredWorker) {
  std::atomic<bool> ready{false};
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    profiler_register_thread();
    ready.store(true);
    const PhaseScope phase(Phase::kCacheRecompute);
    while (!stop.load()) {
      EXPECT_NE(spin_for_ms(10), 0u);
    }
  });
  while (!ready.load()) std::this_thread::yield();

  ProfilerConfig cfg;
  cfg.hz = 500;
  const ProfileReport r = profiler_capture_window(0.4, cfg);
  stop.store(true);
  worker.join();

  EXPECT_FALSE(profiler_armed()) << "capture_window must disarm on exit";
  ASSERT_GT(r.total_samples, 0u);
  EXPECT_EQ(phase_sum(r), r.total_samples);
  EXPECT_GT(phase_count(r, "cache_recompute"), 0u)
      << "the worker's tagged loop must appear in the window";
}

// The crash-snapshot line is refreshed by every drain sweep (including
// the final one at disarm), so after a sampled window it must be a
// bounded, newline-terminated {"kind":"profile",...} JSON line.
TEST_F(ProfilerTest, CrashSnapshotIsBoundedJsonLine) {
  ProfilerConfig cfg;
  cfg.hz = 500;
  ASSERT_TRUE(profiler_arm(cfg));
  {
    const PhaseScope phase(Phase::kShardStep);
    EXPECT_NE(spin_for_ms(300), 0u);
  }
  profiler_disarm();

  char buf[16384];
  const std::size_t n = profiler_crash_snapshot(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  ASSERT_LE(n, sizeof(buf));
  const std::string line(buf, n);
  EXPECT_EQ(line.rfind("{\"kind\":\"profile\",\"schema\":"
                       "\"mldcs-profile-v1\"", 0), 0u);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"phases\":{"), std::string::npos);

  // A too-small destination must refuse (whole line or nothing).
  char tiny[8];
  EXPECT_EQ(profiler_crash_snapshot(tiny, sizeof(tiny)), 0u);
}

// --- Writers: real in both telemetry branches ------------------------------

TEST(ProfilerWriters, FoldedFormatIsOneStackPerLine) {
  ProfileReport r;
  r.hz = 97;
  r.total_samples = 5;
  r.folded = {{"simd_kernel;step;leaf", 3}, {"none;main", 2}};
  r.phases = {{"simd_kernel", 3}, {"none", 2}};
  std::ostringstream os;
  write_profile_folded(os, r);
  EXPECT_EQ(os.str(), "simd_kernel;step;leaf 3\nnone;main 2\n");
}

TEST(ProfilerWriters, JsonDocumentCarriesSchemaAndTotals) {
  ProfileReport r;
  r.hz = 97;
  r.total_samples = 3;
  r.dropped = 1;
  r.duration_s = 2.0;
  r.folded = {{"shard_step;apply", 3}};
  r.phases = {{"shard_step", 3}};
  std::ostringstream os;
  write_profile_json(os, r);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\":\"mldcs-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"hz\":97"), std::string::npos);
  EXPECT_NE(doc.find("\"total_samples\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"phases\":{\"shard_step\":3}"), std::string::npos);
  EXPECT_NE(doc.find("\"folded\":{\"shard_step;apply\":3}"),
            std::string::npos);
}

TEST(ProfilerWriters, EmptyReportIsValidInBothBranches) {
  // The introspection server calls the writers unconditionally; an OFF
  // build must still produce valid (empty) documents.
  const ProfileReport r;
  std::ostringstream folded;
  write_profile_folded(folded, r);
  EXPECT_TRUE(folded.str().empty());
  std::ostringstream json;
  write_profile_json(json, r);
  EXPECT_NE(json.str().find("\"schema\":\"mldcs-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"total_samples\":0"), std::string::npos);
}

// --- Telemetry-off stub contract -------------------------------------------

TEST(ProfilerStubs, OffBuildIsFullyInert) {
  if (kTelemetryEnabled) {
    GTEST_SKIP() << "stub contract only observable with telemetry off";
  }
  EXPECT_FALSE(profiler_arm(ProfilerConfig{}));
  EXPECT_FALSE(profiler_armed());
  profiler_register_thread();
  profiler_disarm();
  const PhaseScope scope(Phase::kShardStep);
  EXPECT_EQ(profiler_current_phase(), Phase::kNone);
  EXPECT_EQ(profiler_report().total_samples, 0u);
  EXPECT_EQ(profiler_capture_window(0.05, ProfilerConfig{}).total_samples,
            0u);
  char buf[64];
  EXPECT_EQ(profiler_crash_snapshot(buf, sizeof(buf)), 0u);
}

}  // namespace
}  // namespace mldcs::obs
