// Tests for chrome-trace span collection.  The trace state is process
// global, so every test starts from a clean stop+clear and the assertions
// are substring checks on the emitted JSON document.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/thread_pool.hpp"

namespace mldcs::obs {
namespace {

std::string flush_trace() {
  std::ostringstream os;
  write_trace_json(os);
  return os.str();
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_stop();
    trace_clear();
  }
  void TearDown() override {
    trace_stop();
    trace_clear();
  }
};

TEST_F(TraceTest, EmptyDocumentIsValidJson) {
  const std::string doc = flush_trace();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "\"ph\""), 0u);
}

TEST_F(TraceTest, SpansIgnoredWhileStopped) {
  { const TraceSpan span("test.should_not_appear"); }
  const std::string doc = flush_trace();
  EXPECT_EQ(doc.find("test.should_not_appear"), std::string::npos);
}

#if MLDCS_ENABLE_TELEMETRY

TEST_F(TraceTest, RecordsCompleteEvents) {
  trace_start();
  EXPECT_TRUE(trace_enabled());
  { const TraceSpan span("test.outer"); }
  { const TraceSpan span("test.outer"); }
  trace_stop();
  EXPECT_FALSE(trace_enabled());

  const std::string doc = flush_trace();
  EXPECT_EQ(count_occurrences(doc, "\"test.outer\""), 2u);
  EXPECT_EQ(count_occurrences(doc, "\"ph\":\"X\""), 2u);
  EXPECT_NE(doc.find("\"dur\":"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"mldcs\""), std::string::npos);
}

TEST_F(TraceTest, FlushClearsBuffers) {
  trace_start();
  { const TraceSpan span("test.once"); }
  trace_stop();
  EXPECT_NE(flush_trace().find("test.once"), std::string::npos);
  EXPECT_EQ(flush_trace().find("test.once"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  trace_start();
  { const TraceSpan span("test.dropped"); }
  trace_stop();
  trace_clear();
  EXPECT_EQ(flush_trace().find("test.dropped"), std::string::npos);
}

TEST_F(TraceTest, SpanArmedAtConstructionOutlivesStop) {
  // The span decides at construction; stopping mid-span still records it.
  trace_start();
  std::string doc;
  {
    const TraceSpan span("test.straddles_stop");
    trace_stop();
  }
  doc = flush_trace();
  EXPECT_NE(doc.find("test.straddles_stop"), std::string::npos);
}

TEST_F(TraceTest, MultiThreadSpansAllFlushedWithDistinctTids) {
  trace_start();
  sim::ThreadPool pool(4);
  pool.parallel_for(8, [](std::size_t) {
    const TraceSpan span("test.worker");
  });
  trace_stop();
  const std::string doc = flush_trace();
  EXPECT_EQ(count_occurrences(doc, "\"test.worker\""), 8u);
  EXPECT_NE(doc.find("\"tid\":"), std::string::npos);
}

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace
}  // namespace mldcs::obs
