// Tests for the JSON and Prometheus snapshot exporters: schema fields,
// name sanitization, and histogram series shape.

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/telemetry.hpp"

namespace mldcs::obs {
namespace {

std::string to_json(const Registry& r) {
  std::ostringstream os;
  write_snapshot_json(os, r);
  return os.str();
}

std::string to_prometheus(const Registry& r) {
  std::ostringstream os;
  write_prometheus_text(os, r);
  return os.str();
}

TEST(PrometheusTest, EmptyRegistryEmitsNothing) {
  const Registry r;
  EXPECT_TRUE(to_prometheus(r).empty());
}

TEST(SnapshotJsonTest, EmptyRegistrySchema) {
  const Registry r;
  const std::string doc = to_json(r);
  EXPECT_NE(doc.find("\"schema\":\"mldcs-telemetry-v1\""), std::string::npos);
  EXPECT_NE(doc.find(kTelemetryEnabled ? "\"enabled\":true"
                                       : "\"enabled\":false"),
            std::string::npos);
  EXPECT_NE(doc.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\":{}"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\":{}"), std::string::npos);
}

#if MLDCS_ENABLE_TELEMETRY

TEST(SnapshotJsonTest, MetricsSerialized) {
  Registry r;
  r.counter("cache.updates").add(3);
  r.gauge("cache.dead_permille").set(-12);
  r.histogram("cache.dirty").record(5);
  r.histogram("cache.dirty").record(5);

  const std::string doc = to_json(r);
  EXPECT_NE(doc.find("\"cache.updates\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"cache.dead_permille\":-12"), std::string::npos);
  EXPECT_NE(doc.find("\"count\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"sum\":10"), std::string::npos);
  EXPECT_NE(doc.find("\"min\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"max\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"buckets\":[{\"lo\":4,\"hi\":7,\"count\":2}]"),
            std::string::npos);
}

TEST(PrometheusTest, FamiliesTypedAndPrefixed) {
  Registry r;
  r.counter("skyline.calls").add(7);
  r.gauge("pool.queue-depth").set(2);

  const std::string doc = to_prometheus(r);
  // Names sanitized (alnum-or-underscore) and prefixed with mldcs_.
  EXPECT_NE(doc.find("# TYPE mldcs_skyline_calls counter"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_skyline_calls 7"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE mldcs_pool_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_pool_queue_depth 2"), std::string::npos);
}

TEST(PrometheusTest, HistogramSeriesAreCumulative) {
  Registry r;
  Histogram& h = r.histogram("dist");
  h.record(1);   // bucket [1,1]
  h.record(6);   // bucket [4,7]
  h.record(6);

  const std::string doc = to_prometheus(r);
  EXPECT_NE(doc.find("# TYPE mldcs_dist histogram"), std::string::npos);
  // Cumulative counts: le="1" sees 1 sample, le="7" sees all 3.
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"7\"} 3"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_sum 13"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_count 3"), std::string::npos);
}

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace
}  // namespace mldcs::obs
