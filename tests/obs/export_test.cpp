// Tests for the JSON and Prometheus snapshot exporters: schema fields,
// name sanitization, and histogram series shape.

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"

namespace mldcs::obs {
namespace {

std::string to_json(const Registry& r) {
  std::ostringstream os;
  write_snapshot_json(os, r);
  return os.str();
}

std::string to_prometheus(const Registry& r) {
  std::ostringstream os;
  write_prometheus_text(os, r);
  return os.str();
}

TEST(PrometheusTest, EmptyRegistryEmitsNothing) {
  const Registry r;
  EXPECT_TRUE(to_prometheus(r).empty());
}

TEST(SnapshotJsonTest, EmptyRegistrySchema) {
  const Registry r;
  const std::string doc = to_json(r);
  EXPECT_NE(doc.find("\"schema\":\"mldcs-telemetry-v1\""), std::string::npos);
  EXPECT_NE(doc.find(kTelemetryEnabled ? "\"enabled\":true"
                                       : "\"enabled\":false"),
            std::string::npos);
  EXPECT_NE(doc.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\":{}"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\":{}"), std::string::npos);
}

#if MLDCS_ENABLE_TELEMETRY

TEST(SnapshotJsonTest, MetricsSerialized) {
  Registry r;
  r.counter("cache.updates").add(3);
  r.gauge("cache.dead_permille").set(-12);
  r.histogram("cache.dirty").record(5);
  r.histogram("cache.dirty").record(5);

  const std::string doc = to_json(r);
  EXPECT_NE(doc.find("\"cache.updates\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"cache.dead_permille\":-12"), std::string::npos);
  EXPECT_NE(doc.find("\"count\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"sum\":10"), std::string::npos);
  EXPECT_NE(doc.find("\"min\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"max\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"buckets\":[{\"lo\":4,\"hi\":7,\"count\":2}]"),
            std::string::npos);
}

TEST(PrometheusTest, FamiliesTypedAndPrefixed) {
  Registry r;
  r.counter("skyline.calls").add(7);
  r.gauge("pool.queue-depth").set(2);

  const std::string doc = to_prometheus(r);
  // Names sanitized (alnum-or-underscore) and prefixed with mldcs_.
  EXPECT_NE(doc.find("# TYPE mldcs_skyline_calls counter"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_skyline_calls 7"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE mldcs_pool_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_pool_queue_depth 2"), std::string::npos);
}

TEST(PrometheusTest, HistogramSeriesAreCumulative) {
  Registry r;
  Histogram& h = r.histogram("dist");
  h.record(1);   // bucket [1,1]
  h.record(6);   // bucket [4,7]
  h.record(6);

  const std::string doc = to_prometheus(r);
  EXPECT_NE(doc.find("# TYPE mldcs_dist histogram"), std::string::npos);
  // Cumulative counts: le="1" sees 1 sample, le="7" sees all 3.
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"7\"} 3"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_sum 13"), std::string::npos);
  EXPECT_NE(doc.find("mldcs_dist_count 3"), std::string::npos);
}

#endif  // MLDCS_ENABLE_TELEMETRY

// Exporters under concurrent registration: writer threads registering and
// bumping fresh metrics while the main thread snapshots both formats in a
// loop.  The introspection server serves exactly this pattern (a scraper
// polling /metrics while the run registers late series), so the exporters
// must tolerate a registry that grows mid-scrape.  The assertions are
// deliberately weak — well-formed envelopes, all names present in the
// final snapshot — because the real verdict comes from the asan and tsan
// presets running this test.
TEST(ExportConcurrencyTest, RegistrationWhileExportingIsSafe) {
  Registry r;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 32;
  std::atomic<bool> go{false};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&r, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::string stem =
            "stress.t" + std::to_string(t) + ".m" + std::to_string(i);
        r.counter(stem + ".c").add(i + 1);
        r.gauge(stem + ".g").set(static_cast<std::int64_t>(i));
        r.histogram(stem + ".h").record(i);
      }
    });
  }

  go.store(true, std::memory_order_release);
  for (int scrape = 0; scrape < 50; ++scrape) {
    std::ostringstream json;
    write_snapshot_json(json, r);
    const std::string doc = json.str();
    EXPECT_EQ(doc.front(), '{');
    EXPECT_NE(doc.find("\"schema\":\"mldcs-telemetry-v1\""),
              std::string::npos);
    std::ostringstream prom;
    write_prometheus_text(prom, r);
  }
  for (std::thread& w : writers) w.join();

  if (kTelemetryEnabled) {
    std::ostringstream final_json;
    write_snapshot_json(final_json, r);
    const std::string doc = final_json.str();
    for (std::size_t t = 0; t < kThreads; ++t) {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::string stem =
            "stress.t" + std::to_string(t) + ".m" + std::to_string(i);
        ASSERT_NE(doc.find("\"" + stem + ".c\":"), std::string::npos)
            << "registered counter lost: " << stem;
      }
    }
  }
}

}  // namespace
}  // namespace mldcs::obs
