// Tests for the blackbox flight recorder: arm/heartbeat/dump lifecycle,
// ring wrap, the watchdog dump hook, and — via a re-exec death test — the
// async-signal-safe crash dumper itself (a child driven into SIGABRT must
// leave a parseable mldcs-blackbox-v1 report whose newest heartbeat
// matches the step the parent drove it to).

#include "obs/blackbox.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"

namespace mldcs::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

/// Step tag of the newest heartbeat frame in a report (frames are dumped
/// oldest to newest), or 0 when the report has none.
std::uint64_t newest_heartbeat_step(const std::string& doc) {
  const std::size_t frame = doc.rfind("{\"kind\":\"heartbeat\"");
  if (frame == std::string::npos) return 0;
  const std::size_t at = doc.find("\"step\":", frame);
  if (at == std::string::npos) return 0;
  return std::strtoull(doc.c_str() + at + 7, nullptr, 10);
}

class BlackBoxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kTelemetryEnabled) {
      GTEST_SKIP() << "blackbox requires MLDCS_ENABLE_TELEMETRY";
    }
    blackbox_disarm();  // isolate from any earlier test's arming
  }
  void TearDown() override { blackbox_disarm(); }

  std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

TEST_F(BlackBoxTest, DisarmedIsInert) {
  EXPECT_FALSE(blackbox_armed());
  blackbox_heartbeat(1);  // must be a safe no-op
  EXPECT_FALSE(blackbox_dump_now("test"));
}

TEST_F(BlackBoxTest, ArmHeartbeatDumpRoundtrip) {
  const std::string path = temp_path("bb_roundtrip.jsonl");
  BlackBoxConfig cfg;
  cfg.path = path.c_str();
  cfg.install_signal_handlers = false;
  ASSERT_TRUE(blackbox_arm(cfg));
  EXPECT_TRUE(blackbox_armed());

  registry().counter("bbtest.ticks").add(7);
  for (std::uint64_t step = 1; step <= 5; ++step) blackbox_heartbeat(step);
  EXPECT_EQ(blackbox_heartbeat_count(), 5u);
  ASSERT_TRUE(blackbox_dump_now("test"));

  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema\":\"mldcs-blackbox-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"test\""), std::string::npos);
  EXPECT_EQ(count_of(doc, "{\"kind\":\"heartbeat\""), 5u);
  EXPECT_NE(doc.find("\"bbtest.ticks\":[7,"), std::string::npos);
  EXPECT_NE(doc.find("{\"kind\":\"end\",\"frames\":5,"), std::string::npos);
  EXPECT_EQ(newest_heartbeat_step(doc), 5u);
}

TEST_F(BlackBoxTest, CounterDeltasAreSinceLastFrame) {
  const std::string path = temp_path("bb_deltas.jsonl");
  BlackBoxConfig cfg;
  cfg.path = path.c_str();
  cfg.install_signal_handlers = false;
  ASSERT_TRUE(blackbox_arm(cfg));

  Counter& c = registry().counter("bbtest.delta");
  c.add(10);
  blackbox_heartbeat(1);  // absolute >= 10, delta vs arm baseline
  c.add(3);
  blackbox_heartbeat(2);  // delta must be exactly 3
  ASSERT_TRUE(blackbox_dump_now("test"));

  const std::string doc = slurp(path);
  const std::uint64_t abs_before = c.value();
  std::ostringstream want;
  want << "\"bbtest.delta\":[" << abs_before << ",3]";
  EXPECT_NE(doc.find(want.str()), std::string::npos) << doc;
}

TEST_F(BlackBoxTest, RingWrapKeepsNewestFrames) {
  const std::string path = temp_path("bb_wrap.jsonl");
  BlackBoxConfig cfg;
  cfg.path = path.c_str();
  cfg.frames = 4;
  cfg.install_signal_handlers = false;
  ASSERT_TRUE(blackbox_arm(cfg));

  for (std::uint64_t step = 1; step <= 10; ++step) blackbox_heartbeat(step);
  EXPECT_EQ(blackbox_heartbeat_count(), 10u);
  ASSERT_TRUE(blackbox_dump_now("test"));

  const std::string doc = slurp(path);
  EXPECT_EQ(count_of(doc, "{\"kind\":\"heartbeat\""), 4u);
  // The ring keeps the newest frames: steps 7..10 survive, 1..6 do not.
  EXPECT_EQ(doc.find("\"step\":6,"), std::string::npos);
  EXPECT_NE(doc.find("\"step\":7,"), std::string::npos);
  EXPECT_EQ(newest_heartbeat_step(doc), 10u);
}

TEST_F(BlackBoxTest, DoubleArmAndBadPathFail) {
  const std::string path = temp_path("bb_double.jsonl");
  BlackBoxConfig cfg;
  cfg.path = path.c_str();
  cfg.install_signal_handlers = false;
  ASSERT_TRUE(blackbox_arm(cfg));
  EXPECT_FALSE(blackbox_arm(cfg));  // already armed
  blackbox_disarm();

  BlackBoxConfig bad;
  bad.path = "/nonexistent-dir-for-mldcs-test/bb.jsonl";
  bad.install_signal_handlers = false;
  EXPECT_FALSE(blackbox_arm(bad));
  EXPECT_FALSE(blackbox_armed());
}

TEST_F(BlackBoxTest, WatchdogMismatchTriggersDump) {
  const std::string path = temp_path("bb_watchdog.jsonl");
  BlackBoxConfig cfg;
  cfg.path = path.c_str();
  cfg.install_signal_handlers = false;
  ASSERT_TRUE(blackbox_arm(cfg));
  blackbox_heartbeat(1);

  // Reference and cached views that can never agree: every check finds
  // mismatches, so check_now must route through blackbox_dump_now.
  ConsistencyWatchdog::Config wd_cfg;
  wd_cfg.samples = 2;
  ConsistencyWatchdog dog(
      /*n_relays=*/4,
      [](std::uint32_t) { return std::vector<std::uint32_t>{1}; },
      [](std::uint32_t) { return std::vector<std::uint32_t>{2}; }, wd_cfg);
  EXPECT_FALSE(dog.check_now());

  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"reason\":\"watchdog\""), std::string::npos);
  EXPECT_GE(count_of(doc, "{\"kind\":\"heartbeat\""), 1u);
}

// The acceptance-criterion crash test: a child process (threadsafe death
// tests re-exec the binary, so fork-with-threads hazards do not apply)
// arms the recorder, heartbeats to a step count the parent knows, and
// aborts mid-run.  The handler must leave a parseable report whose reason
// is SIGABRT and whose newest frame carries exactly that step.
TEST_F(BlackBoxTest, CrashDumpOnSigabrtCarriesLastHeartbeat) {
  constexpr std::uint64_t kSteps = 41;
  const std::string path = temp_path("bb_crash.jsonl");

  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        BlackBoxConfig cfg;
        cfg.path = path.c_str();
        if (!blackbox_arm(cfg)) _Exit(97);
        registry().counter("bbtest.crash").add(1);
        for (std::uint64_t step = 1; step <= kSteps; ++step) {
          blackbox_heartbeat(step);
        }
        std::raise(SIGABRT);
      },
      ::testing::KilledBySignal(SIGABRT), "");

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty()) << "crash handler wrote no report";
  EXPECT_NE(doc.find("\"schema\":\"mldcs-blackbox-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"SIGABRT\""), std::string::npos);
  EXPECT_EQ(newest_heartbeat_step(doc), kSteps);
  EXPECT_NE(doc.find("{\"kind\":\"end\","), std::string::npos);
}

TEST(BlackBoxStubTest, OffModeRefusesToArm) {
  if (kTelemetryEnabled) {
    GTEST_SKIP() << "stub behaviour only observable with telemetry off";
  }
  BlackBoxConfig cfg;
  EXPECT_FALSE(blackbox_arm(cfg));
  EXPECT_FALSE(blackbox_armed());
  EXPECT_FALSE(blackbox_dump_now("test"));
  EXPECT_EQ(blackbox_heartbeat_count(), 0u);
}

}  // namespace
}  // namespace mldcs::obs
