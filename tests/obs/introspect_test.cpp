// Tests for the live introspection server: endpoint routing and status
// codes over a raw HTTP/1.0 socket client, the /healthz verdict hook,
// eager shard-metric registration (a snapshot taken before the first
// step must already carry every shard.*/cache.* series), and concurrent
// polling of a live sharded run (the tsan leg's data-race probe).

#include "obs/introspect.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "broadcast/sharded_cache.hpp"
#include "net/mobility.hpp"
#include "net/sharded_engine.hpp"
#include "net/topology.hpp"
#include "obs/telemetry.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::obs {
namespace {

/// One blocking HTTP request against 127.0.0.1:`port`; returns the whole
/// response (status line, headers, body) or "" on any socket failure.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(IntrospectServerTest, StartStopLifecycle) {
  IntrospectServer server;
  std::string error;
  ASSERT_TRUE(server.start({}, &error)) << error;
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);  // ephemeral bind resolved
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.stop();  // idempotent
}

TEST(IntrospectServerTest, DoubleStartFails) {
  IntrospectServer server;
  ASSERT_TRUE(server.start({}));
  std::string error;
  EXPECT_FALSE(server.start({}, &error));
  EXPECT_FALSE(error.empty());
  server.stop();
}

TEST(IntrospectServerTest, EndpointsServeTheirSchemas) {
  Registry r;
  r.counter("introspect.test_hits").add(3);

  IntrospectServer server;
  IntrospectServer::Options opt;
  opt.registry = &r;
  ASSERT_TRUE(server.start(opt));
  const std::uint16_t port = server.port();

  const std::string index = get(port, "/");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find("/snapshot.json"), std::string::npos);

  const std::string snapshot = get(port, "/snapshot.json");
  EXPECT_NE(snapshot.find("200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"schema\":\"mldcs-telemetry-v1\""),
            std::string::npos);

  const std::string metrics = get(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  if (kTelemetryEnabled) {
    EXPECT_NE(snapshot.find("\"introspect.test_hits\":3"),
              std::string::npos);
    EXPECT_NE(metrics.find("mldcs_introspect_test_hits 3"),
              std::string::npos);
  }

  const std::string events = get(port, "/events?tail=4");
  EXPECT_NE(events.find("200 OK"), std::string::npos);
  EXPECT_NE(events.find("\"schema\":\"mldcs-events-v1\""),
            std::string::npos);

  const std::string shards = get(port, "/shards");
  EXPECT_NE(shards.find("200 OK"), std::string::npos);
  EXPECT_NE(shards.find("\"schema\":\"mldcs-shards-v1\""),
            std::string::npos);

  const std::string health = get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  EXPECT_NE(get(port, "/nope").find("404 Not Found"), std::string::npos);
  EXPECT_NE(http_request(port, "POST / HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(http_request(port, "garbage\r\n\r\n").find("400 Bad Request"),
            std::string::npos);

  EXPECT_GE(server.requests(), 9u);
  server.stop();
}

TEST(IntrospectServerTest, HealthHookDrivesHealthz) {
  IntrospectServer server;
  ASSERT_TRUE(server.start({}));
  const std::uint16_t port = server.port();

  std::atomic<bool> healthy{true};
  server.set_health([&healthy](std::string& detail) {
    if (!healthy.load(std::memory_order_relaxed)) {
      detail = "watchdog mismatch at step 7";
      return false;
    }
    return true;
  });
  EXPECT_NE(get(port, "/healthz").find("200 OK"), std::string::npos);

  healthy.store(false, std::memory_order_relaxed);
  const std::string sick = get(port, "/healthz");
  EXPECT_NE(sick.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(sick.find("watchdog mismatch at step 7"), std::string::npos);

  server.set_health(nullptr);  // revert to always-healthy
  EXPECT_NE(get(port, "/healthz").find("200 OK"), std::string::npos);
  server.stop();
}

// --- Against a live sharded engine -----------------------------------------

net::DeploymentParams small_deploy() {
  net::DeploymentParams p;
  p.target_avg_degree = 8.0;
  p.model = net::RadiusModel::kUniform;
  return p;
}

net::ShardedEngine::Config sharded(std::size_t shards, double side) {
  net::ShardedEngine::Config c;
  c.shards = shards;
  c.deployment = {{0.0, 0.0}, {side, side}};
  return c;
}

/// Satellite check: the engine and cache constructors must register every
/// shard.*/cache.* series eagerly, so a snapshot taken BEFORE the first
/// step already carries them (a scraper attaching at t=0 sees the full
/// schema, not a trickle of late-registered series).
TEST(IntrospectServerTest, PreStepSnapshotCarriesShardSeries) {
  if (!kTelemetryEnabled) {
    GTEST_SKIP() << "registration requires MLDCS_ENABLE_TELEMETRY";
  }
  sim::Xoshiro256 rng(17);
  net::MobileNetwork net(small_deploy(), net::WaypointParams{}, rng);
  sim::ThreadPool pool(2);
  net::ShardedEngine engine{std::vector<net::Node>(net.nodes()), pool,
                            sharded(4, 12.5)};
  bcast::ShardedSkylineCache cache(engine);

  IntrospectServer server;
  ASSERT_TRUE(server.start({}));
  const std::string snapshot = get(server.port(), "/snapshot.json");
  for (const char* series :
       {"\"shard.count\":4", "\"shard.steps\"", "\"shard.halo_nodes\"",
        "\"shard.barrier_wait_ns\"", "\"cache.updates\"",
        "\"cache.dirty_relays_per_shard\""}) {
    EXPECT_NE(snapshot.find(series), std::string::npos)
        << "pre-step snapshot is missing " << series;
  }

  // The load table is seeded from the initial ownership split, so
  // /shards is meaningful before step one as well.
  const std::string shards = get(server.port(), "/shards");
  EXPECT_NE(shards.find("\"count\":4"), std::string::npos);
  EXPECT_NE(shards.find("\"owned\":"), std::string::npos);
  server.stop();
}

/// A poller hammering every endpoint while the sharded engine steps:
/// the data-race probe the tsan preset runs.  The server must never
/// block or corrupt the run; the run must never corrupt a response.
TEST(IntrospectServerTest, ConcurrentPollingOfLiveShardedRun) {
  sim::Xoshiro256 rng(29);
  net::MobileNetwork net(small_deploy(), net::WaypointParams{}, rng);
  sim::ThreadPool pool(2);
  net::ShardedEngine engine{std::vector<net::Node>(net.nodes()), pool,
                            sharded(4, 12.5)};
  bcast::ShardedSkylineCache cache(engine);

  IntrospectServer server;
  ASSERT_TRUE(server.start({}));
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polled{0};
  std::thread poller([&] {
    const char* paths[] = {"/shards", "/metrics", "/snapshot.json",
                           "/events?tail=8", "/healthz"};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string response = get(port, paths[i % 5]);
      if (response.find("200 OK") != std::string::npos) {
        polled.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  });

  for (std::size_t k = 0; k < 40; ++k) {
    net.step(0.5, rng);
    cache.step(net.nodes(), net.moved_last_step());
  }
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_GT(polled.load(), 0u);
  EXPECT_EQ(cache.update_count(), 40u);

  // A post-run /shards must report the published step and 4 rows.
  const std::string shards = get(port, "/shards");
  EXPECT_NE(shards.find("\"step\":40"), std::string::npos);
  EXPECT_NE(shards.find("\"count\":4"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace mldcs::obs
