// Tests for the flight recorder: id assignment, causal links, bounded
// capacity, thread merging, and the mldcs-events-v1 JSONL document.  The
// event state is process global, so every test starts from stop+clear.

#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/thread_pool.hpp"

namespace mldcs::obs {
namespace {

std::string dump_jsonl() {
  std::ostringstream os;
  write_events_jsonl(os);
  return os.str();
}

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    events_stop();
    events_clear();
  }
  void TearDown() override {
    events_stop();
    events_clear();
  }
};

TEST_F(EventLogTest, TypeNamesAreStableSchemaTokens) {
  EXPECT_STREQ(event_type_name(EventType::kBroadcast), "broadcast");
  EXPECT_STREQ(event_type_name(EventType::kTx), "tx");
  EXPECT_STREQ(event_type_name(EventType::kRx), "rx");
  EXPECT_STREQ(event_type_name(EventType::kDuplicateRx), "dup_rx");
  EXPECT_STREQ(event_type_name(EventType::kDesignate), "designate");
  EXPECT_STREQ(event_type_name(EventType::kSuppress), "suppress");
  EXPECT_STREQ(event_type_name(EventType::kStep), "step");
  EXPECT_STREQ(event_type_name(EventType::kCacheUpdate), "cache_update");
  EXPECT_STREQ(event_type_name(EventType::kWatchdogCheck), "watchdog_check");
  EXPECT_STREQ(event_type_name(EventType::kWatchdogMismatch),
               "watchdog_mismatch");
}

TEST_F(EventLogTest, DisarmedEmitIsInvisible) {
  EXPECT_FALSE(events_enabled());
  EXPECT_EQ(emit_event(EventType::kTx, 1, kNoNode, kNoEvent, 0), kNoEvent);
  EXPECT_TRUE(events_snapshot().empty());
}

TEST_F(EventLogTest, JsonlAlwaysStartsWithSchemaHeader) {
  const std::string doc = dump_jsonl();
  EXPECT_EQ(doc.find("{\"schema\":\"mldcs-events-v1\""), 0u);
  EXPECT_NE(doc.find("\"count\":0"), std::string::npos);
}

#if MLDCS_ENABLE_TELEMETRY

TEST_F(EventLogTest, IdsAreMonotoneFromZeroAndSnapshotOrdered) {
  events_start();
  const std::uint64_t a = emit_event(EventType::kTx, 1, kNoNode, kNoEvent, 7);
  const std::uint64_t b = emit_event(EventType::kRx, 2, 1, a, 1);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  const auto events = events_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 0u);
  EXPECT_EQ(events[0].type, EventType::kTx);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].value, 7u);
  EXPECT_EQ(events[1].parent, a);
  EXPECT_EQ(events[1].b, 1u);
}

TEST_F(EventLogTest, ClearRestartsTheIdSequence) {
  events_start();
  static_cast<void>(emit_event(EventType::kStep, 0, 0, kNoEvent, 1));
  events_clear();
  EXPECT_EQ(emit_event(EventType::kStep, 0, 0, kNoEvent, 2), 0u);
}

TEST_F(EventLogTest, CapacityBoundsTheLogAndCountsDrops) {
  events_start(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t id =
        emit_event(EventType::kStep, 0, 0, kNoEvent, i);
    if (i < 4) {
      EXPECT_EQ(id, i);
    } else {
      EXPECT_EQ(id, kNoEvent);
    }
  }
  EXPECT_EQ(events_snapshot().size(), 4u);
  EXPECT_EQ(events_dropped(), 6u);
  const std::string doc = dump_jsonl();
  EXPECT_NE(doc.find("\"count\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\":6"), std::string::npos);
}

TEST_F(EventLogTest, MultiThreadEmissionsMergeSortedWithUniqueIds) {
  events_start();
  sim::ThreadPool pool(4);
  pool.parallel_for(64, [](std::size_t i) {
    static_cast<void>(emit_event(EventType::kStep,
                                 static_cast<std::uint32_t>(i), kNoNode,
                                 kNoEvent, i));
  });
  const auto events = events_snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i);  // unique and gap-free after the sort
  }
}

TEST_F(EventLogTest, JsonlOmitsSentinelFieldsAndKeepsPresentOnes) {
  events_start();
  static_cast<void>(
      emit_event(EventType::kTx, 3, kNoNode, kNoEvent, 0));  // no b, no parent
  static_cast<void>(emit_event(EventType::kRx, 4, 3, 0, 1));
  const std::string doc = dump_jsonl();
  EXPECT_NE(doc.find("{\"id\":0,\"t\":\"tx\",\"a\":3,\"v\":0}"),
            std::string::npos);
  EXPECT_NE(
      doc.find("{\"id\":1,\"t\":\"rx\",\"a\":4,\"b\":3,\"parent\":0,\"v\":1}"),
      std::string::npos);
}

TEST_F(EventLogTest, StopFreezesTheLogWithoutClearingIt) {
  events_start();
  static_cast<void>(emit_event(EventType::kStep, 0, 0, kNoEvent, 1));
  events_stop();
  EXPECT_EQ(emit_event(EventType::kStep, 0, 0, kNoEvent, 2), kNoEvent);
  EXPECT_EQ(events_snapshot().size(), 1u);
}

#else  // !MLDCS_ENABLE_TELEMETRY

TEST_F(EventLogTest, CompiledOutEverythingIsEmpty) {
  events_start();
  EXPECT_FALSE(events_enabled());
  EXPECT_EQ(emit_event(EventType::kTx, 1, kNoNode, kNoEvent, 0), kNoEvent);
  EXPECT_TRUE(events_snapshot().empty());
  EXPECT_NE(dump_jsonl().find("\"enabled\":false"), std::string::npos);
}

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace
}  // namespace mldcs::obs
