// Differential tests for event replay: the flight recorder must be a
// sufficient record — folding the event stream back together must
// reproduce the simulator's own BroadcastResult byte-for-byte, across
// randomized deployments x reception models x schemes, plus the "why"
// queries (delivery tree, suppression, redundancy attribution).

#include "obs/event_replay.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "broadcast/broadcast_sim.hpp"
#include "net/topology.hpp"
#include "obs/event_log.hpp"
#include "sim/rng.hpp"

namespace mldcs::obs {
namespace {

using bcast::BroadcastResult;
using bcast::ReceptionModel;
using bcast::Scheme;

class EventReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    events_stop();
    events_clear();
  }
  void TearDown() override {
    events_stop();
    events_clear();
  }
};

#if MLDCS_ENABLE_TELEMETRY

BroadcastResult result_of(const ReplayedBroadcast& r) {
  BroadcastResult out;
  out.transmissions = r.transmissions;
  out.delivered = r.delivered;
  out.max_hops = r.max_hops;
  out.reachable = r.reachable;
  out.redundant_receptions = r.redundant_receptions;
  return out;
}

/// Simulate with the recorder armed and return (simulated, replayed).
std::pair<BroadcastResult, ReplayedBroadcast> record_and_replay(
    const net::DiskGraph& g, net::NodeId source, Scheme scheme,
    ReceptionModel model) {
  events_clear();
  events_start();
  const BroadcastResult sim = simulate_broadcast(g, source, scheme, model);
  events_stop();
  const auto replays = replay_broadcasts(events_snapshot());
  EXPECT_EQ(replays.size(), 1u);
  return {sim, replays.empty() ? ReplayedBroadcast{} : replays.front()};
}

void expect_byte_equal(const BroadcastResult& sim, const ReplayedBroadcast& r,
                       const char* where) {
  const BroadcastResult rec = result_of(r);
  EXPECT_EQ(std::memcmp(&sim, &rec, sizeof(BroadcastResult)), 0)
      << where << ": tx " << sim.transmissions << "/" << rec.transmissions
      << " delivered " << sim.delivered << "/" << rec.delivered << " hops "
      << sim.max_hops << "/" << rec.max_hops << " reachable " << sim.reachable
      << "/" << rec.reachable << " dup " << sim.redundant_receptions << "/"
      << rec.redundant_receptions;
}

TEST_F(EventReplayTest, ReplayMatchesSimulatorAcrossSchemesAndModels) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    for (const bool hetero : {false, true}) {
      net::DeploymentParams p;
      p.side = 8.0;  // ~90-180 nodes: dense enough for real redundancy
      p.target_avg_degree = 8;
      p.model =
          hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
      sim::Xoshiro256 rng(seed);
      const net::DiskGraph g = net::generate_graph(p, rng);

      std::vector<Scheme> schemes{Scheme::kFlooding, Scheme::kSkyline,
                                  Scheme::kGreedy, Scheme::kOptimal};
      if (!hetero) schemes.push_back(Scheme::kSelectingForwardingSet);
      for (const Scheme scheme : schemes) {
        for (const ReceptionModel model :
             {ReceptionModel::kBidirectionalLink,
              ReceptionModel::kPhysicalCoverage}) {
          const auto [sim, replay] = record_and_replay(g, 0, scheme, model);
          expect_byte_equal(sim, replay, bcast::scheme_name(scheme).data());
          EXPECT_EQ(replay.source, 0u);
          EXPECT_EQ(replay.scheme_tag,
                    (static_cast<std::uint32_t>(model) << 8) |
                        static_cast<std::uint32_t>(scheme));
        }
      }
    }
  }
}

TEST_F(EventReplayTest, DeliveryTreeIsCausallyConsistent) {
  net::DeploymentParams p;
  p.side = 8.0;
  p.target_avg_degree = 8;
  p.model = net::RadiusModel::kUniform;
  sim::Xoshiro256 rng(5);
  const net::DiskGraph g = net::generate_graph(p, rng);
  const auto [sim, r] = record_and_replay(
      g, 0, Scheme::kSkyline, ReceptionModel::kBidirectionalLink);
  static_cast<void>(sim);

  std::uint64_t received = 0;
  for (std::uint32_t v = 0; v < r.fates.size(); ++v) {
    const NodeFate& f = r.fates[v];
    if (!f.received) {
      EXPECT_FALSE(f.transmitted) << v;
      continue;
    }
    ++received;
    if (v == r.source) continue;
    // The deliverer is a real tree parent: it received one hop earlier and
    // transmitted.
    ASSERT_LT(f.delivered_by, r.fates.size()) << v;
    const NodeFate& parent = r.fates[f.delivered_by];
    EXPECT_TRUE(parent.transmitted) << v;
    EXPECT_EQ(parent.hop + 1, f.hop) << v;
    // Exactly one of {relayed (designated), suppressed} for received nodes.
    EXPECT_NE(f.transmitted, f.suppressed) << v;
  }
  EXPECT_EQ(received, r.delivered);
}

TEST_F(EventReplayTest, RedundancyAttributionSumsToStormMetric) {
  net::DeploymentParams p;
  p.side = 8.0;
  p.target_avg_degree = 10;
  sim::Xoshiro256 rng(23);
  const net::DiskGraph g = net::generate_graph(p, rng);
  const auto [sim, r] = record_and_replay(
      g, 0, Scheme::kFlooding, ReceptionModel::kBidirectionalLink);

  const auto by_tx = redundancy_by_transmitter(r);
  std::uint64_t total = 0;
  std::uint64_t prev = ~std::uint64_t{0};
  for (const auto& [u, count] : by_tx) {
    EXPECT_TRUE(r.fate(u).transmitted) << u;
    EXPECT_LE(count, prev);  // descending
    prev = count;
    total += count;
  }
  EXPECT_EQ(total, sim.redundant_receptions);
  EXPECT_GT(total, 0u) << "flooding a dense graph must cause duplicates";
}

TEST_F(EventReplayTest, ExplainMissedNamesSuppressedWouldBeRelays) {
  // 1's disk is strictly inside 0's, so 0's skyline forwarding set is
  // empty and 1 is suppressed; 2 is linked only to 1 and never hears it.
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 5.0}, {1, {1, 0}, 2.0}, {2, {2.9, 0}, 2.0}});
  const auto [sim, r] = record_and_replay(
      g, 0, Scheme::kSkyline, ReceptionModel::kBidirectionalLink);
  EXPECT_EQ(sim.delivered, 2u);
  EXPECT_EQ(sim.reachable, 3u);
  EXPECT_FALSE(r.fate(2).received);
  EXPECT_TRUE(r.fate(1).suppressed);

  const std::vector<std::uint32_t> neighbors_of_2{1};
  const std::string why = explain_missed(r, 2, neighbors_of_2);
  EXPECT_NE(why.find("never received"), std::string::npos) << why;
  EXPECT_NE(why.find("suppressed"), std::string::npos) << why;
  EXPECT_NE(why.find("node 1"), std::string::npos) << why;

  // The delivered node's explanation reports its delivery path instead.
  const std::string got = explain_missed(r, 1, {});
  EXPECT_NE(got.find("received at hop 1 from node 0"), std::string::npos)
      << got;
}

TEST_F(EventReplayTest, MultipleBroadcastsSegmentCleanly) {
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {1, 0}, 1.0}, {2, {2, 0}, 1.0}});
  events_start();
  const auto a = bcast::simulate_broadcast(g, 0, Scheme::kFlooding);
  const auto b = bcast::simulate_broadcast(g, 2, Scheme::kFlooding);
  events_stop();
  const auto replays = replay_broadcasts(events_snapshot());
  ASSERT_EQ(replays.size(), 2u);
  expect_byte_equal(a, replays[0], "first");
  expect_byte_equal(b, replays[1], "second");
  EXPECT_EQ(replays[0].source, 0u);
  EXPECT_EQ(replays[1].source, 2u);
}

#endif  // MLDCS_ENABLE_TELEMETRY

TEST_F(EventReplayTest, EmptyStreamReplaysToNothing) {
  EXPECT_TRUE(replay_broadcasts({}).empty());
}

TEST_F(EventReplayTest, HandBuiltStreamFoldsWithoutASimulator) {
  // Replay is pure data processing: a synthetic stream (as an offline tool
  // would load from JSONL) folds identically with telemetry on or off.
  const std::vector<Event> events{
      {0, kNoEvent, 3, 0, 0, EventType::kBroadcast},   // source 0, reachable 3
      {1, kNoEvent, 0, 0, kNoNode, EventType::kTx},    // source transmits
      {2, 1, 1, 1, 0, EventType::kRx},                 // 1 hears 0 at hop 1
      {3, 1, 0, 1, 0, EventType::kDesignate},          // 0 designates 1
      {4, 2, 1, 1, kNoNode, EventType::kTx},           // 1 relays
      {5, 4, 2, 2, 1, EventType::kRx},                 // 2 hears 1 at hop 2
      {6, 4, 2, 0, 1, EventType::kDuplicateRx},        // 0 hears 1 again
      {7, 5, 0, 2, kNoNode, EventType::kSuppress},     // 2 never designated
  };
  const auto replays = replay_broadcasts(events);
  ASSERT_EQ(replays.size(), 1u);
  const ReplayedBroadcast& r = replays.front();
  EXPECT_EQ(r.transmissions, 2u);
  EXPECT_EQ(r.delivered, 3u);
  EXPECT_EQ(r.max_hops, 2u);
  EXPECT_EQ(r.reachable, 3u);
  EXPECT_EQ(r.redundant_receptions, 1u);
  EXPECT_TRUE(r.fate(2).suppressed);
  EXPECT_EQ(r.fate(2).delivered_by, 1u);
  const auto by_tx = redundancy_by_transmitter(r);
  ASSERT_EQ(by_tx.size(), 1u);
  EXPECT_EQ(by_tx.front().first, 1u);
  EXPECT_EQ(by_tx.front().second, 1u);
}

}  // namespace
}  // namespace mldcs::obs
