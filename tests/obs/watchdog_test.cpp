// Tests for the generic ConsistencyWatchdog: period gating, distinct
// sampling, mismatch verdicts against a mutable fake store, and (telemetry
// on) the watchdog.* metrics and causally linked events it reports through.

#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/telemetry.hpp"

namespace mldcs::obs {
namespace {

/// A fake incremental structure: `truth` is the reference, `cache` the
/// maintained copy.  Tests corrupt `cache` entries to trigger the dog.
struct FakeStore {
  std::vector<std::vector<std::uint32_t>> truth;
  std::vector<std::vector<std::uint32_t>> cache;

  explicit FakeStore(std::size_t n) : truth(n), cache(n) {
    for (std::uint32_t u = 0; u < n; ++u) {
      truth[u] = {u, u + 1};
      cache[u] = truth[u];
    }
  }

  ConsistencyWatchdog watchdog(ConsistencyWatchdog::Config cfg) {
    return {truth.size(), [this](std::uint32_t u) { return truth[u]; },
            [this](std::uint32_t u) { return cache[u]; }, cfg};
  }
};

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    events_stop();
    events_clear();
  }
  void TearDown() override {
    events_stop();
    events_clear();
  }
};

TEST_F(WatchdogTest, ChecksOnlyEveryPeriodthStep) {
  FakeStore store(32);
  auto wd = store.watchdog({.period = 4, .samples = 2, .seed = 1});
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(wd.on_step());
  }
  EXPECT_EQ(wd.steps(), 12u);
  EXPECT_EQ(wd.checks(), 3u);
  EXPECT_EQ(wd.sampled(), 6u);
  EXPECT_TRUE(wd.clean());
}

TEST_F(WatchdogTest, ZeroPeriodMeansEveryStep) {
  FakeStore store(8);
  auto wd = store.watchdog({.period = 0, .samples = 1, .seed = 1});
  EXPECT_TRUE(wd.on_step());
  EXPECT_TRUE(wd.on_step());
  EXPECT_EQ(wd.checks(), 2u);
}

TEST_F(WatchdogTest, SamplesAreDistinctAndClampedToPopulation) {
  FakeStore store(3);
  // Ask for far more samples than relays: must clamp to 3 distinct, not
  // spin forever rejecting duplicates.
  auto wd = store.watchdog({.period = 1, .samples = 100, .seed = 7});
  EXPECT_TRUE(wd.on_step());
  EXPECT_EQ(wd.sampled(), 3u);
}

TEST_F(WatchdogTest, CorruptedEntryIsCaughtAndNamed) {
  FakeStore store(16);
  // Sampling all 16 every step makes detection deterministic.
  auto wd = store.watchdog({.period = 1, .samples = 16, .seed = 3});
  EXPECT_TRUE(wd.on_step());

  store.cache[5].push_back(99);  // corrupt
  EXPECT_FALSE(wd.on_step());
  EXPECT_FALSE(wd.clean());
  EXPECT_EQ(wd.mismatches(), 1u);
  EXPECT_EQ(wd.last_mismatch_step(), 2u);
  ASSERT_EQ(wd.last_mismatched_relays().size(), 1u);
  EXPECT_EQ(wd.last_mismatched_relays()[0], 5u);

  store.cache[5] = store.truth[5];  // repair
  EXPECT_TRUE(wd.on_step());
  EXPECT_TRUE(wd.last_mismatched_relays().empty());
  EXPECT_EQ(wd.mismatches(), 1u) << "history is cumulative";
  EXPECT_FALSE(wd.clean()) << "clean() never forgets a mismatch";
}

TEST_F(WatchdogTest, CheckNowIgnoresThePeriodPhase) {
  FakeStore store(8);
  auto wd = store.watchdog({.period = 1000, .samples = 8, .seed = 5});
  store.cache[2] = {};  // corrupt before any step
  EXPECT_FALSE(wd.check_now());
  EXPECT_EQ(wd.checks(), 1u);
  EXPECT_EQ(wd.steps(), 0u);
}

TEST_F(WatchdogTest, EmptyPopulationIsVacuouslyClean) {
  FakeStore store(0);
  auto wd = store.watchdog({.period = 1, .samples = 4, .seed = 1});
  EXPECT_TRUE(wd.on_step());
  EXPECT_EQ(wd.checks(), 0u);
  EXPECT_TRUE(wd.clean());
}

TEST_F(WatchdogTest, SamplingSequenceIsSeedDeterministic) {
  FakeStore a(64);
  FakeStore b(64);
  a.cache[13].push_back(1);
  b.cache[13].push_back(1);
  auto wa = a.watchdog({.period = 1, .samples = 8, .seed = 42});
  auto wb = b.watchdog({.period = 1, .samples = 8, .seed = 42});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(wa.on_step(), wb.on_step()) << "step " << i;
  }
  EXPECT_EQ(wa.mismatches(), wb.mismatches());
  EXPECT_EQ(wa.last_mismatch_step(), wb.last_mismatch_step());
}

#if MLDCS_ENABLE_TELEMETRY

TEST_F(WatchdogTest, ReportsThroughMetricsAndCausallyLinkedEvents) {
  auto& reg = registry();
  const std::uint64_t checks0 = reg.counter("watchdog.checks").value();
  const std::uint64_t sampled0 = reg.counter("watchdog.sampled_relays").value();
  const std::uint64_t bad0 = reg.counter("watchdog.mismatches").value();

  FakeStore store(16);
  store.cache[9] = {};  // corrupt
  auto wd = store.watchdog({.period = 1, .samples = 16, .seed = 11});

  events_start();
  const std::uint64_t parent =
      emit_event(EventType::kCacheUpdate, 3, kNoNode, kNoEvent, 1);
  EXPECT_FALSE(wd.on_step(parent));
  events_stop();

  EXPECT_EQ(reg.counter("watchdog.checks").value(), checks0 + 1);
  EXPECT_EQ(reg.counter("watchdog.sampled_relays").value(), sampled0 + 16);
  EXPECT_EQ(reg.counter("watchdog.mismatches").value(), bad0 + 1);
  EXPECT_EQ(reg.gauge("watchdog.last_mismatch_step").value(), 1);

  const auto events = events_snapshot();
  const auto check = std::find_if(
      events.begin(), events.end(),
      [](const Event& e) { return e.type == EventType::kWatchdogCheck; });
  ASSERT_NE(check, events.end());
  EXPECT_EQ(check->parent, parent) << "check must indict the cache update";
  EXPECT_EQ(check->a, 16u);  // sampled
  EXPECT_EQ(check->b, 1u);   // mismatches

  const auto bad = std::find_if(
      events.begin(), events.end(),
      [](const Event& e) { return e.type == EventType::kWatchdogMismatch; });
  ASSERT_NE(bad, events.end());
  EXPECT_EQ(bad->a, 9u);
  EXPECT_EQ(bad->parent, check->id);
}

#endif  // MLDCS_ENABLE_TELEMETRY

TEST_F(WatchdogTest, VerdictApiWorksWithTelemetryDisarmed) {
  // The plain counters are the product here: they must work identically
  // whether telemetry is compiled out or merely not armed.
  FakeStore store(8);
  store.cache[0] = {1, 2, 3};
  auto wd = store.watchdog({.period = 2, .samples = 8, .seed = 9});
  EXPECT_TRUE(wd.on_step());   // step 1: no check
  EXPECT_FALSE(wd.on_step());  // step 2: check finds the corruption
  EXPECT_EQ(wd.last_mismatch_step(), 2u);
  EXPECT_FALSE(wd.clean());
}

}  // namespace
}  // namespace mldcs::obs
