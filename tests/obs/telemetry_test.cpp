// Tests for the telemetry registry: counter/gauge/histogram semantics,
// bucket boundaries, name identity, snapshots, and multi-threaded updates
// (the latter is what the TSan CI job exercises for data races).
//
// Expectations are written against kTelemetryEnabled so the suite also
// passes in an MLDCS_ENABLE_TELEMETRY=OFF build, where every metric is a
// shared no-op stub.

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sim/thread_pool.hpp"

namespace mldcs::obs {
namespace {

constexpr std::uint64_t kOn = kTelemetryEnabled ? 1 : 0;

TEST(CounterTest, AddAndValue) {
  Registry r;
  Counter& c = r.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42 * kOn);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddAndHighWaterMark) {
  Registry r;
  Gauge& g = r.gauge("g");
  g.set(-7);
  EXPECT_EQ(g.value(), -7 * static_cast<std::int64_t>(kOn));
  g.add(10);
  EXPECT_EQ(g.value(), 3 * static_cast<std::int64_t>(kOn));
  g.set_max(100);
  g.set_max(50);  // below the mark: no effect
  EXPECT_EQ(g.value(), 100 * static_cast<std::int64_t>(kOn));
}

TEST(HistogramTest, CountSumAndSnapshotExtremes) {
  Registry r;
  Histogram& h = r.histogram("h");
  h.record(0);
  h.record(1);
  h.record(1000);
  EXPECT_EQ(h.count(), 3 * kOn);
  EXPECT_EQ(h.sum(), 1001 * kOn);

  const HistogramSnapshot s = h.snapshot();
  if constexpr (kTelemetryEnabled) {
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), 1001.0 / 3.0);
    // 0, 1, and 1000 land in three distinct log buckets.
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.buckets[0].lo, 0u);
    EXPECT_EQ(s.buckets[0].hi, 0u);
    EXPECT_EQ(s.buckets[1].lo, 1u);
    EXPECT_EQ(s.buckets[1].hi, 1u);
    EXPECT_LE(s.buckets[2].lo, 1000u);
    EXPECT_GE(s.buckets[2].hi, 1000u);
    for (const auto& b : s.buckets) EXPECT_EQ(b.count, 1u);
  } else {
    EXPECT_TRUE(s.buckets.empty());
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Registry r;
  const HistogramSnapshot s = r.histogram("empty").snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);  // not the ~0 sentinel
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.buckets.empty());
}

#if MLDCS_ENABLE_TELEMETRY

TEST(HistogramTest, BucketBoundaries) {
  // bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    // Round trip: every bucket's own bounds map back to it, and the
    // ranges tile the uint64 line with no gaps.
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_lo(b), Histogram::bucket_hi(b - 1) + 1);
    }
  }
  EXPECT_EQ(Histogram::bucket_hi(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramTest, MaxValueSample) {
  Registry r;
  Histogram& h = r.histogram("h");
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  h.record(big);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, big);
  EXPECT_EQ(s.max, big);
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_EQ(s.buckets[0].hi, big);
}

TEST(RegistryTest, SameNameSameObject) {
  Registry r;
  EXPECT_EQ(&r.counter("a"), &r.counter("a"));
  EXPECT_NE(&r.counter("a"), &r.counter("b"));
  EXPECT_EQ(&r.gauge("a"), &r.gauge("a"));
  EXPECT_EQ(&r.histogram("a"), &r.histogram("a"));
  // Kinds are separate namespaces: counter "a" and gauge "a" coexist.
  r.counter("a").add(5);
  r.gauge("a").set(-5);
  EXPECT_EQ(r.counter("a").value(), 5u);
  EXPECT_EQ(r.gauge("a").value(), -5);
}

TEST(RegistryTest, SnapshotSortedAndConsistent) {
  Registry r;
  r.counter("z.last").add(1);
  r.counter("a.first").add(2);
  r.gauge("mid").set(3);
  r.histogram("dist").record(7);

  const RegistrySnapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.first");
  EXPECT_EQ(s.counters[0].second, 2u);
  EXPECT_EQ(s.counters[1].first, "z.last");
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, 3);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsReferencesValid) {
  Registry r;
  Counter& c = r.counter("c");
  Histogram& h = r.histogram("h");
  c.add(9);
  h.record(9);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // the cached reference still points at the live metric
  EXPECT_EQ(r.counter("c").value(), 1u);
  // A reset histogram accepts new samples with a fresh min.
  h.record(3);
  EXPECT_EQ(h.snapshot().min, 3u);
}

TEST(RegistryTest, ConcurrentUpdatesAreExact) {
  // Hammer one counter/gauge/histogram from every pool worker; relaxed
  // atomics must still produce exact totals (and TSan must stay quiet).
  Registry r;
  Counter& c = r.counter("c");
  Gauge& hwm = r.gauge("hwm");
  Histogram& h = r.histogram("h");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  sim::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::uint64_t k = 0; k < kPerTask; ++k) {
      c.add();
      h.record(k);
      hwm.set_max(static_cast<std::int64_t>(i * kPerTask + k));
    }
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
  EXPECT_EQ(h.count(), kTasks * kPerTask);
  EXPECT_EQ(h.snapshot().max, kPerTask - 1);
  EXPECT_EQ(hwm.value(),
            static_cast<std::int64_t>(kTasks * kPerTask - 1));
}

TEST(RegistryTest, ConcurrentRegistrationYieldsOneMetricPerName) {
  Registry r;
  sim::ThreadPool pool(4);
  pool.parallel_for(32, [&](std::size_t) { r.counter("shared").add(); });
  const RegistrySnapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second, 32u);
}

#endif  // MLDCS_ENABLE_TELEMETRY

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&registry(), &registry());
}

}  // namespace
}  // namespace mldcs::obs
