// ThreadSanitizer-targeted stress tests for the persistent thread pool:
// enqueue-from-worker fan-out, shutdown-while-busy draining, concurrent
// external submitters, and exception plumbing.  Run these under the `tsan`
// CMake preset; they are also fast enough for every tier-1 run.

#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mldcs::sim {
namespace {

TEST(ThreadPoolStressTest, EnqueueFromWorkerFanOut) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kRoots = 32;
  constexpr int kChildren = 4;
  for (int i = 0; i < kRoots; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int c = 0; c < kChildren; ++c) {
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), kRoots + kRoots * kChildren);
}

TEST(ThreadPoolStressTest, DeepResubmissionChainCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  // A task that resubmits itself until depth 0: exercises the
  // enqueue-while-executing path far beyond the queue's initial content.
  struct Chain {
    ThreadPool* pool;
    std::atomic<int>* count;
    void operator()(int depth) const {
      count->fetch_add(1, std::memory_order_relaxed);
      if (depth > 0) {
        const Chain self = *this;
        pool->submit([self, depth] { self(depth - 1); });
      }
    }
  };
  const Chain chain{&pool, &count};
  for (int i = 0; i < 8; ++i) {
    pool.submit([chain] { chain(50); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 * 51);
}

TEST(ThreadPoolStressTest, ShutdownWhileBusyDrainsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 300; ++i) {
      pool.submit([&count, i] {
        if (i % 37 == 0) std::this_thread::yield();
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor must finish all 300 queued tasks.
  }
  EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPoolStressTest, ShutdownDrainsTasksSubmittedByTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.submit([&pool, &count] {
        count.fetch_add(1, std::memory_order_relaxed);
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }
  EXPECT_EQ(count.load(), 80);
}

TEST(ThreadPoolStressTest, ConcurrentExternalSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 100;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &count] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: a second wait returns cleanly and the other
  // tasks all ran.
  pool.wait_idle();
  EXPECT_EQ(count.load(), 19);
}

TEST(ThreadPoolStressTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait_idle();  // never started: queue empty, nothing active
  SUCCEED();
}

TEST(ThreadPoolStressTest, ParallelForConcurrentWithSubmitTraffic) {
  ThreadPool pool(4);
  std::atomic<int> side{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&side] { side.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::atomic<int>> visits(200);
  pool.parallel_for(200, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  pool.wait_idle();
  EXPECT_EQ(side.load(), 50);
}

TEST(ThreadPoolStressTest, RepeatedParallelForReusesWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(64, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64L * 63L / 2L);
  }
}

}  // namespace
}  // namespace mldcs::sim
