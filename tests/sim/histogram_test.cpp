// Tests for the integer histogram used by the distribution figures.

#include "sim/histogram.hpp"

#include <gtest/gtest.h>

namespace mldcs::sim {
namespace {

TEST(IntHistogramTest, EmptyHistogram) {
  const IntHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(IntHistogramTest, AddAndCount) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(100), 0u);  // past the end is zero, not UB
}

TEST(IntHistogramTest, MinMaxValues) {
  IntHistogram h;
  h.add(5);
  h.add(2);
  h.add(9);
  EXPECT_EQ(h.min_value(), 2u);
  EXPECT_EQ(h.max_value(), 9u);
}

TEST(IntHistogramTest, MeanAndMode) {
  IntHistogram h;
  for (std::uint64_t v : {1u, 2u, 2u, 3u}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.mode(), 2u);
}

TEST(IntHistogramTest, ModeTieGoesToSmallestBin) {
  IntHistogram h;
  h.add(4);
  h.add(6);
  EXPECT_EQ(h.mode(), 4u);
}

TEST(IntHistogramTest, CountAboveThreshold) {
  IntHistogram h;
  for (std::uint64_t v : {10u, 20u, 25u, 30u}) h.add(v);
  EXPECT_EQ(h.count_above(25), 1u);   // only 30
  EXPECT_EQ(h.count_above(9), 4u);
  EXPECT_EQ(h.count_above(30), 0u);
}

TEST(IntHistogramTest, AddAllFromSpan) {
  IntHistogram h;
  const std::vector<std::uint64_t> values{1, 1, 2, 5};
  h.add_all(values);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(IntHistogramTest, ZeroBinWorks) {
  IntHistogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(IntHistogramTest, SingleSample) {
  IntHistogram h;
  h.add(42);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.min_value(), 42u);
  EXPECT_EQ(h.max_value(), 42u);
  EXPECT_EQ(h.mode(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.count_above(41), 1u);
  EXPECT_EQ(h.count_above(42), 0u);
}

TEST(IntHistogramTest, LargeValueGrowsBinsSparsely) {
  // The bin array is dense up to the largest value seen — large but
  // bounded values (flooding tails run to ~1e5 trials) must stay exact.
  IntHistogram h;
  h.add(100000);
  h.add(3);
  EXPECT_EQ(h.bins().size(), 100001u);
  EXPECT_EQ(h.count(100000), 1u);
  EXPECT_EQ(h.count(99999), 0u);
  EXPECT_EQ(h.min_value(), 3u);
  EXPECT_EQ(h.max_value(), 100000u);
  EXPECT_DOUBLE_EQ(h.mean(), (100000.0 + 3.0) / 2.0);
}

TEST(IntHistogramTest, CountAboveAtAndPastTheEnd) {
  IntHistogram h;
  h.add(5);
  EXPECT_EQ(h.count_above(4), 1u);
  EXPECT_EQ(h.count_above(5), 0u);
  EXPECT_EQ(h.count_above(1000), 0u);  // threshold past the bins: zero
}

}  // namespace
}  // namespace mldcs::sim
