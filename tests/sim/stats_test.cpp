// Tests for streaming statistics.

#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mldcs::sim {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Xoshiro256 rng(77);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, Ci95Shrinks) {
  RunningStats small, large;
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(QuantileTest, KnownValues) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(QuantileTest, EmptyAndSingle) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(quantile(none, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.9), 7.0);
}

TEST(MeanOfTest, Basics) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(mean_of(none), 0.0);
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(RunningStatsTest, ExtremeMagnitudes) {
  // 1e150 is the largest symmetric pair whose squared deltas stay finite;
  // the accumulator must not lose the sign or the spread.
  RunningStats s;
  s.add(1e150);
  s.add(-1e150);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -1e150);
  EXPECT_DOUBLE_EQ(s.max(), 1e150);
  EXPECT_TRUE(std::isfinite(s.variance()));
  EXPECT_GT(s.variance(), 0.0);
}

TEST(RunningStatsTest, LargeOffsetSmallSpread) {
  // The classic Welford motivation: naive sum-of-squares loses all
  // precision when the spread is tiny relative to the offset.
  RunningStats s;
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-3);  // exact sample variance of 4,7,13,16
}

TEST(RunningStatsTest, ConstantSampleHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_NEAR(s.variance(), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(s.min(), 3.25);
  EXPECT_DOUBLE_EQ(s.max(), 3.25);
}

TEST(RunningStatsTest, MergeIntoSingleSample) {
  RunningStats a, b;
  a.add(1.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // sample variance of {1, 5}
}

TEST(QuantileTest, ExtremeValuesAndDuplicates) {
  const std::vector<double> xs{-1e308, 0.0, 0.0, 0.0, 1e308};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -1e308);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 1e308);
}

}  // namespace
}  // namespace mldcs::sim
