// Tests for the thread pool and deterministic parallel_for.

#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mldcs::sim {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  const ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExplicitSizeRespected) {
  const ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Each index computes into its own slot; totals must match at any
  // parallelism level (the determinism contract).
  const auto run = [](std::size_t threads) {
    std::vector<double> out(500);
    parallel_for(
        500, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double t1 = run(1);
  const double t4 = run(4);
  const double t7 = run(7);
  EXPECT_DOUBLE_EQ(t1, t4);
  EXPECT_DOUBLE_EQ(t1, t7);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto this_thread = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.parallel_for(5, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, this_thread);
}

}  // namespace
}  // namespace mldcs::sim
