// Tests for the thread pool and deterministic parallel_for.

#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mldcs::sim {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  const ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExplicitSizeRespected) {
  const ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Each index computes into its own slot; totals must match at any
  // parallelism level (the determinism contract).
  const auto run = [](std::size_t threads) {
    std::vector<double> out(500);
    parallel_for(
        500, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double t1 = run(1);
  const double t4 = run(4);
  const double t7 = run(7);
  EXPECT_DOUBLE_EQ(t1, t4);
  EXPECT_DOUBLE_EQ(t1, t7);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto this_thread = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.parallel_for(5, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, this_thread);
}

// MLDCS_THREADS parsing for default_pool() sizing: 0 means "no override".
TEST(ThreadOverrideTest, UnsetOrEmptyMeansNoOverride) {
  EXPECT_EQ(detail::thread_override(nullptr, 8), 0u);
  EXPECT_EQ(detail::thread_override("", 8), 0u);
}

TEST(ThreadOverrideTest, ValidValueClampedToHardware) {
  EXPECT_EQ(detail::thread_override("1", 8), 1u);
  EXPECT_EQ(detail::thread_override("4", 8), 4u);
  EXPECT_EQ(detail::thread_override("8", 8), 8u);
  EXPECT_EQ(detail::thread_override("64", 8), 8u);  // clamp, not reject
}

TEST(ThreadOverrideTest, GarbageAndNonPositiveIgnored) {
  EXPECT_EQ(detail::thread_override("abc", 8), 0u);
  EXPECT_EQ(detail::thread_override("8abc", 8), 0u);
  EXPECT_EQ(detail::thread_override("-2", 8), 0u);
  EXPECT_EQ(detail::thread_override("3.5", 8), 0u);
  EXPECT_EQ(detail::thread_override(" 4", 8), 0u);
  EXPECT_EQ(detail::thread_override("0", 8), 0u);
}

TEST(ThreadOverrideTest, HugeValueClampsInsteadOfOverflowing) {
  EXPECT_EQ(detail::thread_override("99999999999999999999999999", 8), 8u);
}

TEST(ThreadOverrideTest, ZeroHardwareConcurrencyStillYieldsOneWorker) {
  // hardware_concurrency() may legitimately report 0 ("unknown").
  EXPECT_EQ(detail::thread_override("4", 0), 1u);
}

}  // namespace
}  // namespace mldcs::sim
