// Tests for the thread pool and deterministic parallel_for.

#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace mldcs::sim {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  const ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExplicitSizeRespected) {
  const ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, WeightedChunksCoverEveryIndexOnce) {
  ThreadPool pool(4);
  // Skewed weights: one hub dwarfs everything else.
  std::vector<std::uint32_t> weights(100, 1);
  weights[7] = 1000;
  std::vector<int> visits(weights.size(), 0);
  std::mutex m;
  pool.parallel_weighted_chunks(
      weights, [&](std::size_t, std::size_t lo, std::size_t hi) {
        const std::lock_guard<std::mutex> lock(m);
        for (std::size_t i = lo; i < hi; ++i) ++visits[i];
      });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, WeightedChunksBalanceSkewedWeights) {
  ThreadPool pool(4);
  // Ascending quadratic weights: equal-count chunking would give the last
  // chunk ~58% of the total; weighted chunking must stay near 25% each.
  std::vector<std::uint32_t> weights(1000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<std::uint32_t>(i * i / 1000 + 1);
  }
  std::uint64_t total = 0;
  for (const std::uint32_t w : weights) total += w;
  std::vector<std::uint64_t> chunk_weight(4, 0);
  std::size_t max_chunk = 0;
  std::mutex m;
  pool.parallel_weighted_chunks(
      weights, [&](std::size_t c, std::size_t lo, std::size_t hi) {
        const std::lock_guard<std::mutex> lock(m);
        max_chunk = std::max(max_chunk, c);
        for (std::size_t i = lo; i < hi; ++i) chunk_weight[c] += weights[i];
      });
  ASSERT_LE(max_chunk, 3u);
  for (std::size_t c = 0; c <= max_chunk; ++c) {
    // Each chunk within (25 +- 10)% of the total: one index can overshoot
    // a boundary by at most the largest single weight (~0.1% here).
    EXPECT_GT(chunk_weight[c], total / 7);
    EXPECT_LT(chunk_weight[c], total / 2);
  }
}

TEST(ThreadPoolTest, WeightedChunksZeroTotalRunsOneChunk) {
  ThreadPool pool(4);
  const std::vector<std::uint32_t> weights(10, 0);
  std::vector<int> visits(weights.size(), 0);
  std::atomic<int> chunks{0};
  pool.parallel_weighted_chunks(
      weights, [&](std::size_t, std::size_t lo, std::size_t hi) {
        ++chunks;
        for (std::size_t i = lo; i < hi; ++i) ++visits[i];
      });
  EXPECT_EQ(chunks.load(), 1);
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, WeightedChunksEmptyInputIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_weighted_chunks(
      std::span<const std::uint32_t>{},
      [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Each index computes into its own slot; totals must match at any
  // parallelism level (the determinism contract).
  const auto run = [](std::size_t threads) {
    std::vector<double> out(500);
    parallel_for(
        500, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double t1 = run(1);
  const double t4 = run(4);
  const double t7 = run(7);
  EXPECT_DOUBLE_EQ(t1, t4);
  EXPECT_DOUBLE_EQ(t1, t7);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto this_thread = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.parallel_for(5, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, this_thread);
}

// MLDCS_THREADS parsing for default_pool() sizing: 0 means "no override".
TEST(ThreadOverrideTest, UnsetOrEmptyMeansNoOverride) {
  EXPECT_EQ(detail::thread_override(nullptr, 8), 0u);
  EXPECT_EQ(detail::thread_override("", 8), 0u);
}

TEST(ThreadOverrideTest, ValidValueClampedToHardware) {
  EXPECT_EQ(detail::thread_override("1", 8), 1u);
  EXPECT_EQ(detail::thread_override("4", 8), 4u);
  EXPECT_EQ(detail::thread_override("8", 8), 8u);
  EXPECT_EQ(detail::thread_override("64", 8), 8u);  // clamp, not reject
}

TEST(ThreadOverrideTest, GarbageAndNonPositiveIgnored) {
  EXPECT_EQ(detail::thread_override("abc", 8), 0u);
  EXPECT_EQ(detail::thread_override("8abc", 8), 0u);
  EXPECT_EQ(detail::thread_override("-2", 8), 0u);
  EXPECT_EQ(detail::thread_override("3.5", 8), 0u);
  EXPECT_EQ(detail::thread_override(" 4", 8), 0u);
  EXPECT_EQ(detail::thread_override("0", 8), 0u);
}

TEST(ThreadOverrideTest, HugeValueClampsInsteadOfOverflowing) {
  EXPECT_EQ(detail::thread_override("99999999999999999999999999", 8), 8u);
}

TEST(ThreadOverrideTest, ZeroHardwareConcurrencyStillYieldsOneWorker) {
  // hardware_concurrency() may legitimately report 0 ("unknown").
  EXPECT_EQ(detail::thread_override("4", 0), 1u);
}

}  // namespace
}  // namespace mldcs::sim
