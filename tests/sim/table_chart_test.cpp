// Tests for the table / chart renderers and the Monte-Carlo runner.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/chart.hpp"
#include "sim/montecarlo.hpp"
#include "sim/table.hpp"

namespace mldcs::sim {
namespace {

TEST(TableTest, HeaderAndRowsRender) {
  Table t({"n", "flooding", "skyline"});
  t.add_row({"4", "4.00", "3.10"});
  t.add_numeric_row({8.0, 8.0, 4.9});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("flooding"), std::string::npos);
  EXPECT_NE(s.find("3.10"), std::string::npos);
  EXPECT_NE(s.find("4.90"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({std::string("only")});
  std::ostringstream os;
  t.print(os);  // must not crash; the missing cell renders empty
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableTest, CsvEmissionWithPrefix) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "csv:x,y\ncsv:1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(ChartTest, LineChartContainsLegendAndAxes) {
  const std::vector<Series> series{
      {"flooding", {4, 8, 12}, {4.0, 8.0, 12.0}},
      {"skyline", {4, 8, 12}, {3.0, 4.5, 5.2}},
  };
  std::ostringstream os;
  render_line_chart(os, series, "Figure 5.1", "neighbors", "forwarders");
  const std::string s = os.str();
  EXPECT_NE(s.find("Figure 5.1"), std::string::npos);
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("flooding"), std::string::npos);
  EXPECT_NE(s.find("[*]"), std::string::npos);
  EXPECT_NE(s.find("x: neighbors"), std::string::npos);
}

TEST(ChartTest, EmptySeriesHandled) {
  std::ostringstream os;
  render_line_chart(os, {}, "empty", "x", "y");
  EXPECT_NE(os.str().find("(no data)"), std::string::npos);
}

TEST(ChartTest, HistogramBarsProportional) {
  IntHistogram h;
  for (int i = 0; i < 10; ++i) h.add(3);
  h.add(5);
  std::ostringstream os;
  render_histogram(os, h, "dist", 20);
  const std::string s = os.str();
  EXPECT_NE(s.find("dist"), std::string::npos);
  // Peak bin gets the full bar.
  EXPECT_NE(s.find(std::string(20, '#')), std::string::npos);
}

TEST(ChartTest, HistogramTableAlignsSeveralHistograms) {
  IntHistogram a, b;
  a.add(2);
  a.add(3);
  b.add(3);
  const std::vector<std::string> names{"alg1", "alg2"};
  const std::vector<IntHistogram> hists{a, b};
  std::ostringstream os;
  render_histogram_table(os, names, hists, "Figure 5.2");
  const std::string s = os.str();
  EXPECT_NE(s.find("alg1"), std::string::npos);
  EXPECT_NE(s.find("#fwd"), std::string::npos);
}

TEST(MonteCarloTest, TrialsAreDeterministicAndIndependentOfThreads) {
  const std::function<double(Xoshiro256&, std::size_t)> experiment =
      [](Xoshiro256& rng, std::size_t) { return rng.uniform(); };
  const auto a = run_trials<double>(123, 64, experiment, 1);
  const auto b = run_trials<double>(123, 64, experiment, 4);
  EXPECT_EQ(a, b);  // per-trial seeding, not shared streams
  const auto c = run_trials<double>(124, 64, experiment, 1);
  EXPECT_NE(a, c);
}

TEST(MonteCarloTest, SummarizeAggregates) {
  const auto stats = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

}  // namespace
}  // namespace mldcs::sim
