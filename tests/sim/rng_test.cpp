// Tests for the deterministic RNG substrate.

#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mldcs::sim {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(DeriveSeedTest, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    seeds.insert(derive_seed(7, k));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, IsAPureFunction) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(Xoshiro256Test, SameSeedSameStream) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformRangeRespected) {
  Xoshiro256 rng(6);
  double mean = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform(1.0, 2.0);
    EXPECT_GE(u, 1.0);
    EXPECT_LT(u, 2.0);
    mean += u;
  }
  EXPECT_NEAR(mean / n, 1.5, 0.01);  // the paper's U[1,2] radius draw
}

TEST(Xoshiro256Test, UniformIntInRangeAndRoughlyUniform) {
  Xoshiro256 rng(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 / 5);  // within 20% of expectation
  }
}

TEST(Xoshiro256Test, UniformIntZeroIsSafe) {
  Xoshiro256 rng(8);
  EXPECT_EQ(rng.uniform_int(0), 0u);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace mldcs::sim
