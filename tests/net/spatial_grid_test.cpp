// Tests for the uniform-grid spatial index, cross-validated against brute
// force range queries.

#include "net/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

std::vector<Node> random_nodes(sim::Xoshiro256& rng, std::size_t n,
                               double side) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(Node{static_cast<NodeId>(i),
                         {rng.uniform(0, side), rng.uniform(0, side)},
                         rng.uniform(1.0, 2.0)});
  }
  return nodes;
}

TEST(SpatialGridTest, EmptyNodeSet) {
  const std::vector<Node> none;
  const SpatialGrid grid(none, 1.0);
  std::vector<NodeId> out;
  grid.query({0, 0}, 10.0, kNoNode, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGridTest, SingleNodeFoundInRange) {
  const std::vector<Node> nodes{{0, {5, 5}, 1.0}};
  const SpatialGrid grid(nodes, 1.0);
  std::vector<NodeId> out;
  grid.query({5.5, 5.0}, 1.0, kNoNode, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  out.clear();
  grid.query({8, 8}, 1.0, kNoNode, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGridTest, ExclusionParameterWorks) {
  const std::vector<Node> nodes{{0, {5, 5}, 1.0}, {1, {5.1, 5.0}, 1.0}};
  const SpatialGrid grid(nodes, 1.0);
  std::vector<NodeId> out;
  grid.query({5, 5}, 1.0, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(SpatialGridTest, RangeIsInclusive) {
  const std::vector<Node> nodes{{0, {0, 0}, 1.0}, {1, {2, 0}, 1.0}};
  const SpatialGrid grid(nodes, 1.0);
  std::vector<NodeId> out;
  grid.query({0, 0}, 2.0, 0, out);  // node 1 at exactly distance 2
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(SpatialGridTest, CandidatesAreSupersetOfMatches) {
  sim::Xoshiro256 rng(9);
  const auto nodes = random_nodes(rng, 200, 12.5);
  const SpatialGrid grid(nodes, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec2 p{rng.uniform(0, 12.5), rng.uniform(0, 12.5)};
    std::vector<NodeId> cand, match;
    grid.query_candidates(p, 1.5, cand);
    grid.query(p, 1.5, kNoNode, match);
    std::sort(cand.begin(), cand.end());
    for (NodeId id : match) {
      EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), id));
    }
  }
}

class SpatialGridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialGridPropertyTest, MatchesBruteForce) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  const auto nodes = random_nodes(rng, 300, 12.5);
  const SpatialGrid grid(nodes, 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec2 p{rng.uniform(-1, 13.5), rng.uniform(-1, 13.5)};
    const double range = rng.uniform(0.1, 3.0);
    std::vector<NodeId> got;
    grid.query(p, range, kNoNode, got);
    std::sort(got.begin(), got.end());

    std::vector<NodeId> expected;
    for (const Node& n : nodes) {
      if (geom::distance2(n.pos, p) <= range * range) expected.push_back(n.id);
    }
    EXPECT_EQ(got, expected) << "p=" << p << " range=" << range;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialGridPropertyTest, ::testing::Range(0, 5));

TEST(SpatialGridTest, DegenerateCellSizeFallsBack) {
  const std::vector<Node> nodes{{0, {1, 1}, 1.0}};
  const SpatialGrid grid(nodes, 0.0);  // invalid -> clamped internally
  EXPECT_GT(grid.cell_size(), 0.0);
  std::vector<NodeId> out;
  grid.query({1, 1}, 0.5, kNoNode, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SpatialGridTest, AllNodesAtSamePoint) {
  std::vector<Node> nodes;
  for (NodeId i = 0; i < 10; ++i) nodes.push_back({i, {3, 3}, 1.0});
  const SpatialGrid grid(nodes, 1.0);
  std::vector<NodeId> out;
  grid.query({3, 3}, 0.1, 4, out);
  EXPECT_EQ(out.size(), 9u);  // everyone but the excluded id
}

}  // namespace
}  // namespace mldcs::net
