// Tests for the Chapter 5 deployment generators: node-count calibration,
// determinism, radius models, and the average-degree match.

#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angle.hpp"
#include "sim/stats.hpp"

namespace mldcs::net {
namespace {

TEST(TopologyTest, ExpectedMinRadiusSqHomogeneous) {
  DeploymentParams p;
  p.model = RadiusModel::kHomogeneous;
  p.r_fixed = 1.0;
  EXPECT_DOUBLE_EQ(expected_min_radius_sq(p), 1.0);
  p.r_fixed = 2.0;
  EXPECT_DOUBLE_EQ(expected_min_radius_sq(p), 4.0);
}

TEST(TopologyTest, ExpectedMinRadiusSqUniform12Is11Sixths) {
  DeploymentParams p;
  p.model = RadiusModel::kUniform;
  p.r_min = 1.0;
  p.r_max = 2.0;
  EXPECT_NEAR(expected_min_radius_sq(p), 11.0 / 6.0, 1e-12);
}

TEST(TopologyTest, ExpectedMinRadiusSqDegenerateUniform) {
  DeploymentParams p;
  p.model = RadiusModel::kUniform;
  p.r_min = 1.5;
  p.r_max = 1.5;
  EXPECT_DOUBLE_EQ(expected_min_radius_sq(p), 2.25);
}

TEST(TopologyTest, ExpectedMinRadiusSqMonteCarloAgreement) {
  DeploymentParams p;
  p.model = RadiusModel::kUniform;
  p.r_min = 1.0;
  p.r_max = 2.0;
  sim::Xoshiro256 rng(123);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double m = std::min(rng.uniform(1.0, 2.0), rng.uniform(1.0, 2.0));
    acc += m * m;
  }
  EXPECT_NEAR(acc / n, expected_min_radius_sq(p), 0.01);
}

TEST(TopologyTest, NodeCountMatchesPaperFormulaHomogeneous) {
  DeploymentParams p;  // side 12.5, r = 1
  p.target_avg_degree = 10;
  // (12.5^2 / pi) * 10 = 497.36... -> 497
  EXPECT_EQ(node_count_for(p), 497u);
  p.target_avg_degree = 20;
  EXPECT_EQ(node_count_for(p), 995u);
}

TEST(TopologyTest, DeploymentIsDeterministicPerSeed) {
  DeploymentParams p;
  p.target_avg_degree = 6;
  sim::Xoshiro256 rng1(42), rng2(42), rng3(43);
  const auto a = generate_deployment(p, rng1);
  const auto b = generate_deployment(p, rng2);
  const auto c = generate_deployment(p, rng3);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].pos == b[i].pos) || a[i].radius != b[i].radius) {
      all_equal = false;
    }
  }
  EXPECT_TRUE(all_equal);
  // Different seed -> different deployment (overwhelmingly likely).
  bool any_diff = a.size() != c.size();
  for (std::size_t i = 1; !any_diff && i < std::min(a.size(), c.size()); ++i) {
    any_diff = !(a[i].pos == c[i].pos);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TopologyTest, SourceIsAtCenter) {
  DeploymentParams p;
  p.target_avg_degree = 4;
  sim::Xoshiro256 rng(1);
  const auto nodes = generate_deployment(p, rng);
  ASSERT_FALSE(nodes.empty());
  EXPECT_DOUBLE_EQ(nodes[0].pos.x, 6.25);
  EXPECT_DOUBLE_EQ(nodes[0].pos.y, 6.25);
}

TEST(TopologyTest, AllNodesInsideTheSquare) {
  DeploymentParams p;
  p.target_avg_degree = 8;
  sim::Xoshiro256 rng(5);
  for (const Node& n : generate_deployment(p, rng)) {
    EXPECT_GE(n.pos.x, 0.0);
    EXPECT_LE(n.pos.x, p.side);
    EXPECT_GE(n.pos.y, 0.0);
    EXPECT_LE(n.pos.y, p.side);
  }
}

TEST(TopologyTest, HomogeneousRadiiAreFixed) {
  DeploymentParams p;
  p.model = RadiusModel::kHomogeneous;
  p.r_fixed = 1.0;
  p.target_avg_degree = 5;
  sim::Xoshiro256 rng(2);
  for (const Node& n : generate_deployment(p, rng)) {
    EXPECT_DOUBLE_EQ(n.radius, 1.0);
  }
}

TEST(TopologyTest, UniformRadiiStayInRange) {
  DeploymentParams p;
  p.model = RadiusModel::kUniform;
  p.r_min = 1.0;
  p.r_max = 2.0;
  p.target_avg_degree = 5;
  sim::Xoshiro256 rng(3);
  sim::RunningStats radii;
  for (const Node& n : generate_deployment(p, rng)) {
    EXPECT_GE(n.radius, 1.0);
    EXPECT_LT(n.radius, 2.0);
    radii.add(n.radius);
  }
  EXPECT_NEAR(radii.mean(), 1.5, 0.05);  // uniform mean
}

/// The calibration claim: measured average degree tracks the target.
/// Boundary effects pull it slightly below (disks near the edge cover less
/// of the deployment area), exactly as in the paper's note in Section 5.1.2.
class DegreeCalibrationTest : public ::testing::TestWithParam<int> {};

TEST_P(DegreeCalibrationTest, AverageDegreeNearTarget) {
  for (const RadiusModel model :
       {RadiusModel::kHomogeneous, RadiusModel::kUniform}) {
    DeploymentParams p;
    p.model = model;
    p.target_avg_degree = GetParam();
    sim::RunningStats deg;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      sim::Xoshiro256 rng(sim::derive_seed(1000, seed));
      const DiskGraph g = generate_graph(p, rng);
      deg.add(g.average_degree());
    }
    // Expect within ~20% of target (edge effects reduce it).
    EXPECT_GT(deg.mean(), 0.7 * p.target_avg_degree);
    EXPECT_LT(deg.mean(), 1.1 * p.target_avg_degree);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeCalibrationTest,
                         ::testing::Values(6, 10, 16));

}  // namespace
}  // namespace mldcs::net
