// Tests for the random-waypoint mobility model.

#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

DeploymentParams small_deploy() {
  DeploymentParams p;
  p.target_avg_degree = 5;
  p.model = RadiusModel::kUniform;
  return p;
}

TEST(MobilityTest, InitialSnapshotMatchesDeployment) {
  sim::Xoshiro256 rng(1);
  const MobileNetwork net(small_deploy(), {}, rng);
  EXPECT_GT(net.nodes().size(), 100u);
  EXPECT_DOUBLE_EQ(net.nodes()[0].pos.x, 6.25);  // source at the center
  EXPECT_DOUBLE_EQ(net.total_distance(), 0.0);
}

TEST(MobilityTest, NodesStayInsideTheSquare) {
  sim::Xoshiro256 rng(2);
  WaypointParams wp;
  wp.v_min = 0.5;
  wp.v_max = 2.0;
  wp.pause = 0.0;
  MobileNetwork net(small_deploy(), wp, rng);
  for (int t = 0; t < 50; ++t) {
    net.step(1.0, rng);
    for (const Node& n : net.nodes()) {
      EXPECT_GE(n.pos.x, 0.0);
      EXPECT_LE(n.pos.x, net.side());
      EXPECT_GE(n.pos.y, 0.0);
      EXPECT_LE(n.pos.y, net.side());
    }
  }
}

TEST(MobilityTest, DistanceAccumulatesAndRespectsSpeedBound) {
  sim::Xoshiro256 rng(3);
  WaypointParams wp;
  wp.v_min = 0.1;
  wp.v_max = 0.4;
  wp.pause = 0.0;
  MobileNetwork net(small_deploy(), wp, rng);
  const std::size_t n = net.nodes().size();
  const double dt = 5.0;
  net.step(dt, rng);
  EXPECT_GT(net.total_distance(), 0.0);
  // No node can travel faster than v_max.
  EXPECT_LE(net.total_distance(), static_cast<double>(n) * wp.v_max * dt * 1.001);
}

TEST(MobilityTest, PauseFreezesMotionInitiallyArrivedNodes) {
  sim::Xoshiro256 rng(4);
  WaypointParams wp;
  wp.v_min = 10.0;  // reach the first waypoint almost immediately
  wp.v_max = 10.0;
  wp.pause = 1000.0;  // then pause ~forever
  MobileNetwork net(small_deploy(), wp, rng);
  net.step(5.0, rng);  // everyone arrives and starts pausing
  const double d1 = net.total_distance();
  net.step(5.0, rng);  // still pausing
  EXPECT_NEAR(net.total_distance(), d1, 1e-9);
}

TEST(MobilityTest, DeterministicGivenSeed) {
  WaypointParams wp;
  sim::Xoshiro256 rng1(5), rng2(5);
  MobileNetwork a(small_deploy(), wp, rng1);
  MobileNetwork b(small_deploy(), wp, rng2);
  for (int t = 0; t < 10; ++t) {
    a.step(0.7, rng1);
    b.step(0.7, rng2);
  }
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].pos, b.nodes()[i].pos);
  }
}

TEST(MobilityTest, TopologyActuallyChanges) {
  sim::Xoshiro256 rng(6);
  WaypointParams wp;
  wp.v_min = 0.3;
  wp.v_max = 1.0;
  wp.pause = 0.0;
  MobileNetwork net(small_deploy(), wp, rng);
  const DiskGraph before = net.snapshot();
  for (int t = 0; t < 20; ++t) net.step(1.0, rng);
  const DiskGraph after = net.snapshot();
  EXPECT_NE(before.edge_count(), after.edge_count());
}

TEST(MobilityTest, RadiiAreUnchangedByMotion) {
  sim::Xoshiro256 rng(7);
  MobileNetwork net(small_deploy(), {}, rng);
  std::vector<double> radii;
  for (const Node& n : net.nodes()) radii.push_back(n.radius);
  for (int t = 0; t < 10; ++t) net.step(1.0, rng);
  for (std::size_t i = 0; i < radii.size(); ++i) {
    EXPECT_DOUBLE_EQ(net.nodes()[i].radius, radii[i]);
  }
}

}  // namespace
}  // namespace mldcs::net
