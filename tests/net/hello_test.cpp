// Tests for the HELLO beacon exchange: discovered tables must equal the
// ground-truth graph neighborhoods, and byte accounting must follow the
// encoding arithmetic.

#include "net/hello.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

DiskGraph small_random_graph(std::uint64_t seed, double degree = 6) {
  DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = RadiusModel::kUniform;
  sim::Xoshiro256 rng(seed);
  return generate_graph(p, rng);
}

TEST(BeaconEncodingTest, SizesFollowArithmetic) {
  const BeaconEncoding enc;
  EXPECT_EQ(enc.hello1_size(), 28u);
  EXPECT_EQ(enc.hello2_size(0), 28u);
  EXPECT_EQ(enc.hello2_size(5), 28u + 5 * 28u);
}

TEST(HelloTest, Round1TablesMatchGraphNeighbors) {
  const DiskGraph g = small_random_graph(7);
  const auto tables = run_hello_round1(g);
  ASSERT_EQ(tables.size(), g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    const auto nb = g.neighbors(u);
    ASSERT_EQ(tables[u].one_hop.size(), nb.size()) << "node " << u;
    for (std::size_t k = 0; k < nb.size(); ++k) {
      EXPECT_EQ(tables[u].one_hop[k].id, nb[k]);
      EXPECT_EQ(tables[u].one_hop[k].pos, g.node(nb[k]).pos);
      EXPECT_DOUBLE_EQ(tables[u].one_hop[k].radius, g.node(nb[k]).radius);
    }
  }
}

TEST(HelloTest, Round2DeliversTwoHopView) {
  const DiskGraph g = small_random_graph(11);
  auto tables = run_hello_round1(g);
  run_hello_round2(g, tables);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_EQ(two_hop_from_table(tables[u], u), g.two_hop_neighbors(u))
        << "node " << u;
  }
}

TEST(HelloTest, Round2ViaListsMirrorNeighborsNeighbors) {
  const DiskGraph g = small_random_graph(13);
  auto tables = run_hello_round1(g);
  run_hello_round2(g, tables);
  for (NodeId u = 0; u < g.size(); ++u) {
    const auto& t = tables[u];
    ASSERT_EQ(t.via.size(), t.one_hop.size());
    for (std::size_t k = 0; k < t.one_hop.size(); ++k) {
      const NodeId v = t.one_hop[k].id;
      EXPECT_EQ(t.via[k].size(), g.degree(v));
    }
  }
}

TEST(HelloTest, Hello1CostIsLinearInNodes) {
  const DiskGraph g = small_random_graph(17);
  const auto c = hello1_cost(g);
  EXPECT_EQ(c.messages, g.size());
  EXPECT_EQ(c.bytes, g.size() * BeaconEncoding{}.hello1_size());
}

TEST(HelloTest, Hello2CostGrowsWithDegree) {
  const DiskGraph g = small_random_graph(19);
  const auto c1 = hello1_cost(g);
  const auto c2 = hello2_cost(g);
  EXPECT_EQ(c2.messages, c1.messages);
  EXPECT_GT(c2.bytes, c1.bytes);  // 2-hop HELLOs carry neighbor lists
  // Exact arithmetic: sum of per-node hello2 sizes.
  std::uint64_t expected = 0;
  for (NodeId u = 0; u < g.size(); ++u) {
    expected += BeaconEncoding{}.hello2_size(g.degree(u));
  }
  EXPECT_EQ(c2.bytes, expected);
}

TEST(HelloTest, IsolatedNodeLearnsNothing) {
  const DiskGraph g =
      DiskGraph::build({{0, {0, 0}, 1.0}, {1, {10, 10}, 1.0}});
  auto tables = run_hello_round1(g);
  run_hello_round2(g, tables);
  EXPECT_TRUE(tables[0].one_hop.empty());
  EXPECT_TRUE(two_hop_from_table(tables[0], 0).empty());
}

TEST(HelloTest, TwoHopFromTableExcludesSelfAndOneHop) {
  // Triangle 0-1-2 plus a pendant 3 on node 2.
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 1.0},
                                        {1, {1, 0}, 1.0},
                                        {2, {0.5, 0.8}, 1.0},
                                        {3, {0.5, 1.7}, 1.0}});
  auto tables = run_hello_round1(g);
  run_hello_round2(g, tables);
  // Node 0: 1-hop {1,2}; 2-hop {3} via 2.
  EXPECT_EQ(two_hop_from_table(tables[0], 0), (std::vector<NodeId>{3}));
}

}  // namespace
}  // namespace mldcs::net
