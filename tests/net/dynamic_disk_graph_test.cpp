// Tests for the incrementally maintained disk graph: edge diffs and the
// mutable grid must reproduce DiskGraph::build exactly at every step.

#include "net/dynamic_disk_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

DeploymentParams small_deploy() {
  DeploymentParams p;
  p.target_avg_degree = 6;
  p.model = RadiusModel::kUniform;
  return p;
}

void expect_matches_rebuild(const DynamicDiskGraph& dyn, const char* where) {
  std::vector<Node> copy(dyn.nodes().begin(), dyn.nodes().end());
  const DiskGraph fresh = DiskGraph::build(std::move(copy));
  ASSERT_EQ(dyn.size(), fresh.size()) << where;
  EXPECT_EQ(dyn.edge_count(), fresh.edge_count()) << where;
  for (NodeId u = 0; u < dyn.size(); ++u) {
    const auto got = dyn.neighbors(u);
    const auto want = fresh.neighbors(u);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << where << ": adjacency mismatch at node " << u;
  }
}

TEST(DynamicDiskGraphTest, InitialTopologyMatchesDiskGraphBuild) {
  sim::Xoshiro256 rng(11);
  const std::vector<Node> nodes = generate_deployment(small_deploy(), rng);
  const DynamicDiskGraph dyn{std::vector<Node>(nodes)};
  expect_matches_rebuild(dyn, "initial");
}

TEST(DynamicDiskGraphTest, NoMotionYieldsEmptyDelta) {
  sim::Xoshiro256 rng(12);
  std::vector<Node> nodes = generate_deployment(small_deploy(), rng);
  DynamicDiskGraph dyn{std::vector<Node>(nodes)};
  const auto& delta = dyn.apply(nodes);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.edges_added, 0u);
  EXPECT_EQ(delta.edges_removed, 0u);
}

TEST(DynamicDiskGraphTest, SingleMoveReportsDeltaAndPatchesEdges) {
  // Three nodes on a line, unit radii: 0-1 and 1-2 linked, 0-2 not.
  std::vector<Node> nodes{
      {0, {0.0, 0.0}, 1.0}, {1, {0.9, 0.0}, 1.0}, {2, {1.8, 0.0}, 1.0}};
  DynamicDiskGraph dyn{std::vector<Node>(nodes)};
  EXPECT_EQ(dyn.edge_count(), 2u);

  // Move node 2 out of node 1's range: edge (1,2) is removed.
  nodes[2].pos = {3.5, 0.0};
  const auto& delta = dyn.apply(nodes);
  EXPECT_EQ(delta.moved, (std::vector<NodeId>{2}));
  EXPECT_EQ(delta.link_changed, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(delta.edges_added, 0u);
  EXPECT_EQ(delta.edges_removed, 1u);
  EXPECT_EQ(dyn.edge_count(), 1u);
  EXPECT_TRUE(dyn.linked(0, 1));
  EXPECT_TRUE(dyn.neighbors(2).empty());
  expect_matches_rebuild(dyn, "after removal");

  // Move it back next to node 0: edge (0,2) appears, (1,2) reappears.
  nodes[2].pos = {0.5, 0.5};
  const auto& delta2 = dyn.apply(nodes);
  EXPECT_EQ(delta2.moved, (std::vector<NodeId>{2}));
  EXPECT_EQ(delta2.link_changed, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(delta2.edges_added, 2u);
  EXPECT_EQ(delta2.edges_removed, 0u);
  expect_matches_rebuild(dyn, "after re-add");
}

TEST(DynamicDiskGraphTest, SimultaneousMovesCountEachFlippedEdgeOnce) {
  // Both endpoints of the only edge move apart in the same step.
  std::vector<Node> nodes{{0, {0.0, 0.0}, 1.0}, {1, {0.5, 0.0}, 1.0}};
  DynamicDiskGraph dyn{std::vector<Node>(nodes)};
  EXPECT_EQ(dyn.edge_count(), 1u);
  nodes[0].pos = {-2.0, 0.0};
  nodes[1].pos = {2.0, 0.0};
  const auto& delta = dyn.apply(nodes);
  EXPECT_EQ(delta.edges_removed, 1u);
  EXPECT_EQ(delta.link_changed, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(dyn.edge_count(), 0u);
  expect_matches_rebuild(dyn, "after simultaneous move");
}

TEST(DynamicDiskGraphTest, ToDiskGraphReflectsIncrementalState) {
  sim::Xoshiro256 rng(13);
  std::vector<Node> nodes = generate_deployment(small_deploy(), rng);
  DynamicDiskGraph dyn{std::vector<Node>(nodes)};
  // Shuffle a few nodes around, then materialize.
  for (std::size_t i = 0; i < nodes.size(); i += 7) {
    nodes[i].pos = {rng.uniform(0.0, 12.5), rng.uniform(0.0, 12.5)};
  }
  dyn.apply(nodes);
  const DiskGraph snap = dyn.to_disk_graph();
  ASSERT_EQ(snap.size(), dyn.size());
  EXPECT_EQ(snap.edge_count(), dyn.edge_count());
  for (NodeId u = 0; u < dyn.size(); ++u) {
    const auto got = snap.neighbors(u);
    const auto want = dyn.neighbors(u);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
  expect_matches_rebuild(dyn, "materialized");
}

/// Long differential run: random-waypoint motion across regimes, the
/// incremental graph compared with a from-scratch build after every step.
TEST(DynamicDiskGraphTest, IncrementalMatchesRebuildUnderMobility) {
  struct Regime {
    const char* name;
    WaypointParams wp;
  };
  std::vector<Regime> regimes(3);
  regimes[0].name = "default";
  regimes[1].name = "pause_heavy";
  regimes[1].wp.v_min = 0.02;
  regimes[1].wp.v_max = 0.1;
  regimes[1].wp.pause = 10.0;
  regimes[1].wp.max_leg = 1.0;
  regimes[1].wp.steady_state_init = true;
  regimes[2].name = "high_speed";
  regimes[2].wp.v_min = 0.5;
  regimes[2].wp.v_max = 2.0;
  regimes[2].wp.pause = 0.0;

  for (const Regime& regime : regimes) {
    for (const std::uint64_t seed : {21u, 22u}) {
      sim::Xoshiro256 rng(seed);
      MobileNetwork mobile(small_deploy(), regime.wp, rng);
      DynamicDiskGraph dyn{std::vector<Node>(
          mobile.nodes().begin(), mobile.nodes().end())};
      for (int t = 0; t < 25; ++t) {
        mobile.step(1.0, rng);
        // Alternate the hinted and scanning apply() forms.
        if (t % 2 == 0) {
          dyn.apply(mobile.nodes(), mobile.moved_last_step());
        } else {
          dyn.apply(mobile.nodes());
        }
        expect_matches_rebuild(dyn, regime.name);
      }
    }
  }
}

}  // namespace
}  // namespace mldcs::net
