// Runtime verification of the sharded hot loop's MLDCS_HOT_PATH /
// MLDCS_NO_LOCK annotations, compiled into the hot_path_guard_test
// binary (which owns the alloc/lock interposers).  A one-worker pool
// runs parallel_chunks inline on the caller thread — zero submit traffic,
// zero latch — so the interposer counters see exactly what one shard's
// step executes: the region-graph apply, the dirty rule, and the
// recompute/store path.  After warm-up, hover steps (a full mover hint
// at unchanged positions, the worst case for the classify/rebucket/drift
// machinery) must allocate nothing; steps with real motion must still
// take no mutex, which is the "zero cross-shard locking" claim made
// observable.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "broadcast/sharded_cache.hpp"
#include "net/mobility.hpp"
#include "net/sharded_engine.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "support/alloc_guard.hpp"
#include "support/lock_guard.hpp"

namespace mldcs::net {
namespace {

using test::AllocGuard;
using test::LockGuard;

struct ShardedFixture {
  sim::Xoshiro256 rng{0xCAFE5ULL};
  DeploymentParams p;
  WaypointParams wp;
  net::MobileNetwork mobile;
  sim::ThreadPool pool{1};
  ShardedEngine engine;
  bcast::ShardedSkylineCache cache;

  static DeploymentParams params() {
    DeploymentParams p;
    p.model = RadiusModel::kUniform;
    p.target_avg_degree = 8.0;
    return p;
  }
  static WaypointParams motion() {
    WaypointParams wp;
    wp.v_min = 0.05;
    wp.v_max = 0.2;
    wp.pause = 1.0;
    return wp;
  }
  static ShardedEngine::Config config() {
    ShardedEngine::Config c;
    c.shards = 4;
    c.deployment = {{0.0, 0.0}, {12.5, 12.5}};
    return c;
  }

  ShardedFixture()
      : p(params()),
        wp(motion()),
        mobile(p, wp, rng),
        engine(std::vector<Node>(mobile.nodes().begin(),
                                 mobile.nodes().end()),
               pool, config()),
        cache(engine) {}

  void warm(int steps) {
    // Real motion: grows every scratch high-water mark (grid queries,
    // skyline workspaces, slot stores) and performs the once-per-process
    // telemetry registrations.
    for (int i = 0; i < steps; ++i) {
      mobile.step(1.0, rng);
      cache.step(mobile.nodes(), mobile.moved_last_step());
    }
  }

  std::vector<NodeId> all_ids() const {
    std::vector<NodeId> ids(engine.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<NodeId>(i);
    }
    return ids;
  }
};

TEST(ShardedHotPath, HoverStepsSteadyStateAllocFree) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  ShardedFixture f;
  f.warm(8);
  // Hover: every node hinted as moved, nobody actually moved.  The step
  // still classifies all movers, rebuckets them, re-derives adjacency,
  // and runs the drift gate for each — with nothing dirty, nothing may
  // allocate.
  const std::vector<Node> frozen(f.mobile.nodes().begin(),
                                 f.mobile.nodes().end());
  const std::vector<NodeId> hint = f.all_ids();
  f.cache.step(frozen, hint);  // warm the hover path's own high-water mark

  AllocGuard guard;
  for (int i = 0; i < 20; ++i) {
    f.cache.step(frozen, hint);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "MLDCS_HOT_PATH contract: a warmed sharded step with no dirty "
         "relays must not allocate";
  EXPECT_EQ(f.cache.last_dirty_count(), 0u);
}

TEST(ShardedHotPath, RealMotionStepsTakeNoMutex) {
  if (!test::lock_probe_active()) GTEST_SKIP() << "pthreads owned by TSan";
  ShardedFixture f;
  f.warm(8);

  LockGuard guard;
  for (int i = 0; i < 20; ++i) {
    f.mobile.step(1.0, f.rng);
    f.cache.step(f.mobile.nodes(), f.mobile.moved_last_step());
  }
  EXPECT_EQ(guard.count(), 0u)
      << "MLDCS_NO_LOCK contract: shard updates synchronize only at the "
         "pool barrier (inline at one worker) — no mutex in the loop";
  EXPECT_GT(f.cache.recompute_count(), 0u);
}

// The cold path must register on the probe, or the zeros above are
// meaningless: constructing the engine + cache performs the full-sweep
// recomputation and every initial store growth.
TEST(ShardedHotPath, ColdConstructionAllocatesAndGuardSeesIt) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  AllocGuard guard;
  ShardedFixture f;
  EXPECT_GT(guard.count(), 0u)
      << "cold construction must grow scratch (otherwise the probe is "
         "dead)";
}

}  // namespace
}  // namespace mldcs::net
