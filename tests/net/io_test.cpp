// Tests for deployment serialization: round trips, comment handling, and
// failure injection on malformed input.

#include "net/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

TEST(IoTest, RoundTripPreservesNodesExactly) {
  DeploymentParams p;
  p.model = RadiusModel::kUniform;
  p.target_avg_degree = 5;
  sim::Xoshiro256 rng(77);
  const auto original = generate_deployment(p, rng);

  std::stringstream buf;
  write_deployment(buf, original, "round-trip test");
  const auto loaded = read_deployment(buf);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, i);
    // 17 significant digits round-trip doubles exactly.
    EXPECT_EQ(loaded[i].pos, original[i].pos) << "node " << i;
    EXPECT_EQ(loaded[i].radius, original[i].radius) << "node " << i;
  }
}

TEST(IoTest, CommentsAndBlanksIgnored) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "node 1.0 2.0 3.0   # trailing comment\n"
      "   \t  \n"
      "node -1.5 0 2\n");
  const auto nodes = read_deployment(in);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(nodes[0].pos.x, 1.0);
  EXPECT_DOUBLE_EQ(nodes[1].pos.x, -1.5);
  EXPECT_EQ(nodes[1].id, 1u);
}

TEST(IoTest, EmptyInputGivesEmptyDeployment) {
  std::istringstream in("# nothing here\n");
  EXPECT_TRUE(read_deployment(in).empty());
}

TEST(IoTest, RejectsUnknownTag) {
  std::istringstream in("vertex 1 2 3\n");
  EXPECT_THROW(read_deployment(in), DeploymentParseError);
}

TEST(IoTest, RejectsMissingFields) {
  std::istringstream in("node 1.0 2.0\n");
  EXPECT_THROW(read_deployment(in), DeploymentParseError);
}

TEST(IoTest, RejectsTrailingGarbage) {
  std::istringstream in("node 1 2 3 4\n");
  EXPECT_THROW(read_deployment(in), DeploymentParseError);
}

TEST(IoTest, RejectsNonNumericFields) {
  std::istringstream in("node one 2 3\n");
  EXPECT_THROW(read_deployment(in), DeploymentParseError);
}

TEST(IoTest, RejectsNegativeRadius) {
  std::istringstream in("node 0 0 -1\n");
  EXPECT_THROW(read_deployment(in), DeploymentParseError);
}

TEST(IoTest, ErrorMessageCarriesLineNumber) {
  std::istringstream in(
      "node 0 0 1\n"
      "node 1 0 1\n"
      "bogus line\n");
  try {
    (void)read_deployment(in);
    FAIL() << "expected DeploymentParseError";
  } catch (const DeploymentParseError& err) {
    EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos);
  }
}

TEST(IoTest, FileHelpersRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mldcs_io_test.txt";
  const std::vector<Node> nodes{{0, {1, 2}, 3.0}, {1, {4, 5}, 6.0}};
  save_deployment(path, nodes, "file helper test");
  const auto loaded = load_deployment(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].pos, (geom::Vec2{4, 5}));
}

TEST(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_deployment("/nonexistent/path/xyz.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mldcs::net
