// Tests for the spatially sharded engine and cache: halo residency must
// cover every owned relay's 1-hop set, border crossings must migrate
// ownership, and the sharded forwarding sets must stay bit-identical to
// the single-engine SkylineCache at every step, for every shard count.

#include "net/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "broadcast/cache_watchdog.hpp"
#include "broadcast/sharded_cache.hpp"
#include "broadcast/skyline_cache.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "obs/event_log.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::net {
namespace {

DeploymentParams small_deploy(double degree = 8.0) {
  DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = RadiusModel::kUniform;
  return p;
}

geom::BBox square(double side) { return {{0.0, 0.0}, {side, side}}; }

std::vector<NodeId> vec(std::span<const NodeId> s) {
  return {s.begin(), s.end()};
}

ShardedEngine::Config sharded(std::size_t shards, double side) {
  ShardedEngine::Config c;
  c.shards = shards;
  c.deployment = square(side);
  return c;
}

// --- Region-mode DynamicDiskGraph (the shard substrate) --------------------

TEST(RegionGraphTest, ResidencyRestrictsAdjacencyToTheRegion) {
  // Four unit-radius nodes on a line; region = left half [0,2]x[0,4].
  std::vector<Node> nodes{{0, {0.5, 1.0}, 1.0},
                          {1, {1.2, 1.0}, 1.0},
                          {2, {2.5, 1.0}, 1.0},
                          {3, {3.2, 1.0}, 1.0}};
  const geom::BBox region{{0.0, 0.0}, {2.0, 4.0}};
  DynamicDiskGraph g{std::vector<Node>(nodes), region};
  EXPECT_TRUE(g.region_mode());
  EXPECT_EQ(g.resident_count(), 2u);
  EXPECT_TRUE(g.resident(0));
  EXPECT_TRUE(g.resident(1));
  EXPECT_FALSE(g.resident(2));
  EXPECT_FALSE(g.resident(3));
  // Residents link to residents only; non-residents have empty lists even
  // though node 2 is within range of node 3 in the whole plane.
  EXPECT_EQ(vec(g.neighbors(0)), (std::vector<NodeId>{1}));
  EXPECT_EQ(vec(g.neighbors(1)), (std::vector<NodeId>{0}));
  EXPECT_TRUE(g.neighbors(2).empty());
  EXPECT_TRUE(g.neighbors(3).empty());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_THROW((void)g.to_disk_graph(), std::logic_error);
}

TEST(RegionGraphTest, ApplyClassifiesMoveInsertEvict) {
  std::vector<Node> nodes{{0, {0.5, 1.0}, 1.0},
                          {1, {1.2, 1.0}, 1.0},
                          {2, {3.2, 1.0}, 1.0}};
  const geom::BBox region{{0.0, 0.0}, {2.0, 4.0}};
  DynamicDiskGraph g{std::vector<Node>(nodes), region};

  // Insert: node 2 enters the region next to node 1.
  nodes[2].pos = {1.4, 1.0};
  const NodeId moved2[] = {2};
  const auto& d1 = g.apply(nodes, moved2);
  EXPECT_EQ(d1.moved, (std::vector<NodeId>{2}));
  EXPECT_EQ(d1.edges_added, 2u);  // 2-1 (distance 0.2) and 2-0 (0.9)
  EXPECT_TRUE(g.resident(2));
  EXPECT_EQ(g.resident_count(), 3u);
  EXPECT_EQ(vec(g.neighbors(1)), (std::vector<NodeId>{0, 2}));

  // Evict: node 1 leaves the region; its links tear down and the delta
  // still names it (downstream caches must re-check its neighborhood).
  nodes[1].pos = {3.5, 1.0};
  const NodeId moved1[] = {1};
  const auto& d2 = g.apply(nodes, moved1);
  EXPECT_EQ(d2.moved, (std::vector<NodeId>{1}));
  EXPECT_EQ(d2.edges_removed, 2u);
  EXPECT_FALSE(g.resident(1));
  EXPECT_TRUE(g.neighbors(1).empty());
  EXPECT_EQ(vec(g.neighbors(0)), (std::vector<NodeId>{2}));

  // Ignore: a mover that stays outside never touches the delta.
  nodes[1].pos = {3.8, 1.0};
  const auto& d3 = g.apply(nodes, moved1);
  EXPECT_TRUE(d3.empty());
}

// --- Halo residency --------------------------------------------------------

TEST(ShardedEngineTest, HaloCoversEveryOwnedNeighborhood) {
  sim::Xoshiro256 rng(21);
  const std::vector<Node> nodes =
      generate_deployment(small_deploy(), rng);
  const DynamicDiskGraph whole{std::vector<Node>(nodes)};
  sim::ThreadPool pool(1);
  const ShardedEngine engine{std::vector<Node>(nodes), pool,
                             sharded(4, 12.5)};
  ASSERT_EQ(engine.shard_count(), 4u);
  EXPECT_EQ(engine.rows() * engine.cols(), 4u);

  std::size_t owned_total = 0;
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    owned_total += engine.owned_count(s);
  }
  EXPECT_EQ(owned_total, nodes.size());

  for (NodeId u = 0; u < whole.size(); ++u) {
    const std::uint32_t s = engine.owner_of(u);
    const DynamicDiskGraph& g = engine.shard_graph(s);
    ASSERT_TRUE(g.resident(u)) << "owned node not resident, node " << u;
    const auto got = g.neighbors(u);
    const auto want = whole.neighbors(u);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "owned adjacency differs from whole-plane at node " << u;
  }
  EXPECT_GT(engine.halo_fraction(), 0.0);
}

// --- Migration -------------------------------------------------------------

TEST(ShardedEngineTest, BorderCrossingMigratesOwnership) {
  // Two tiles side by side on [0,4]x[0,4]; margin = max radius = 1.
  std::vector<Node> nodes{{0, {1.9, 2.0}, 1.0},
                          {1, {0.9, 2.0}, 1.0},
                          {2, {3.2, 2.0}, 1.0}};
  sim::ThreadPool pool(1);
  ShardedEngine engine{std::vector<Node>(nodes), pool, sharded(2, 4.0)};
  ASSERT_EQ(engine.shard_count(), 2u);
  EXPECT_EQ(engine.owner_of(0), 0u);
  // Node 0 sits in tile 0's interior but inside tile 1's halo band.
  EXPECT_TRUE(engine.shard_graph(1).resident(0));
  EXPECT_EQ(engine.halo_count(1), 1u);

  // Cross the border: ownership migrates 0 -> 1, both shards keep exact
  // adjacency for their owned nodes.
  nodes[0].pos = {2.1, 2.0};
  const NodeId moved[] = {0};
  engine.step(nodes, moved);
  EXPECT_EQ(engine.owner_of(0), 1u);
  EXPECT_EQ(vec(engine.migrated_last_step()), (std::vector<NodeId>{0}));
  EXPECT_EQ(engine.migration_count(), 1u);
  EXPECT_TRUE(engine.shard_graph(1).neighbors(0).empty());
  EXPECT_EQ(engine.shard_delta(1).edges_removed, 0u);

  // Keep walking right, beyond tile 0's halo band: shard 0 evicts it.
  nodes[0].pos = {3.5, 2.0};
  engine.step(nodes, moved);
  EXPECT_TRUE(engine.migrated_last_step().empty());
  EXPECT_FALSE(engine.shard_graph(0).resident(0));
  EXPECT_TRUE(engine.shard_graph(0).neighbors(0).empty());
  EXPECT_EQ(vec(engine.shard_graph(1).neighbors(2)),
            (std::vector<NodeId>{0}));
  EXPECT_EQ(vec(engine.shard_graph(1).neighbors(0)),
            (std::vector<NodeId>{2}));
}

// --- Differential vs the single engine -------------------------------------

struct Regime {
  const char* name;
  WaypointParams wp;
};

std::vector<Regime> regimes() {
  Regime quasi{"quasi_static", {}};
  quasi.wp.v_min = 0.02;
  quasi.wp.v_max = 0.1;
  quasi.wp.pause = 50.0;
  quasi.wp.max_leg = 1.0;
  Regime moderate{"moderate", {}};
  moderate.wp.v_min = 0.1;
  moderate.wp.v_max = 0.5;
  moderate.wp.pause = 2.0;
  Regime storm{"high_speed", {}};
  storm.wp.v_min = 0.5;
  storm.wp.v_max = 1.5;
  storm.wp.pause = 0.0;
  return {quasi, moderate, storm};
}

/// Drive `steps` mobility steps comparing the sharded cache against the
/// single-engine SkylineCache relay by relay, every step.
void expect_bit_identical_run(std::uint64_t seed, const WaypointParams& wp,
                              std::size_t shards, std::size_t steps,
                              const char* regime) {
  const double side = 12.5;
  DeploymentParams dp = small_deploy();
  sim::Xoshiro256 rng(seed);
  MobileNetwork net(dp, wp, rng);

  sim::ThreadPool pool(2);
  DynamicDiskGraph whole{std::vector<Node>(net.nodes())};
  bcast::SkylineCache single(whole, pool);
  ShardedEngine engine{std::vector<Node>(net.nodes()), pool,
                       sharded(shards, side)};
  bcast::ShardedSkylineCache cache(engine);

  for (std::size_t k = 0; k < steps; ++k) {
    net.step(0.5, rng);
    const auto moved = net.moved_last_step();
    single.update(whole.apply(net.nodes(), moved));
    cache.step(net.nodes(), moved);

    for (NodeId u = 0; u < whole.size(); ++u) {
      const auto got = cache.forwarding_set(u);
      const auto want = single.forwarding_set(u);
      ASSERT_TRUE(
          std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << regime << " seed " << seed << " shards " << shards << " step "
          << k << ": forwarding set mismatch at relay " << u;
      ASSERT_EQ(cache.arc_count(u), single.arc_count(u))
          << regime << " step " << k << " relay " << u;
    }
  }
  EXPECT_EQ(cache.total_forwarders(), single.total_forwarders());
  EXPECT_EQ(cache.update_count(), steps);
}

TEST(ShardedEngineTest, BitIdenticalAcrossShardCounts) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    expect_bit_identical_run(101, regimes()[1].wp, shards, 12, "moderate");
  }
}

TEST(ShardedEngineTest, LongRunDifferentialAcrossRegimesAndSeeds) {
  for (const Regime& regime : regimes()) {
    for (const std::uint64_t seed : {7ull, 23ull}) {
      expect_bit_identical_run(seed, regime.wp, 4, 30, regime.name);
    }
  }
}

// --- Events ----------------------------------------------------------------

TEST(ShardedEngineTest, EmitsShardExchangeWithCacheUpdateChild) {
  if (!obs::kTelemetryEnabled) {
    GTEST_SKIP() << "event emission requires MLDCS_ENABLE_TELEMETRY";
  }
  sim::Xoshiro256 rng(31);
  DeploymentParams dp = small_deploy(6.0);
  MobileNetwork net(dp, regimes()[1].wp, rng);
  sim::ThreadPool pool(1);
  ShardedEngine engine{std::vector<Node>(net.nodes()), pool,
                       sharded(4, 12.5)};
  bcast::ShardedSkylineCache cache(engine);

  obs::events_clear();
  obs::events_start();
  net.step(0.5, rng);
  cache.step(net.nodes(), net.moved_last_step());
  obs::events_stop();

  const auto events = obs::events_snapshot();
  std::size_t exchanges = 0;
  bool cache_linked = false;
  for (const obs::Event& e : events) {
    if (e.type == obs::EventType::kShardExchange) {
      ++exchanges;
      EXPECT_EQ(e.id, engine.last_event());
      EXPECT_EQ(e.value, engine.step_count());
    }
    if (e.type == obs::EventType::kCacheUpdate &&
        e.parent == engine.last_event()) {
      cache_linked = true;
      EXPECT_EQ(e.id, cache.last_update_event());
    }
    // Region-mode shard graphs must not emit per-shard kStep events.
    EXPECT_NE(e.type, obs::EventType::kStep);
  }
  EXPECT_EQ(exchanges, 1u);
  EXPECT_TRUE(cache_linked);
  obs::events_clear();
}

// --- Watchdog --------------------------------------------------------------

TEST(ShardedEngineTest, WatchdogCatchesInjectedShardCorruption) {
  sim::Xoshiro256 rng(41);
  DeploymentParams dp = small_deploy(6.0);
  MobileNetwork net(dp, regimes()[0].wp, rng);
  sim::ThreadPool pool(1);
  ShardedEngine engine{std::vector<Node>(net.nodes()), pool,
                       sharded(4, 12.5)};
  bcast::ShardedSkylineCache cache(engine);

  obs::ConsistencyWatchdog::Config wc;
  wc.period = 1;
  wc.samples = static_cast<std::uint32_t>(engine.size());
  auto wd = bcast::make_cache_watchdog(cache, wc);

  for (int k = 0; k < 4; ++k) {
    net.step(0.5, rng);
    cache.step(net.nodes(), net.moved_last_step());
    EXPECT_TRUE(wd.on_step(cache.last_update_event()));
  }
  EXPECT_TRUE(wd.clean());

  // Find a relay with a non-trivial set and corrupt its owner's slot.
  NodeId victim = kNoNode;
  for (NodeId u = 0; u < engine.size(); ++u) {
    if (!cache.forwarding_set(u).empty()) {
      victim = u;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  cache.corrupt_slot_for_testing(victim);
  EXPECT_FALSE(wd.check_now(cache.last_update_event()));
  EXPECT_FALSE(wd.clean());
  EXPECT_EQ(wd.last_mismatched_relays().size(), 1u);
  EXPECT_EQ(wd.last_mismatched_relays()[0], victim);
}

}  // namespace
}  // namespace mldcs::net
