// Tests for the bidirectional disk graph: link rule, adjacency symmetry,
// CSR integrity, 2-hop extraction, reachability.

#include "net/disk_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"

namespace mldcs::net {
namespace {

TEST(NodeTest, LinkRuleUsesMinimumRadius) {
  const Node a{0, {0, 0}, 2.0};
  const Node b{1, {1.5, 0}, 1.0};
  // distance 1.5 > min(2,1) = 1 -> not linked, though a covers b.
  EXPECT_FALSE(a.linked_to(b));
  EXPECT_FALSE(b.linked_to(a));
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(NodeTest, LinkIsInclusiveAtExactRange) {
  const Node a{0, {0, 0}, 1.0};
  const Node b{1, {1.0, 0}, 1.0};
  EXPECT_TRUE(a.linked_to(b));
}

TEST(DiskGraphTest, EmptyGraph) {
  const DiskGraph g = DiskGraph::build({});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(DiskGraphTest, TwoLinkedNodes) {
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 1.0}, {0, {0.5, 0}, 1.0}});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.linked(0, 1));
  EXPECT_TRUE(g.linked(1, 0));
  EXPECT_TRUE(g.connected());
}

TEST(DiskGraphTest, IdsAreReassignedToIndices) {
  const DiskGraph g =
      DiskGraph::build({{42, {0, 0}, 1.0}, {99, {0.5, 0}, 1.0}});
  EXPECT_EQ(g.node(0).id, 0u);
  EXPECT_EQ(g.node(1).id, 1u);
}

TEST(DiskGraphTest, AdjacencyIsSymmetricAndSorted) {
  sim::Xoshiro256 rng(17);
  std::vector<Node> nodes;
  for (NodeId i = 0; i < 150; ++i) {
    nodes.push_back({i, {rng.uniform(0, 10), rng.uniform(0, 10)},
                     rng.uniform(1.0, 2.0)});
  }
  const DiskGraph g = DiskGraph::build(std::move(nodes));
  for (NodeId u = 0; u < g.size(); ++u) {
    const auto nb = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (NodeId v : nb) {
      EXPECT_NE(v, u) << "self-loop";
      EXPECT_TRUE(g.linked(v, u)) << "asymmetric edge " << u << "-" << v;
    }
  }
}

TEST(DiskGraphTest, AdjacencyMatchesBruteForce) {
  sim::Xoshiro256 rng(23);
  std::vector<Node> nodes;
  for (NodeId i = 0; i < 120; ++i) {
    nodes.push_back({i, {rng.uniform(0, 8), rng.uniform(0, 8)},
                     rng.uniform(0.5, 2.5)});
  }
  const std::vector<Node> copy = nodes;
  const DiskGraph g = DiskGraph::build(std::move(nodes));
  for (NodeId u = 0; u < g.size(); ++u) {
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < copy.size(); ++v) {
      if (v != u && copy[u].linked_to(copy[v])) expected.push_back(v);
    }
    const auto nb = g.neighbors(u);
    EXPECT_EQ(std::vector<NodeId>(nb.begin(), nb.end()), expected)
        << "node " << u;
  }
}

TEST(DiskGraphTest, TwoHopNeighborsExcludeSelfAndOneHop) {
  // Path: 0 - 1 - 2 - 3 (unit radii, spacing 1).
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 1.0},
                                        {1, {1, 0}, 1.0},
                                        {2, {2, 0}, 1.0},
                                        {3, {3, 0}, 1.0}});
  EXPECT_EQ(g.two_hop_neighbors(0), (std::vector<NodeId>{2}));
  EXPECT_EQ(g.two_hop_neighbors(1), (std::vector<NodeId>{3}));
  EXPECT_EQ(g.two_hop_neighbors(2), (std::vector<NodeId>{0}));
}

TEST(DiskGraphTest, TwoHopOfIsolatedNodeIsEmpty) {
  const DiskGraph g =
      DiskGraph::build({{0, {0, 0}, 1.0}, {1, {10, 10}, 1.0}});
  EXPECT_TRUE(g.two_hop_neighbors(0).empty());
  EXPECT_FALSE(g.connected());
}

TEST(DiskGraphTest, ReachabilityAndConnectivity) {
  // Two components: {0,1,2} chain and {3,4} pair.
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 1.0},
                                        {1, {1, 0}, 1.0},
                                        {2, {2, 0}, 1.0},
                                        {3, {8, 8}, 1.0},
                                        {4, {8.5, 8}, 1.0}});
  EXPECT_EQ(g.reachable_from(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.reachable_from(4), (std::vector<NodeId>{3, 4}));
  EXPECT_FALSE(g.connected());
}

TEST(DiskGraphTest, AverageDegree) {
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 1.0},
                                        {1, {0.5, 0}, 1.0},
                                        {2, {1.0, 0}, 1.0}});
  // Edges: 0-1, 1-2, 0-2 (distance 1 <= 1).  Average degree = 2.
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(DiskGraphTest, HeterogeneousAsymmetricCoverageDoesNotLink) {
  // The Figure 5.6 ingredient: big node covers small one, no link.
  const DiskGraph g = DiskGraph::build({{0, {0, 0}, 5.0}, {1, {2, 0}, 1.0}});
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.node(0).covers(g.node(1)));
}

}  // namespace
}  // namespace mldcs::net
