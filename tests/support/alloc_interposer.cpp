// Program-wide replacement of the non-aligned operator new/delete pair
// with a counting shim over std::malloc (the aligned overloads keep their
// independent, malloc-consistent defaults).  Promoted from the counter
// bench/perf_suite.cpp carried privately, so tests and benches now share
// one implementation; see tests/support/alloc_guard.hpp for the API and
// the AddressSanitizer caveat.
//
// Link note: this TU is pulled out of the mldcs_testsupport archive by any
// reference to allocation_count()/alloc_probe_active() — i.e. by using
// AllocGuard.  A binary that never references them gets the default
// allocator.

#include "support/alloc_guard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define MLDCS_ALLOC_PROBE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MLDCS_ALLOC_PROBE 0
#endif
#endif
#ifndef MLDCS_ALLOC_PROBE
#define MLDCS_ALLOC_PROBE 1
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

namespace mldcs::test {

bool alloc_probe_active() noexcept { return MLDCS_ALLOC_PROBE != 0; }

std::uint64_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace mldcs::test

#if MLDCS_ALLOC_PROBE

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // MLDCS_ALLOC_PROBE
