// Strong-symbol interposition of pthread_mutex_lock: the executable's
// definition wins over libc's at dynamic link, so every std::mutex::lock /
// std::lock_guard acquisition in the binary routes through the counting
// shim below, which forwards to the real implementation via
// dlsym(RTLD_NEXT).
//
// Disabled under ThreadSanitizer: TSan interposes the pthread symbols
// itself, and a second interposer would bypass its happens-before
// tracking.  lock_probe_active() lets tests skip cleanly there.

#include "support/lock_guard.hpp"

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define MLDCS_LOCK_PROBE 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MLDCS_LOCK_PROBE 0
#endif
#endif
#ifndef MLDCS_LOCK_PROBE
#define MLDCS_LOCK_PROBE 1
#endif

namespace {
std::atomic<std::uint64_t> g_lock_count{0};
}  // namespace

namespace mldcs::test {

bool lock_probe_active() noexcept { return MLDCS_LOCK_PROBE != 0; }

std::uint64_t lock_count() noexcept {
  return g_lock_count.load(std::memory_order_relaxed);
}

}  // namespace mldcs::test

#if MLDCS_LOCK_PROBE

#include <dlfcn.h>
#include <pthread.h>

extern "C" int pthread_mutex_lock(pthread_mutex_t* mutex) {
  using LockFn = int (*)(pthread_mutex_t*);
  // Lazy, racy-but-idempotent resolution: concurrent first calls all
  // dlsym the same symbol.  No std::call_once here — it would recurse
  // into this very interposer.
  static std::atomic<LockFn> real{nullptr};
  LockFn fn = real.load(std::memory_order_acquire);
  if (fn == nullptr) {
    fn = reinterpret_cast<LockFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
    real.store(fn, std::memory_order_release);
  }
  g_lock_count.fetch_add(1, std::memory_order_relaxed);
  return fn(mutex);
}

#endif  // MLDCS_LOCK_PROBE
