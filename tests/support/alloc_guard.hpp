#pragma once

/// \file alloc_guard.hpp
/// Runtime allocation probe for tests and benchmarks: a process-global
/// `operator new` counter (alloc_interposer.cpp) with an RAII delta reader.
///
/// This is the *dynamic* half of the hot-no-alloc discipline.  The static
/// half — `tools/analyze/mldcs_analyze.py` rule `hot-no-alloc` over the
/// MLDCS_HOT_PATH annotations — cannot see through constructors, default
/// member initializers, or std::function type erasure; AllocGuard measures
/// the path as it actually executes, so the two cross-check each other
/// (see docs/CORRECTNESS.md, "Static analysis").
///
/// Usage:
///
///   warm_up();                      // amortized scratch reaches capacity
///   mldcs::test::AllocGuard guard;
///   hot_path();
///   EXPECT_EQ(guard.count(), 0u);
///
/// The counter is process-global: run the measured section single-threaded
/// (or with a 1-thread pool, which executes inline) or concurrent
/// allocations elsewhere will be attributed to the guard window.  Under
/// AddressSanitizer the allocator is owned by the sanitizer and the probe
/// deactivates — gate assertions on alloc_probe_active().

#include <cstdint>

namespace mldcs::test {

/// True when the counting operator new replacement is linked and active
/// (false under AddressSanitizer, which owns the allocator).
[[nodiscard]] bool alloc_probe_active() noexcept;

/// Process-global count of non-aligned operator new/new[] calls since
/// program start.  Monotonic; only deltas are meaningful.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// RAII window over allocation_count().
class AllocGuard {
 public:
  AllocGuard() noexcept : start_(allocation_count()) {}

  /// Allocations since construction (or the last reset()).
  [[nodiscard]] std::uint64_t count() const noexcept {
    return allocation_count() - start_;
  }

  void reset() noexcept { start_ = allocation_count(); }

 private:
  std::uint64_t start_;
};

}  // namespace mldcs::test
