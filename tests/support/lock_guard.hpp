#pragma once

/// \file lock_guard.hpp
/// Runtime lock probe for tests: a process-global pthread_mutex_lock
/// counter (lock_interposer.cpp) with an RAII delta reader — the dynamic
/// cross-check of the MLDCS_NO_LOCK static rule (`lock-discipline` in
/// tools/analyze/), which cannot see locks taken inside constructors or
/// default member initializers (e.g. telemetry registration).
///
/// Usage mirrors AllocGuard:
///
///   warm_up();             // one-time static-local registration locks
///   mldcs::test::LockGuard guard;
///   lock_free_path();
///   EXPECT_EQ(guard.count(), 0u);
///
/// Under ThreadSanitizer the pthread symbols belong to the sanitizer's
/// interceptors and the probe deactivates — gate assertions on
/// lock_probe_active().  The count is process-global; measure
/// single-threaded windows only.

#include <cstdint>

namespace mldcs::test {

/// True when the counting pthread_mutex_lock interposer is linked and
/// active (false under ThreadSanitizer).
[[nodiscard]] bool lock_probe_active() noexcept;

/// Process-global count of pthread_mutex_lock calls resolved through the
/// interposer since program start.  Monotonic; only deltas are meaningful.
[[nodiscard]] std::uint64_t lock_count() noexcept;

/// RAII window over lock_count().
class LockGuard {
 public:
  LockGuard() noexcept : start_(lock_count()) {}

  /// Mutex acquisitions since construction (or the last reset()).
  [[nodiscard]] std::uint64_t count() const noexcept {
    return lock_count() - start_;
  }

  void reset() noexcept { start_ = lock_count(); }

 private:
  std::uint64_t start_;
};

}  // namespace mldcs::test
