// Tests for segments, rays, and ray-circle intersection.

#include "geometry/segment.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mldcs::geom {
namespace {

TEST(SegmentTest, LengthAndAt) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.at(0.0), Vec2(0, 0));
  EXPECT_EQ(s.at(1.0), Vec2(3, 4));
  EXPECT_EQ(s.at(0.5), Vec2(1.5, 2.0));
}

TEST(SegmentTest, DistanceToPoint) {
  const Segment s{{0, 0}, {4, 0}};
  EXPECT_DOUBLE_EQ(s.distance_to({2, 3}), 3.0);   // interior projection
  EXPECT_DOUBLE_EQ(s.distance_to({-3, 4}), 5.0);  // clamps to endpoint a
  EXPECT_DOUBLE_EQ(s.distance_to({7, 4}), 5.0);   // clamps to endpoint b
  EXPECT_DOUBLE_EQ(s.distance_to({2, 0}), 0.0);   // on the segment
}

TEST(SegmentTest, DegenerateSegmentIsAPoint) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(s.distance_to({4, 5}), 5.0);
}

TEST(SegmentTest, InsideDiskByConvexity) {
  // Lemma 1's engine: both endpoints in a convex disk -> whole segment in.
  const Disk d{{0, 0}, 2.0};
  EXPECT_TRUE((Segment{{-1, 0}, {1, 0.5}}.inside_disk(d)));
  EXPECT_FALSE((Segment{{0, 0}, {3, 0}}.inside_disk(d)));
}

TEST(RayCircleTest, ThroughCenterTwoHits) {
  const Ray ray{{-3, 0}, {1, 0}};
  const auto h = intersect_ray_circle(ray, {{0, 0}, 1.0});
  ASSERT_EQ(h.count, 2);
  EXPECT_NEAR(h.t0, 2.0, 1e-12);
  EXPECT_NEAR(h.t1, 4.0, 1e-12);
}

TEST(RayCircleTest, OriginInsideOneForwardHit) {
  const Ray ray{{0, 0}, {1, 0}};
  const auto h = intersect_ray_circle(ray, {{0, 0}, 1.5});
  ASSERT_EQ(h.count, 1);
  EXPECT_NEAR(h.t0, 1.5, 1e-12);
}

TEST(RayCircleTest, MissesCircle) {
  const Ray ray{{0, 5}, {1, 0}};
  EXPECT_EQ(intersect_ray_circle(ray, {{0, 0}, 1.0}).count, 0);
}

TEST(RayCircleTest, PointsBehindAreIgnored) {
  const Ray ray{{3, 0}, {1, 0}};  // circle is behind the origin
  EXPECT_EQ(intersect_ray_circle(ray, {{0, 0}, 1.0}).count, 0);
}

TEST(RayCircleTest, TangentRayOneHit) {
  const Ray ray{{-3, 1}, {1, 0}};  // grazes the unit circle at (0, 1)
  const auto h = intersect_ray_circle(ray, {{0, 0}, 1.0});
  ASSERT_GE(h.count, 1);
  EXPECT_NEAR(h.t0, 3.0, 1e-5);
}

TEST(RayCircleTest, ScalesWithDirectionLength) {
  // t is in units of ||dir||: doubling dir halves t.
  const Ray unit{{-3, 0}, {1, 0}};
  const Ray twice{{-3, 0}, {2, 0}};
  const Disk d{{0, 0}, 1.0};
  EXPECT_NEAR(intersect_ray_circle(unit, d).t0,
              2.0 * intersect_ray_circle(twice, d).t0, 1e-12);
}

TEST(RayCircleTest, HitPointsLieOnCircleProperty) {
  sim::Xoshiro256 rng(31337);
  const Disk d{{0.5, -0.25}, 1.25};
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Ray ray{{rng.uniform(-3, 3), rng.uniform(-3, 3)},
                  unit_at(rng.uniform(0.0, 6.28))};
    const auto h = intersect_ray_circle(ray, d);
    if (h.count >= 1) {
      EXPECT_NEAR(distance(ray.at(h.t0), d.center), d.radius, 1e-7);
      ++hits;
    }
    if (h.count == 2) {
      EXPECT_NEAR(distance(ray.at(h.t1), d.center), d.radius, 1e-7);
      EXPECT_LE(h.t0, h.t1);
    }
  }
  EXPECT_GT(hits, 0);
}

}  // namespace
}  // namespace mldcs::geom
