// Unit tests for the Vec2 primitive.

#include "geometry/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mldcs::geom {
namespace {

TEST(Vec2Test, DefaultConstructsToOrigin) {
  const Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2Test, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2Test, DotProduct) {
  EXPECT_DOUBLE_EQ(Vec2(1.0, 2.0).dot({3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(Vec2(1.0, 0.0).dot({0.0, 1.0}), 0.0);
}

TEST(Vec2Test, CrossProductSignConvention) {
  // y-axis is counter-clockwise from x-axis -> positive cross.
  EXPECT_GT(Vec2(1.0, 0.0).cross({0.0, 1.0}), 0.0);
  EXPECT_LT(Vec2(0.0, 1.0).cross({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Vec2(2.0, 2.0).cross({1.0, 1.0}), 0.0);
}

TEST(Vec2Test, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vec2Test, AngleMatchesAtan2) {
  EXPECT_DOUBLE_EQ(Vec2(1.0, 0.0).angle(), 0.0);
  EXPECT_DOUBLE_EQ(Vec2(0.0, 1.0).angle(), std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(Vec2(-1.0, 0.0).angle(), std::numbers::pi);
  EXPECT_DOUBLE_EQ(Vec2(0.0, -1.0).angle(), -std::numbers::pi / 2);
}

TEST(Vec2Test, NormalizedHasUnitLength) {
  const Vec2 v = Vec2{3.0, -7.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-15);
}

TEST(Vec2Test, PerpIsCounterClockwiseQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), Vec2(0.0, 1.0));
  EXPECT_NEAR(v.dot(v.perp()), 0.0, 1e-15);
}

TEST(Vec2Test, RotatedPreservesNormAndRotates) {
  const Vec2 v{2.0, 0.0};
  const Vec2 r = v.rotated(std::numbers::pi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 2.0, 1e-12);
  EXPECT_NEAR(r.norm(), v.norm(), 1e-12);
}

TEST(Vec2Test, DistanceHelpers) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(Vec2Test, ApproxEqualUsesTolerance) {
  EXPECT_TRUE(approx_equal(Vec2{1.0, 1.0}, Vec2{1.0 + 1e-12, 1.0 - 1e-12}));
  EXPECT_FALSE(approx_equal(Vec2{1.0, 1.0}, Vec2{1.0 + 1e-6, 1.0}));
}

TEST(Vec2Test, MidpointAndLerp) {
  EXPECT_EQ(midpoint({0.0, 0.0}, {2.0, 4.0}), Vec2(1.0, 2.0));
  EXPECT_EQ(lerp({0.0, 0.0}, {2.0, 4.0}, 0.25), Vec2(0.5, 1.0));
  EXPECT_EQ(lerp({1.0, 1.0}, {3.0, 3.0}, 0.0), Vec2(1.0, 1.0));
  EXPECT_EQ(lerp({1.0, 1.0}, {3.0, 3.0}, 1.0), Vec2(3.0, 3.0));
}

TEST(Vec2Test, UnitAtLiesOnUnitCircle) {
  for (int k = 0; k < 16; ++k) {
    const double theta = 2.0 * std::numbers::pi * k / 16.0;
    const Vec2 u = unit_at(theta);
    EXPECT_NEAR(u.norm(), 1.0, 1e-15);
    EXPECT_NEAR(u.angle(), std::atan2(u.y, u.x), 0.0);
  }
}

}  // namespace
}  // namespace mldcs::geom
