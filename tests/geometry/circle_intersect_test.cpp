// Unit + property tests for circle-circle intersection — the geometric
// kernel Merge's Case 1/2/3 decisions rest on.

#include "geometry/circle_intersect.hpp"

#include <gtest/gtest.h>

#include "geometry/angle.hpp"
#include "sim/rng.hpp"

namespace mldcs::geom {
namespace {

TEST(CircleIntersectTest, DisjointCircles) {
  const auto r = intersect_circles({{0, 0}, 1.0}, {{5, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kDisjoint);
  EXPECT_EQ(r.count, 0);
}

TEST(CircleIntersectTest, ContainedCircle) {
  const auto r = intersect_circles({{0, 0}, 5.0}, {{1, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kContained);
  EXPECT_EQ(r.count, 0);
}

TEST(CircleIntersectTest, CoincidentCircles) {
  const auto r = intersect_circles({{2, 3}, 1.5}, {{2, 3}, 1.5});
  EXPECT_EQ(r.relation, CircleRelation::kCoincident);
  EXPECT_EQ(r.count, 0);
}

TEST(CircleIntersectTest, ExternallyTangent) {
  const auto r = intersect_circles({{0, 0}, 1.0}, {{2, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kExternallyTangent);
  ASSERT_EQ(r.count, 1);
  EXPECT_NEAR(r.points[0].x, 1.0, 1e-9);
  EXPECT_NEAR(r.points[0].y, 0.0, 1e-9);
}

TEST(CircleIntersectTest, InternallyTangent) {
  const auto r = intersect_circles({{0, 0}, 2.0}, {{1, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kInternallyTangent);
  ASSERT_EQ(r.count, 1);
  EXPECT_NEAR(r.points[0].x, 2.0, 1e-9);
  EXPECT_NEAR(r.points[0].y, 0.0, 1e-9);
}

TEST(CircleIntersectTest, ClassicTwoPointCrossing) {
  // Unit circles at (0,0) and (1,0): intersections at (1/2, +-sqrt(3)/2).
  const auto r = intersect_circles({{0, 0}, 1.0}, {{1, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kCrossing);
  ASSERT_EQ(r.count, 2);
  EXPECT_NEAR(r.points[0].x, 0.5, 1e-12);
  EXPECT_NEAR(r.points[0].y, std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(r.points[1].x, 0.5, 1e-12);
  EXPECT_NEAR(r.points[1].y, -std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(CircleIntersectTest, PointOrderIsDeterministicCcwFromFirstCenter) {
  // points[0] must be counter-clockwise of the a->b axis.
  const Disk a{{0, 0}, 2.0};
  const Disk b{{2, 1}, 2.0};
  const auto r = intersect_circles(a, b);
  ASSERT_EQ(r.count, 2);
  const Vec2 axis = b.center - a.center;
  EXPECT_GT(axis.cross(r.points[0] - a.center), 0.0);
  EXPECT_LT(axis.cross(r.points[1] - a.center), 0.0);
}

TEST(CircleIntersectTest, SymmetryOfRelation) {
  const Disk a{{0, 0}, 3.0};
  const Disk b{{2, 2}, 1.5};
  const auto ab = intersect_circles(a, b);
  const auto ba = intersect_circles(b, a);
  EXPECT_EQ(ab.count, ba.count);
  // Contained is asymmetric in roles but symmetric as a relation here.
  EXPECT_EQ(ab.relation == CircleRelation::kCrossing,
            ba.relation == CircleRelation::kCrossing);
}

TEST(CircleIntersectTest, DifferentRadiiCrossing) {
  const auto r = intersect_circles({{0, 0}, 2.0}, {{2, 0}, 1.0});
  EXPECT_EQ(r.relation, CircleRelation::kCrossing);
  ASSERT_EQ(r.count, 2);
  // t = (d^2 + ra^2 - rb^2)/(2d) = (4 + 4 - 1)/4 = 7/4; h = sqrt(4 - 49/16).
  for (int k = 0; k < 2; ++k) {
    EXPECT_NEAR(r.points[static_cast<std::size_t>(k)].x, 1.75, 1e-12);
  }
}

/// Property sweep: for random crossing pairs, both reported points lie on
/// both circles.
class CircleIntersectPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CircleIntersectPropertyTest, IntersectionPointsLieOnBothCircles) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  int crossings = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Disk a{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(0.5, 3)};
    const Disk b{{rng.uniform(-5, 5), rng.uniform(-5, 5)}, rng.uniform(0.5, 3)};
    const auto r = intersect_circles(a, b);
    for (int k = 0; k < r.count; ++k) {
      const Vec2 p = r.points[static_cast<std::size_t>(k)];
      EXPECT_NEAR(distance(p, a.center), a.radius, 1e-7)
          << "a=" << a << " b=" << b;
      EXPECT_NEAR(distance(p, b.center), b.radius, 1e-7)
          << "a=" << a << " b=" << b;
    }
    if (r.relation == CircleRelation::kCrossing) ++crossings;
  }
  EXPECT_GT(crossings, 0);  // the sweep actually exercised the crossing path
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircleIntersectPropertyTest,
                         ::testing::Range(0, 8));

/// Property sweep: relation classification is consistent with center
/// distance vs radius sum/difference.
TEST(CircleIntersectTest, ClassificationMatchesDistanceAlgebra) {
  sim::Xoshiro256 rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    const Disk a{{rng.uniform(-3, 3), rng.uniform(-3, 3)}, rng.uniform(0.2, 2)};
    const Disk b{{rng.uniform(-3, 3), rng.uniform(-3, 3)}, rng.uniform(0.2, 2)};
    const double d = distance(a.center, b.center);
    const auto r = intersect_circles(a, b);
    if (d > a.radius + b.radius + 1e-6) {
      EXPECT_EQ(r.relation, CircleRelation::kDisjoint);
    } else if (d < std::fabs(a.radius - b.radius) - 1e-6) {
      EXPECT_EQ(r.relation, CircleRelation::kContained);
    } else if (d > std::fabs(a.radius - b.radius) + 1e-6 &&
               d < a.radius + b.radius - 1e-6) {
      EXPECT_EQ(r.relation, CircleRelation::kCrossing);
    }
  }
}

}  // namespace
}  // namespace mldcs::geom
