// Unit tests for angle normalization and circular intervals — the arc
// bookkeeping that Merge's Step 1 refinement relies on.

#include "geometry/angle.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace mldcs::geom {
namespace {

TEST(AngleTest, NormalizeAngleMapsIntoHalfOpenRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_NEAR(normalize_angle(kTwoPi), 0.0, 1e-15);
  EXPECT_NEAR(normalize_angle(-kPi / 2), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(normalize_angle(5 * kTwoPi + 1.0), 1.0, 1e-12);
  EXPECT_NEAR(normalize_angle(-7 * kTwoPi - 1.0), kTwoPi - 1.0, 1e-9);
}

TEST(AngleTest, NormalizeAngleNeverReturnsTwoPi) {
  // Regression guard: fmod of a tiny negative used to round to 2*pi.
  for (double a : {-1e-18, -1e-16, -1e-300, kTwoPi - 1e-18}) {
    const double r = normalize_angle(a);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, kTwoPi);
  }
}

TEST(AngleTest, NormalizeAngleSigned) {
  EXPECT_DOUBLE_EQ(normalize_angle_signed(0.0), 0.0);
  EXPECT_NEAR(normalize_angle_signed(kPi), kPi, 1e-15);          // pi included
  EXPECT_NEAR(normalize_angle_signed(-kPi), kPi, 1e-15);         // maps to +pi
  EXPECT_NEAR(normalize_angle_signed(1.5 * kPi), -0.5 * kPi, 1e-12);
}

TEST(AngleTest, CcwSpan) {
  EXPECT_NEAR(ccw_span(0.0, kPi), kPi, 1e-15);
  EXPECT_NEAR(ccw_span(kPi, 0.0), kPi, 1e-15);
  EXPECT_NEAR(ccw_span(1.5 * kPi, 0.5 * kPi), kPi, 1e-12);  // wraps through 0
  EXPECT_NEAR(ccw_span(1.0, 1.0), 0.0, 1e-15);
}

TEST(AngleTest, AngleInCcwIntervalPlain) {
  EXPECT_TRUE(angle_in_ccw_interval(1.0, 0.5, 2.0));
  EXPECT_TRUE(angle_in_ccw_interval(0.5, 0.5, 2.0));  // closed at lo
  EXPECT_TRUE(angle_in_ccw_interval(2.0, 0.5, 2.0));  // closed at hi
  EXPECT_FALSE(angle_in_ccw_interval(2.5, 0.5, 2.0));
  EXPECT_FALSE(angle_in_ccw_interval(0.0, 0.5, 2.0));
}

TEST(AngleTest, AngleInCcwIntervalWrapping) {
  // Interval from 3*pi/2 sweeping CCW to pi/2 passes through 0.
  EXPECT_TRUE(angle_in_ccw_interval(0.0, 1.5 * kPi, 0.5 * kPi));
  EXPECT_TRUE(angle_in_ccw_interval(1.9 * kPi, 1.5 * kPi, 0.5 * kPi));
  EXPECT_FALSE(angle_in_ccw_interval(kPi, 1.5 * kPi, 0.5 * kPi));
}

TEST(AngleTest, AngleStrictlyInsideExcludesEndpoints) {
  EXPECT_TRUE(angle_strictly_inside(1.0, 0.5, 2.0));
  EXPECT_FALSE(angle_strictly_inside(0.5, 0.5, 2.0));
  EXPECT_FALSE(angle_strictly_inside(2.0, 0.5, 2.0));
}

TEST(AngleTest, ApproxEqualAngleHandlesWraparound) {
  EXPECT_TRUE(approx_equal_angle(0.0, kTwoPi));
  EXPECT_TRUE(approx_equal_angle(1e-12, kTwoPi - 1e-12));
  EXPECT_FALSE(approx_equal_angle(0.0, kPi));
}

TEST(AngleTest, DegreeRadianRoundTrip) {
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad2deg(kPi / 2), 90.0);
  for (double d : {0.0, 37.5, 180.0, 299.999}) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-12);
  }
}

/// Parameterized sweep: normalize_angle(a + k*2*pi) == normalize_angle(a).
class AnglePeriodicityTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(AnglePeriodicityTest, NormalizationIsPeriodic) {
  const auto [a, k] = GetParam();
  const double shifted = a + k * kTwoPi;
  EXPECT_NEAR(normalize_angle(shifted), normalize_angle(a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnglePeriodicityTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 1.0, 3.14, 5.0, 6.28),
                       ::testing::Values(-3, -1, 0, 1, 2, 7)));

}  // namespace
}  // namespace mldcs::geom
