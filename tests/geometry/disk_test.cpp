// Unit tests for the Disk primitive and the tolerance policy.

#include "geometry/disk.hpp"

#include <gtest/gtest.h>

#include "geometry/tolerance.hpp"

namespace mldcs::geom {
namespace {

TEST(ToleranceTest, ApproxComparisons) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + kTol / 2));
  EXPECT_FALSE(approx_equal(1.0, 1.0 + 10 * kTol));
  EXPECT_TRUE(approx_zero(kTol / 2));
  EXPECT_TRUE(definitely_less(1.0, 2.0));
  EXPECT_FALSE(definitely_less(1.0, 1.0 + kTol / 2));
  EXPECT_TRUE(definitely_greater(2.0, 1.0));
  EXPECT_TRUE(approx_leq(1.0 + kTol / 2, 1.0));
  EXPECT_TRUE(approx_geq(1.0 - kTol / 2, 1.0));
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(DiskTest, ContainsInteriorBoundaryExterior) {
  const Disk d{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(d.contains({0.0, 0.0}));
  EXPECT_TRUE(d.contains({1.9, 0.0}));
  EXPECT_TRUE(d.contains({2.0, 0.0}));   // closed disk includes boundary
  EXPECT_FALSE(d.contains({2.1, 0.0}));
}

TEST(DiskTest, StrictlyContainsExcludesBoundary) {
  const Disk d{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(d.strictly_contains({1.0, 0.0}));
  EXPECT_FALSE(d.strictly_contains({2.0, 0.0}));
  EXPECT_FALSE(d.strictly_contains({3.0, 0.0}));
}

TEST(DiskTest, OnBoundary) {
  const Disk d{{1.0, 1.0}, 1.0};
  EXPECT_TRUE(d.on_boundary({2.0, 1.0}));
  EXPECT_TRUE(d.on_boundary({1.0, 0.0}));
  EXPECT_FALSE(d.on_boundary({1.0, 1.0}));
  EXPECT_FALSE(d.on_boundary({2.5, 1.0}));
}

TEST(DiskTest, ContainsDisk) {
  const Disk big{{0.0, 0.0}, 5.0};
  const Disk small{{1.0, 0.0}, 2.0};
  const Disk edge{{3.0, 0.0}, 2.0};  // internally tangent
  const Disk out{{4.0, 0.0}, 2.0};
  EXPECT_TRUE(big.contains_disk(small));
  EXPECT_TRUE(big.contains_disk(edge));
  EXPECT_FALSE(big.contains_disk(out));
  EXPECT_FALSE(small.contains_disk(big));
  EXPECT_TRUE(big.contains_disk(big));  // reflexive
}

TEST(DiskTest, Intersects) {
  const Disk a{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(a.intersects({{1.5, 0.0}, 1.0}));
  EXPECT_TRUE(a.intersects({{2.0, 0.0}, 1.0}));   // externally tangent
  EXPECT_FALSE(a.intersects({{2.5, 0.0}, 1.0}));
  EXPECT_TRUE(a.intersects({{0.1, 0.0}, 0.1}));   // nested counts as intersecting
}

TEST(DiskTest, BoundaryPointIsOnBoundary) {
  const Disk d{{2.0, -1.0}, 3.0};
  for (int k = 0; k < 8; ++k) {
    const double theta = kTwoPi * k / 8.0;
    EXPECT_TRUE(d.on_boundary(d.boundary_point(theta)));
  }
}

TEST(DiskTest, Area) {
  EXPECT_NEAR(Disk({0, 0}, 1.0).area(), kPi, 1e-12);
  EXPECT_NEAR(Disk({5, 5}, 2.0).area(), 4.0 * kPi, 1e-12);
}

TEST(DiskTest, ApproxEqualDisks) {
  const Disk a{{1.0, 2.0}, 3.0};
  EXPECT_TRUE(approx_equal(a, Disk{{1.0 + 1e-12, 2.0}, 3.0 - 1e-12}));
  EXPECT_FALSE(approx_equal(a, Disk{{1.0, 2.0}, 3.1}));
}

TEST(DiskTest, ZeroRadiusDiskContainsOnlyItsCenter) {
  const Disk d{{1.0, 1.0}, 0.0};
  EXPECT_TRUE(d.contains({1.0, 1.0}));
  EXPECT_FALSE(d.contains({1.1, 1.0}));
  EXPECT_FALSE(d.strictly_contains({1.0, 1.0}));
}

}  // namespace
}  // namespace mldcs::geom
