// Tests for bounding boxes and union-area estimation (including the
// closed-form sector integral used for exact skyline areas).

#include <gtest/gtest.h>

#include <vector>

#include "geometry/area.hpp"
#include "geometry/angle.hpp"
#include "geometry/bbox.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::geom {
namespace {

TEST(BBoxTest, EmptyByDefault) {
  const BBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

TEST(BBoxTest, ExpandByPointsAndDisks) {
  BBox b;
  b.expand(Vec2{1, 2});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.area(), 0.0);  // a single point
  b.expand(Vec2{-1, 5});
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
  b.expand(Disk{{0, 0}, 10.0});
  EXPECT_DOUBLE_EQ(b.min.x, -10.0);
  EXPECT_DOUBLE_EQ(b.max.y, 10.0);
}

TEST(BBoxTest, ContainsAndCenter) {
  BBox b;
  b.expand(Vec2{0, 0});
  b.expand(Vec2{4, 2});
  EXPECT_TRUE(b.contains({2, 1}));
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_FALSE(b.contains({5, 1}));
  EXPECT_EQ(b.center(), Vec2(2, 1));
}

TEST(BBoxTest, InflatedGrowsAllSides) {
  BBox b;
  b.expand(Vec2{0, 0});
  b.expand(Vec2{2, 2});
  const BBox big = b.inflated(1.0);
  EXPECT_DOUBLE_EQ(big.min.x, -1.0);
  EXPECT_DOUBLE_EQ(big.max.y, 3.0);
}

TEST(BBoxTest, BBoxOfSpans) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{3, 0}, 2.0}};
  const BBox b = bbox_of(disks);
  EXPECT_DOUBLE_EQ(b.min.x, -1.0);
  EXPECT_DOUBLE_EQ(b.max.x, 5.0);
  EXPECT_DOUBLE_EQ(b.max.y, 2.0);
}

TEST(UnionAreaTest, CoveredByUnion) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{3, 0}, 1.0}};
  EXPECT_TRUE(covered_by_union(disks, {0.5, 0}));
  EXPECT_TRUE(covered_by_union(disks, {3.5, 0}));
  EXPECT_FALSE(covered_by_union(disks, {1.5, 0}));
}

TEST(UnionAreaTest, SingleDiskGridEstimate) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  EXPECT_NEAR(union_area_grid(disks, 600), kPi, 0.01);
}

TEST(UnionAreaTest, DisjointDisksAreasAdd) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{10, 0}, 2.0}};
  EXPECT_NEAR(union_area_grid(disks, 800), kPi + 4 * kPi, 0.1);
}

TEST(UnionAreaTest, NestedDisksAreaOfOuter) {
  const std::vector<Disk> disks{{{0, 0}, 2.0}, {{0.5, 0}, 1.0}};
  EXPECT_NEAR(union_area_grid(disks, 600), 4 * kPi, 0.05);
}

TEST(UnionAreaTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(union_area_grid({}, 100), 0.0);
  const std::vector<Disk> one{{{0, 0}, 1.0}};
  EXPECT_DOUBLE_EQ(union_area_grid(one, 0), 0.0);
}

TEST(SectorAreaTest, FullCircleCenteredDisk) {
  // Integrating rho^2/2 over [0, 2*pi] for a disk centered at o: pi r^2.
  const Disk d{{0, 0}, 2.0};
  EXPECT_NEAR(sector_area_under_disk(d, {0, 0}, 0.0, kTwoPi), 4 * kPi, 1e-9);
}

TEST(SectorAreaTest, FullCircleOffsetDisk) {
  // The closed form must give the full disk area for any interior origin.
  sim::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const double r = rng.uniform(0.5, 3.0);
    const double d = rng.uniform(0.0, r * 0.999);
    const Disk disk{d * unit_at(rng.uniform(0.0, kTwoPi)), r};
    EXPECT_NEAR(sector_area_under_disk(disk, {0, 0}, 0.0, kTwoPi),
                kPi * r * r, 1e-6)
        << disk;
  }
}

TEST(SectorAreaTest, HalfCircleCenteredDisk) {
  const Disk d{{0, 0}, 1.0};
  EXPECT_NEAR(sector_area_under_disk(d, {0, 0}, 0.0, kPi), kPi / 2, 1e-9);
}

TEST(SectorAreaTest, AdditivityOverSubdivision) {
  const Disk d{{0.4, -0.3}, 1.5};
  const double whole = sector_area_under_disk(d, {0, 0}, 0.2, 2.9);
  const double split = sector_area_under_disk(d, {0, 0}, 0.2, 1.1) +
                       sector_area_under_disk(d, {0, 0}, 1.1, 2.9);
  EXPECT_NEAR(whole, split, 1e-9);
}

TEST(SectorAreaTest, MatchesNumericIntegration) {
  const Disk d{{0.6, 0.2}, 1.2};
  const double t0 = 0.5;
  const double t1 = 2.5;
  // Midpoint rule on rho^2 / 2.
  double numeric = 0.0;
  const int steps = 20000;
  for (int k = 0; k < steps; ++k) {
    const double theta = t0 + (t1 - t0) * (k + 0.5) / steps;
    const double rho = radial_distance(d, {0, 0}, theta);
    numeric += 0.5 * rho * rho * (t1 - t0) / steps;
  }
  EXPECT_NEAR(sector_area_under_disk(d, {0, 0}, t0, t1), numeric, 1e-5);
}

}  // namespace
}  // namespace mldcs::geom
