// Tests for the polar-around-o view: the rho_i(theta) functions whose upper
// envelope *is* the skyline.

#include "geometry/radial.hpp"

#include <gtest/gtest.h>

#include "geometry/angle.hpp"
#include "sim/rng.hpp"

namespace mldcs::geom {
namespace {

TEST(RadialTest, CenteredDiskHasConstantRadial) {
  const RadialDisk rd({{0, 0}, 2.5}, {0, 0});
  for (int k = 0; k < 32; ++k) {
    EXPECT_NEAR(rd.radius_at(kTwoPi * k / 32.0), 2.5, 1e-12);
  }
}

TEST(RadialTest, OffsetDiskKnownValues) {
  // Disk B((1,0), 2) seen from the origin: toward the center rho = 1 + 2,
  // away from it rho = 2 - 1, perpendicular rho = sqrt(4 - 1).
  const RadialDisk rd({{1, 0}, 2.0}, {0, 0});
  EXPECT_NEAR(rd.radius_at(0.0), 3.0, 1e-12);
  EXPECT_NEAR(rd.radius_at(kPi), 1.0, 1e-12);
  EXPECT_NEAR(rd.radius_at(kPi / 2), std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(rd.radius_at(3 * kPi / 2), std::sqrt(3.0), 1e-12);
}

TEST(RadialTest, CenterDistanceAndAngle) {
  const RadialDisk rd({{3, 4}, 6.0}, {0, 0});
  EXPECT_NEAR(rd.center_distance(), 5.0, 1e-12);
  EXPECT_NEAR(rd.center_angle(), std::atan2(4.0, 3.0), 1e-12);
}

TEST(RadialTest, BoundaryPointIsOnCircle) {
  const Disk d{{1.0, -0.5}, 2.0};
  const RadialDisk rd(d, {0.3, 0.2});
  for (int k = 0; k < 64; ++k) {
    const Vec2 p = rd.boundary_point_at(kTwoPi * k / 64.0);
    EXPECT_NEAR(distance(p, d.center), d.radius, 1e-9);
  }
}

TEST(RadialTest, BoundaryPointIsForwardAlongRay) {
  // Lemma 1/Corollary 2: the crossing is in the +theta direction (rho >= 0).
  const RadialDisk rd({{0.9, 0.1}, 1.0}, {0, 0});
  for (int k = 0; k < 64; ++k) {
    EXPECT_GE(rd.radius_at(kTwoPi * k / 64.0), 0.0);
  }
}

TEST(RadialTest, BoundaryOriginGivesZeroSomewhere) {
  // If o is exactly on the boundary, rho(theta) = 0 in the opposite-of-
  // center direction.
  const RadialDisk rd({{1.0, 0.0}, 1.0}, {0, 0});
  EXPECT_NEAR(rd.radius_at(kPi), 0.0, 1e-9);
  EXPECT_NEAR(rd.radius_at(0.0), 2.0, 1e-12);
}

TEST(RadialTest, RadialFunctionIsPeriodic) {
  const RadialDisk rd({{0.4, 0.6}, 1.5}, {0, 0});
  for (int k = 0; k < 16; ++k) {
    const double theta = 0.37 * k;
    EXPECT_NEAR(rd.radius_at(theta), rd.radius_at(theta + kTwoPi), 1e-9);
  }
}

TEST(RadialTest, ArgmaxPrefersOuterDisk) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{0, 0}, 2.0}};
  EXPECT_EQ(radial_argmax(disks, {0, 0}, 0.0), 1u);
  EXPECT_EQ(radial_argmax(disks, {0, 0}, 2.5), 1u);
}

TEST(RadialTest, ArgmaxTieBreakPrefersLargerRadiusThenSmallerIndex) {
  // Identical disks: smallest index wins.
  const std::vector<Disk> same{{{0, 0}, 1.0}, {{0, 0}, 1.0}, {{0, 0}, 1.0}};
  EXPECT_EQ(radial_argmax(same, {0, 0}, 1.0), 0u);

  // Internal tangency at angle 0: both disks pass through (2, 0); the
  // larger radius must win there.
  const std::vector<Disk> tangent{{{1.0, 0.0}, 1.0}, {{0.0, 0.0}, 2.0}};
  EXPECT_EQ(radial_argmax(tangent, {0, 0}, 0.0), 1u);
}

TEST(RadialTest, ArgmaxEmptySpanReturnsSentinel) {
  const std::vector<Disk> none;
  EXPECT_EQ(radial_argmax(none, {0, 0}, 0.0), SIZE_MAX);
}

TEST(RadialTest, EnvelopeIsMaxOfMembers) {
  sim::Xoshiro256 rng(7);
  std::vector<Disk> disks;
  for (int i = 0; i < 6; ++i) {
    disks.push_back(Disk{{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)},
                         rng.uniform(1.0, 2.0)});
  }
  for (int k = 0; k < 128; ++k) {
    const double theta = kTwoPi * k / 128.0;
    double expected = 0.0;
    for (const Disk& d : disks) {
      expected = std::max(expected, radial_distance(d, {0, 0}, theta));
    }
    EXPECT_NEAR(radial_envelope(disks, {0, 0}, theta), expected, 1e-12);
  }
}

TEST(RadialTest, SampleRadialEnvelopeSizeAndValues) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  const auto samples = sample_radial_envelope(disks, {0, 0}, 16);
  ASSERT_EQ(samples.size(), 16u);
  for (double v : samples) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(RadialTest, IsLocalDiskSet) {
  const std::vector<Disk> good{{{0, 0}, 1.0}, {{0.5, 0}, 1.0}};
  const std::vector<Disk> bad{{{0, 0}, 1.0}, {{5.0, 0}, 1.0}};
  EXPECT_TRUE(is_local_disk_set(good, {0, 0}));
  EXPECT_FALSE(is_local_disk_set(bad, {0, 0}));
  EXPECT_TRUE(is_local_disk_set({}, {0, 0}));  // vacuous
}

/// Property: for random local disks, the radial crossing matches the
/// ray-circle intersection computed independently.
TEST(RadialTest, RadialMatchesRayCircleAlgebra) {
  sim::Xoshiro256 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const double r = rng.uniform(0.5, 2.0);
    const double d = rng.uniform(0.0, r);  // origin inside
    const double phi = rng.uniform(0.0, kTwoPi);
    const Disk disk{d * unit_at(phi), r};
    const double theta = rng.uniform(0.0, kTwoPi);
    const double rho = radial_distance(disk, {0, 0}, theta);
    // The point at distance rho along theta must be on the circle.
    EXPECT_NEAR(distance(rho * unit_at(theta), disk.center), r, 1e-9);
  }
}

}  // namespace
}  // namespace mldcs::geom
