// Tests for triangle utilities: circumcenter/radius, orthocenter,
// classification, and the Lemma 6 circle construction.

#include "geometry/triangle.hpp"

#include <gtest/gtest.h>

#include "geometry/angle.hpp"
#include "sim/rng.hpp"

namespace mldcs::geom {
namespace {

TEST(TriangleTest, AreaAndDegeneracy) {
  const Triangle t{{0, 0}, {2, 0}, {0, 2}};
  EXPECT_NEAR(t.area(), 2.0, 1e-12);
  EXPECT_FALSE(t.degenerate());

  const Triangle line{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_TRUE(line.degenerate());
  EXPECT_EQ(line.classify(), TriangleKind::kDegenerate);
}

TEST(TriangleTest, Classification) {
  EXPECT_EQ((Triangle{{0, 0}, {2, 0}, {1, 2}}.classify()), TriangleKind::kAcute);
  EXPECT_EQ((Triangle{{0, 0}, {2, 0}, {0, 2}}.classify()), TriangleKind::kRight);
  EXPECT_EQ((Triangle{{0, 0}, {4, 0}, {0.2, 0.5}}.classify()),
            TriangleKind::kObtuse);
}

TEST(TriangleTest, CircumcenterEquidistant) {
  const Triangle t{{0, 0}, {3, 0}, {1, 2}};
  const auto c = t.circumcenter();
  ASSERT_TRUE(c.has_value());
  const double r = distance(*c, t.a);
  EXPECT_NEAR(distance(*c, t.b), r, 1e-12);
  EXPECT_NEAR(distance(*c, t.c), r, 1e-12);
  EXPECT_NEAR(*t.circumradius(), r, 1e-12);
}

TEST(TriangleTest, CircumradiusOfRightTriangleIsHalfHypotenuse) {
  const Triangle t{{0, 0}, {6, 0}, {0, 8}};
  EXPECT_NEAR(*t.circumradius(), 5.0, 1e-12);
}

TEST(TriangleTest, DegenerateHasNoCircumcenter) {
  const Triangle line{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_FALSE(line.circumcenter().has_value());
  EXPECT_FALSE(line.circumradius().has_value());
  EXPECT_FALSE(line.orthocenter().has_value());
}

TEST(TriangleTest, OrthocenterAltitudeProperty) {
  // The orthocenter H satisfies (H - A) . (B - C) = 0 for every vertex.
  sim::Xoshiro256 rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const Triangle t{{rng.uniform(-2, 2), rng.uniform(-2, 2)},
                     {rng.uniform(-2, 2), rng.uniform(-2, 2)},
                     {rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    if (t.degenerate(1e-3)) continue;
    const auto h = t.orthocenter();
    ASSERT_TRUE(h.has_value());
    EXPECT_NEAR((*h - t.a).dot(t.b - t.c), 0.0, 1e-7);
    EXPECT_NEAR((*h - t.b).dot(t.a - t.c), 0.0, 1e-7);
    EXPECT_NEAR((*h - t.c).dot(t.a - t.b), 0.0, 1e-7);
  }
}

TEST(TriangleTest, OrthocenterOfRightTriangleIsTheRightAngleVertex) {
  const Triangle t{{0, 0}, {3, 0}, {0, 4}};
  const auto h = t.orthocenter();
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(approx_equal(*h, Vec2{0, 0}, 1e-9));
}

TEST(TriangleTest, ContainsPoints) {
  const Triangle t{{0, 0}, {4, 0}, {0, 4}};
  EXPECT_TRUE(t.contains({1, 1}));
  EXPECT_TRUE(t.contains({0, 0}));    // vertex
  EXPECT_TRUE(t.contains({2, 0}));    // edge
  EXPECT_FALSE(t.contains({3, 3}));
  EXPECT_FALSE(t.contains({-1, 0}));
}

TEST(TriangleTest, ContainsIsOrientationIndependent) {
  const Triangle ccw{{0, 0}, {4, 0}, {0, 4}};
  const Triangle cw{{0, 0}, {0, 4}, {4, 0}};
  for (const Vec2 p : {Vec2{1, 1}, Vec2{3, 3}, Vec2{2, 0}}) {
    EXPECT_EQ(ccw.contains(p), cw.contains(p));
  }
}

TEST(Lemma6CirclesTest, ChordsAndRadiusRespected) {
  const Triangle t{{0, 0}, {2, 0}, {1, 1.5}};
  const double r = *t.circumradius();
  const auto circles = lemma6_circles(t, r);
  ASSERT_TRUE(circles.has_value());
  // Each circle passes through its edge's endpoints.
  const std::array<std::pair<Vec2, Vec2>, 3> edges{{{t.a, t.b}, {t.b, t.c},
                                                    {t.c, t.a}}};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(distance((*circles)[i].center, edges[i].first), r, 1e-9);
    EXPECT_NEAR(distance((*circles)[i].center, edges[i].second), r, 1e-9);
  }
}

TEST(Lemma6CirclesTest, CentersAreOutsideTheTriangle) {
  const Triangle t{{0, 0}, {2, 0}, {1, 1.5}};
  const auto circles = lemma6_circles(t, *t.circumradius());
  ASSERT_TRUE(circles.has_value());
  for (const Disk& c : *circles) {
    EXPECT_FALSE(t.contains(c.center, -1e-9));
  }
}

TEST(Lemma6CirclesTest, RejectsTooSmallRadius) {
  const Triangle t{{0, 0}, {4, 0}, {2, 3}};
  EXPECT_FALSE(lemma6_circles(t, 0.5).has_value());  // < half longest edge
}

TEST(Lemma6CirclesTest, RejectsDegenerateTriangle) {
  const Triangle line{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_FALSE(lemma6_circles(line, 10.0).has_value());
}

}  // namespace
}  // namespace mldcs::geom
