// Integration tests across the full stack: topology generation -> disk
// graph -> HELLO discovery -> forwarding-set selection -> broadcast
// simulation, mirroring the Chapter 5 pipeline end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "broadcast/broadcast_sim.hpp"
#include "broadcast/coverage_gap.hpp"
#include "broadcast/forwarding.hpp"
#include "core/mldcs.hpp"
#include "net/hello.hpp"
#include "net/topology.hpp"
#include "sim/montecarlo.hpp"
#include "sim/stats.hpp"

namespace mldcs {
namespace {

TEST(EndToEndTest, HelloDiscoveredViewMatchesGraphView) {
  // The forwarding layer consumes local views derived from the graph; this
  // pins them to what the HELLO protocol would actually deliver.
  net::DeploymentParams p;
  p.target_avg_degree = 8;
  p.model = net::RadiusModel::kUniform;
  sim::Xoshiro256 rng(2718);
  const auto g = net::generate_graph(p, rng);
  auto tables = net::run_hello_round1(g);
  net::run_hello_round2(g, tables);

  const bcast::LocalView view = bcast::local_view(g, 0);
  std::vector<net::NodeId> hello_one_hop;
  for (const auto& info : tables[0].one_hop) hello_one_hop.push_back(info.id);
  EXPECT_EQ(hello_one_hop, view.one_hop);
  EXPECT_EQ(net::two_hop_from_table(tables[0], 0), view.two_hop);
}

TEST(EndToEndTest, SkylineForwardingFromHelloDataOnly) {
  // Build the local disk set exclusively from beacon-received data and
  // check the MLDCS equals the graph-derived one.
  net::DeploymentParams p;
  p.target_avg_degree = 10;
  p.model = net::RadiusModel::kUniform;
  sim::Xoshiro256 rng(3141);
  const auto g = net::generate_graph(p, rng);
  const auto tables = net::run_hello_round1(g);

  std::vector<geom::Disk> disks{g.node(0).disk()};
  for (const auto& info : tables[0].one_hop) {
    disks.push_back(geom::Disk{info.pos, info.radius});
  }
  const core::LocalDiskSet set(g.node(0).pos, disks);
  const auto from_hello = core::mldcs(set);

  const bcast::LocalView view = bcast::local_view(g, 0);
  const auto from_graph = bcast::skyline_forwarding_set(g, view);
  // Map hello-set indices (1-based neighbors) to node ids.
  std::vector<net::NodeId> mapped;
  for (std::size_t idx : from_hello) {
    if (idx > 0) mapped.push_back(tables[0].one_hop[idx - 1].id);
  }
  std::sort(mapped.begin(), mapped.end());
  EXPECT_EQ(mapped, from_graph);
}

TEST(EndToEndTest, MiniFigure51PipelineOrdering) {
  // A reduced Figure 5.1 run: 20 homogeneous trials at degree 8; the curve
  // ordering flooding >= skyline >= greedy >= optimal must hold on the
  // averages (the paper's headline result).
  net::DeploymentParams p;
  p.target_avg_degree = 8;
  sim::RunningStats flood, sky, greedy, sel, optimal;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Xoshiro256 rng(sim::derive_seed(55, seed));
    const auto g = net::generate_graph(p, rng);
    const bcast::LocalView view = bcast::local_view(g, 0);
    flood.add(static_cast<double>(
        bcast::forwarding_set(g, view, bcast::Scheme::kFlooding).size()));
    sky.add(static_cast<double>(
        bcast::forwarding_set(g, view, bcast::Scheme::kSkyline).size()));
    greedy.add(static_cast<double>(
        bcast::forwarding_set(g, view, bcast::Scheme::kGreedy).size()));
    sel.add(static_cast<double>(
        bcast::forwarding_set(g, view, bcast::Scheme::kSelectingForwardingSet)
            .size()));
    optimal.add(static_cast<double>(
        bcast::forwarding_set(g, view, bcast::Scheme::kOptimal).size()));
  }
  EXPECT_GE(flood.mean(), sky.mean());
  EXPECT_GE(sky.mean(), greedy.mean());
  EXPECT_GE(greedy.mean(), optimal.mean());
  EXPECT_GE(sel.mean(), optimal.mean());
}

TEST(EndToEndTest, MiniFigure54HeterogeneousOrdering) {
  net::DeploymentParams p;
  p.target_avg_degree = 8;
  p.model = net::RadiusModel::kUniform;
  sim::RunningStats flood, sky, greedy, optimal;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Xoshiro256 rng(sim::derive_seed(66, seed));
    const auto g = net::generate_graph(p, rng);
    const bcast::LocalView view = bcast::local_view(g, 0);
    flood.add(static_cast<double>(view.one_hop.size()));
    sky.add(static_cast<double>(
        bcast::skyline_forwarding_set(g, view).size()));
    greedy.add(static_cast<double>(
        bcast::greedy_forwarding_set(g, view).size()));
    optimal.add(static_cast<double>(
        bcast::optimal_forwarding_set(g, view).size()));
  }
  EXPECT_GE(flood.mean(), sky.mean());
  EXPECT_GE(sky.mean(), optimal.mean());
  EXPECT_GE(greedy.mean(), optimal.mean());
}

TEST(EndToEndTest, BroadcastStormReduction) {
  // Network-wide: skyline forwarding keeps full delivery in homogeneous
  // networks and never transmits more than flooding.  (The dramatic
  // reduction the paper reports is in *per-relay forwarding-set size* —
  // Figure 5.1 — not total transmissions: under sender-based designation a
  // node relays if ANY neighbor names it, so designations accumulate across
  // senders.  We assert the per-relay reduction here too.)
  net::DeploymentParams p;
  p.target_avg_degree = 12;
  sim::RunningStats flood_tx, sky_tx, flood_fwd, sky_fwd;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Xoshiro256 rng(sim::derive_seed(77, seed));
    const auto g = net::generate_graph(p, rng);
    const auto f = bcast::simulate_broadcast(g, 0, bcast::Scheme::kFlooding);
    const auto s = bcast::simulate_broadcast(g, 0, bcast::Scheme::kSkyline);
    EXPECT_TRUE(f.full_delivery());
    EXPECT_TRUE(s.full_delivery());
    flood_tx.add(static_cast<double>(f.transmissions));
    sky_tx.add(static_cast<double>(s.transmissions));
    const bcast::LocalView view = bcast::local_view(g, 0);
    flood_fwd.add(static_cast<double>(view.one_hop.size()));
    sky_fwd.add(static_cast<double>(
        bcast::skyline_forwarding_set(g, view).size()));
  }
  EXPECT_LE(sky_tx.mean(), flood_tx.mean());
  EXPECT_LT(sky_fwd.mean(), 0.8 * flood_fwd.mean());
}

TEST(EndToEndTest, HelloOverheadOrdering) {
  // The Section 5.1.1 cost argument, end to end: 2-hop beacons cost more
  // bytes than 1-hop beacons, and the gap widens with density.
  net::DeploymentParams p;
  sim::Xoshiro256 rng(88);
  p.target_avg_degree = 6;
  const auto sparse = net::generate_graph(p, rng);
  p.target_avg_degree = 14;
  const auto dense = net::generate_graph(p, rng);

  const auto s1 = net::hello1_cost(sparse);
  const auto s2 = net::hello2_cost(sparse);
  const auto d1 = net::hello1_cost(dense);
  const auto d2 = net::hello2_cost(dense);
  EXPECT_GT(s2.bytes, s1.bytes);
  EXPECT_GT(d2.bytes, d1.bytes);
  // Relative overhead grows with degree.
  const double sparse_ratio =
      static_cast<double>(s2.bytes) / static_cast<double>(s1.bytes);
  const double dense_ratio =
      static_cast<double>(d2.bytes) / static_cast<double>(d1.bytes);
  EXPECT_GT(dense_ratio, sparse_ratio);
}

TEST(EndToEndTest, PatchedSkylineRestoresDeliveryInHeterogeneousNetworks) {
  // Extension check: wherever plain skyline forwarding under-delivers, the
  // patched scheme (skyline + greedy gap repair at each relay) delivers
  // fully.  We verify at the forwarding-set level across many relays.
  net::DeploymentParams p;
  p.model = net::RadiusModel::kUniform;
  p.target_avg_degree = 10;
  sim::Xoshiro256 rng(99);
  const auto g = net::generate_graph(p, rng);
  for (net::NodeId u = 0; u < std::min<std::size_t>(g.size(), 50); ++u) {
    const bcast::LocalView view = bcast::local_view(g, u);
    const auto patched = bcast::patched_skyline_forwarding_set(g, view);
    for (net::NodeId w : view.two_hop) {
      bool covered = false;
      for (net::NodeId v : patched) covered = covered || g.linked(v, w);
      EXPECT_TRUE(covered) << "relay " << u << " missed 2-hop " << w;
    }
  }
}

}  // namespace
}  // namespace mldcs
