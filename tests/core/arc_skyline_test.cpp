// Tests for the Arc representation and the Skyline container invariants.

#include <gtest/gtest.h>

#include "core/arc.hpp"
#include "core/skyline.hpp"
#include "geometry/angle.hpp"

namespace mldcs::core {
namespace {

using geom::kTwoPi;

TEST(ArcTest, SpanMidCovers) {
  const Arc a{1.0, 2.0, 7};
  EXPECT_DOUBLE_EQ(a.span(), 1.0);
  EXPECT_DOUBLE_EQ(a.mid(), 1.5);
  EXPECT_TRUE(a.covers(1.5));
  EXPECT_TRUE(a.covers(1.0));
  EXPECT_TRUE(a.covers(2.0));
  EXPECT_FALSE(a.covers(0.5));
  EXPECT_FALSE(a.covers(2.5));
}

TEST(SkylineTest, EmptySkyline) {
  const Skyline s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.arc_count(), 0u);
  EXPECT_TRUE(s.skyline_set().empty());
  EXPECT_EQ(s.arc_at(1.0), SIZE_MAX);
  EXPECT_EQ(s.disk_at(1.0), SIZE_MAX);
}

TEST(SkylineTest, WellFormedAcceptsCanonicalList) {
  const std::vector<Arc> arcs{{0.0, 2.0, 0}, {2.0, 4.0, 1}, {4.0, kTwoPi, 0}};
  EXPECT_TRUE(Skyline::well_formed(arcs, 2));
}

TEST(SkylineTest, WellFormedRejectsBadLists) {
  // Doesn't start at 0.
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.5, kTwoPi, 0}}, 1));
  // Doesn't end at 2*pi.
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.0, 3.0, 0}}, 1));
  // Gap between arcs.
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.0, 1.0, 0}, {1.5, kTwoPi, 1}}, 2));
  // Adjacent same-disk arcs (uncoalesced).
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.0, 1.0, 0}, {1.0, kTwoPi, 0}}, 1));
  // Empty arc.
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.0, 0.0, 0}, {0.0, kTwoPi, 1}}, 2));
  // Disk index out of range.
  EXPECT_FALSE(Skyline::well_formed(
      std::vector<Arc>{{0.0, kTwoPi, 5}}, 2));
}

TEST(SkylineTest, SkylineSetDeduplicatesAndSorts) {
  const Skyline s({0, 0}, {{0.0, 1.0, 3}, {1.0, 2.0, 1}, {2.0, kTwoPi, 3}});
  EXPECT_EQ(s.skyline_set(), (std::vector<std::size_t>{1, 3}));
}

TEST(SkylineTest, ArcAtFindsCoveringArc) {
  const Skyline s({0, 0}, {{0.0, 2.0, 0}, {2.0, 4.0, 1}, {4.0, kTwoPi, 2}});
  EXPECT_EQ(s.arc_at(1.0), 0u);
  EXPECT_EQ(s.arc_at(3.0), 1u);
  EXPECT_EQ(s.arc_at(5.0), 2u);
  EXPECT_EQ(s.disk_at(3.0), 1u);
  // Normalization: angles outside [0, 2*pi) wrap.
  EXPECT_EQ(s.arc_at(1.0 + kTwoPi), 0u);
  EXPECT_EQ(s.arc_at(-kTwoPi + 3.0), 1u);
}

TEST(SkylineTest, ArcsPerDiskCounts) {
  const Skyline s({0, 0},
                  {{0.0, 1.0, 2}, {1.0, 2.0, 0}, {2.0, 3.0, 2}, {3.0, kTwoPi, 0}});
  const auto counts = s.arcs_per_disk();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(counts[1], (std::pair<std::size_t, std::size_t>{2, 2}));
}

TEST(NormalizeArcsTest, SortsAndSnapsFragments) {
  std::vector<Arc> frags{{3.0, kTwoPi, 1}, {0.0, 1.5, 0}, {1.5, 3.0, 1}};
  const auto out = normalize_arcs(std::move(frags));
  ASSERT_EQ(out.size(), 2u);  // the two disk-1 arcs coalesce
  EXPECT_EQ(out[0].disk, 0u);
  EXPECT_EQ(out[1].disk, 1u);
  EXPECT_TRUE(Skyline::well_formed(out, 2));
}

TEST(NormalizeArcsTest, DropsSlivers) {
  std::vector<Arc> frags{{0.0, 3.0, 0},
                         {3.0, 3.0 + 1e-12, 1},  // sliver
                         {3.0 + 1e-12, kTwoPi, 2}};
  const auto out = normalize_arcs(std::move(frags));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].disk, 0u);
  EXPECT_EQ(out[1].disk, 2u);
  EXPECT_TRUE(Skyline::well_formed(out, 3));
}

TEST(NormalizeArcsTest, CoalescesRunsOfSameDisk) {
  std::vector<Arc> frags;
  for (int k = 0; k < 10; ++k) {
    frags.push_back({k * 0.6, (k + 1) * 0.6, 4});
  }
  frags.back().end = kTwoPi;
  const auto out = normalize_arcs(std::move(frags));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 4u);
  EXPECT_DOUBLE_EQ(out[0].start, 0.0);
  EXPECT_DOUBLE_EQ(out[0].end, kTwoPi);
}

TEST(NormalizeArcsTest, EmptyInput) {
  EXPECT_TRUE(normalize_arcs({}).empty());
}

TEST(NormalizeArcsTest, OutputIsAlwaysWellFormed) {
  // Fuzz: random fragmentations must normalize to well-formed lists.
  std::uint64_t state = 12345;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Arc> frags;
    double pos = 0.0;
    while (pos < kTwoPi - 1e-6) {
      const double step =
          0.05 + 0.4 * static_cast<double>((state = state * 6364136223846793005ULL + 1) >> 40) /
                     static_cast<double>(1 << 24);
      const double end = std::min(pos + step, kTwoPi);
      frags.push_back({pos, end, (state >> 10) % 5});
      pos = end;
    }
    const auto out = normalize_arcs(std::move(frags));
    EXPECT_TRUE(Skyline::well_formed(out, 5)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mldcs::core
