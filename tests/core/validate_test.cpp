// Tests for the validation layer itself: the validators must catch broken
// skylines, not just bless correct ones (a validator that can't fail is no
// validator).

#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/angle.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kTwoPi;

TEST(ValidateTest, MaxRadialErrorZeroForCorrectSkyline) {
  sim::Xoshiro256 rng(1);
  const Scenario sc = random_local_set(rng, 8, true);
  const auto sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_LT(max_radial_error(sky, sc.disks, 1024), 1e-9);
}

TEST(ValidateTest, MaxRadialErrorDetectsWrongDiskAssignment) {
  // Take a correct 2-disk skyline and swap the arcs' disk labels: the
  // radial error must spike.
  const std::vector<Disk> disks{{{0.5, 0}, 1.0}, {{-0.5, 0}, 1.0}};
  const auto good = compute_skyline(disks, {0, 0});
  std::vector<Arc> broken(good.arcs().begin(), good.arcs().end());
  for (Arc& a : broken) a.disk = 1 - a.disk;
  const Skyline bad({0, 0}, std::move(broken));
  EXPECT_GT(max_radial_error(bad, disks, 1024), 0.1);
}

TEST(ValidateTest, VerifySkylineAcceptsCorrect) {
  sim::Xoshiro256 rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario sc = random_local_set(rng, 12, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    EXPECT_EQ(verify_skyline(sky, sc.disks), "");
  }
}

TEST(ValidateTest, VerifySkylineRejectsOffEnvelopeArc) {
  const std::vector<Disk> disks{{{0, 0}, 2.0}, {{0, 0}, 1.0}};
  // Claim the whole boundary belongs to the inner disk.
  const Skyline bad({0, 0}, {{0.0, kTwoPi, 1}});
  const std::string msg = verify_skyline(bad, disks);
  EXPECT_NE(msg.find("not on the envelope"), std::string::npos);
}

TEST(ValidateTest, VerifySkylineRejectsRadialDiscontinuity) {
  // Two separated-but-local disks stitched with a false breakpoint: the
  // shared endpoint has different radii on each side.
  const std::vector<Disk> disks{{{0.5, 0}, 1.0}, {{-0.5, 0}, 1.0}};
  const Skyline bad({0, 0}, {{0.0, 1.0, 0}, {1.0, kTwoPi, 1}});
  EXPECT_NE(verify_skyline(bad, disks), "");
}

TEST(ValidateTest, VerifySkylineRejectsEmptyForNonEmptySet) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  const Skyline empty;
  EXPECT_NE(verify_skyline(empty, disks), "");
}

TEST(ValidateTest, VerifySkylineAcceptsEmptyForEmptySet) {
  const Skyline empty;
  EXPECT_EQ(verify_skyline(empty, {}), "");
}

TEST(ValidateTest, IsDiskCoverSetAcceptsFullSet) {
  sim::Xoshiro256 rng(3);
  const Scenario sc = random_local_set(rng, 10, true);
  std::vector<std::size_t> all(sc.disks.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_TRUE(is_disk_cover_set(all, sc.disks, sc.origin));
}

TEST(ValidateTest, IsDiskCoverSetRejectsEmptySubsetOfNonEmpty) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  EXPECT_FALSE(is_disk_cover_set({}, disks, {0, 0}));
}

TEST(ValidateTest, IsDiskCoverSetRejectsOutOfRangeIndices) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  const std::vector<std::size_t> bad{5};
  EXPECT_FALSE(is_disk_cover_set(bad, disks, {0, 0}));
}

TEST(ValidateTest, ExclusiveWitnessExistsForSkylineDisks) {
  sim::Xoshiro256 rng(4);
  const Scenario sc = random_local_set(rng, 10, true);
  const auto sky = compute_skyline(sc.disks, sc.origin);
  for (std::size_t i : sky.skyline_set()) {
    const auto witness = exclusive_coverage_witness(sky, sc.disks, i);
    ASSERT_TRUE(witness.has_value()) << "disk " << i;
    // The witness must indeed be exclusively covered.
    EXPECT_TRUE(sc.disks[i].contains(*witness, 0.0));
    for (std::size_t j = 0; j < sc.disks.size(); ++j) {
      if (j != i) {
        EXPECT_FALSE(sc.disks[j].contains(*witness, 0.0));
      }
    }
  }
}

TEST(ValidateTest, ExclusiveWitnessAbsentForNonSkylineDisks) {
  const Scenario sc = figure32_like_configuration();
  const auto sky = compute_skyline(sc.disks, sc.origin);
  // Disk 3 is dominated: no arcs, no witness.
  EXPECT_FALSE(exclusive_coverage_witness(sky, sc.disks, 3).has_value());
}

}  // namespace
}  // namespace mldcs::core
