// Tests of the correctness-tooling layer itself: the MLDCS_CHECK /
// MLDCS_DCHECK macro family (abort and soft-count modes) and the structured
// validators, including a fuzz-style randomized sweep asserting that every
// skyline the three algorithms produce satisfies the invariants.

#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "geometry/angle.hpp"
#include "geometry/tolerance.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kAngleTol;
using geom::kTwoPi;
using geom::Vec2;

/// RAII guard: switch the invariant handler to soft-count mode for one test
/// and restore abort mode (and a clean counter) afterwards.
class SoftFailScope {
 public:
  SoftFailScope() {
    reset_invariant_failures();
    set_invariant_action(InvariantAction::kCount);
  }
  ~SoftFailScope() {
    set_invariant_action(InvariantAction::kAbort);
    reset_invariant_failures();
  }
  SoftFailScope(const SoftFailScope&) = delete;
  SoftFailScope& operator=(const SoftFailScope&) = delete;
};

TEST(InvariantMacrosTest, PassingCheckHasNoEffect) {
  const SoftFailScope scope;
  MLDCS_CHECK(1 + 1 == 2, "never evaluated");
  MLDCS_CHECK_OK(std::string{});
  EXPECT_EQ(invariant_failure_count(), 0u);
  EXPECT_EQ(first_invariant_failure(), "");
}

TEST(InvariantMacrosTest, SoftFailCountsAndRecordsFirstMessage) {
  const SoftFailScope scope;
  const int answer = 41;
  MLDCS_CHECK(answer == 42, "answer was " << answer);
  MLDCS_CHECK(false, "second failure");
  EXPECT_EQ(invariant_failure_count(), 2u);
  const std::string first = first_invariant_failure();
  EXPECT_NE(first.find("answer == 42"), std::string::npos) << first;
  EXPECT_NE(first.find("answer was 41"), std::string::npos) << first;
  EXPECT_NE(first.find("invariants_test.cpp"), std::string::npos) << first;
}

TEST(InvariantMacrosTest, CheckOkUsesValidatorMessageAsDetail) {
  const SoftFailScope scope;
  MLDCS_CHECK_OK(std::string("the envelope drifted"));
  EXPECT_EQ(invariant_failure_count(), 1u);
  EXPECT_NE(first_invariant_failure().find("the envelope drifted"),
            std::string::npos);
}

TEST(InvariantMacrosTest, ResetClearsCounterAndMessage) {
  const SoftFailScope scope;
  MLDCS_CHECK(false, "boom");
  reset_invariant_failures();
  EXPECT_EQ(invariant_failure_count(), 0u);
  EXPECT_EQ(first_invariant_failure(), "");
}

#if GTEST_HAS_DEATH_TEST
TEST(InvariantMacrosDeathTest, AbortModeAbortsWithExpressionDump) {
  EXPECT_DEATH(MLDCS_CHECK(false, "fatal detail " << 123),
               "MLDCS invariant violation");
}
#endif

TEST(CheckArcListTest, AcceptsEmptyAndComputedSkylines) {
  EXPECT_EQ(check_arc_list({}), "");
  const Scenario sc = figure32_like_configuration();
  const Skyline sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(check_arc_list(sky.arcs(), sc.disks.size()), "");
}

TEST(CheckArcListTest, RejectsStructuralCorruptions) {
  // A valid two-arc list to corrupt.
  const std::vector<Arc> good{{0.0, 3.0, 0}, {3.0, kTwoPi, 1}};
  ASSERT_EQ(check_arc_list(good), "");

  std::vector<Arc> bad = good;
  bad.front().start = 0.25;  // does not start at the +x axis
  EXPECT_NE(check_arc_list(bad), "");

  bad = good;
  bad.back().end = kTwoPi - 0.5;  // no closure at the seam
  EXPECT_NE(check_arc_list(bad), "");

  bad = good;
  bad[1].start = 3.5;  // gap between arcs
  EXPECT_NE(check_arc_list(bad), "");

  bad = good;
  bad[1].disk = 0;  // uncoalesced same-disk neighbors
  EXPECT_NE(check_arc_list(bad), "");

  bad = {{0.0, 3.0, 0}, {3.0, 3.0 + 0.5 * kAngleTol, 1},
         {3.0 + 0.5 * kAngleTol, kTwoPi, 2}};  // sub-tolerance sliver
  EXPECT_NE(check_arc_list(bad), "");

  bad = good;
  bad[1].disk = 9;  // index out of range for a 2-disk set
  EXPECT_NE(check_arc_list(bad, 2), "");
  EXPECT_EQ(check_arc_list(good, 2), "");
}

TEST(CheckLocalDiskPremiseTest, AcceptsValidAndRejectsViolations) {
  const std::vector<Disk> good{{{0.0, 0.0}, 1.0}, {{0.5, 0.0}, 0.8}};
  EXPECT_EQ(check_local_disk_premise(good, {0, 0}), "");

  // Relay outside the second disk: a one-directional link.
  const std::vector<Disk> far{{{0.0, 0.0}, 1.0}, {{5.0, 0.0}, 0.8}};
  EXPECT_NE(check_local_disk_premise(far, {0, 0}), "");

  const std::vector<Disk> negative{{{0.0, 0.0}, -1.0}};
  EXPECT_NE(check_local_disk_premise(negative, {0, 0}), "");
}

TEST(CheckMinimalityTest, AcceptsComputedSkylines) {
  const Scenario sc = figure32_like_configuration();
  EXPECT_EQ(check_skyline_minimality(sc.disks,
                                     compute_skyline(sc.disks, sc.origin)),
            "");
  EXPECT_EQ(check_skyline_minimality(
                sc.disks, compute_skyline_incremental(sc.disks, sc.origin)),
            "");
}

TEST(CheckMinimalityTest, RejectsArcFromDominatedDisk) {
  // Disk 1 strictly inside disk 0: it must never own an arc.
  const std::vector<Disk> disks{{{0.0, 0.0}, 2.0}, {{0.1, 0.0}, 0.5}};
  Skyline good = compute_skyline(disks, {0, 0});
  ASSERT_EQ(good.skyline_set(), (std::vector<std::size_t>{0}));

  // Forge a skyline crediting half the boundary to the dominated disk.
  const Skyline forged({0, 0},
                       {{0.0, geom::kPi, 1}, {geom::kPi, kTwoPi, 0}});
  EXPECT_NE(check_skyline_minimality(disks, forged), "");
}

TEST(CheckMinimalityTest, RejectsCoverageLoss) {
  // Two half-overlapping disks: both are on the skyline.  A "skyline" that
  // credits everything to disk 0 loses disk 1's exclusive area.
  const std::vector<Disk> disks{{{-0.4, 0.0}, 1.0}, {{0.4, 0.0}, 1.0}};
  const Skyline truth = compute_skyline(disks, {0, 0});
  ASSERT_EQ(truth.skyline_set().size(), 2u);

  const Skyline forged({0, 0}, {{0.0, kTwoPi, 0}});
  EXPECT_NE(check_skyline_minimality(disks, forged), "");
}

TEST(InvariantFuzzTest, RandomLocalSetsSatisfyAllInvariants) {
  // Fuzz-style randomized harness: random local disk sets (including
  // boundary-relay and coincident-disk configurations) must produce
  // skylines that pass every validator, for both the D&C and the
  // incremental algorithm.
  sim::Xoshiro256 rng(20260807);
  for (int rep = 0; rep < 60; ++rep) {
    std::vector<Disk> disks;
    const std::size_t n = 2 + rng.uniform_int(10);
    for (std::size_t i = 0; i < n; ++i) {
      double r = rng.uniform(0.5, 2.0);
      double d;
      switch (rng.uniform_int(4)) {
        case 0:  d = r; break;                        // relay on the boundary
        case 1:  d = 0.0; break;                      // concentric with relay
        default: d = rng.uniform(0.0, r); break;      // generic interior
      }
      Disk disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r};
      if (!disks.empty() && rng.uniform_int(5) == 0) {
        disk = disks.back();  // exact duplicate: coincident center + radius
      }
      disks.push_back(disk);
    }
    const std::string label = "rep " + std::to_string(rep);

    const Skyline dc = compute_skyline(disks, {0, 0});
    EXPECT_EQ(check_local_disk_premise(disks, {0, 0}), "") << label;
    EXPECT_EQ(check_arc_list(dc.arcs(), disks.size()), "") << label;
    EXPECT_EQ(check_skyline_minimality(disks, dc), "") << label;

    const Skyline inc = compute_skyline_incremental(disks, {0, 0});
    EXPECT_EQ(check_arc_list(inc.arcs(), disks.size()), "") << label;
    EXPECT_EQ(check_skyline_minimality(disks, inc), "") << label;
  }
}

}  // namespace
}  // namespace mldcs::core
