// Tests for the scenario generators: every generated configuration must be
// a valid local disk set with the advertised structure — tests and benches
// both build on these invariants.

#include "core/scenarios.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/mldcs.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

TEST(ScenariosTest, RandomLocalSetIsValidAndBidirectional) {
  sim::Xoshiro256 rng(13);
  for (const bool hetero : {false, true}) {
    for (int rep = 0; rep < 20; ++rep) {
      const Scenario sc = random_local_set(rng, 12, hetero);
      ASSERT_EQ(sc.disks.size(), 12u);
      // Valid local set: every disk contains the origin.
      EXPECT_TRUE(geom::is_local_disk_set(sc.disks, sc.origin));
      // Full bidirectional rule: ||u_i - o|| <= min(r_0, r_i).
      const double r0 = sc.disks[0].radius;
      for (const geom::Disk& d : sc.disks) {
        EXPECT_LE(geom::distance(d.center, sc.origin),
                  std::min(r0, d.radius) + geom::kTol);
      }
    }
  }
}

TEST(ScenariosTest, RandomLocalSetRadiiRespectModel) {
  sim::Xoshiro256 rng(14);
  const Scenario homo = random_local_set(rng, 10, false, 1.0, 2.0);
  for (const auto& d : homo.disks) EXPECT_DOUBLE_EQ(d.radius, 2.0);
  const Scenario hetero = random_local_set(rng, 10, true, 1.0, 2.0);
  for (const auto& d : hetero.disks) {
    EXPECT_GE(d.radius, 1.0);
    EXPECT_LT(d.radius, 2.0);
  }
}

TEST(ScenariosTest, RandomLocalSetSizeZeroAndOne) {
  sim::Xoshiro256 rng(15);
  EXPECT_TRUE(random_local_set(rng, 0, true).disks.empty());
  const Scenario one = random_local_set(rng, 1, true);
  ASSERT_EQ(one.disks.size(), 1u);
  EXPECT_EQ(one.disks[0].center, one.origin);
}

TEST(ScenariosTest, ConcentricSetStructure) {
  const Scenario sc = concentric_set(5);
  ASSERT_EQ(sc.disks.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sc.disks[i].center, sc.origin);
    EXPECT_DOUBLE_EQ(sc.disks[i].radius, static_cast<double>(i + 1));
  }
}

TEST(ScenariosTest, DuplicateSetAllIdentical) {
  const Scenario sc = duplicate_set(4);
  ASSERT_EQ(sc.disks.size(), 4u);
  for (const auto& d : sc.disks) EXPECT_EQ(d, sc.disks[0]);
  EXPECT_TRUE(geom::is_local_disk_set(sc.disks, sc.origin));
}

TEST(ScenariosTest, DominatedSetFirstDiskContainsAll) {
  sim::Xoshiro256 rng(16);
  const Scenario sc = dominated_set(rng, 8);
  for (std::size_t i = 1; i < sc.disks.size(); ++i) {
    EXPECT_TRUE(sc.disks[0].contains_disk(sc.disks[i]));
  }
}

TEST(ScenariosTest, TangentPairTouchesAtOnePoint) {
  const Scenario sc = tangent_pair();
  ASSERT_EQ(sc.disks.size(), 2u);
  // Internal tangency: distance == difference of radii.
  const double d = geom::distance(sc.disks[0].center, sc.disks[1].center);
  EXPECT_NEAR(d, sc.disks[0].radius - sc.disks[1].radius, 1e-12);
}

TEST(ScenariosTest, CollinearSetCentersOnXAxis) {
  const Scenario sc = collinear_set(7);
  for (const auto& d : sc.disks) EXPECT_DOUBLE_EQ(d.center.y, 0.0);
  EXPECT_TRUE(geom::is_local_disk_set(sc.disks, sc.origin));
}

TEST(ScenariosTest, Figure41GeometryInvariants) {
  for (std::size_t k : {3u, 7u, 11u}) {
    const Scenario sc = figure41_configuration(k);
    ASSERT_EQ(sc.disks.size(), k + 1);
    // Ring disks: unit radius, centers at distance 1/2.
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(sc.disks[i].radius, 1.0);
      EXPECT_NEAR(geom::distance(sc.disks[i].center, sc.origin), 0.5, 1e-12);
    }
    // Central disk radius inside the paper's window (||o-p||, 3/2).
    const double r = sc.disks[k].radius;
    const double half_gap = geom::kPi / static_cast<double>(k);
    const double sin_part = 0.5 * std::sin(half_gap);
    const double op =
        0.5 * std::cos(half_gap) + std::sqrt(1.0 - sin_part * sin_part);
    EXPECT_GT(r, op);
    EXPECT_LT(r, 1.5);
    EXPECT_TRUE(geom::is_local_disk_set(sc.disks, sc.origin));
  }
}

TEST(ScenariosTest, Figure41WindowEndpointsBehave) {
  // r_frac = 0 sits exactly at ||o-p||: the central disk grazes the valley
  // points; r_frac = 1 sits at 3/2 where the central disk reaches exactly
  // the unit disks' outer extreme.
  const Scenario lo = figure41_configuration(6, 0.0);
  const Scenario hi = figure41_configuration(6, 1.0);
  EXPECT_LT(lo.disks.back().radius, hi.disks.back().radius);
  EXPECT_NEAR(hi.disks.back().radius, 1.5, 1e-12);
}

TEST(ScenariosTest, Figure32LikeIsValidAndHasDominatedDisk) {
  const Scenario sc = figure32_like_configuration();
  EXPECT_TRUE(geom::is_local_disk_set(sc.disks, sc.origin));
  // Disk 3 must be covered by the union of the others: its radial function
  // never exceeds the envelope of the rest.
  std::vector<geom::Disk> others;
  for (std::size_t i = 0; i < sc.disks.size(); ++i) {
    if (i != 3) others.push_back(sc.disks[i]);
  }
  for (int s = 0; s < 720; ++s) {
    const double theta = geom::kTwoPi * s / 720.0;
    EXPECT_LE(geom::radial_distance(sc.disks[3], sc.origin, theta),
              geom::radial_envelope(others, sc.origin, theta) + 1e-9);
  }
}

TEST(ScenariosTest, GeneratorsAreDeterministic) {
  sim::Xoshiro256 a(99), b(99);
  const Scenario s1 = random_local_set(a, 9, true);
  const Scenario s2 = random_local_set(b, 9, true);
  for (std::size_t i = 0; i < s1.disks.size(); ++i) {
    EXPECT_EQ(s1.disks[i], s2.disks[i]);
  }
}

}  // namespace
}  // namespace mldcs::core
