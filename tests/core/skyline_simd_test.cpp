// Differential tests for the SIMD skyline kernels (geometry/simd.hpp):
// the workspace engine under runtime dispatch must produce *byte-equal*
// arcs to the same engine pinned to the scalar reference kernels, across
// a corpus built from the degenerate regimes the kernels special-case —
// coincident centers, dominating disks, sub-kAngleTol breakpoint
// clusters, tangencies, and batch sizes that exercise lane remainders
// (n < lane width and n % lane width != 0; kernels see padded batches
// either way, but the *task counts* land on every remainder).
//
// tests/CMakeLists.txt registers this binary twice: once as-is (runtime
// dispatch picks the widest compiled-in ISA the CPU supports) and once
// with MLDCS_SIMD=off in the environment (suffix ".simd_off"), which
// forces the fallback before the first dispatch decision — proving the
// override works and that the corpus passes on the scalar path alone.

#include "geometry/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/skyline_dc.hpp"
#include "geometry/angle.hpp"
#include "geometry/disk.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

namespace simd = geom::simd;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Run the engine under runtime dispatch and pinned to the scalar
/// reference, and require bitwise-equal arc output (bit patterns, not
/// double equality: -0.0 vs 0.0 or a 1-ulp drift must fail).
void expect_bit_identical(const std::vector<geom::Disk>& disks,
                          geom::Vec2 o, const std::string& label) {
  SkylineWorkspace ws;
  std::vector<Arc> active;
  std::vector<Arc> scalar;
  compute_skyline_arcs(disks, o, ws, active);
  {
    const simd::ScopedKernelOverride pin(simd::scalar_kernels());
    compute_skyline_arcs(disks, o, ws, scalar);
  }
  ASSERT_EQ(active.size(), scalar.size()) << label;
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(bits(active[i].start), bits(scalar[i].start))
        << label << ": arc " << i << " start";
    EXPECT_EQ(bits(active[i].end), bits(scalar[i].end))
        << label << ": arc " << i << " end";
    EXPECT_EQ(active[i].disk, scalar[i].disk)
        << label << ": arc " << i << " disk";
  }
}

/// The bench's hard regime: nearly equal radii, neighbors at 97% of the
/// maximum bidirectional distance — almost every disk survives.
std::vector<geom::Disk> narrow_band(sim::Xoshiro256& rng, std::size_t n) {
  std::vector<geom::Disk> disks;
  disks.reserve(n);
  const double r0 = 1.01;
  disks.push_back({{0.0, 0.0}, r0});
  for (std::size_t i = 1; i < n; ++i) {
    const double radius = rng.uniform(1.0, 1.02);
    const double dist = 0.97 * std::min(r0, radius);
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    disks.push_back({{dist * std::cos(theta), dist * std::sin(theta)}, radius});
  }
  return disks;
}

TEST(SkylineSimdTest, CoincidentCentersAndExactDuplicates) {
  sim::Xoshiro256 rng(0xC01DC01DULL);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<geom::Disk> disks = narrow_band(rng, 12);
    // A stack of concentric disks at a random member's center, plus an
    // exact duplicate of another member: the prefilter and the merge
    // tie-breaks must resolve both identically on every kernel set.
    // Every stacked radius stays >= the center's distance to the relay,
    // keeping the local-disk-set premise (o inside every disk) intact.
    const geom::Disk base = disks[1 + static_cast<std::size_t>(
                                          rng.uniform(0.0, 10.0))];
    const geom::Vec2 c = base.center;
    const double d = std::sqrt(c.x * c.x + c.y * c.y);
    disks.push_back({c, d + (base.radius - d) * 0.25});
    disks.push_back({c, base.radius * 0.999});
    disks.push_back({c, base.radius});  // coincident *and* equal radius
    disks.push_back(disks[3]);          // exact duplicate
    expect_bit_identical(disks, {0.0, 0.0},
                         "coincident rep " + std::to_string(rep));
  }
}

TEST(SkylineSimdTest, DominatingDiskCollapsesEitherWay) {
  sim::Xoshiro256 rng(0xD0111ACEULL);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<geom::Disk> disks = narrow_band(rng, 24);
    // One disk strictly containing every other: the skyline collapses
    // to a single full-circle arc through the dominance prefilter.
    disks.push_back({{0.01, -0.02}, 5.0});
    expect_bit_identical(disks, {0.0, 0.0},
                         "dominating rep " + std::to_string(rep));
  }
}

TEST(SkylineSimdTest, SubAngleTolBreakpointClusters) {
  sim::Xoshiro256 rng(0x70CC1U);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<geom::Disk> disks = narrow_band(rng, 10);
    // Shadow three disks with copies rotated about the origin by half
    // of kAngleTol: every breakpoint of the original reappears within
    // tolerance, forcing the equal-angle and equal-radius tie-break
    // paths in Merge's cut handling.
    const double eps = 0.5 * geom::kAngleTol;
    const double c = std::cos(eps);
    const double s = std::sin(eps);
    for (std::size_t i = 1; i <= 3; ++i) {
      const geom::Vec2 p = disks[i].center;
      disks.push_back(
          {{c * p.x - s * p.y, s * p.x + c * p.y}, disks[i].radius});
    }
    expect_bit_identical(disks, {0.0, 0.0},
                         "sub-tol rep " + std::to_string(rep));
  }
}

TEST(SkylineSimdTest, TangentAndContainedPairs) {
  sim::Xoshiro256 rng(0x7A46E47ULL);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<geom::Disk> disks = narrow_band(rng, 8);
    // Internal tangencies (dist == |r_a - r_b|, from either side) and a
    // strict containment: the h^2 <= 0 clamp must pick the same
    // tangent-point verdict on every kernel set.  (External tangency
    // cannot occur in a local disk set — every disk contains o, so all
    // pairs overlap.)
    disks.push_back({{0.3, 0.0}, 1.31});   // contains disk 0, tangent
    disks.push_back({{0.5, 0.0}, 0.51});   // inside disk 0, tangent
    disks.push_back({{0.1, 0.1}, 0.25});   // strictly contained
    expect_bit_identical(disks, {0.0, 0.0},
                         "tangent rep " + std::to_string(rep));
  }
}

TEST(SkylineSimdTest, LaneRemainderSizes) {
  // Below any lane width, exactly at it, and off every multiple: the
  // batches the engine builds from these sets land on every n % W.
  sim::Xoshiro256 rng(0x5123E5ULL);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7},
                              std::size_t{9}, std::size_t{13},
                              std::size_t{17}, std::size_t{31}}) {
    for (int rep = 0; rep < 5; ++rep) {
      expect_bit_identical(narrow_band(rng, n), {0.0, 0.0},
                           "n=" + std::to_string(n) + " rep " +
                               std::to_string(rep));
    }
  }
}

TEST(SkylineSimdTest, RandomizedDegenerateFuzz) {
  // Mixed fuzz: a random base set with a random sprinkle of every
  // degeneracy above, off-origin evaluation points included.
  sim::Xoshiro256 rng(0xF0220FULL);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 3 + static_cast<std::size_t>(
                                  rng.uniform(0.0, 40.0));
    std::vector<geom::Disk> disks = narrow_band(rng, n);
    if (rng.uniform() < 0.5) {  // coincident-center stack
      const geom::Disk base = disks[static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(n)))];
      const geom::Vec2 c = base.center;
      // Radius in [|c - o|, base.radius]: coincident centers without
      // breaking the local-disk-set premise.
      const double d = std::sqrt(c.x * c.x + c.y * c.y);
      disks.push_back(
          {c, d + (base.radius - d) * rng.uniform(0.0, 1.0)});
    }
    if (rng.uniform() < 0.3) {  // exact duplicate
      disks.push_back(disks[static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(n)))]);
    }
    if (rng.uniform() < 0.3) {  // dominator
      disks.push_back({{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1)},
                       4.0 + rng.uniform(0.0, 2.0)});
    }
    if (rng.uniform() < 0.5) {  // sub-tolerance rotated shadow
      const double eps = geom::kAngleTol * rng.uniform(0.01, 0.99);
      const geom::Vec2 p = disks[1].center;
      disks.push_back({{std::cos(eps) * p.x - std::sin(eps) * p.y,
                        std::sin(eps) * p.x + std::cos(eps) * p.y},
                       disks[1].radius});
    }
    expect_bit_identical(disks, {0.0, 0.0},
                         "fuzz rep " + std::to_string(rep));
  }
}

TEST(SkylineSimdTest, DispatchRespectsEnvironmentOverride) {
  const char* env = std::getenv("MLDCS_SIMD");
  const bool forced_off =
      env != nullptr && (std::strcmp(env, "off") == 0 ||
                         std::strcmp(env, "scalar") == 0);
  if (forced_off) {
    // The .simd_off registration: the override must win over the CPU.
    EXPECT_STREQ(simd::dispatch_choice(), "scalar");
    EXPECT_EQ(&simd::active_kernels(), &simd::scalar_kernels());
  } else if (simd::simd_compiled() &&
             std::strcmp(simd::detected_isa(), "none") != 0) {
    // Wide kernels compiled in and supported: dispatch must take them.
    EXPECT_STREQ(simd::dispatch_choice(), simd::detected_isa());
  } else {
    EXPECT_STREQ(simd::dispatch_choice(), "scalar");
  }
}

}  // namespace
}  // namespace mldcs::core
