// Dynamic verification of the MLDCS_HOT_PATH / MLDCS_NO_LOCK annotations:
// the runtime half of the discipline whose static half is
// tools/analyze/mldcs_analyze.py.  The static rules cannot see through
// constructors, default member initializers (telemetry registration), or
// std::function type erasure (ThreadPool dispatch); these tests run the
// annotated paths warmed up and assert the steady state performs zero
// allocations and zero mutex acquisitions, using the interposers in
// tests/support/.
//
// Warm-up matters everywhere here: the amortized-zero contract says scratch
// *grows to a high-water mark, then stops* — the first pass over a topology
// allocates (and telemetry registration takes its once-per-process locks);
// every later pass must be silent.

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "core/invariants.hpp"
#include "core/skyline_dc.hpp"
#include "sim/rng.hpp"
#include "support/alloc_guard.hpp"
#include "support/lock_guard.hpp"

namespace mldcs {
namespace {

using test::AllocGuard;
using test::LockGuard;

std::vector<geom::Disk> random_disks(std::size_t n, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<geom::Disk> disks;
  disks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 u{rng.uniform(-8.0, 8.0), rng.uniform(-8.0, 8.0)};
    const double need = std::sqrt(u.x * u.x + u.y * u.y);
    disks.push_back({u, need + rng.uniform(0.1, 4.0)});
  }
  return disks;
}

// --- Probe self-checks: the interposers must actually count -----------------

TEST(InterposerProbe, CountsHeapAllocations) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  AllocGuard guard;
  std::vector<int>* v = new std::vector<int>(128);
  EXPECT_GE(guard.count(), 1u);
  delete v;
}

TEST(InterposerProbe, CountsMutexAcquisitions) {
  if (!test::lock_probe_active()) GTEST_SKIP() << "pthreads owned by TSan";
  std::mutex mu;
  LockGuard guard;
  {
    const std::lock_guard<std::mutex> lock(mu);
  }
  EXPECT_GE(guard.count(), 1u);
}

// --- compute_skyline_arcs: MLDCS_HOT_PATH + MLDCS_NO_LOCK -------------------

TEST(HotPathGuard, SkylineArcsSteadyStateAllocFree) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  if (core::kInvariantChecksEnabled) {
    GTEST_SKIP() << "invariant diagnostics allocate by design (ALLOC_OK)";
  }
  core::SkylineWorkspace ws;
  std::vector<core::Arc> arcs;
  const std::vector<geom::Disk> disks = random_disks(96, 7);

  // Warm-up: scratch and telemetry reach steady state.
  for (int i = 0; i < 3; ++i) {
    core::compute_skyline_arcs(disks, {0.0, 0.0}, ws, arcs);
  }

  AllocGuard guard;
  for (int i = 0; i < 50; ++i) {
    core::compute_skyline_arcs(disks, {0.0, 0.0}, ws, arcs);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "MLDCS_HOT_PATH contract: warmed-up compute_skyline_arcs must not "
         "allocate";
}

TEST(HotPathGuard, SkylineArcsSteadyStateLockFree) {
  if (!test::lock_probe_active()) GTEST_SKIP() << "pthreads owned by TSan";
  core::SkylineWorkspace ws;
  std::vector<core::Arc> arcs;
  const std::vector<geom::Disk> disks = random_disks(96, 11);

  // Warm-up includes the once-per-process telemetry registration locks.
  for (int i = 0; i < 3; ++i) {
    core::compute_skyline_arcs(disks, {0.0, 0.0}, ws, arcs);
  }

  LockGuard guard;
  for (int i = 0; i < 50; ++i) {
    core::compute_skyline_arcs(disks, {0.0, 0.0}, ws, arcs);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "MLDCS_NO_LOCK contract: warmed-up compute_skyline_arcs must not "
         "take a mutex";
}

// Growing inputs still allocate (scratch high-water mark moves): the guard
// must see that, or the zero-readings above prove nothing.
TEST(HotPathGuard, ColdWorkspaceAllocatesAndGuardSeesIt) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  core::SkylineWorkspace ws;
  std::vector<core::Arc> arcs;
  const std::vector<geom::Disk> disks = random_disks(96, 13);

  AllocGuard guard;
  core::compute_skyline_arcs(disks, {0.0, 0.0}, ws, arcs);
  EXPECT_GT(guard.count(), 0u)
      << "a cold workspace must grow (otherwise the probe is dead)";
}

}  // namespace
}  // namespace mldcs
