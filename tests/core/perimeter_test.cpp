// Tests for the exact skyline perimeter (length of the union boundary).

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kPi;
using geom::kTwoPi;

/// Numeric reference: dense polyline length along the skyline curve.
double polyline_perimeter(const Skyline& sky,
                          std::span<const Disk> disks,
                          std::size_t samples_per_arc = 4000) {
  double len = 0.0;
  for (const Arc& a : sky.arcs()) {
    const geom::RadialDisk rd(disks[a.disk], sky.origin());
    geom::Vec2 prev = rd.boundary_point_at(a.start);
    for (std::size_t s = 1; s <= samples_per_arc; ++s) {
      const double theta =
          a.start + a.span() * static_cast<double>(s) /
                        static_cast<double>(samples_per_arc);
      const geom::Vec2 p = rd.boundary_point_at(theta);
      len += geom::distance(prev, p);
      prev = p;
    }
  }
  return len;
}

TEST(PerimeterTest, SingleCenteredDisk) {
  const std::vector<Disk> one{{{0, 0}, 2.0}};
  const auto sky = compute_skyline(one, {0, 0});
  EXPECT_NEAR(sky.perimeter(one), 2 * kTwoPi, 1e-9);
}

TEST(PerimeterTest, SingleOffsetDisk) {
  const std::vector<Disk> one{{{0.4, -0.3}, 1.5}};
  const auto sky = compute_skyline(one, {0, 0});
  EXPECT_NEAR(sky.perimeter(one), kTwoPi * 1.5, 1e-9);
}

TEST(PerimeterTest, TwoCrossingUnitDisksClassicLens) {
  // Unit disks at distance 1: each circle loses a 2*pi/3 lens arc, so the
  // union perimeter is 2 * (2*pi - 2*pi/3) = 8*pi/3.
  const std::vector<Disk> two{{{0.5, 0}, 1.0}, {{-0.5, 0}, 1.0}};
  const auto sky = compute_skyline(two, {0, 0});
  EXPECT_NEAR(sky.perimeter(two), 8.0 * kPi / 3.0, 1e-9);
}

TEST(PerimeterTest, DominatedDiskDoesNotContribute) {
  const std::vector<Disk> pair{{{0, 0}, 3.0}, {{0.5, 0}, 1.0}};
  const auto sky = compute_skyline(pair, {0, 0});
  EXPECT_NEAR(sky.perimeter(pair), kTwoPi * 3.0, 1e-9);
}

TEST(PerimeterTest, MatchesPolylineReferenceOnRandomSets) {
  sim::Xoshiro256 rng(808);
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario sc = random_local_set(rng, 10, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    const double exact = sky.perimeter(sc.disks);
    const double numeric = polyline_perimeter(sky, sc.disks);
    EXPECT_NEAR(exact, numeric, exact * 1e-4) << "rep " << rep;
  }
}

TEST(PerimeterTest, AtLeastLargestDiskAtMostSumOfDisks) {
  // The union boundary is at least the hull disk's circumference scale and
  // at most the total circumference of all contributing circles.
  sim::Xoshiro256 rng(809);
  for (int rep = 0; rep < 20; ++rep) {
    const Scenario sc = random_local_set(rng, 8, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    const double perim = sky.perimeter(sc.disks);
    double rmax = 0.0;
    double total = 0.0;
    for (const Disk& d : sc.disks) {
      rmax = std::max(rmax, d.radius);
      total += kTwoPi * d.radius;
    }
    EXPECT_GE(perim, kTwoPi * rmax - 1e-9);  // union contains the largest disk
    EXPECT_LE(perim, total + 1e-9);
  }
}

TEST(PerimeterTest, IsoperimetricConsistencyWithArea) {
  // For any planar region, P^2 >= 4*pi*A (isoperimetric inequality) — a
  // cheap cross-check tying the two exact integrals together.
  sim::Xoshiro256 rng(810);
  for (int rep = 0; rep < 20; ++rep) {
    const Scenario sc = random_local_set(rng, 9, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    const double perim = sky.perimeter(sc.disks);
    const double area = sky.enclosed_area(sc.disks);
    EXPECT_GE(perim * perim, 4.0 * kPi * area - 1e-6);
  }
}

}  // namespace
}  // namespace mldcs::core
