// Direct property checks of the paper's Chapter 3/4 lemmas, tested as
// geometry facts independent of the skyline implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/skyline_dc.hpp"
#include "geometry/angle.hpp"
#include "geometry/area.hpp"
#include "geometry/bbox.hpp"
#include "geometry/circle_intersect.hpp"
#include "geometry/radial.hpp"
#include "geometry/segment.hpp"
#include "geometry/triangle.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

// ---------------------------------------------------------------------------
// Lemma 1: for any boundary point a of a disk containing o, segment oa is
// inside the disk.

TEST(Lemma1Test, SegmentFromRelayToBoundaryStaysInside) {
  sim::Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const double r = rng.uniform(0.5, 2.0);
    const double d = rng.uniform(0.0, r);
    const Disk disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r};
    const Vec2 a = disk.boundary_point(rng.uniform(0.0, kTwoPi));
    // Sample points along the segment o-a.
    for (int k = 0; k <= 20; ++k) {
      const Vec2 p = geom::lerp({0, 0}, a, k / 20.0);
      EXPECT_TRUE(disk.contains(p, 1e-9));
    }
  }
}

// ---------------------------------------------------------------------------
// Corollary 2: any ray from o crosses the skyline exactly once — i.e. the
// radial representation is a total single-valued function.  Checked as: the
// forward ray hits the boundary of the union exactly once, by counting
// sign changes of "inside the union" along the ray.

TEST(Corollary2Test, RayCrossesUnionBoundaryExactlyOnce) {
  sim::Xoshiro256 rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    // Random local disk set.
    std::vector<Disk> disks;
    const std::size_t n = 2 + rng.uniform_int(8);
    for (std::size_t i = 0; i < n; ++i) {
      const double r = rng.uniform(0.5, 2.0);
      const double d = rng.uniform(0.0, r);
      disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
    }
    const double theta = rng.uniform(0.0, kTwoPi);
    // March along the ray well past every disk; count inside->outside
    // transitions.
    double reach = 0.0;
    for (const Disk& dd : disks) {
      reach = std::max(reach, dd.center.norm() + dd.radius);
    }
    int transitions = 0;
    bool inside = true;  // o is inside every disk
    const int steps = 4000;
    for (int k = 1; k <= steps; ++k) {
      const Vec2 p = (reach * 1.1 * k / steps) * geom::unit_at(theta);
      const bool now = geom::covered_by_union(disks, p, 0.0);
      if (inside && !now) ++transitions;
      EXPECT_FALSE(!inside && now)
          << "re-entered the union: star-shapedness violated";
      inside = now;
    }
    EXPECT_EQ(transitions, 1);
  }
}

// ---------------------------------------------------------------------------
// Lemma 5: the chord inequality ||b - c|| > 2 min(r1, r2) in the paper's
// obtuse configuration.  We realize the configuration directly: two circles
// through a common point a, diameters ac' and ab', points c and b on the
// specified arcs with angle(cab) obtuse.

TEST(Lemma5Test, ChordInequalityInTangentExtreme) {
  // The extreme case the paper treats first: circles tangent at a with
  // c', a, b' collinear.  B1 is centered (-r1, 0), B2 at (r2, 0), tangent
  // at a = origin; the diameter endpoints are c' = (-2r1, 0), b' = (2r2, 0).
  // c is the second boundary crossing of a ray from a with direction in
  // (pi/2, pi) (between the vertical and ac'); b likewise with direction in
  // (0, pi/2) (between ab' and the vertical) — these are exactly the rays
  // inside the angle c'ab' the paper's rotation argument preserves.  With
  // angle(cab) strictly obtuse, ||b - c|| > 2 min(r1, r2).
  sim::Xoshiro256 rng(33);
  int tested = 0;
  for (int trial = 0; trial < 400 && tested < 200; ++trial) {
    const double r1 = rng.uniform(0.5, 2.0);
    const double r2 = rng.uniform(0.5, 2.0);
    const Disk b1{{-r1, 0}, r1};
    const Disk b2{{r2, 0}, r2};
    const double margin = 0.02;
    const double dir_c = rng.uniform(kPi / 2 + 2 * margin, kPi - margin);
    const double dir_b = rng.uniform(margin, dir_c - kPi / 2 - margin);
    // Second crossing of the ray from a: t = 2 dir . (center - a).
    const auto chord_end = [](const Disk& disk, double phi) {
      const Vec2 dir = geom::unit_at(phi);
      return (2.0 * dir.dot(disk.center)) * dir;
    };
    const Vec2 c = chord_end(b1, dir_c);
    const Vec2 b = chord_end(b2, dir_b);
    ASSERT_TRUE(b1.on_boundary(c, 1e-9));
    ASSERT_TRUE(b2.on_boundary(b, 1e-9));
    const double angle_cab = dir_c - dir_b;
    ASSERT_GT(angle_cab, kPi / 2);  // obtuse by construction
    ++tested;
    EXPECT_GT(geom::distance(b, c), 2.0 * std::min(r1, r2) - 1e-9)
        << "r1=" << r1 << " r2=" << r2 << " angle=" << angle_cab;
  }
  EXPECT_EQ(tested, 200);
}

// ---------------------------------------------------------------------------
// Lemma 6: the three circles (edge as chord, circumradius radius, center
// outside the triangle) of an acute triangle meet at the orthocenter.

TEST(Lemma6Test, CirclesPassThroughOrthocenter) {
  sim::Xoshiro256 rng(44);
  int tested = 0;
  while (tested < 100) {
    const geom::Triangle t{{rng.uniform(-2, 2), rng.uniform(-2, 2)},
                           {rng.uniform(-2, 2), rng.uniform(-2, 2)},
                           {rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    if (t.classify() != geom::TriangleKind::kAcute) continue;
    ++tested;
    const double r = *t.circumradius();
    const auto circles = geom::lemma6_circles(t, r);
    ASSERT_TRUE(circles.has_value());
    const Vec2 h = *t.orthocenter();
    for (const Disk& c : *circles) {
      EXPECT_NEAR(geom::distance(c.center, h), r, 1e-7)
          << "orthocenter not on circle";
    }
  }
}

// ---------------------------------------------------------------------------
// Corollary 7: with radius strictly larger than the circumradius, the three
// circles have empty common intersection (for acute or right triangles).

TEST(Corollary7Test, EnlargedCirclesHaveNoCommonPoint) {
  sim::Xoshiro256 rng(55);
  int tested = 0;
  while (tested < 100) {
    const geom::Triangle t{{rng.uniform(-2, 2), rng.uniform(-2, 2)},
                           {rng.uniform(-2, 2), rng.uniform(-2, 2)},
                           {rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    const auto kind = t.classify();
    if (kind != geom::TriangleKind::kAcute && kind != geom::TriangleKind::kRight)
      continue;
    if (t.area() < 0.05) continue;  // keep configurations well-conditioned
    ++tested;
    const double r = *t.circumradius() * rng.uniform(1.05, 2.0);
    const auto circles = geom::lemma6_circles(t, r);
    ASSERT_TRUE(circles.has_value());
    // Dense sampling of the plane region around the triangle: no point may
    // lie in all three disks.
    const geom::BBox box = geom::bbox_of(std::span<const Disk>(
        circles->data(), circles->size()));
    const int grid = 60;
    for (int iy = 0; iy <= grid; ++iy) {
      for (int ix = 0; ix <= grid; ++ix) {
        const Vec2 p{box.min.x + box.width() * ix / grid,
                     box.min.y + box.height() * iy / grid};
        const bool in_all = (*circles)[0].contains(p, -1e-9) &&
                            (*circles)[1].contains(p, -1e-9) &&
                            (*circles)[2].contains(p, -1e-9);
        EXPECT_FALSE(in_all) << "common point at " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 8 seen through Merge instrumentation: total merge work across the
// divide-and-conquer is O(n log n) — spans per level stay linear.

TEST(Lemma8Test, MergeWorkIsLinearithmic) {
  sim::Xoshiro256 rng(66);
  // Compare total spans at n and 2n: should grow by a factor close to 2
  // (times the extra level), far below the factor 4 of quadratic growth.
  const auto work = [&](std::size_t n) {
    std::vector<Disk> disks;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = rng.uniform(1.0, 2.0);
      const double d = rng.uniform(0.0, r);
      disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
    }
    MergeStats stats;
    (void)compute_skyline(disks, {0, 0}, &stats);
    return stats.spans;
  };
  const auto w256 = static_cast<double>(work(256));
  const auto w1024 = static_cast<double>(work(1024));
  // Quadratic would give ~16x; n log n gives ~4.7x.  Allow generous slack.
  EXPECT_LT(w1024 / w256, 8.0);
}

}  // namespace
}  // namespace mldcs::core
