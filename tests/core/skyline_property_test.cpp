// Cross-validation property tests: the divide-and-conquer skyline against
// the brute-force envelope and the incremental skyline, over random and
// degenerate local disk sets; plus the paper's structural claims (Theorem 3
// exclusive coverage, Lemma 8 arc bound, Figure 4.1 arc explosion).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/scenarios.hpp"
#include "geometry/area.hpp"
#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "core/validate.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::kTwoPi;

/// Checks that all three skyline computations agree on the given scenario:
/// identical radial coverage, identical skyline sets (under the shared
/// deterministic tie-break the arc structure itself must match), and all
/// validators pass.
void expect_skylines_agree(const Scenario& sc, const std::string& label) {
  const auto dc = compute_skyline(sc.disks, sc.origin);
  const auto bf = compute_skyline_bruteforce(sc.disks, sc.origin);
  const auto inc = compute_skyline_incremental(sc.disks, sc.origin);

  EXPECT_EQ(verify_skyline(dc, sc.disks), "") << label;
  EXPECT_EQ(verify_skyline(bf, sc.disks), "") << label;
  EXPECT_EQ(verify_skyline(inc, sc.disks), "") << label;

  EXPECT_LT(max_radial_error(dc, sc.disks, 2048), 1e-7) << label;
  EXPECT_LT(max_radial_error(bf, sc.disks, 2048), 1e-7) << label;
  EXPECT_LT(max_radial_error(inc, sc.disks, 2048), 1e-7) << label;

  EXPECT_EQ(dc.skyline_set(), bf.skyline_set()) << label;
  EXPECT_EQ(dc.skyline_set(), inc.skyline_set()) << label;

  // Lemma 8: at most 2n arcs.
  EXPECT_LE(dc.arc_count(), 2 * sc.disks.size()) << label;

  // Theorem 3, minimality direction: every skyline disk exclusively covers
  // some point, so no disk cover set can omit it.
  for (std::size_t i : dc.skyline_set()) {
    EXPECT_TRUE(exclusive_coverage_witness(dc, sc.disks, i).has_value())
        << label << " disk " << i;
  }

  // Theorem 3, cover direction: the skyline set covers everything.
  const auto set = dc.skyline_set();
  EXPECT_TRUE(is_disk_cover_set(set, sc.disks, sc.origin, 2048)) << label;
}

// ---------------------------------------------------------------------------
// Random sweeps (parameterized over size x heterogeneity x seed).

class SkylineRandomTest
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(SkylineRandomTest, AllAlgorithmsAgree) {
  const auto [n, hetero, seed] = GetParam();
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1000003 + 17);
  for (int rep = 0; rep < 5; ++rep) {
    const Scenario sc =
        random_local_set(rng, static_cast<std::size_t>(n), hetero);
    expect_skylines_agree(
        sc, "n=" + std::to_string(n) + " hetero=" + std::to_string(hetero) +
                " seed=" + std::to_string(seed) + " rep=" + std::to_string(rep));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13, 21, 34, 55),
                       ::testing::Bool(), ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Degenerate configurations.

TEST(SkylineDegenerateTest, EmptySet) {
  const auto sky = compute_skyline({}, {0, 0});
  EXPECT_TRUE(sky.empty());
  EXPECT_TRUE(sky.skyline_set().empty());
}

TEST(SkylineDegenerateTest, SingleDisk) {
  const std::vector<geom::Disk> one{{{0.2, 0.1}, 1.0}};
  const auto sky = compute_skyline(one, {0, 0});
  ASSERT_EQ(sky.arc_count(), 1u);
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(verify_skyline(sky, one), "");
}

TEST(SkylineDegenerateTest, ConcentricDisksKeepOnlyLargest) {
  const Scenario sc = concentric_set(8);
  const auto sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{7}));
  expect_skylines_agree(sc, "concentric");
}

TEST(SkylineDegenerateTest, DuplicateDisksKeepExactlyOne) {
  for (std::size_t copies : {2u, 3u, 7u}) {
    const Scenario sc = duplicate_set(copies);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    EXPECT_EQ(sky.skyline_set().size(), 1u) << copies << " copies";
    EXPECT_EQ(sky.skyline_set()[0], 0u) << "tie-break must pick index 0";
  }
}

TEST(SkylineDegenerateTest, DominatedSetKeepsOnlyTheBigDisk) {
  sim::Xoshiro256 rng(404);
  const Scenario sc = dominated_set(rng, 12);
  const auto sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{0}));
  expect_skylines_agree(sc, "dominated");
}

TEST(SkylineDegenerateTest, InternallyTangentPair) {
  const Scenario sc = tangent_pair();
  const auto sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{0}));
  expect_skylines_agree(sc, "tangent");
}

TEST(SkylineDegenerateTest, CollinearCenters) {
  for (std::size_t n : {2u, 5u, 9u, 17u}) {
    expect_skylines_agree(collinear_set(n),
                          "collinear n=" + std::to_string(n));
  }
}

TEST(SkylineDegenerateTest, ZeroRadiusRelayAmongNormalDisks) {
  // A zero-radius disk exactly at the origin is a legal local disk (it
  // contains o); it must never appear in the skyline set when any other
  // disk is present.
  const std::vector<geom::Disk> disks{{{0, 0}, 0.0}, {{0.1, 0}, 1.0}};
  const auto sky = compute_skyline(disks, {0, 0});
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{1}));
}

// ---------------------------------------------------------------------------
// The Figure 4.1 construction: the central disk added last contributes k
// arcs, demonstrating why Lemma 8 requires decreasing-radius insertion —
// while the *total* arc count still respects the 2n bound.

class Figure41Test : public ::testing::TestWithParam<int> {};

TEST_P(Figure41Test, CentralDiskContributesKArcs) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const Scenario sc = figure41_configuration(k);
  const auto sky = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(verify_skyline(sky, sc.disks), "");

  std::size_t central_arcs = 0;
  for (const auto& [disk, arcs] : sky.arcs_per_disk()) {
    if (disk == k) central_arcs = arcs;  // disks[k] is the central disk
  }
  EXPECT_EQ(central_arcs, k);
  EXPECT_LE(sky.arc_count(), 2 * sc.disks.size());  // Lemma 8 still holds
}

INSTANTIATE_TEST_SUITE_P(K, Figure41Test, ::testing::Values(3, 4, 5, 6, 8, 12));

TEST(Figure41Test, BelowThresholdRadiusContributesNothing) {
  // With r below ||o - p|| the central disk is under the envelope
  // everywhere, so it contributes no arcs.
  Scenario sc = figure41_configuration(5);
  sc.disks.back().radius *= 0.80;  // drop below the valley distance
  const auto sky = compute_skyline(sc.disks, sc.origin);
  for (const auto& [disk, arcs] : sky.arcs_per_disk()) {
    EXPECT_NE(disk, 5u);
  }
}

// ---------------------------------------------------------------------------
// Lemma 8 stress: arc count <= 2n over many random sets, including the
// regimes (many similar radii, dense centers) where arcs multiply.

class Lemma8Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma8Test, ArcCountAtMostTwiceDiskCount) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 2 + rng.uniform_int(40);
    const Scenario sc = random_local_set(rng, n, true, 1.0, 1.05);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    EXPECT_LE(sky.arc_count(), 2 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma8Test, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Exact union-area agreement: skyline sector integral vs grid estimate.

TEST(SkylineAreaTest, EnclosedAreaMatchesGridEstimate) {
  sim::Xoshiro256 rng(2024);
  for (int rep = 0; rep < 5; ++rep) {
    const Scenario sc = random_local_set(rng, 10, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    const double exact = sky.enclosed_area(sc.disks);
    const double grid = geom::union_area_grid(sc.disks, 700);
    EXPECT_NEAR(exact, grid, exact * 0.01) << "rep " << rep;
  }
}

TEST(SkylineAreaTest, SkylineSetPreservesExactArea) {
  // Theorem 3 in area form: the union of just the skyline disks has the
  // same exact area as the union of all disks.
  sim::Xoshiro256 rng(7777);
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario sc = random_local_set(rng, 14, true);
    const auto sky = compute_skyline(sc.disks, sc.origin);
    std::vector<geom::Disk> subset;
    for (std::size_t i : sky.skyline_set()) subset.push_back(sc.disks[i]);
    const auto sub_sky = compute_skyline(subset, sc.origin);
    EXPECT_NEAR(sky.enclosed_area(sc.disks), sub_sky.enclosed_area(subset),
                1e-6);
  }
}

// ---------------------------------------------------------------------------
// Order invariance: permuting the input disks never changes coverage or the
// (index-mapped) skyline set.

TEST(SkylineOrderTest, PermutationInvariance) {
  sim::Xoshiro256 rng(31415);
  const Scenario sc = random_local_set(rng, 12, true);
  const auto base = compute_skyline(sc.disks, sc.origin).skyline_set();

  std::vector<std::size_t> perm(sc.disks.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (int shuffle = 0; shuffle < 10; ++shuffle) {
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_int(i)]);
    }
    std::vector<geom::Disk> shuffled(sc.disks.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      shuffled[i] = sc.disks[perm[i]];
    }
    auto got = compute_skyline(shuffled, sc.origin).skyline_set();
    // Map back through the permutation.
    std::vector<std::size_t> mapped;
    for (std::size_t i : got) mapped.push_back(perm[i]);
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(mapped, base) << "shuffle " << shuffle;
  }
}

}  // namespace
}  // namespace mldcs::core
