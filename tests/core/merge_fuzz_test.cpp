// Fuzz-style property tests for Merge beyond the balanced splits the
// divide-and-conquer produces: arbitrary partitions, unbalanced sides,
// three-way associativity, and repeated self-merges.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/merge.hpp"
#include "core/scenarios.hpp"
#include "core/skyline.hpp"
#include "core/skyline_dc.hpp"
#include "core/validate.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::kTwoPi;

/// Skyline (arc list) of an arbitrary index subset, via the D&C on a
/// temporary disk span with indices remapped back to the full set.
std::vector<Arc> subset_skyline(const std::vector<geom::Disk>& disks,
                                geom::Vec2 o,
                                const std::vector<std::size_t>& subset) {
  if (subset.empty()) return {};
  std::vector<geom::Disk> chosen;
  chosen.reserve(subset.size());
  for (std::size_t i : subset) chosen.push_back(disks[i]);
  const Skyline sky = compute_skyline(chosen, o);
  std::vector<Arc> arcs(sky.arcs().begin(), sky.arcs().end());
  for (Arc& a : arcs) a.disk = subset[a.disk];
  return normalize_arcs(std::move(arcs));
}

void expect_equals_whole(const std::vector<geom::Disk>& disks, geom::Vec2 o,
                         const std::vector<Arc>& merged,
                         const std::string& label) {
  const Skyline sky(o, merged);
  EXPECT_TRUE(Skyline::well_formed(merged, disks.size())) << label;
  EXPECT_LT(max_radial_error(sky, disks, 1024), 1e-7) << label;
  EXPECT_EQ(sky.skyline_set(), compute_skyline(disks, o).skyline_set())
      << label;
}

class MergeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeFuzzTest, ArbitraryPartitionsMergeToTheWholeSkyline) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7001 + 3);
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario sc = random_local_set(rng, 16, true, 1.0, 1.4);
    // Random partition into two (possibly very unbalanced) halves.
    std::vector<std::size_t> left, right;
    for (std::size_t i = 0; i < sc.disks.size(); ++i) {
      (rng.uniform() < 0.25 ? left : right).push_back(i);
    }
    if (left.empty()) left.push_back(right.back()), right.pop_back();
    const auto merged = merge_skylines(
        subset_skyline(sc.disks, sc.origin, left),
        subset_skyline(sc.disks, sc.origin, right), sc.disks, sc.origin);
    expect_equals_whole(sc.disks, sc.origin, merged,
                        "rep " + std::to_string(rep));
  }
}

TEST_P(MergeFuzzTest, ThreeWayAssociativity) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 9109 + 11);
  const Scenario sc = random_local_set(rng, 12, true);
  std::vector<std::size_t> a, b, c;
  for (std::size_t i = 0; i < sc.disks.size(); ++i) {
    const auto bucket = rng.uniform_int(3);
    (bucket == 0 ? a : bucket == 1 ? b : c).push_back(i);
  }
  const auto sa = subset_skyline(sc.disks, sc.origin, a);
  const auto sb = subset_skyline(sc.disks, sc.origin, b);
  const auto sg = subset_skyline(sc.disks, sc.origin, c);

  const auto ab_c = merge_skylines(
      merge_skylines(sa, sb, sc.disks, sc.origin), sg, sc.disks, sc.origin);
  const auto a_bc = merge_skylines(
      sa, merge_skylines(sb, sg, sc.disks, sc.origin), sc.disks, sc.origin);

  // Both groupings must equal the whole-set skyline in coverage and set.
  expect_equals_whole(sc.disks, sc.origin, ab_c, "(ab)c");
  expect_equals_whole(sc.disks, sc.origin, a_bc, "a(bc)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeFuzzTest, ::testing::Range(0, 6));

TEST(MergeFuzzTest, RepeatedSelfMergeIsStable) {
  sim::Xoshiro256 rng(404);
  const Scenario sc = random_local_set(rng, 10, true);
  const Skyline sky = compute_skyline(sc.disks, sc.origin);
  std::vector<Arc> arcs(sky.arcs().begin(), sky.arcs().end());
  for (int k = 0; k < 5; ++k) {
    const auto again = merge_skylines(arcs, arcs, sc.disks, sc.origin);
    EXPECT_EQ(again, arcs) << "self-merge iteration " << k;
  }
}

TEST(MergeFuzzTest, SingletonAgainstWholeMatchesIncrementalStep) {
  sim::Xoshiro256 rng(505);
  const Scenario sc = random_local_set(rng, 9, true);
  // Skyline of all but the last disk, then merge the last one in.
  std::vector<std::size_t> prefix(sc.disks.size() - 1);
  for (std::size_t i = 0; i < prefix.size(); ++i) prefix[i] = i;
  const auto base = subset_skyline(sc.disks, sc.origin, prefix);
  const std::vector<Arc> last{
      Arc{0.0, kTwoPi, sc.disks.size() - 1}};
  const auto merged = merge_skylines(base, last, sc.disks, sc.origin);
  expect_equals_whole(sc.disks, sc.origin, merged, "incremental step");
}

}  // namespace
}  // namespace mldcs::core
