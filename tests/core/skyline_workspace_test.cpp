// The iterative SkylineWorkspace engine against the recursive baseline and
// the brute-force envelope: randomized equivalence, the degenerate
// scenarios of the invariant-harness PR, and workspace reuse (one workspace
// across many different inputs must behave exactly like a fresh one each
// time).
//
// The bottom-up engine merges a *different* tree than the top-down
// recursion for non-power-of-2 sizes, so against the recursive baseline we
// compare the semantic result (skyline set + radial coverage), while
// against a fresh workspace run — same engine, same tree — arc lists must
// match bit for bit.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/invariants.hpp"
#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "core/validate.hpp"
#include "sim/rng.hpp"
#include "support/alloc_guard.hpp"

namespace mldcs::core {
namespace {

/// Spans don't compare; copy for EXPECT_EQ (gtest prints Arc).
std::vector<Arc> arc_vec(std::span<const Arc> arcs) {
  return {arcs.begin(), arcs.end()};
}

/// Workspace engine vs recursive vs brute force on one scenario.
void expect_workspace_agrees(const Scenario& sc, const std::string& label) {
  SkylineWorkspace ws;
  const Skyline via_ws = compute_skyline(sc.disks, sc.origin, ws);
  const Skyline rec = compute_skyline_recursive(sc.disks, sc.origin);
  const Skyline bf = compute_skyline_bruteforce(sc.disks, sc.origin);

  EXPECT_EQ(verify_skyline(via_ws, sc.disks), "") << label;
  EXPECT_LT(max_radial_error(via_ws, sc.disks, 2048), 1e-7) << label;
  EXPECT_EQ(via_ws.skyline_set(), rec.skyline_set()) << label;
  EXPECT_EQ(via_ws.skyline_set(), bf.skyline_set()) << label;
  EXPECT_LE(via_ws.arc_count(), 2 * sc.disks.size()) << label;  // Lemma 8

  // The plain compute_skyline entry point now routes through a thread-local
  // workspace — it must produce the identical arc list.
  const Skyline via_tl = compute_skyline(sc.disks, sc.origin);
  EXPECT_EQ(arc_vec(via_ws.arcs()), arc_vec(via_tl.arcs())) << label;

  // The allocation-free form returns the same arcs as the Skyline form.
  std::vector<Arc> arcs;
  compute_skyline_arcs(sc.disks, sc.origin, ws, arcs);
  EXPECT_EQ(arcs, arc_vec(via_ws.arcs())) << label;
}

// ---------------------------------------------------------------------------
// Randomized equivalence sweep.

class WorkspaceRandomTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(WorkspaceRandomTest, MatchesRecursiveAndBruteforce) {
  const auto [n, hetero] = GetParam();
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(n) * 7919 + (hetero ? 1 : 0));
  for (int rep = 0; rep < 4; ++rep) {
    const Scenario sc =
        random_local_set(rng, static_cast<std::size_t>(n), hetero);
    expect_workspace_agrees(sc, "n=" + std::to_string(n) +
                                    " hetero=" + std::to_string(hetero) +
                                    " rep=" + std::to_string(rep));
  }
}

// Sizes straddle power-of-2 boundaries on purpose: 3, 5, 9, 17, 33 exercise
// the odd-tail carry of the bottom-up merge schedule.
INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkspaceRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33,
                                         55, 64),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Degenerate configurations (the PR-1 invariant-harness scenarios).

TEST(WorkspaceDegenerateTest, Concentric) {
  expect_workspace_agrees(concentric_set(7), "concentric");
}

TEST(WorkspaceDegenerateTest, Duplicates) {
  expect_workspace_agrees(duplicate_set(6), "duplicates");
}

TEST(WorkspaceDegenerateTest, Dominated) {
  sim::Xoshiro256 rng(99);
  expect_workspace_agrees(dominated_set(rng, 12), "dominated");
}

TEST(WorkspaceDegenerateTest, TangentPair) {
  expect_workspace_agrees(tangent_pair(), "tangent-pair");
}

TEST(WorkspaceDegenerateTest, Collinear) {
  expect_workspace_agrees(collinear_set(9), "collinear");
}

TEST(WorkspaceDegenerateTest, Figure41) {
  expect_workspace_agrees(figure41_configuration(8), "figure-4.1");
}

TEST(WorkspaceDegenerateTest, Figure32Like) {
  expect_workspace_agrees(figure32_like_configuration(), "figure-3.2");
}

TEST(WorkspaceDegenerateTest, EmptySet) {
  SkylineWorkspace ws;
  const Skyline sky = compute_skyline({}, {0, 0}, ws);
  EXPECT_TRUE(sky.empty());
  std::vector<Arc> arcs{{0.0, 1.0, 0}};  // must be cleared
  compute_skyline_arcs({}, {0, 0}, ws, arcs);
  EXPECT_TRUE(arcs.empty());
}

TEST(WorkspaceDegenerateTest, SingleDisk) {
  SkylineWorkspace ws;
  const std::vector<geom::Disk> one{{{0.2, 0.1}, 1.0}};
  const Skyline sky = compute_skyline(one, {0, 0}, ws);
  ASSERT_EQ(sky.arc_count(), 1u);
  EXPECT_EQ(sky.skyline_set(), (std::vector<std::size_t>{0}));
}

// ---------------------------------------------------------------------------
// Workspace reuse: one workspace through 100 different inputs — growing,
// shrinking, degenerate — must match a fresh computation every time.

TEST(WorkspaceReuseTest, HundredInputsThroughOneWorkspace) {
  SkylineWorkspace shared;
  sim::Xoshiro256 rng(0xAB5E55ED);
  std::vector<Arc> reused_arcs;
  for (int i = 0; i < 100; ++i) {
    // Sizes jump around so the workspace alternately grows and is larger
    // than needed; every 10th input is degenerate.
    const std::size_t n = 1 + (static_cast<std::size_t>(i * 13) % 48);
    const Scenario sc = (i % 10 == 7)
                            ? duplicate_set(n)
                            : random_local_set(rng, n, i % 2 == 0);
    const Skyline fresh = [&] {
      SkylineWorkspace one_shot;
      return compute_skyline(sc.disks, sc.origin, one_shot);
    }();
    const Skyline reused = compute_skyline(sc.disks, sc.origin, shared);
    EXPECT_EQ(arc_vec(reused.arcs()), arc_vec(fresh.arcs())) << "input " << i;

    compute_skyline_arcs(sc.disks, sc.origin, shared, reused_arcs);
    EXPECT_EQ(reused_arcs, arc_vec(fresh.arcs())) << "input " << i;
  }
}

TEST(WorkspaceReuseTest, ReserveAndClearPreserveResults) {
  sim::Xoshiro256 rng(0x5EED);
  const Scenario sc = random_local_set(rng, 40, true);
  const Skyline expected = compute_skyline_bruteforce(sc.disks, sc.origin);

  SkylineWorkspace ws;
  ws.reserve(256);  // oversized up-front reservation
  EXPECT_EQ(compute_skyline(sc.disks, sc.origin, ws).skyline_set(),
            expected.skyline_set());

  ws.clear();  // release everything; buffers must regrow transparently
  EXPECT_EQ(compute_skyline(sc.disks, sc.origin, ws).skyline_set(),
            expected.skyline_set());
}

/// The amortized-zero contract of workspace reuse, measured with the
/// shared allocation probe (tests/support/): after one warm pass over a
/// set of inputs, re-running the allocation-free entry point over the same
/// inputs must not touch the heap at all.  This is the dynamic cross-check
/// of the hot-no-alloc static rule on compute_skyline_arcs
/// (tools/analyze/), which cannot observe capacity high-water marks.
TEST(WorkspaceReuseTest, WarmedUpReuseIsAllocationFree) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  if (kInvariantChecksEnabled) {
    GTEST_SKIP() << "invariant diagnostics allocate by design (ALLOC_OK)";
  }
  sim::Xoshiro256 rng(0xA110C);
  std::vector<Scenario> inputs;
  for (std::size_t i = 0; i < 8; ++i) {
    inputs.push_back(random_local_set(rng, 20 + 10 * i, i % 2 == 0));
  }

  SkylineWorkspace ws;
  std::vector<Arc> arcs;
  // Two warm passes, not one: the engine ping-pongs its two arc buffers
  // (std::swap per merge level), so after a run with an odd level count the
  // capacities sit in swapped slots and the first *reuse* can grow a buffer
  // once more.  The second pass reaches the capacity fixed point.
  for (int warm = 0; warm < 2; ++warm) {
    for (const Scenario& sc : inputs) {
      compute_skyline_arcs(sc.disks, sc.origin, ws, arcs);
    }
  }

  const test::AllocGuard guard;
  for (int round = 0; round < 5; ++round) {
    for (const Scenario& sc : inputs) {
      compute_skyline_arcs(sc.disks, sc.origin, ws, arcs);
    }
  }
  EXPECT_EQ(guard.count(), 0u)
      << "warmed-up compute_skyline_arcs allocated on reuse";
}

}  // namespace
}  // namespace mldcs::core
