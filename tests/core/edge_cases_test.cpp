// Adversarial / numerical edge cases for the skyline algorithms: the relay
// on disk boundaries, near-coincident radii, micro and macro scales, and
// defensive paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "core/validate.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kTwoPi;
using geom::Vec2;

void expect_agreement(const std::vector<Disk>& disks, Vec2 o,
                      const std::string& label) {
  const auto dc = compute_skyline(disks, o);
  const auto bf = compute_skyline_bruteforce(disks, o);
  EXPECT_EQ(verify_skyline(dc, disks), "") << label;
  EXPECT_LT(max_radial_error(dc, disks, 2048), 1e-7) << label;
  EXPECT_EQ(dc.skyline_set(), bf.skyline_set()) << label;
}

/// Degeneracies must be resolved on the same side by all three algorithms:
/// identical skyline sets from the D&C, the incremental reference, and the
/// brute-force envelope.
void expect_triple_agreement(const std::vector<Disk>& disks, Vec2 o,
                             const std::string& label) {
  const auto dc = compute_skyline(disks, o);
  const auto inc = compute_skyline_incremental(disks, o);
  const auto bf = compute_skyline_bruteforce(disks, o);
  EXPECT_EQ(verify_skyline(dc, disks), "") << label;
  EXPECT_EQ(dc.skyline_set(), inc.skyline_set()) << label;
  EXPECT_EQ(dc.skyline_set(), bf.skyline_set()) << label;
  EXPECT_NEAR(dc.enclosed_area(disks), bf.enclosed_area(disks), 1e-7)
      << label;
}

TEST(EdgeCasesTest, RelayOnEveryDiskBoundary) {
  // k disks all passing exactly through o: rho_i has a zero.  The union
  // boundary touches o, the most degenerate star-shaped configuration.
  for (const std::size_t k : {2u, 3u, 5u, 8u}) {
    std::vector<Disk> disks;
    for (std::size_t i = 0; i < k; ++i) {
      const double a = kTwoPi * static_cast<double>(i) / static_cast<double>(k);
      disks.push_back(Disk{geom::unit_at(a), 1.0});  // ||o - c|| == r
    }
    expect_agreement(disks, {0, 0}, "boundary-relay k=" + std::to_string(k));
  }
}

TEST(EdgeCasesTest, NearCoincidentRadii) {
  // Radii differing by barely more than the tolerance: the tie-break must
  // stay deterministic and the algorithms must agree.
  sim::Xoshiro256 rng(31);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<Disk> disks;
    const std::size_t n = 3 + rng.uniform_int(6);
    for (std::size_t i = 0; i < n; ++i) {
      const double r = 1.0 + 1e-7 * static_cast<double>(rng.uniform_int(5));
      const double d = rng.uniform(0.0, 0.9);
      disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
    }
    expect_agreement(disks, {0, 0}, "near-coincident rep " +
                                        std::to_string(rep));
  }
}

TEST(EdgeCasesTest, MicroScaleConfiguration) {
  // Everything scaled down by 1e-3: absolute tolerances must not swallow
  // the geometry at the paper's unit scale divided by 1000.
  const double s = 1e-3;
  const std::vector<Disk> disks{{{0.5 * s, 0.0}, 1.0 * s},
                                {{-0.5 * s, 0.0}, 1.0 * s},
                                {{0.0, 0.6 * s}, 0.9 * s}};
  expect_agreement(disks, {0, 0}, "micro scale");
}

TEST(EdgeCasesTest, MacroScaleConfiguration) {
  // Scaled up by 1e3 with a far-away origin offset: catches naive absolute
  // comparisons against large coordinates.
  const Vec2 base{5000.0, -3000.0};
  const std::vector<Disk> disks{{base + Vec2{500, 0}, 1000.0},
                                {base + Vec2{-500, 0}, 1000.0},
                                {base + Vec2{0, 600}, 900.0}};
  expect_agreement(disks, base, "macro scale");
}

TEST(EdgeCasesTest, ManyDisksThroughTwoCommonPoints) {
  // A pencil of circles through two fixed points (0, +-h): every pair of
  // circles intersects at the SAME two points — maximal breakpoint
  // collision for Merge's deduplication.
  const double h = 0.8;
  std::vector<Disk> disks;
  for (const double cx : {-0.9, -0.45, -0.2, 0.0, 0.2, 0.45, 0.9}) {
    const double r = std::sqrt(cx * cx + h * h);
    disks.push_back(Disk{{cx, 0.0}, r});
  }
  expect_agreement(disks, {0, 0}, "pencil of circles");
}

TEST(EdgeCasesTest, LargeRandomSetAgreesWithIncremental) {
  // n = 400: far beyond what the unit sweeps use; D&C and incremental must
  // still agree exactly (brute force would be too slow here).
  sim::Xoshiro256 rng(747);
  std::vector<Disk> disks;
  for (int i = 0; i < 400; ++i) {
    const double r = rng.uniform(1.0, 1.5);
    const double d = rng.uniform(0.0, r);
    disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
  }
  const auto dc = compute_skyline(disks, {0, 0});
  const auto inc = compute_skyline_incremental(disks, {0, 0});
  EXPECT_EQ(dc.skyline_set(), inc.skyline_set());
  EXPECT_EQ(verify_skyline(dc, disks), "");
  EXPECT_LE(dc.arc_count(), 2 * disks.size());
}

TEST(EdgeCasesTest, RadiusAtOutOfRangeDiskIndexIsSafe) {
  const Skyline sky({0, 0}, {{0.0, kTwoPi, 7}});  // index beyond the span
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  EXPECT_DOUBLE_EQ(sky.radius_at(disks, 1.0), 0.0);
}

TEST(EdgeCasesTest, AllDisksZeroRadiusAtOrigin) {
  // Pathological but legal: every disk is the single point o.
  const std::vector<Disk> disks{{{0, 0}, 0.0}, {{0, 0}, 0.0}};
  const auto sky = compute_skyline(disks, {0, 0});
  EXPECT_EQ(sky.skyline_set().size(), 1u);
  EXPECT_NEAR(sky.enclosed_area(disks), 0.0, 1e-12);
}

TEST(EdgeCasesTest, SpikyRadialProfile) {
  // One dominant disk plus many slivers poking out by a hair: stress the
  // sliver-dropping logic without breaking coverage.
  sim::Xoshiro256 rng(555);
  std::vector<Disk> disks{{{0, 0}, 1.0}};
  for (int i = 0; i < 12; ++i) {
    const double a = rng.uniform(0.0, kTwoPi);
    // Center near the boundary, radius slightly over the gap to o.
    const double d = 0.95;
    disks.push_back(Disk{d * geom::unit_at(a), d + 0.06});
  }
  expect_agreement(disks, {0, 0}, "spiky profile");
}

TEST(EdgeCasesTest, CoincidentCentersEqualRadii) {
  // Exactly coincident disks: the tie-break (larger radius, then smaller
  // index) must keep exactly one representative, identically in all three
  // algorithms.
  const Disk twin{{0.3, -0.2}, 1.1};
  for (const std::size_t copies : {2u, 3u, 6u}) {
    const std::vector<Disk> disks(copies, twin);
    expect_triple_agreement(disks, {0, 0},
                            "coincident x" + std::to_string(copies));
    EXPECT_EQ(compute_skyline(disks, {0, 0}).skyline_set(),
              (std::vector<std::size_t>{0}));
  }
  // Coincident pair embedded among distinct disks: the pair still yields
  // one representative and the distinct disks are unaffected.
  const std::vector<Disk> mixed{{{0.6, 0.0}, 1.0}, twin, twin,
                                {{-0.5, 0.4}, 1.2}};
  expect_triple_agreement(mixed, {0, 0}, "coincident pair among distinct");
}

TEST(EdgeCasesTest, DiskFullyContainingAllOthers) {
  // One disk dominates the whole set; every algorithm must return exactly
  // that disk, regardless of its index position.
  const Disk big{{0.2, 0.1}, 5.0};
  const std::vector<Disk> small{{{0.4, 0.0}, 1.0},
                                {{-0.3, 0.2}, 0.8},
                                {{0.0, -0.5}, 1.2}};
  for (std::size_t pos = 0; pos <= small.size(); ++pos) {
    std::vector<Disk> disks = small;
    disks.insert(disks.begin() + static_cast<std::ptrdiff_t>(pos), big);
    const std::string label = "big disk at index " + std::to_string(pos);
    expect_triple_agreement(disks, {0, 0}, label);
    EXPECT_EQ(compute_skyline(disks, {0, 0}).skyline_set(),
              (std::vector<std::size_t>{pos}))
        << label;
  }
}

TEST(EdgeCasesTest, ArcEndpointsWithinAngleTol) {
  // Circles through two common points, one center perturbed by far less
  // than kAngleTol resolves at the relay: the two pairwise intersection
  // angles land within tolerance of each other, so breakpoint dedup and
  // sliver coalescing must fire identically in all three algorithms.
  const double h = 0.8;
  for (const double eps : {0.0, 1e-13, 1e-11, 0.4e-9}) {
    std::vector<Disk> disks;
    for (const double cx : {-0.6, 0.0, 0.6}) {
      disks.push_back(Disk{{cx, 0.0}, std::sqrt(cx * cx + h * h)});
    }
    // Perturb the last circle so it passes within eps of (0, +-h) instead
    // of exactly through them.
    disks.back().center.x += eps;
    expect_triple_agreement(disks, {0, 0},
                            "near-coincident breakpoints eps=" +
                                std::to_string(eps));
  }
}

}  // namespace
}  // namespace mldcs::core
