// Adversarial / numerical edge cases for the skyline algorithms: the relay
// on disk boundaries, near-coincident radii, micro and macro scales, and
// defensive paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/skyline_dc.hpp"
#include "core/skyline_reference.hpp"
#include "core/validate.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kTwoPi;
using geom::Vec2;

void expect_agreement(const std::vector<Disk>& disks, Vec2 o,
                      const std::string& label) {
  const auto dc = compute_skyline(disks, o);
  const auto bf = compute_skyline_bruteforce(disks, o);
  EXPECT_EQ(verify_skyline(dc, disks), "") << label;
  EXPECT_LT(max_radial_error(dc, disks, 2048), 1e-7) << label;
  EXPECT_EQ(dc.skyline_set(), bf.skyline_set()) << label;
}

TEST(EdgeCasesTest, RelayOnEveryDiskBoundary) {
  // k disks all passing exactly through o: rho_i has a zero.  The union
  // boundary touches o, the most degenerate star-shaped configuration.
  for (const std::size_t k : {2u, 3u, 5u, 8u}) {
    std::vector<Disk> disks;
    for (std::size_t i = 0; i < k; ++i) {
      const double a = kTwoPi * static_cast<double>(i) / static_cast<double>(k);
      disks.push_back(Disk{geom::unit_at(a), 1.0});  // ||o - c|| == r
    }
    expect_agreement(disks, {0, 0}, "boundary-relay k=" + std::to_string(k));
  }
}

TEST(EdgeCasesTest, NearCoincidentRadii) {
  // Radii differing by barely more than the tolerance: the tie-break must
  // stay deterministic and the algorithms must agree.
  sim::Xoshiro256 rng(31);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<Disk> disks;
    const std::size_t n = 3 + rng.uniform_int(6);
    for (std::size_t i = 0; i < n; ++i) {
      const double r = 1.0 + 1e-7 * static_cast<double>(rng.uniform_int(5));
      const double d = rng.uniform(0.0, 0.9);
      disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
    }
    expect_agreement(disks, {0, 0}, "near-coincident rep " +
                                        std::to_string(rep));
  }
}

TEST(EdgeCasesTest, MicroScaleConfiguration) {
  // Everything scaled down by 1e-3: absolute tolerances must not swallow
  // the geometry at the paper's unit scale divided by 1000.
  const double s = 1e-3;
  const std::vector<Disk> disks{{{0.5 * s, 0.0}, 1.0 * s},
                                {{-0.5 * s, 0.0}, 1.0 * s},
                                {{0.0, 0.6 * s}, 0.9 * s}};
  expect_agreement(disks, {0, 0}, "micro scale");
}

TEST(EdgeCasesTest, MacroScaleConfiguration) {
  // Scaled up by 1e3 with a far-away origin offset: catches naive absolute
  // comparisons against large coordinates.
  const Vec2 base{5000.0, -3000.0};
  const std::vector<Disk> disks{{base + Vec2{500, 0}, 1000.0},
                                {base + Vec2{-500, 0}, 1000.0},
                                {base + Vec2{0, 600}, 900.0}};
  expect_agreement(disks, base, "macro scale");
}

TEST(EdgeCasesTest, ManyDisksThroughTwoCommonPoints) {
  // A pencil of circles through two fixed points (0, +-h): every pair of
  // circles intersects at the SAME two points — maximal breakpoint
  // collision for Merge's deduplication.
  const double h = 0.8;
  std::vector<Disk> disks;
  for (const double cx : {-0.9, -0.45, -0.2, 0.0, 0.2, 0.45, 0.9}) {
    const double r = std::sqrt(cx * cx + h * h);
    disks.push_back(Disk{{cx, 0.0}, r});
  }
  expect_agreement(disks, {0, 0}, "pencil of circles");
}

TEST(EdgeCasesTest, LargeRandomSetAgreesWithIncremental) {
  // n = 400: far beyond what the unit sweeps use; D&C and incremental must
  // still agree exactly (brute force would be too slow here).
  sim::Xoshiro256 rng(747);
  std::vector<Disk> disks;
  for (int i = 0; i < 400; ++i) {
    const double r = rng.uniform(1.0, 1.5);
    const double d = rng.uniform(0.0, r);
    disks.push_back(Disk{d * geom::unit_at(rng.uniform(0.0, kTwoPi)), r});
  }
  const auto dc = compute_skyline(disks, {0, 0});
  const auto inc = compute_skyline_incremental(disks, {0, 0});
  EXPECT_EQ(dc.skyline_set(), inc.skyline_set());
  EXPECT_EQ(verify_skyline(dc, disks), "");
  EXPECT_LE(dc.arc_count(), 2 * disks.size());
}

TEST(EdgeCasesTest, RadiusAtOutOfRangeDiskIndexIsSafe) {
  const Skyline sky({0, 0}, {{0.0, kTwoPi, 7}});  // index beyond the span
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  EXPECT_DOUBLE_EQ(sky.radius_at(disks, 1.0), 0.0);
}

TEST(EdgeCasesTest, AllDisksZeroRadiusAtOrigin) {
  // Pathological but legal: every disk is the single point o.
  const std::vector<Disk> disks{{{0, 0}, 0.0}, {{0, 0}, 0.0}};
  const auto sky = compute_skyline(disks, {0, 0});
  EXPECT_EQ(sky.skyline_set().size(), 1u);
  EXPECT_NEAR(sky.enclosed_area(disks), 0.0, 1e-12);
}

TEST(EdgeCasesTest, SpikyRadialProfile) {
  // One dominant disk plus many slivers poking out by a hair: stress the
  // sliver-dropping logic without breaking coverage.
  sim::Xoshiro256 rng(555);
  std::vector<Disk> disks{{{0, 0}, 1.0}};
  for (int i = 0; i < 12; ++i) {
    const double a = rng.uniform(0.0, kTwoPi);
    // Center near the boundary, radius slightly over the gap to o.
    const double d = 0.95;
    disks.push_back(Disk{d * geom::unit_at(a), d + 0.06});
  }
  expect_agreement(disks, {0, 0}, "spiky profile");
}

}  // namespace
}  // namespace mldcs::core
