// Tests for the public MLDCS entry points: validation, error reporting,
// and the paper's worked configurations.

#include "core/mldcs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/scenarios.hpp"
#include "core/skyline_dc.hpp"
#include "core/validate.hpp"
#include "geometry/radial.hpp"
#include "sim/rng.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::Vec2;

TEST(LocalDiskSetTest, AcceptsValidSet) {
  const LocalDiskSet set({0, 0}, {{{0, 0}, 1.0}, {{0.5, 0}, 1.0}});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.origin(), Vec2(0, 0));
}

TEST(LocalDiskSetTest, AcceptsEmptySet) {
  const LocalDiskSet set({3, 4}, {});
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(mldcs(set).empty());
}

TEST(LocalDiskSetTest, RejectsDiskNotContainingRelay) {
  EXPECT_THROW(LocalDiskSet({0, 0}, {{{5, 0}, 1.0}}), InvalidLocalDiskSet);
}

TEST(LocalDiskSetTest, RejectsNegativeRadius) {
  EXPECT_THROW(LocalDiskSet({0, 0}, {{{0, 0}, -1.0}}), InvalidLocalDiskSet);
}

TEST(LocalDiskSetTest, RejectsNonFiniteInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(LocalDiskSet({nan, 0}, {{{0, 0}, 1.0}}), InvalidLocalDiskSet);
  EXPECT_THROW(LocalDiskSet({0, 0}, {{{nan, 0}, 1.0}}), InvalidLocalDiskSet);
  EXPECT_THROW(LocalDiskSet({0, 0}, {{{0, 0}, inf}}), InvalidLocalDiskSet);
}

TEST(LocalDiskSetTest, ViolationMessageNamesTheDisk) {
  const std::string msg =
      describe_local_set_violation(std::vector<Disk>{{{0, 0}, 1.0},
                                                     {{9, 0}, 1.0}},
                                   {0, 0});
  EXPECT_NE(msg.find("disk 1"), std::string::npos);
  EXPECT_NE(msg.find("not a local disk set"), std::string::npos);
}

TEST(LocalDiskSetTest, ValidSetHasEmptyViolation) {
  EXPECT_EQ(describe_local_set_violation(
                std::vector<Disk>{{{0, 0}, 1.0}}, {0, 0}),
            "");
}

TEST(MldcsTest, BoundaryRelayIsAccepted) {
  // ||o - u|| == r exactly: still a legal local disk.
  const LocalDiskSet set({1, 0}, {{{0, 0}, 1.0}});
  EXPECT_EQ(mldcs(set), (std::vector<std::size_t>{0}));
}

TEST(MldcsTest, Figure32LikeConfigurationDropsTheDominatedDisk) {
  const Scenario sc = figure32_like_configuration();
  const LocalDiskSet set(sc.origin, sc.disks);
  const auto result = mldcs(set);
  // Disk 3 is dominated; it must not appear.
  for (std::size_t i : result) EXPECT_NE(i, 3u);
  // The four outer neighbors all contribute; the relay's own small disk is
  // swallowed by them in this configuration.
  EXPECT_EQ(result, (std::vector<std::size_t>{1, 2, 4, 5}));
}

TEST(MldcsTest, UncheckedMatchesChecked) {
  sim::Xoshiro256 rng(5150);
  for (int rep = 0; rep < 20; ++rep) {
    const Scenario sc = random_local_set(rng, 9, true);
    const LocalDiskSet set(sc.origin, sc.disks);
    EXPECT_EQ(mldcs(set), mldcs_unchecked(sc.disks, sc.origin));
  }
}

TEST(MldcsTest, SkylineOfMatchesComputeSkyline) {
  sim::Xoshiro256 rng(61);
  const Scenario sc = random_local_set(rng, 7, false);
  const LocalDiskSet set(sc.origin, sc.disks);
  EXPECT_EQ(skyline_of(set).skyline_set(),
            compute_skyline(sc.disks, sc.origin).skyline_set());
}

TEST(MldcsTest, ResultIndicesAreSortedAndUnique) {
  sim::Xoshiro256 rng(71);
  for (int rep = 0; rep < 20; ++rep) {
    const Scenario sc = random_local_set(rng, 15, true);
    const auto result = mldcs_unchecked(sc.disks, sc.origin);
    for (std::size_t k = 1; k < result.size(); ++k) {
      EXPECT_LT(result[k - 1], result[k]);
    }
    for (std::size_t i : result) EXPECT_LT(i, sc.disks.size());
  }
}

TEST(MldcsTest, MldcsIsMinimalNoMemberRemovable) {
  // Removing any member of the MLDCS must lose coverage (each member
  // exclusively covers part of the plane, Theorem 3).  Checked at the
  // removed disk's own arc midpoints, where its radial distance strictly
  // exceeds every other disk's.
  sim::Xoshiro256 rng(81);
  for (int rep = 0; rep < 10; ++rep) {
    const Scenario sc = random_local_set(rng, 10, true);
    const Skyline sky = compute_skyline(sc.disks, sc.origin);
    for (std::size_t drop : sky.skyline_set()) {
      std::vector<geom::Disk> others;
      for (std::size_t i = 0; i < sc.disks.size(); ++i) {
        if (i != drop) others.push_back(sc.disks[i]);
      }
      bool strictly_needed = false;
      for (const Arc& a : sky.arcs()) {
        if (a.disk != drop) continue;
        const double mine =
            geom::radial_distance(sc.disks[drop], sc.origin, a.mid());
        const double rest = geom::radial_envelope(others, sc.origin, a.mid());
        if (mine > rest + 1e-9) strictly_needed = true;
      }
      EXPECT_TRUE(strictly_needed) << "rep " << rep << " drop " << drop;
    }
  }
}

}  // namespace
}  // namespace mldcs::core
